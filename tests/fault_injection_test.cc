// Fault-injection coverage: failpoint grammar and registry semantics,
// retry-policy behavior, and every failpoint seeded through the K-DB
// storage, database, session, optimizer, partial-mining and
// thread-pool layers.
#include <sys/socket.h>
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include <gtest/gtest.h>
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/optimizer.h"
#include "core/partial_mining.h"
#include "core/session.h"
#include "dataset/synthetic_cohort.h"
#include "kdb/database.h"
#include "kdb/storage.h"
#include "dataset/exam_log.h"
#include "service/client.h"
#include "service/cohort_store.h"
#include "service/net_socket.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "transform/matrix.h"
#include "test_util.h"
#include "transform/vsm.h"

namespace adahealth {
namespace {

using common::FailpointConfig;
using common::FailpointRegistry;
using common::OneShotError;
using common::RetryPolicy;
using common::ScopedFailpoint;
using common::Status;
using common::StatusCode;

/// Every test starts and ends with a dormant registry: failpoints are
/// process-global state and must not leak across tests.
class FaultInjectionTest : public testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Default().Clear(); }
  void TearDown() override { FailpointRegistry::Default().Clear(); }

  static bool FileExists(const std::string& path) {
    struct stat info{};
    return ::stat(path.c_str(), &info) == 0;
  }

  /// Fresh empty scratch directory under the test temp root. Clears
  /// leftovers from a previous run: several tests assert on exactly
  /// what a scheduler or database restores from the directory.
  static std::string MakeScratchDir(const std::string& name) {
    std::string path = testing::TempDir() + "/fault_" + name;
    std::error_code ignored;
    std::filesystem::remove_all(path, ignored);
    ::mkdir(path.c_str(), 0755);
    return path;
  }
};

// ---------------------------------------------------------------------
// Spec grammar.

TEST_F(FaultInjectionTest, ParsesErrorActionWithCodeAndMessage) {
  auto config =
      FailpointRegistry::ParseAction("error(DATA_LOSS, disk on fire)");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->kind, FailpointConfig::Kind::kError);
  EXPECT_EQ(config->code, StatusCode::kDataLoss);
  EXPECT_EQ(config->message, "disk on fire");
  EXPECT_EQ(config->max_activations, -1);
  EXPECT_EQ(config->first_hit, 1);
}

TEST_F(FaultInjectionTest, ParsesDelayAction) {
  auto config = FailpointRegistry::ParseAction("delay(25)");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->kind, FailpointConfig::Kind::kDelay);
  EXPECT_EQ(config->delay_millis, 25);
}

TEST_F(FaultInjectionTest, ParsesCountAndNthModifiers) {
  auto config = FailpointRegistry::ParseAction("error(UNAVAILABLE)*2@3");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->max_activations, 2);
  EXPECT_EQ(config->first_hit, 3);
}

TEST_F(FaultInjectionTest, ParsesOffAsZeroActivations) {
  auto config = FailpointRegistry::ParseAction("off");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->max_activations, 0);
}

TEST_F(FaultInjectionTest, RejectsBadGrammar) {
  EXPECT_FALSE(FailpointRegistry::ParseAction("explode()").ok());
  EXPECT_FALSE(FailpointRegistry::ParseAction("error(NO_SUCH_CODE)").ok());
  EXPECT_FALSE(FailpointRegistry::ParseAction("delay(-5)").ok());
  EXPECT_FALSE(FailpointRegistry::ParseAction("error(INTERNAL)*0").ok());
  EXPECT_FALSE(FailpointRegistry::ParseAction("error(INTERNAL)@0").ok());
  EXPECT_FALSE(FailpointRegistry::ParseAction("").ok());
}

TEST_F(FaultInjectionTest, ConfigureArmsFullSpec) {
  FailpointRegistry& registry = FailpointRegistry::Default();
  ASSERT_TRUE(registry
                  .Configure("kdb.storage.write=error(UNAVAILABLE)*1; "
                             "session.optimizer=delay(1)@2")
                  .ok());
  EXPECT_EQ(registry.ArmedPoints(),
            (std::vector<std::string>{"kdb.storage.write",
                                      "session.optimizer"}));
  // A bad clause rejects the whole spec and pinpoints the clause.
  Status bad = registry.Configure("a=error(UNAVAILABLE);b=banana");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("banana"), std::string::npos);
}

// ---------------------------------------------------------------------
// Registry semantics.

TEST_F(FaultInjectionTest, DormantPointIsOkAndCountsHits) {
  FailpointRegistry& registry = FailpointRegistry::Default();
  EXPECT_TRUE(registry.Evaluate("never.armed").ok());
  EXPECT_TRUE(registry.Evaluate("never.armed").ok());
  EXPECT_EQ(registry.hits("never.armed"), 2);
}

TEST_F(FaultInjectionTest, OneShotErrorFiresExactlyOnce) {
  FailpointRegistry& registry = FailpointRegistry::Default();
  registry.Arm("p", OneShotError(StatusCode::kUnavailable, "boom"));
  Status first = registry.Evaluate("p");
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_EQ(first.message(), "boom");
  EXPECT_TRUE(registry.Evaluate("p").ok());
  EXPECT_EQ(registry.hits("p"), 2);
}

TEST_F(FaultInjectionTest, FirstHitDefersTrigger) {
  FailpointRegistry& registry = FailpointRegistry::Default();
  FailpointConfig config;
  config.first_hit = 3;
  registry.Arm("p", config);
  EXPECT_TRUE(registry.Evaluate("p").ok());
  EXPECT_TRUE(registry.Evaluate("p").ok());
  EXPECT_FALSE(registry.Evaluate("p").ok());
  // Unlimited activations: keeps firing from the 3rd hit on.
  EXPECT_FALSE(registry.Evaluate("p").ok());
}

TEST_F(FaultInjectionTest, DelayTriggerSleepsAndReturnsOk) {
  FailpointRegistry& registry = FailpointRegistry::Default();
  FailpointConfig config;
  config.kind = FailpointConfig::Kind::kDelay;
  config.delay_millis = 20;
  config.max_activations = 1;
  registry.Arm("slow", config);
  common::WallTimer timer;
  EXPECT_TRUE(registry.Evaluate("slow").ok());
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
}

TEST_F(FaultInjectionTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint guard("scoped.p", OneShotError());
    EXPECT_FALSE(FailpointRegistry::Default().ArmedPoints().empty());
  }
  EXPECT_TRUE(FailpointRegistry::Default().ArmedPoints().empty());
}

// ---------------------------------------------------------------------
// Retry policy.

TEST_F(FaultInjectionTest, RetrySucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_millis = 0.1;
  int calls = 0;
  int32_t attempts = 0;
  Status status = common::RetryWithPolicy(
      policy, "op",
      [&] {
        return ++calls < 3 ? common::UnavailableError("busy")
                           : common::OkStatus();
      },
      &attempts);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
}

TEST_F(FaultInjectionTest, RetryFailsFastOnNonRetryableCode) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  Status status = common::RetryWithPolicy(policy, "op", [&] {
    ++calls;
    return common::InternalError("bug, not weather");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
  EXPECT_NE(status.message().find("after 1 attempt"), std::string::npos);
}

TEST_F(FaultInjectionTest, RetryGivesUpAfterMaxAttempts) {
  int64_t giveups_before = common::MetricsRegistry::Default()
                               .GetCounter("retry_giveups")
                               .value();
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_millis = 0.1;
  int calls = 0;
  Status status = common::RetryWithPolicy(policy, "doomed", [&] {
    ++calls;
    return common::UnavailableError("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_NE(status.message().find("doomed failed after 3 attempt"),
            std::string::npos);
  EXPECT_EQ(common::MetricsRegistry::Default()
                .GetCounter("retry_giveups")
                .value(),
            giveups_before + 1);
}

TEST_F(FaultInjectionTest, PerAttemptDeadlineConvertsOverrunToRetry) {
  // The operation succeeds but overruns its 1 ms budget; the deadline
  // turns that into a retryable DEADLINE_EXCEEDED until attempts run
  // out.
  ScopedFailpoint slow("retry.slow", [] {
    FailpointConfig config;
    config.kind = FailpointConfig::Kind::kDelay;
    config.delay_millis = 10;
    return config;
  }());
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_millis = 0.1;
  policy.per_attempt_deadline_millis = 1.0;
  Status status = common::RetryWithPolicy(policy, "slow-op", [&] {
    return FailpointRegistry::Default().Evaluate("retry.slow");
  });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, RetryAttemptsCounterAdvances) {
  int64_t before = common::MetricsRegistry::Default()
                       .GetCounter("retry_attempts")
                       .value();
  RetryPolicy policy;
  policy.max_attempts = 1;
  EXPECT_TRUE(
      common::RetryWithPolicy(policy, "noop", [] { return common::OkStatus(); })
          .ok());
  EXPECT_EQ(common::MetricsRegistry::Default()
                .GetCounter("retry_attempts")
                .value(),
            before + 1);
}

// ---------------------------------------------------------------------
// K-DB storage failpoints (kdb.storage.write / fsync / rename / read).

kdb::Collection MakeCollection(const std::string& name, int64_t docs) {
  kdb::Collection collection(name);
  for (int64_t i = 0; i < docs; ++i) {
    kdb::Document document;
    document.Set("value", common::Json(i));
    collection.Insert(std::move(document));
  }
  return collection;
}

TEST_F(FaultInjectionTest, WriteFailpointFailsSaveWithoutResidue) {
  std::string dir = MakeScratchDir("write");
  ScopedFailpoint fp("kdb.storage.write",
                     OneShotError(StatusCode::kUnavailable));
  Status saved = SaveCollection(MakeCollection("items", 3), dir);
  EXPECT_EQ(saved.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(FileExists(dir + "/items.jsonl"));
  EXPECT_FALSE(FileExists(dir + "/items.jsonl.tmp"));
}

TEST_F(FaultInjectionTest, FsyncFailpointFailsSaveWithoutResidue) {
  std::string dir = MakeScratchDir("fsync");
  ScopedFailpoint fp("kdb.storage.fsync",
                     OneShotError(StatusCode::kUnavailable));
  EXPECT_FALSE(SaveCollection(MakeCollection("items", 3), dir).ok());
  EXPECT_FALSE(FileExists(dir + "/items.jsonl"));
  EXPECT_FALSE(FileExists(dir + "/items.jsonl.tmp"));
}

TEST_F(FaultInjectionTest, RenameFailpointLeavesPreviousFileIntact) {
  std::string dir = MakeScratchDir("rename");
  ASSERT_TRUE(SaveCollection(MakeCollection("items", 3), dir).ok());
  {
    // The acceptance scenario: a crash between write and rename must
    // leave the previous version loadable and no *.tmp behind.
    ScopedFailpoint fp("kdb.storage.rename",
                       OneShotError(StatusCode::kUnavailable));
    EXPECT_FALSE(SaveCollection(MakeCollection("items", 7), dir).ok());
  }
  EXPECT_FALSE(FileExists(dir + "/items.jsonl.tmp"));
  auto loaded = kdb::LoadCollection("items", dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  // With the failpoint gone the save goes through.
  ASSERT_TRUE(SaveCollection(MakeCollection("items", 7), dir).ok());
  auto reloaded = kdb::LoadCollection("items", dir);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), 7u);
}

TEST_F(FaultInjectionTest, ReadFailpointFailsBothLoadPaths) {
  std::string dir = MakeScratchDir("read");
  ASSERT_TRUE(SaveCollection(MakeCollection("items", 2), dir).ok());
  FailpointRegistry::Default().Arm(
      "kdb.storage.read",
      [] {
        FailpointConfig config;
        config.code = StatusCode::kUnavailable;
        config.max_activations = 2;
        return config;
      }());
  EXPECT_EQ(kdb::LoadCollection("items", dir).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(kdb::LoadCollectionSalvage("items", dir).status().code(),
            StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------
// Database persistence retry (kdb.database.save / kdb.database.load).

TEST_F(FaultInjectionTest, SaveToRetriesTransientFailure) {
  std::string dir = MakeScratchDir("dbsave");
  kdb::Database db;
  db.EnsureAdaHealthSchema();
  ScopedFailpoint fp("kdb.database.save",
                     OneShotError(StatusCode::kUnavailable));
  kdb::Database::PersistOptions options;
  options.retry.initial_backoff_millis = 0.1;
  EXPECT_TRUE(db.SaveTo(dir, options).ok());
  for (const std::string& name : kdb::Schema::CollectionNames()) {
    EXPECT_TRUE(FileExists(dir + "/" + name + ".jsonl")) << name;
  }
}

TEST_F(FaultInjectionTest, SaveToWithoutRetryPropagatesFailure) {
  std::string dir = MakeScratchDir("dbsave1");
  kdb::Database db;
  db.EnsureAdaHealthSchema();
  ScopedFailpoint fp("kdb.database.save",
                     OneShotError(StatusCode::kUnavailable));
  kdb::Database::PersistOptions options;
  options.retry.max_attempts = 1;
  EXPECT_EQ(db.SaveTo(dir, options).code(), StatusCode::kUnavailable);
}

TEST_F(FaultInjectionTest, LoadFromRetriesTransientFailure) {
  std::string dir = MakeScratchDir("dbload");
  kdb::Database db;
  db.EnsureAdaHealthSchema();
  db.GetOrCreate(kdb::Schema::kFeedback).Insert(kdb::Document());
  ASSERT_TRUE(db.SaveTo(dir).ok());

  kdb::Database restored;
  ScopedFailpoint fp("kdb.database.load",
                     OneShotError(StatusCode::kUnavailable));
  kdb::Database::PersistOptions options;
  options.retry.initial_backoff_millis = 0.1;
  ASSERT_TRUE(
      restored.LoadFrom(dir, {kdb::Schema::kFeedback}, options).ok());
  EXPECT_EQ(restored.GetOrCreate(kdb::Schema::kFeedback).size(), 1u);
}

TEST_F(FaultInjectionTest, SaveToMissingDirectoryIsUnavailable) {
  kdb::Database db;
  db.EnsureAdaHealthSchema();
  Status saved = db.SaveTo("/no/such/directory/anywhere");
  EXPECT_EQ(saved.code(), StatusCode::kUnavailable);
  EXPECT_NE(saved.message().find("/no/such/directory/anywhere"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Optimizer, partial mining and thread pool failpoints.

TEST_F(FaultInjectionTest, OptimizerCandidateFailpointSkipsCandidate) {
  test::Blobs blobs =
      test::MakeBlobs({{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}}, 30, 0.6, 71);
  core::OptimizerOptions options;
  options.candidate_ks = {2, 3};
  options.cv_folds = 4;
  options.num_threads = 1;
  ScopedFailpoint fp("optimizer.candidate",
                     OneShotError(StatusCode::kUnavailable));
  auto result = core::OptimizeClustering(blobs.points, options);
  ASSERT_TRUE(result.ok());
  // First candidate skipped with the injected status, second evaluated
  // and selected.
  EXPECT_EQ(result->candidates[0].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(result->candidates[1].status.ok());
  EXPECT_EQ(result->best_k(), 3);
}

TEST_F(FaultInjectionTest, OptimizerFailsWhenEveryCandidateInjected) {
  test::Blobs blobs =
      test::MakeBlobs({{0.0, 0.0}, {8.0, 0.0}}, 20, 0.6, 72);
  core::OptimizerOptions options;
  options.candidate_ks = {2, 3};
  options.cv_folds = 4;
  options.num_threads = 1;
  FailpointConfig config;
  config.code = StatusCode::kInternal;
  ScopedFailpoint fp("optimizer.candidate", config);
  auto result = core::OptimizeClustering(blobs.points, options);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FaultInjectionTest, PartialMiningDropsInjectedNonBaselineStep) {
  auto cohort =
      dataset::SyntheticCohortGenerator(dataset::TestScaleConfig())
          .Generate();
  ASSERT_TRUE(cohort.ok());
  core::PartialMiningOptions options;
  options.fractions = {0.5};
  options.ks = {3};
  options.kmeans.max_iterations = 20;
  ScopedFailpoint fp("partial_mining.step",
                     OneShotError(StatusCode::kUnavailable));
  auto result = core::RunExamSubsetPartialMining(cohort->log, options);
  ASSERT_TRUE(result.ok());
  // The 0.5 step was dropped; only the full-data baseline remains.
  ASSERT_EQ(result->steps.size(), 1u);
  EXPECT_DOUBLE_EQ(result->steps[0].fraction, 1.0);
}

TEST_F(FaultInjectionTest, PartialMiningBaselineFailurePropagates) {
  auto cohort =
      dataset::SyntheticCohortGenerator(dataset::TestScaleConfig())
          .Generate();
  ASSERT_TRUE(cohort.ok());
  core::PartialMiningOptions options;
  options.fractions = {0.5};
  options.ks = {3};
  options.kmeans.max_iterations = 20;
  FailpointConfig config;
  config.code = StatusCode::kUnavailable;
  config.first_hit = 2;  // Schedule is {0.5, 1.0}: hit 2 is the baseline.
  ScopedFailpoint fp("partial_mining.step", config);
  auto result = core::RunExamSubsetPartialMining(cohort->log, options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultInjectionTest, ThreadPoolTaskFailpointCountsFailedTask) {
  ScopedFailpoint fp("thread_pool.task",
                     OneShotError(StatusCode::kInternal, "injected"));
  std::atomic<int> executed{0};
  common::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([&executed] { ++executed; });
  }
  pool.Wait();
  // The injected failure is accounted, but the task body still ran:
  // completion is load-bearing for ParallelFor.
  EXPECT_EQ(pool.failed_tasks(), 1u);
  EXPECT_EQ(pool.first_failure_message(), "injected");
  EXPECT_EQ(executed.load(), 8);
}

// ---------------------------------------------------------------------
// Resilient session execution (session.<stage> failpoints).

class FaultInjectionSessionTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    FaultInjectionTest::SetUp();
    auto cohort =
        dataset::SyntheticCohortGenerator(dataset::TestScaleConfig())
            .Generate();
    ASSERT_TRUE(cohort.ok());
    cohort_ = std::move(cohort).value();
  }

  static core::SessionOptions FastOptions() {
    core::SessionOptions options;
    options.dataset_id = "fault-cohort";
    options.transform.sample_fraction = 0.4;
    options.transform.proxy_k = 4;
    options.partial.fractions = {0.5, 1.0};
    options.partial.ks = {3};
    options.partial.kmeans.max_iterations = 20;
    options.optimizer.candidate_ks = {3, 4};
    options.optimizer.cv_folds = 4;
    options.optimizer.num_threads = 1;
    options.pattern_mining.min_support_level0 = 0.4;
    options.pattern_mining.min_support_level1 = 0.5;
    options.pattern_mining.min_support_level2 = 0.6;
    options.pattern_mining.max_itemset_size = 3;
    options.resilience.retry.initial_backoff_millis = 0.1;
    return options;
  }

  dataset::Cohort cohort_;
};

TEST_F(FaultInjectionSessionTest, TransientStageFailureIsRetriedToOk) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  ScopedFailpoint fp("session.characterize",
                     OneShotError(StatusCode::kUnavailable));
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, FastOptions());
  ASSERT_TRUE(result.ok());
  const core::StageOutcome* outcome = result->FindStage("characterize");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->state, core::StageState::kOk);
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_NE(result->summary.find("characterize=ok(2 attempts)"),
            std::string::npos);
}

TEST_F(FaultInjectionSessionTest, NonEssentialStageDegradesRunStillOk) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  // INTERNAL is not retryable: the knowledge stage degrades instead.
  ScopedFailpoint fp("session.knowledge",
                     OneShotError(StatusCode::kInternal));
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, FastOptions());
  ASSERT_TRUE(result.ok());
  const core::StageOutcome* outcome = result->FindStage("knowledge");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->state, core::StageState::kDegraded);
  EXPECT_EQ(outcome->status.code(), StatusCode::kInternal);
  EXPECT_EQ(result->CountStages(core::StageState::kDegraded), 1u);
  EXPECT_NE(result->summary.find("resilience:"), std::string::npos);
}

TEST_F(FaultInjectionSessionTest, PartialMiningDegradesToFullDataset) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  ScopedFailpoint fp("session.partial_mining",
                     OneShotError(StatusCode::kInternal));
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, FastOptions());
  ASSERT_TRUE(result.ok());
  const core::StageOutcome* outcome = result->FindStage("partial_mining");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->state, core::StageState::kDegraded);
  // Fallback: mine the full dataset.
  ASSERT_EQ(result->partial.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(result->partial.steps[0].fraction, 1.0);
  // Downstream stages still produced knowledge.
  EXPECT_FALSE(result->knowledge.empty());
}

TEST_F(FaultInjectionSessionTest, EssentialStageFailureAbortsRun) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  ScopedFailpoint fp("session.optimizer",
                     OneShotError(StatusCode::kInternal, "injected"));
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, FastOptions());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionSessionTest, ResilienceDisabledFailsFast) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  core::SessionOptions options = FastOptions();
  options.resilience.enabled = false;
  ScopedFailpoint fp("session.characterize",
                     OneShotError(StatusCode::kUnavailable));
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultInjectionSessionTest, StoreStageDegradesWhenPersistFails) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  core::SessionOptions options = FastOptions();
  options.persist_directory = "/no/such/persist/dir";
  int64_t degraded_before = common::MetricsRegistry::Default()
                                .GetCounter("stage_degraded_total")
                                .value();
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, options);
  ASSERT_TRUE(result.ok());
  const core::StageOutcome* outcome = result->FindStage("kdb_store");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->state, core::StageState::kDegraded);
  EXPECT_EQ(outcome->status.code(), StatusCode::kUnavailable);
  // In-memory K-DB is still populated despite the failed persist.
  EXPECT_GT(db.GetOrCreate(kdb::Schema::kKnowledgeItems).size(), 0u);
  EXPECT_GT(common::MetricsRegistry::Default()
                .GetCounter("stage_degraded_total")
                .value(),
            degraded_before);
}

TEST_F(FaultInjectionSessionTest, SessionPersistsKdbWhenDirectoryGiven) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  core::SessionOptions options = FastOptions();
  options.persist_directory = MakeScratchDir("session_persist");
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(FileExists(options.persist_directory + "/" +
                         kdb::Schema::kKnowledgeItems + ".jsonl"));
  const core::StageOutcome* outcome = result->FindStage("kdb_store");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->state, core::StageState::kOk);
}

TEST_F(FaultInjectionSessionTest, SkipsPatternMiningWithoutTaxonomy) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  auto result = session.Run(cohort_.log, nullptr, FastOptions());
  ASSERT_TRUE(result.ok());
  const core::StageOutcome* outcome = result->FindStage("pattern_mining");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->state, core::StageState::kSkipped);
  EXPECT_EQ(outcome->attempts, 0);
}

TEST_F(FaultInjectionSessionTest, BudgetOverrunMarksStageDegraded) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  core::SessionOptions options = FastOptions();
  // A 1 microsecond budget the optimizer cannot possibly meet; the
  // stage finishes, keeps its results, and is flagged over budget.
  options.resilience.stage_budget_seconds["optimizer"] = 1e-6;
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, options);
  ASSERT_TRUE(result.ok());
  const core::StageOutcome* outcome = result->FindStage("optimizer");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->state, core::StageState::kDegraded);
  EXPECT_TRUE(outcome->over_budget);
  EXPECT_EQ(outcome->status.code(), StatusCode::kDeadlineExceeded);
  // The optimizer's results are still used downstream.
  EXPECT_FALSE(result->knowledge.empty());
}

// ---------------------------------------------------------------------
// Service-layer failpoints (service.admission / service.cache.store /
// service.cache.load / service.worker.session).

class FaultInjectionServiceTest : public FaultInjectionSessionTest {
 protected:
  service::JobRequest MakeJob(const std::string& dataset_id) {
    service::JobRequest request;
    request.log = cohort_.log;
    request.taxonomy = cohort_.taxonomy;
    request.options = FastOptions();
    request.options.dataset_id = dataset_id;
    return request;
  }
};

TEST_F(FaultInjectionServiceTest, AdmissionFailpointShedsWithoutLosingJobs) {
  service::SchedulerOptions options;
  options.max_workers = 1;
  service::Scheduler scheduler(options);
  {
    ScopedFailpoint fp("service.admission",
                       OneShotError(StatusCode::kUnavailable, "admission"));
    auto rejected = scheduler.Submit(MakeJob("shed"));
    EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(scheduler.stats().shed, 1);
  EXPECT_EQ(scheduler.stats().submitted, 0);
  // The failure is confined to that submission: the next one runs.
  auto accepted = scheduler.Submit(MakeJob("shed"));
  ASSERT_TRUE(accepted.ok());
  auto snapshot = scheduler.AwaitResult(accepted.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, service::JobState::kDone);
  service::SchedulerStats stats = scheduler.stats();
  // Every admitted job is accounted exactly once, none ran twice.
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.sessions_executed, 1);
}

TEST_F(FaultInjectionServiceTest, CacheStoreFailureDegradesNotFails) {
  service::SchedulerOptions options;
  options.cache_directory = MakeScratchDir("svc_store");
  // Threshold 1 = persist after every insert, so the injected store
  // failure is hit by this very job.
  options.cache_persist_threshold = 1;
  service::Scheduler scheduler(options);
  int64_t persist_failures_before =
      common::MetricsRegistry::Default()
          .GetCounter("service/cache_persist_failures")
          .value();
  ScopedFailpoint fp("service.cache.store",
                     OneShotError(StatusCode::kUnavailable));
  auto id = scheduler.Submit(MakeJob("store-degraded"));
  ASSERT_TRUE(id.ok());
  auto snapshot = scheduler.AwaitResult(id.value());
  ASSERT_TRUE(snapshot.ok());
  // The job completes; only the cache's durability degraded.
  EXPECT_EQ(snapshot->state, service::JobState::kDone);
  EXPECT_FALSE(snapshot->report.empty());
  EXPECT_EQ(common::MetricsRegistry::Default()
                .GetCounter("service/cache_persist_failures")
                .value(),
            persist_failures_before + 1);
  // The in-memory entry is still there: a repeat is served from cache.
  auto repeat = scheduler.Submit(MakeJob("store-degraded"));
  ASSERT_TRUE(repeat.ok());
  auto repeat_snapshot = scheduler.AwaitResult(repeat.value());
  ASSERT_TRUE(repeat_snapshot.ok());
  EXPECT_TRUE(repeat_snapshot->cache_hit);
}

TEST_F(FaultInjectionServiceTest, CacheLoadFailureStartsColdNotCrashed) {
  std::string dir = MakeScratchDir("svc_load");
  service::SchedulerOptions options;
  options.cache_directory = dir;
  {
    service::Scheduler warmup(options);
    auto id = warmup.Submit(MakeJob("cold-start"));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(warmup.AwaitResult(id.value()).ok());
  }
  ScopedFailpoint fp("service.cache.load",
                     OneShotError(StatusCode::kDataLoss));
  service::Scheduler revived(options);
  // The persisted cache was unreadable: cold start, full re-execution.
  EXPECT_EQ(revived.cache().entries(), 0u);
  auto id = revived.Submit(MakeJob("cold-start"));
  ASSERT_TRUE(id.ok());
  auto snapshot = revived.AwaitResult(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, service::JobState::kDone);
  EXPECT_FALSE(snapshot->cache_hit);
  EXPECT_EQ(revived.stats().sessions_executed, 1);
}

TEST_F(FaultInjectionServiceTest, WorkerSessionFailureIsConfinedToOneJob) {
  service::SchedulerOptions options;
  options.max_workers = 1;
  options.start_paused = true;
  service::Scheduler scheduler(options);
  auto doomed = scheduler.Submit(MakeJob("doomed"));
  ASSERT_TRUE(doomed.ok());
  auto survivor = scheduler.Submit(MakeJob("survivor"));
  ASSERT_TRUE(survivor.ok());
  ScopedFailpoint fp("service.worker.session",
                     OneShotError(StatusCode::kInternal, "worker died"));
  scheduler.Resume();
  auto doomed_snapshot = scheduler.AwaitResult(doomed.value());
  ASSERT_TRUE(doomed_snapshot.ok());
  EXPECT_EQ(doomed_snapshot->state, service::JobState::kFailed);
  EXPECT_EQ(doomed_snapshot->status.code(), StatusCode::kInternal);
  auto survivor_snapshot = scheduler.AwaitResult(survivor.value());
  ASSERT_TRUE(survivor_snapshot.ok());
  EXPECT_EQ(survivor_snapshot->state, service::JobState::kDone);
  service::SchedulerStats stats = scheduler.stats();
  // No lost and no double-run jobs: 2 submitted, 1 failed + 1 done,
  // and only the survivor actually executed a session.
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.sessions_executed, 1);
}

// ---------------------------------------------------------------------
// Socket-layer failpoints (service.net.accept / service.net.read /
// service.net.write) against the live epoll server: an injected I/O
// failure costs at most one accept attempt or one connection, never
// the server.

namespace {
int64_t ServerErrorCount() {
  return common::MetricsRegistry::Default()
      .GetCounter("service/server_errors")
      .value();
}

/// Spins until the server_errors counter moves past `floor` (the
/// injected failure is processed on the event-loop thread, not ours).
bool AwaitServerErrorsAbove(int64_t floor) {
  for (int attempt = 0; attempt < 250; ++attempt) {
    if (ServerErrorCount() > floor) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}
}  // namespace

TEST_F(FaultInjectionServiceTest, AcceptFailpointIsRetriedByTheEventLoop) {
  service::AnalysisServer server(service::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  int64_t errors_before = ServerErrorCount();
  ScopedFailpoint fp("service.net.accept",
                     OneShotError(StatusCode::kUnavailable, "accept blip"));
  // The first accept attempt eats the injected failure; level-triggered
  // epoll re-reports the still-pending connection and the retry admits
  // it, so the client never notices.
  auto client = service::AnalysisClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Call("ping").ok());
  EXPECT_GE(ServerErrorCount(), errors_before + 1);
  server.Stop();
}

TEST_F(FaultInjectionServiceTest, ReadFailpointFailsOneConnectionNotServer) {
  service::AnalysisServer server(service::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto doomed = service::ConnectLoopback(server.port());
  ASSERT_TRUE(doomed.ok());
  int64_t errors_before = ServerErrorCount();
  ScopedFailpoint fp("service.net.read",
                     OneShotError(StatusCode::kUnavailable, "read blip"));
  // This send is fine (only reads are poisoned); the server's recv on
  // the event loop hits the failpoint and drops the connection.
  ASSERT_TRUE(
      service::SendAll(doomed.value(), "{\"verb\":\"ping\"}\n").ok());
  ASSERT_TRUE(AwaitServerErrorsAbove(errors_before));
  // Only that connection died: it sees EOF, a fresh client is served.
  service::LineReader reader(doomed.value());
  EXPECT_FALSE(reader.ReadLine().ok());
  auto fresh = service::AnalysisClient::Connect(server.port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->Call("ping").ok());
  server.Stop();
}

TEST_F(FaultInjectionServiceTest, WriteFailpointFailsOneConnectionNotServer) {
  service::AnalysisServer server(service::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto doomed = service::ConnectLoopback(server.port());
  ASSERT_TRUE(doomed.ok());
  service::LineReader reader(doomed.value());
  // Warm exchange first, so the failpoint below cannot be consumed by
  // the response to an earlier request.
  ASSERT_TRUE(
      service::SendAll(doomed.value(), "{\"verb\":\"ping\"}\n").ok());
  ASSERT_TRUE(reader.ReadLine().ok());

  int64_t errors_before = ServerErrorCount();
  ScopedFailpoint fp("service.net.write",
                     OneShotError(StatusCode::kUnavailable, "write blip"));
  // Raw ::send so the client-side SendAll helper cannot eat the
  // one-shot failpoint before the server's response write does.
  const char request[] = "{\"verb\":\"ping\"}\n";
  ASSERT_GT(::send(doomed->get(), request,  // ada-lint: allow(raw-socket)
                   sizeof(request) - 1, MSG_NOSIGNAL),
            0);
  ASSERT_TRUE(AwaitServerErrorsAbove(errors_before));
  // The response write failed: connection dropped, no reply; the
  // server itself keeps serving.
  EXPECT_FALSE(reader.ReadLine().ok());
  auto fresh = service::AnalysisClient::Connect(server.port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->Call("ping").ok());
  server.Stop();
}

// ---------------------------------------------------------------------
// Streaming cohort store (service/cohort_store.h): every ingest
// failpoint degrades to the previous generation or to a cold run,
// never to a torn or wrong answer.

dataset::RawExamRecord IngestRow(int32_t patient, std::string exam_type,
                                 int32_t day) {
  dataset::RawExamRecord row;
  row.patient = patient;
  row.exam_type = std::move(exam_type);
  row.day = day;
  return row;
}

/// The minimal successful analysis OnAnalysisCommitted accepts.
core::SessionResult FakeAnalysis(int32_t k, size_t dims) {
  core::SessionResult result;
  core::CandidateEvaluation candidate;
  candidate.k = k;
  candidate.clustering.k = k;
  candidate.clustering.centroids =
      transform::Matrix(static_cast<size_t>(k), dims, 0.5);
  result.optimizer.candidates.push_back(std::move(candidate));
  result.optimizer.best_index = 0;
  for (size_t i = 0; i < dims; ++i) {
    result.mining_exam_types.push_back(static_cast<int32_t>(i));
  }
  return result;
}

TEST_F(FaultInjectionTest, IngestAppendFaultLeavesPriorGenerationReadable) {
  service::CohortStoreOptions options;
  options.directory = MakeScratchDir("ingest_append");
  service::CohortStore store(options);

  std::vector<dataset::RawExamRecord> batch1 = {IngestRow(0, "ecg", 1),
                                                IngestRow(1, "xray", 2)};
  std::vector<dataset::RawExamRecord> batch2 = {IngestRow(2, "mri", 3)};
  ASSERT_TRUE(store.Ingest("ward", batch1).ok());
  const std::string committed = store.Snapshot("ward").value().ToCsv();

  {
    ScopedFailpoint torn("service.ingest.append",
                         OneShotError(StatusCode::kUnavailable, "disk gone"));
    auto failed = store.Ingest("ward", batch2);
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  }

  // The failed batch never happened: generation 1 stays fully readable
  // in memory and from disk.
  EXPECT_EQ(store.Descriptors("ward").value().generation, 1);
  EXPECT_EQ(store.Snapshot("ward").value().ToCsv(), committed);
  service::CohortStore reloaded(options);
  EXPECT_EQ(reloaded.Descriptors("ward").value().generation, 1);
  EXPECT_EQ(reloaded.Snapshot("ward").value().ToCsv(), committed);

  // With the fault cleared the same batch commits cleanly.
  auto retried = store.Ingest("ward", batch2);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value().generation, 2);
}

TEST_F(FaultInjectionTest, IngestSnapshotFaultRollsBackTheWholeBatch) {
  service::CohortStoreOptions options;
  options.directory = MakeScratchDir("ingest_snapshot");
  service::CohortStore store(options);

  std::vector<dataset::RawExamRecord> batch1 = {IngestRow(0, "ecg", 1)};
  std::vector<dataset::RawExamRecord> batch2 = {IngestRow(1, "mri", 5)};
  ASSERT_TRUE(store.Ingest("ward", batch1).ok());
  const std::string committed = store.Snapshot("ward").value().ToCsv();

  {
    // The records hit disk but the manifest rename fails — the exact
    // crash window the committed_bytes prefix protects.
    ScopedFailpoint torn("service.ingest.snapshot",
                         OneShotError(StatusCode::kDataLoss, "rename lost"));
    auto failed = store.Ingest("ward", batch2);
    EXPECT_EQ(failed.status().code(), StatusCode::kDataLoss);
  }

  EXPECT_EQ(store.Descriptors("ward").value().generation, 1);
  EXPECT_EQ(store.Descriptors("ward").value().records, 1);
  EXPECT_EQ(store.Snapshot("ward").value().ToCsv(), committed);
  // A fresh store reads only the committed prefix: the appended but
  // never-manifested bytes are invisible.
  {
    service::CohortStore reloaded(options);
    EXPECT_EQ(reloaded.Descriptors("ward").value().generation, 1);
    EXPECT_EQ(reloaded.Snapshot("ward").value().ToCsv(), committed);
  }

  // The next ingest truncates the residue and commits batch-atomically.
  ASSERT_TRUE(store.Ingest("ward", batch2).ok());
  dataset::ExamLog direct;
  ASSERT_TRUE(direct.Append(batch1).ok());
  ASSERT_TRUE(direct.Append(batch2).ok());
  service::CohortStore reloaded(options);
  EXPECT_EQ(reloaded.Snapshot("ward").value().ToCsv(), direct.ToCsv());
  EXPECT_EQ(reloaded.Descriptors("ward").value().generation, 2);
}

TEST_F(FaultInjectionTest, WarmSnapshotFaultDegradesNextJobToCold) {
  service::CohortStoreOptions options;
  options.directory = MakeScratchDir("ingest_warm");
  service::CohortStore store(options);
  ASSERT_TRUE(store.Ingest("ward", {IngestRow(0, "ecg", 1)}).ok());

  {
    ScopedFailpoint torn("service.ingest.snapshot",
                         OneShotError(StatusCode::kUnavailable, "no space"));
    store.OnAnalysisCommitted("ward", 1, 1, FakeAnalysis(3, 4));
  }

  // The warm state was dropped, not half-installed: the next job runs
  // cold — degraded, never wrong.
  EXPECT_EQ(store.stats().snapshot_failures, 1);
  auto job = store.BuildCohortJob("ward");
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(job.value().options.warm.centroids.empty());

  // A later successful commit installs warm state normally.
  store.OnAnalysisCommitted("ward", 1, 1, FakeAnalysis(3, 4));
  auto warmed = store.BuildCohortJob("ward");
  ASSERT_TRUE(warmed.ok());
  EXPECT_FALSE(warmed.value().options.warm.centroids.empty());
}

TEST_F(FaultInjectionTest, IngestAdaptFaultFallsBackToColdJob) {
  service::CohortStore store(service::CohortStoreOptions{});
  ASSERT_TRUE(store.Ingest("ward", {IngestRow(0, "ecg", 1)}).ok());
  store.OnAnalysisCommitted("ward", 1, 1, FakeAnalysis(3, 4));

  {
    ScopedFailpoint refused("service.ingest.adapt",
                            OneShotError(StatusCode::kUnavailable, "refused"));
    auto cold = store.BuildCohortJob("ward");
    ASSERT_TRUE(cold.ok());
    EXPECT_TRUE(cold.value().options.warm.centroids.empty());
    EXPECT_EQ(store.stats().cold_fallbacks, 1);
  }

  // The warm state itself survived: once the failpoint clears, the
  // next job warms up again.
  auto warm = store.BuildCohortJob("ward");
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm.value().options.warm.centroids.empty());
  EXPECT_EQ(store.stats().warm_starts, 1);
}

TEST_F(FaultInjectionSessionTest, AllStagesRecordedInPipelineOrder) {
  kdb::Database db;
  core::AnalysisSession session(&db);
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, FastOptions());
  ASSERT_TRUE(result.ok());
  std::vector<std::string> order;
  for (const core::StageOutcome& outcome : result->stages) {
    order.push_back(outcome.stage);
    EXPECT_EQ(outcome.state, core::StageState::kOk) << outcome.stage;
  }
  EXPECT_EQ(order, (std::vector<std::string>{
                       "characterize", "transform", "partial_mining",
                       "optimizer", "knowledge", "pattern_mining",
                       "ranking", "kdb_store"}));
}

}  // namespace
}  // namespace adahealth
