#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace adahealth {
namespace common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64CoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t value = rng.UniformInt(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double value = rng.UniformDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sum_squared = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double value = rng.Normal(2.0, 3.0);
    sum += value;
    sum_squared += value * value;
  }
  double mean = sum / n;
  double variance = sum_squared / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.08);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.1);
}

TEST(RngTest, PoissonMeanMatchesSmallLambda) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(4.5));
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLargeLambda) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, GammaMeanMatches) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(2.0, 3.0);
  EXPECT_NEAR(sum / n, 6.0, 0.2);  // Mean = shape * scale.
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double value = rng.Gamma(0.5, 2.0);
    EXPECT_GT(value, 0.0);
    sum += value;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(47);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(53);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(59);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() != child.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, SplitMix64KnownFirstOutputDiffersByState) {
  uint64_t s1 = 0;
  uint64_t s2 = 1;
  EXPECT_NE(SplitMix64Next(s1), SplitMix64Next(s2));
}

}  // namespace
}  // namespace common
}  // namespace adahealth
