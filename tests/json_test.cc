#include "common/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace adahealth {
namespace common {
namespace {

TEST(JsonTest, DefaultIsNull) {
  Json value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.Dump(), "null");
}

TEST(JsonTest, ScalarConstruction) {
  EXPECT_TRUE(Json(true).AsBool());
  EXPECT_EQ(Json(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Json(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Json("text").AsString(), "text");
}

TEST(JsonTest, IntIsAlsoNumericDouble) {
  Json value(int64_t{7});
  EXPECT_TRUE(value.is_number());
  EXPECT_DOUBLE_EQ(value.AsDouble(), 7.0);
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool());
  EXPECT_EQ(Json::Parse("-17")->AsInt(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("3.25")->AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, IntegerVsDoubleTypes) {
  EXPECT_TRUE(Json::Parse("5")->is_int());
  EXPECT_TRUE(Json::Parse("5.0")->is_double());
  EXPECT_TRUE(Json::Parse("5e0")->is_double());
}

TEST(JsonParseTest, HugeIntegerFallsBackToDouble) {
  auto value = Json::Parse("123456789012345678901234567890");
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value->is_double());
}

TEST(JsonParseTest, Arrays) {
  auto value = Json::Parse("[1, 2, [3]]");
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(value->is_array());
  EXPECT_EQ(value->AsArray().size(), 3u);
  EXPECT_EQ(value->AsArray()[2].AsArray()[0].AsInt(), 3);
}

TEST(JsonParseTest, Objects) {
  auto value = Json::Parse(R"({"a": 1, "b": {"c": true}})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->Find("a")->AsInt(), 1);
  EXPECT_TRUE(value->Find("b")->Find("c")->AsBool());
  EXPECT_EQ(value->Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto value = Json::Parse(R"("a\"b\\c\nd\tA")");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsString(), "a\"b\\c\nd\tA");
}

TEST(JsonParseTest, UnicodeEscapeMultibyte) {
  auto value = Json::Parse("\"\\u00e9\"");  // é as a \u escape.
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsString(), "\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{'a': 1}").ok());
}

TEST(JsonParseTest, RejectsControlCharacterInString) {
  std::string bad = "\"a\x01b\"";
  EXPECT_FALSE(Json::Parse(bad).ok());
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const char* text = R"({"arr":[1,2.5,"x"],"flag":true,"nil":null})";
  auto value = Json::Parse(text);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->Dump(), text);
}

TEST(JsonDumpTest, EscapesSpecials) {
  Json value(std::string("tab\there\"quote\""));
  EXPECT_EQ(value.Dump(), R"("tab\there\"quote\"")");
}

TEST(JsonDumpTest, ObjectKeysSorted) {
  Json::Object object;
  object["zebra"] = Json(1);
  object["apple"] = Json(2);
  EXPECT_EQ(Json(std::move(object)).Dump(), R"({"apple":2,"zebra":1})");
}

TEST(JsonDumpTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::nan("")).Dump(), "null");
}

TEST(JsonDumpTest, PrettyIsReparseable) {
  auto value = Json::Parse(R"({"a":[1,2],"b":{"c":"d"}})");
  ASSERT_TRUE(value.ok());
  auto reparsed = Json::Parse(value->Pretty());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), value.value());
}

TEST(JsonEqualityTest, TypeSensitive) {
  EXPECT_EQ(Json(int64_t{1}), Json(int64_t{1}));
  EXPECT_FALSE(Json(int64_t{1}) == Json(1.0));  // Int vs double.
  EXPECT_EQ(Json(Json::Array{Json(1), Json("x")}),
            Json(Json::Array{Json(1), Json("x")}));
}

TEST(JsonParseTest, DeepNestingRejected) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto value = Json::Parse("  \n\t{ \"a\" :\t1 }  ");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->Find("a")->AsInt(), 1);
}

}  // namespace
}  // namespace common
}  // namespace adahealth
