// LogShipper coverage: live shipping of committed results to a
// follower AnalysisServer, snapshot catch-up on (re)connect,
// failpoint-injected send failures with requeue-and-redeliver,
// bounded-queue overflow accounting, and drain semantics while the
// follower is unreachable.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "common/check.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "service/net_socket.h"
#include "service/replication.h"
#include "service/result_cache.h"
#include "service/server.h"

namespace adahealth {
namespace {

using common::StatusCode;

service::CachedAnalysis MakeEntry(int index) {
  service::CachedAnalysis entry;
  entry.fingerprint = "replfp-" + std::to_string(index);
  entry.dataset_id = "repl";
  entry.summary = "summary " + std::to_string(index);
  entry.report = "report body " + std::to_string(index);
  entry.knowledge_items = index;
  return entry;
}

/// Grabs an ephemeral port and releases it — connects to the returned
/// port are refused (modulo an unlikely reuse race, which these tests
/// tolerate by asserting on non-delivery, not on error text).
uint16_t DeadPort() {
  auto listener = service::ServerSocket::Listen(0);
  ADA_CHECK(listener.ok());
  return listener->port();
}

class ReplicationTest : public testing::Test {
 protected:
  void SetUp() override {
    service::ServerOptions options;
    options.role = service::ServerRole::kFollower;
    options.scheduler.max_workers = 1;
    follower_ = std::make_unique<service::AnalysisServer>(std::move(options));
    ASSERT_TRUE(follower_->Start().ok());
  }

  void TearDown() override { follower_->Stop(); }

  size_t FollowerEntries() {
    return follower_->scheduler().cache().entries();
  }

  std::unique_ptr<service::AnalysisServer> follower_;
};

TEST_F(ReplicationTest, ShipsEnqueuedEntryToFollower) {
  service::ReplicationOptions options;
  options.follower_port = follower_->port();
  service::LogShipper shipper(options, [] {
    return std::vector<service::CachedAnalysis>{};
  });
  shipper.Start();
  shipper.Enqueue(MakeEntry(1));
  ASSERT_TRUE(shipper.WaitUntilDrained(10000.0));

  service::ReplicationStats stats = shipper.stats();
  EXPECT_EQ(stats.shipped, 1);
  EXPECT_EQ(stats.send_failures, 0);
  EXPECT_EQ(stats.reconnects, 1);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_TRUE(stats.connected);
  EXPECT_EQ(FollowerEntries(), 1u);
  shipper.Stop();
}

TEST_F(ReplicationTest, SnapshotCatchUpPrecedesLiveTail) {
  // Two entries pre-date the shipper (as if the follower connected
  // late): the first connect must stream them before the live entry.
  std::vector<service::CachedAnalysis> backlog = {MakeEntry(10),
                                                  MakeEntry(11)};
  service::ReplicationOptions options;
  options.follower_port = follower_->port();
  service::LogShipper shipper(options, [backlog] { return backlog; });
  shipper.Start();
  shipper.Enqueue(MakeEntry(12));
  ASSERT_TRUE(shipper.WaitUntilDrained(10000.0));

  EXPECT_EQ(shipper.stats().shipped, 3);
  EXPECT_EQ(FollowerEntries(), 3u);
  shipper.Stop();
}

TEST_F(ReplicationTest, DuplicateDeliveryIsIdempotent) {
  // At-least-once delivery: the same fingerprint shipped twice must
  // refresh, not duplicate, the follower's cache entry.
  service::ReplicationOptions options;
  options.follower_port = follower_->port();
  service::LogShipper shipper(options, [] {
    return std::vector<service::CachedAnalysis>{};
  });
  shipper.Start();
  shipper.Enqueue(MakeEntry(20));
  shipper.Enqueue(MakeEntry(20));
  ASSERT_TRUE(shipper.WaitUntilDrained(10000.0));

  EXPECT_EQ(shipper.stats().shipped, 2);
  EXPECT_EQ(FollowerEntries(), 1u);
  shipper.Stop();
}

TEST_F(ReplicationTest, NewCohortGenerationSupersedesOldOnFollower) {
  // Streaming cohorts: replicated entries carry the cohort/generation
  // versioning fields, and the follower's cache applies the same
  // supersede rule as the primary — shipping generation 2 evicts the
  // replicated generation 1 exactly once.
  service::ReplicationOptions options;
  options.follower_port = follower_->port();
  service::LogShipper shipper(options, [] {
    return std::vector<service::CachedAnalysis>{};
  });
  shipper.Start();

  service::CachedAnalysis generation1 = MakeEntry(60);
  generation1.fingerprint = "ward@1/replfp";
  generation1.cohort = "ward";
  generation1.generation = 1;
  service::CachedAnalysis generation2 = MakeEntry(61);
  generation2.fingerprint = "ward@2/replfp";
  generation2.cohort = "ward";
  generation2.generation = 2;
  shipper.Enqueue(generation1);
  shipper.Enqueue(generation2);
  ASSERT_TRUE(shipper.WaitUntilDrained(10000.0));

  EXPECT_EQ(shipper.stats().shipped, 2);
  service::ResultCache& cache = follower_->scheduler().cache();
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.superseded(), 1);
  EXPECT_FALSE(cache.Lookup("ward@1/replfp").has_value());
  auto latest = cache.Lookup("ward@2/replfp");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->cohort, "ward");
  EXPECT_EQ(latest->generation, 2);
  shipper.Stop();
}

TEST_F(ReplicationTest, SendFailureRequeuesAndRedelivers) {
  // The failpoint kills the first wire send; the shipper must count
  // the failure, requeue the entry, reconnect, and deliver it.
  service::ReplicationOptions options;
  options.follower_port = follower_->port();
  service::LogShipper shipper(options, [] {
    return std::vector<service::CachedAnalysis>{};
  });
  common::ScopedFailpoint broken_wire(
      "service.replication.send",
      common::OneShotError(StatusCode::kUnavailable, "injected send loss"));
  shipper.Start();
  shipper.Enqueue(MakeEntry(30));
  ASSERT_TRUE(shipper.WaitUntilDrained(10000.0));

  service::ReplicationStats stats = shipper.stats();
  EXPECT_EQ(stats.send_failures, 1);
  EXPECT_EQ(stats.shipped, 1);
  EXPECT_GE(stats.reconnects, 2);  // Initial connect + post-failure.
  EXPECT_EQ(FollowerEntries(), 1u);
  shipper.Stop();
}

TEST(ReplicationQueueTest, OverflowDropsOldestAndCounts) {
  // No Start(): the queue fills without a ship loop draining it.
  service::ReplicationOptions options;
  options.follower_port = DeadPort();
  options.max_queue = 2;
  service::LogShipper shipper(options, [] {
    return std::vector<service::CachedAnalysis>{};
  });
  shipper.Enqueue(MakeEntry(40));
  shipper.Enqueue(MakeEntry(41));
  shipper.Enqueue(MakeEntry(42));

  service::ReplicationStats stats = shipper.stats();
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_EQ(stats.queue_depth, 2u);
  EXPECT_EQ(stats.shipped, 0);
}

TEST(ReplicationQueueTest, DrainTimesOutWhileFollowerUnreachable) {
  service::ReplicationOptions options;
  options.follower_port = DeadPort();
  options.reconnect_backoff_millis = 10.0;
  options.max_reconnect_backoff_millis = 20.0;
  service::LogShipper shipper(options, [] {
    return std::vector<service::CachedAnalysis>{};
  });
  shipper.Start();
  shipper.Enqueue(MakeEntry(50));
  EXPECT_FALSE(shipper.WaitUntilDrained(200.0));

  service::ReplicationStats stats = shipper.stats();
  EXPECT_FALSE(stats.connected);
  EXPECT_EQ(stats.shipped, 0);
  EXPECT_EQ(stats.queue_depth, 1u);
  shipper.Stop();
}

}  // namespace
}  // namespace adahealth
