// ada_router — sharding front door for a cluster of ada_server
// processes.
//
// Consistent-hashes submitted jobs across N shards, probes shard
// health, and on a primary's death promotes that shard's follower and
// re-drives the shard's jobs against it (see service/router.h for the
// full protocol). Clients talk to the router exactly as they would to
// a single ada_server.
//
// Usage:
//   ada_router [--port N] --shard PRIM[:FOLL] [--shard PRIM[:FOLL] ...]
//              [--probe-interval-ms D] [--probe-failures N]
//
// Each --shard names one shard's primary port and, optionally after a
// colon, its follower port. Prints "listening on port N" once ready
// (scripts parse this line to learn an ephemeral port requested with
// --port 0). Stop the router with the `shutdown` verb — it cascades
// to every shard endpoint.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "service/router.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: ada_router [--port N] --shard PRIM[:FOLL]"
      " [--shard PRIM[:FOLL] ...]\n"
      "                  [--probe-interval-ms D] [--probe-failures N]\n"
      "\n"
      "Routes ADA-HEALTH NDJSON jobs across shard ada_server processes\n"
      "on 127.0.0.1, with follower promotion when a primary dies.\n"
      "--shard 9001:9002 = primary on port 9001, follower on 9002;\n"
      "--shard 9001 = a shard with no replica. --port 0 (the default)\n"
      "picks an ephemeral port, printed on the \"listening on port N\"\n"
      "line.\n");
}

bool ParsePort(const std::string& text, uint16_t* out) {
  auto parsed = adahealth::common::ParseInt64(text);
  if (!parsed.ok() || parsed.value() < 0 || parsed.value() > 65535) {
    return false;
  }
  *out = static_cast<uint16_t>(parsed.value());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adahealth;

  service::RouterOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (std::strcmp(arg, "--port") == 0) {
      const char* text = next();
      uint16_t port = 0;
      if (text == nullptr || !ParsePort(text, &port)) {
        std::fprintf(stderr, "ada_router: --port expects 0..65535\n");
        return 2;
      }
      options.port = port;
    } else if (std::strcmp(arg, "--shard") == 0) {
      const char* text = next();
      if (text == nullptr) {
        std::fprintf(stderr,
                     "ada_router: --shard expects PRIMARY[:FOLLOWER]\n");
        return 2;
      }
      service::ShardEndpoints endpoints;
      const std::string spec(text);
      const size_t colon = spec.find(':');
      const std::string primary = spec.substr(0, colon);
      if (!ParsePort(primary, &endpoints.primary_port) ||
          endpoints.primary_port == 0) {
        std::fprintf(stderr, "ada_router: bad --shard primary port '%s'\n",
                     primary.c_str());
        return 2;
      }
      if (colon != std::string::npos) {
        const std::string follower = spec.substr(colon + 1);
        if (!ParsePort(follower, &endpoints.follower_port) ||
            endpoints.follower_port == 0) {
          std::fprintf(stderr,
                       "ada_router: bad --shard follower port '%s'\n",
                       follower.c_str());
          return 2;
        }
      }
      options.shards.push_back(endpoints);
    } else if (std::strcmp(arg, "--probe-interval-ms") == 0) {
      const char* text = next();
      auto parsed = text != nullptr ? common::ParseDouble(text)
                                    : common::StatusOr<double>(
                                          common::InvalidArgumentError(""));
      if (!parsed.ok() || parsed.value() <= 0) {
        std::fprintf(stderr, "ada_router: --probe-interval-ms expects > 0\n");
        return 2;
      }
      options.probe_interval_millis = parsed.value();
    } else if (std::strcmp(arg, "--probe-failures") == 0) {
      const char* text = next();
      auto parsed = text != nullptr ? common::ParseInt64(text)
                                    : common::StatusOr<int64_t>(
                                          common::InvalidArgumentError(""));
      if (!parsed.ok() || parsed.value() < 1) {
        std::fprintf(stderr, "ada_router: --probe-failures expects >= 1\n");
        return 2;
      }
      options.probe_failures_before_failover =
          static_cast<int>(parsed.value());
    } else {
      std::fprintf(stderr, "ada_router: unknown flag '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }
  if (options.shards.empty()) {
    std::fprintf(stderr, "ada_router: at least one --shard is required\n");
    PrintUsage();
    return 2;
  }

  service::Router router(std::move(options));
  if (common::Status started = router.Start(); !started.ok()) {
    std::fprintf(stderr, "ada_router: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %u\n", router.port());
  std::fflush(stdout);  // Scripts wait for this line.
  router.Wait();
  router.Stop();
  std::printf("router stopped\n");
  return 0;
}
