// Runtime observability for the ADA-HEALTH pipeline: a thread-safe
// registry of named counters, gauges and latency histograms, plus a
// ScopedTimer RAII helper.
//
// The paper's "data analytics optimization" component is built on
// measuring runs (SSE, CV accuracy, partial-mining stop decisions);
// this layer makes the *runtime* side of those runs observable too.
// Every pipeline stage records into the process-wide default registry
// (MetricsRegistry::Default()); benches export the registry as JSON
// through the common/json writer so perf trajectories are
// machine-readable.
//
// Instrument names use a "subsystem/metric" convention, e.g.
// "kmeans/iterations" or "session/optimize_seconds". Instruments are
// created on first use and live for the lifetime of their registry;
// references returned by the Get* accessors are never invalidated
// (Reset() zeroes values in place instead of destroying instruments).
#ifndef ADAHEALTH_COMMON_METRICS_H_
#define ADAHEALTH_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/timer.h"

namespace adahealth {
namespace common {

/// Monotonically increasing integer metric. Thread-safe.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric. Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency distribution in seconds: count / total / min / max plus
/// decade buckets from 1 microsecond to 100 seconds. Thread-safe.
class LatencyHistogram {
 public:
  /// Number of decade buckets: (-inf, 1us], (1us, 10us], ..., plus an
  /// overflow bucket for samples above 100 s.
  static constexpr size_t kNumBuckets = 10;

  /// Upper bound of bucket `b` in seconds (the last bucket is open).
  static double BucketUpperBound(size_t b);

  void Record(double seconds) ADA_EXCLUDES(mutex_);

  /// Immutable copy of the histogram state.
  struct Snapshot {
    int64_t count = 0;
    double total_seconds = 0.0;
    double min_seconds = 0.0;  // 0 when count == 0.
    double max_seconds = 0.0;
    int64_t buckets[kNumBuckets] = {};

    double mean_seconds() const {
      return count > 0 ? total_seconds / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const ADA_EXCLUDES(mutex_);

  int64_t count() const { return snapshot().count; }
  double total_seconds() const { return snapshot().total_seconds; }

  void Reset() ADA_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  Snapshot state_ ADA_GUARDED_BY(mutex_);
};

/// A named set of instruments. Instruments are created on first access
/// and returned by reference; those references remain valid for the
/// registry's lifetime. All members are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the pipeline stages record into.
  static MetricsRegistry& Default();

  Counter& GetCounter(std::string_view name) ADA_EXCLUDES(mutex_);
  Gauge& GetGauge(std::string_view name) ADA_EXCLUDES(mutex_);
  LatencyHistogram& GetHistogram(std::string_view name)
      ADA_EXCLUDES(mutex_);

  /// Zeroes every instrument in place (references stay valid).
  void Reset() ADA_EXCLUDES(mutex_);

  /// Exports the registry as
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with per-histogram count/total/min/max/mean and bucket counts.
  Json ToJson() const ADA_EXCLUDES(mutex_);

  /// Writes ToJson().Pretty() to `path` (for bench reports).
  [[nodiscard]] Status WriteJsonFile(const std::string& path) const;

 private:
  // The maps are guarded; the instruments they point at are internally
  // synchronized (atomics or their own mutex) and handed out as
  // lifetime-stable references, so only map mutation needs mutex_.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ADA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ADA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_ ADA_GUARDED_BY(mutex_);
};

/// Records the wall time between construction and destruction (or an
/// early Stop()) into a latency histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& histogram)
      : histogram_(&histogram) {}
  /// Convenience: times into `registry`'s histogram named `name`.
  ScopedTimer(MetricsRegistry& registry, std::string_view name)
      : histogram_(&registry.GetHistogram(name)) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now and detaches; returns the elapsed seconds. Subsequent
  /// calls (and destruction) are no-ops.
  double Stop() {
    if (histogram_ == nullptr) return 0.0;
    double elapsed = timer_.ElapsedSeconds();
    histogram_->Record(elapsed);
    histogram_ = nullptr;
    return elapsed;
  }

 private:
  LatencyHistogram* histogram_;
  WallTimer timer_;
};

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_METRICS_H_
