// CART decision-tree classifier (Gini impurity, binary splits on
// continuous features). This is the classification model of the paper's
// preliminary implementation: "In our first implementation, we used
// decision trees as classification model" (§IV-A) — trained to
// re-predict cluster labels from the clustering input features, its CV
// metrics measure cluster robustness.
#ifndef ADAHEALTH_ML_DECISION_TREE_H_
#define ADAHEALTH_ML_DECISION_TREE_H_

#include "ml/classifier.h"

namespace adahealth {
namespace ml {

struct DecisionTreeOptions {
  /// Maximum tree depth (root = depth 0).
  int32_t max_depth = 12;
  /// Minimum samples required to attempt a split.
  int32_t min_samples_split = 2;
  /// Minimum samples that must land in each child.
  int32_t min_samples_leaf = 1;
  /// A split must reduce weighted Gini impurity by at least this much.
  double min_impurity_decrease = 1e-7;
};

/// CART classifier. Fit() may be called repeatedly; each call retrains.
class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(
      DecisionTreeOptions options = DecisionTreeOptions())
      : options_(options) {}

  [[nodiscard]] common::Status Fit(const transform::Matrix& features,
                     const std::vector<int32_t>& labels,
                     int32_t num_classes) override;

  int32_t Predict(std::span<const double> features) const override;

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t num_nodes() const { return nodes_.size(); }
  /// Depth of the fitted tree (0 for a single-leaf tree).
  int32_t depth() const { return depth_; }

 private:
  struct Node {
    // Internal nodes: route left when features[feature] <= threshold.
    int32_t feature = -1;
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    // Leaves: the majority class.
    int32_t label = 0;

    bool is_leaf() const { return left < 0; }
  };

  int32_t BuildNode(const transform::Matrix& features,
                    const std::vector<int32_t>& labels,
                    std::vector<size_t>& sample_ids, size_t begin, size_t end,
                    int32_t depth);

  DecisionTreeOptions options_;
  int32_t num_classes_ = 0;
  size_t num_features_ = 0;
  int32_t depth_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace ml
}  // namespace adahealth

#endif  // ADAHEALTH_ML_DECISION_TREE_H_
