// Tests for the SSE-elbow analysis, maximal itemsets, and exam
// correlation discovery.
#include <gtest/gtest.h>
#include "cluster/elbow.h"
#include "common/rng.h"
#include "dataset/synthetic_cohort.h"
#include "patterns/fpgrowth.h"
#include "stats/correlations.h"

namespace adahealth {
namespace {

TEST(ElbowTest, FindsObviousKnee) {
  // Steep drop until K=4, flat afterwards.
  std::vector<cluster::SsePoint> sweep{
      {2, 1000.0}, {3, 500.0}, {4, 200.0}, {5, 190.0},
      {6, 182.0},  {7, 176.0}, {8, 171.0}};
  auto analysis = cluster::AnalyzeElbow(sweep);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->knee_k, 4);
  EXPECT_LE(analysis->admissible_from_k, 5);
  EXPECT_EQ(analysis->knee_scores.size(), sweep.size());
}

TEST(ElbowTest, LinearSseHasNoPronouncedKnee) {
  std::vector<cluster::SsePoint> sweep{
      {2, 100.0}, {4, 80.0}, {6, 60.0}, {8, 40.0}, {10, 20.0}};
  auto analysis = cluster::AnalyzeElbow(sweep);
  ASSERT_TRUE(analysis.ok());
  // All chord distances ~0.
  for (double score : analysis->knee_scores) {
    EXPECT_NEAR(score, 0.0, 1e-9);
  }
  // Never flattens below 25% of the initial rate.
  EXPECT_EQ(analysis->admissible_from_k, 10);
}

TEST(ElbowTest, FlatFromStart) {
  std::vector<cluster::SsePoint> sweep{{2, 10.0}, {3, 10.0}, {4, 10.0}};
  auto analysis = cluster::AnalyzeElbow(sweep);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->admissible_from_k, 2);
}

TEST(ElbowTest, RejectsBadInput) {
  std::vector<cluster::SsePoint> too_small{{2, 10.0}, {3, 5.0}};
  EXPECT_FALSE(cluster::AnalyzeElbow(too_small).ok());
  std::vector<cluster::SsePoint> unsorted{{2, 10.0}, {2, 5.0}, {4, 1.0}};
  EXPECT_FALSE(cluster::AnalyzeElbow(unsorted).ok());
  std::vector<cluster::SsePoint> negative{{2, 10.0}, {3, -1.0}, {4, 0.0}};
  EXPECT_FALSE(cluster::AnalyzeElbow(negative).ok());
  std::vector<cluster::SsePoint> fine{{2, 10.0}, {3, 5.0}, {4, 2.0}};
  EXPECT_FALSE(cluster::AnalyzeElbow(fine, 0.0).ok());
  EXPECT_FALSE(cluster::AnalyzeElbow(fine, 1.5).ok());
}

TEST(MaximalItemsetsTest, KeepsOnlySupersetFreeSets) {
  std::vector<patterns::FrequentItemset> itemsets{
      {{0}, 5}, {{1}, 4}, {{2}, 3}, {{0, 1}, 3}, {{0, 2}, 2}};
  auto maximal = patterns::MaximalItemsets(itemsets);
  auto contains = [&](const std::vector<patterns::ItemId>& items) {
    for (const auto& itemset : maximal) {
      if (itemset.items == items) return true;
    }
    return false;
  };
  EXPECT_FALSE(contains({0}));  // Subset of {0,1} and {0,2}.
  EXPECT_FALSE(contains({1}));  // Subset of {0,1}.
  EXPECT_FALSE(contains({2}));  // Subset of {0,2}.
  EXPECT_TRUE(contains({0, 1}));
  EXPECT_TRUE(contains({0, 2}));
  EXPECT_EQ(maximal.size(), 2u);
}

TEST(MaximalItemsetsTest, MaximalSubsetOfClosed) {
  // Every maximal itemset is closed (standard containment).
  std::vector<patterns::FrequentItemset> itemsets{
      {{0}, 5}, {{1}, 5}, {{0, 1}, 5}, {{2}, 4}, {{0, 2}, 2}};
  auto closed = patterns::ClosedItemsets(itemsets);
  auto maximal = patterns::MaximalItemsets(itemsets);
  for (const auto& m : maximal) {
    bool found = false;
    for (const auto& c : closed) found |= c.items == m.items;
    EXPECT_TRUE(found);
  }
  EXPECT_LE(maximal.size(), closed.size());
}

TEST(ExamCorrelationsTest, DetectsPlantedCorrelation) {
  // Patients either get both exams 0 and 1 heavily or neither; exam 2
  // is independent noise.
  std::vector<dataset::Patient> patients;
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("paired_a");
  auto b = dictionary.Intern("paired_b");
  auto c = dictionary.Intern("independent");
  std::vector<dataset::ExamRecord> records;
  common::Rng rng(77);
  for (int32_t p = 0; p < 200; ++p) {
    patients.push_back({p, 50, -1});
    bool heavy = p % 2 == 0;
    int copies = heavy ? 4 : 1;
    for (int r = 0; r < copies; ++r) {
      records.push_back({p, a, r});
      records.push_back({p, b, r});
    }
    int64_t noise = rng.UniformInt(1, 4);
    for (int64_t r = 0; r < noise; ++r) {
      records.push_back({p, c, static_cast<int32_t>(r)});
    }
  }
  dataset::ExamLog log(std::move(patients), std::move(dictionary),
                       std::move(records));
  auto correlations = stats::TopExamCorrelations(log, 3, 10);
  ASSERT_TRUE(correlations.ok());
  ASSERT_FALSE(correlations->empty());
  EXPECT_EQ(correlations->front().exam_a, a);
  EXPECT_EQ(correlations->front().exam_b, b);
  EXPECT_GT(correlations->front().correlation, 0.95);
}

TEST(ExamCorrelationsTest, MinPatientsFloorExcludesRareExams) {
  std::vector<dataset::Patient> patients;
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("common_a");
  auto b = dictionary.Intern("common_b");
  auto rare = dictionary.Intern("rare");
  std::vector<dataset::ExamRecord> records;
  for (int32_t p = 0; p < 50; ++p) {
    patients.push_back({p, 50, -1});
    records.push_back({p, a, 0});
    if (p % 2 == 0) records.push_back({p, b, 1});
  }
  records.push_back({0, rare, 2});
  dataset::ExamLog log(std::move(patients), std::move(dictionary),
                       std::move(records));
  auto correlations = stats::TopExamCorrelations(log, 10, 20);
  ASSERT_TRUE(correlations.ok());
  for (const auto& pair : correlations.value()) {
    EXPECT_NE(pair.exam_a, rare);
    EXPECT_NE(pair.exam_b, rare);
  }
}

TEST(ExamCorrelationsTest, SyntheticCohortHasCorrelatedSignatureExams) {
  // The paper's explanation for partial mining working: correlated
  // exams exist. In the generator, exams of the same signature group
  // are driven by the same profile membership and must correlate.
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::PaperScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  auto correlations =
      stats::TopExamCorrelations(cohort->log, 10, 100);
  ASSERT_TRUE(correlations.ok());
  ASSERT_FALSE(correlations->empty());
  // Per-patient exam counts are small (Poisson-like), so even strongly
  // co-driven exams correlate modestly; what matters is that the top
  // pair is clearly above independence noise.
  EXPECT_GT(correlations->front().correlation, 0.12);
  // The strongest pair shares a taxonomy group.
  const auto& top = correlations->front();
  EXPECT_EQ(cohort->taxonomy.GroupOfLeaf(top.exam_a),
            cohort->taxonomy.GroupOfLeaf(top.exam_b));
}

TEST(ExamCorrelationsTest, RejectsBadInput) {
  dataset::ExamDictionary dictionary;
  dictionary.Intern("x");
  dataset::ExamLog tiny({{0, 50, -1}}, std::move(dictionary), {});
  EXPECT_FALSE(stats::TopExamCorrelations(tiny, 5).ok());
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  EXPECT_FALSE(stats::TopExamCorrelations(cohort->log, 0).ok());
}

}  // namespace
}  // namespace adahealth
