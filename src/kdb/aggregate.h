// Aggregation and ordered retrieval over K-DB collections — the query
// shapes the ADA-HEALTH UI layer needs for knowledge navigation
// ("group feedback by interest", "top items by quality", ...).
#ifndef ADAHEALTH_KDB_AGGREGATE_H_
#define ADAHEALTH_KDB_AGGREGATE_H_

#include <map>
#include <string>

#include "kdb/collection.h"
#include "kdb/query.h"

namespace adahealth {
namespace kdb {

/// Number of matching documents per distinct value of `path` (the
/// value's compact JSON rendering is the key). Documents missing the
/// path are counted under "<missing>".
std::map<std::string, int64_t> GroupCount(const Collection& collection,
                                          const std::string& path,
                                          const Query& filter = Query());

/// Statistics of a numeric field over the matching documents.
/// Non-numeric and missing fields are skipped; count reflects only the
/// numeric occurrences.
struct FieldStats {
  int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

FieldStats Aggregate(const Collection& collection, const std::string& path,
                     const Query& filter = Query());

/// Matching documents ordered by the value at `sort_path` (numbers
/// before strings, missing fields last; `descending` flips the order),
/// truncated to `limit` (0 = unlimited). Stable with respect to
/// insertion order.
std::vector<Document> SortedFind(const Collection& collection,
                                 const Query& filter,
                                 const std::string& sort_path,
                                 bool descending = false, size_t limit = 0);

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_AGGREGATE_H_
