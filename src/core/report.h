// Markdown report generation for an analysis session — the textual
// artifact the paper's "interactive presentation and navigation"
// interface would render.
#ifndef ADAHEALTH_CORE_REPORT_H_
#define ADAHEALTH_CORE_REPORT_H_

#include <string>

#include "core/session.h"

namespace adahealth {
namespace core {

struct ReportOptions {
  /// Knowledge items listed in the report.
  size_t max_items = 15;
  /// Include the per-candidate optimizer table (Table-I style).
  bool include_optimizer_table = true;
  /// Include the partial-mining schedule table.
  bool include_partial_mining = true;
};

/// Renders a session result as a self-contained Markdown document.
std::string RenderSessionReport(const SessionResult& result,
                                const std::string& dataset_id,
                                const ReportOptions& options = {});

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_REPORT_H_
