#include "service/server.h"

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace adahealth {
namespace service {

using common::Json;
using common::Status;
using common::StatusOr;

namespace {

// Reads the required "job_id" field of a status/result/cancel request.
StatusOr<JobId> ReadJobId(const Json& body) {
  const Json* field = body.Find("job_id");
  if (field == nullptr || !field->is_int()) {
    return common::InvalidArgumentError(
        "request must carry an integer 'job_id'");
  }
  return field->AsInt();
}

double ReadWaitMillis(const Json& body) {
  if (const Json* wait = body.Find("wait_millis");
      wait != nullptr && wait->is_number()) {
    return wait->AsDouble();
  }
  return 0.0;
}

// Reads the required "cohort" field of an ingest/cohort-submit request.
StatusOr<std::string> ReadCohortName(const Json& body) {
  const Json* field = body.Find("cohort");
  if (field == nullptr || !field->is_string() || field->AsString().empty()) {
    return common::InvalidArgumentError(
        "request must carry a non-empty string 'cohort'");
  }
  return field->AsString();
}

}  // namespace

const char* ServerRoleName(ServerRole role) {
  return role == ServerRole::kPrimary ? "primary" : "follower";
}

AnalysisServer::AnalysisServer(ServerOptions options)
    : shipper_(MakeShipper(options)),
      cohort_store_(MakeCohortStore(options)),
      scheduler_(std::move(options.scheduler)),
      requested_port_(options.port),
      max_connections_(std::max<size_t>(1, options.max_connections)),
      idle_timeout_millis_(options.idle_timeout_millis),
      max_result_wait_millis_(
          std::max(1.0, options.max_result_wait_millis)),
      max_line_bytes_(std::max<size_t>(1, options.max_line_bytes)),
      drain_timeout_millis_(std::max(1.0, options.drain_timeout_millis)) {
  role_.store(options.role);
}

std::unique_ptr<LogShipper> AnalysisServer::MakeShipper(
    ServerOptions& options) {
  if (options.replicate_to_port == 0) return nullptr;
  ReplicationOptions replication;
  replication.follower_port = options.replicate_to_port;
  // The snapshot lambda runs only on the (started) ship thread and the
  // destructor stops that thread before scheduler_ dies, so capturing
  // `this` ahead of scheduler_'s construction is safe.
  auto shipper = std::make_unique<LogShipper>(
      replication, [this] { return scheduler_.cache().Entries(); });
  LogShipper* raw = shipper.get();
  options.scheduler.on_result_committed =
      [raw](const CachedAnalysis& entry) { raw->Enqueue(entry); };
  return shipper;
}

std::unique_ptr<CohortStore> AnalysisServer::MakeCohortStore(
    ServerOptions& options) {
  CohortStoreOptions store_options;
  store_options.directory = options.cohort_directory;
  auto store = std::make_unique<CohortStore>(std::move(store_options));
  CohortStore* raw = store.get();
  // Runs on scheduler workers; the store outlives the scheduler
  // (declaration order), so the raw capture is safe.
  options.scheduler.on_session_success =
      [raw](const JobRequest& request, const core::SessionResult& result) {
        // request.log is the exact snapshot the session analyzed, so
        // its record count — not the live cohort's, which may have
        // grown since — is the drift gate's baseline.
        raw->OnAnalysisCommitted(
            request.cohort, request.cohort_generation,
            static_cast<int64_t>(request.log.num_records()), result);
      };
  return store;
}

AnalysisServer::~AnalysisServer() {
  Stop();
  // Stop the ship thread before member destruction reaches scheduler_:
  // its snapshot callback reads the scheduler's cache. Workers the
  // scheduler destructor is still waiting out may Enqueue into the
  // stopped shipper (safe — entries just queue); the router's re-drive
  // covers anything unshipped at death.
  if (shipper_) shipper_->Stop();
}

Status AnalysisServer::Start() {
  if (running_.load()) {
    return common::FailedPreconditionError("server already started");
  }
  ADA_ASSIGN_OR_RETURN(listener_, ServerSocket::Listen(requested_port_));
  ADA_RETURN_IF_ERROR(SetNonBlocking(listener_.descriptor()));
  port_ = listener_.port();
  ADA_RETURN_IF_ERROR(loop_.Init());
  ADA_RETURN_IF_ERROR(loop_.Watch(listener_.fd(), EPOLLIN,
                                  [this](uint32_t) { OnAcceptable(); }));
  draining_ = false;
  if (idle_timeout_millis_ > 0) {
    // The sweep reschedules itself; sweeping at a quarter of the
    // timeout bounds eviction lag to ~1.25x the configured idle time.
    const double period = std::max(idle_timeout_millis_ / 4.0, 10.0);
    loop_.ScheduleAfter(period, [this] { SweepIdleConnections(); });
  }
  start_time_ = std::chrono::steady_clock::now();
  running_.store(true);
  {
    common::MutexLock lock(&join_mutex_);
    loop_thread_ = std::thread([this] { LoopMain(); });
  }
  if (shipper_) shipper_->Start();
  ADA_LOG(kInfo) << "service: listening on 127.0.0.1:" << port_
                 << " as " << ServerRoleName(role_.load());
  return common::OkStatus();
}

void AnalysisServer::LoopMain() {
  loop_.Run();
  running_.store(false);
}

void AnalysisServer::Stop() {
  if (running_.load()) {
    // A short failsafe: Stop() is the programmatic path (destructor,
    // tests) and should not linger the full drain window.
    loop_.Post([this] { BeginDrain(/*failsafe_millis=*/250.0); });
  }
  Wait();
}

void AnalysisServer::Wait() {
  common::MutexLock lock(&join_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false);
}

void AnalysisServer::OnAcceptable() {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  for (;;) {
    auto accepted = listener_.TryAccept();
    if (!accepted.ok()) {
      if (draining_) return;
      // A transient accept failure (injected or EMFILE-style) must not
      // kill the server; level-triggered epoll re-reports the pending
      // backlog on the next iteration.
      metrics.GetCounter("service/server_errors").Increment();
      ADA_LOG(kWarning) << "service: accept failed: "
                        << accepted.status().message();
      return;
    }
    if (!accepted.value().valid()) return;  // Backlog drained.
    total_connections_.fetch_add(1);
    metrics.GetCounter("service/server_connections").Increment();
    if (connections_.size() >= max_connections_) {
      // Shed: tell the client why (best-effort single write — the
      // socket buffer of a fresh connection is empty, so this
      // virtually always lands) and drop the connection.
      shed_connections_.fetch_add(1);
      metrics.GetCounter("service/connections_shed").Increment();
      (void)SendNonBlocking(
          accepted.value(),
          ErrorResponse(common::ResourceExhaustedError(common::StrFormat(
              "server at its %zu-connection limit", max_connections_))));
      continue;  // FileDescriptor destructor releases the socket.
    }
    const int64_t id = next_connection_id_++;
    auto conn = std::make_unique<Connection>(
        id, std::move(accepted).value(), &loop_, max_line_bytes_);
    Connection* raw = conn.get();
    Status registered = raw->Register(
        [this, id](uint32_t events) { OnConnectionEvent(id, events); },
        [this, id](Connection& c, std::string line) {
          OnRequestLine(id, c, std::move(line));
        });
    if (!registered.ok()) {
      metrics.GetCounter("service/server_errors").Increment();
      ADA_LOG(kWarning) << "service: failed to register connection: "
                        << registered.ToString();
      continue;  // conn goes out of scope and releases the socket.
    }
    ConnectionEntry entry;
    entry.conn = std::move(conn);
    connections_.emplace(id, std::move(entry));
    open_connections_.store(static_cast<int64_t>(connections_.size()));
    metrics.GetGauge("service/open_connections")
        .Set(static_cast<double>(connections_.size()));
  }
}

void AnalysisServer::OnConnectionEvent(int64_t id, uint32_t events) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  it->second.conn->HandleEvents(events);
  ReapIfClosed(id);
}

void AnalysisServer::OnRequestLine(int64_t id, Connection& conn,
                                   std::string line) {
  // Fault injection for the shard-failover tests: an armed
  // "service.shard.kill" failpoint makes the process die the way a
  // crashed shard does — no drain, no flushed responses, no cache
  // flush — so the router's detection + promotion path is exercised
  // against a realistic death, not a graceful shutdown.
  if (common::Status killed = ADA_FAILPOINT("service.shard.kill");
      !killed.ok()) {
    ADA_LOG(kError) << "service: shard kill failpoint fired: "
                    << killed.ToString();
    std::_Exit(137);
  }
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.GetCounter("service/server_requests").Increment();
  auto request = ParseRequest(line);
  if (!request.ok()) {
    metrics.GetCounter("service/server_errors").Increment();
    conn.EnqueueResponse(ErrorResponse(request.status()));
    return;
  }
  if (request.value().verb == "result") {
    // The one verb that may wait: parked on a completion subscription,
    // never on the loop thread.
    HandleResultVerb(id, conn, request.value().body);
    return;
  }
  conn.EnqueueResponse(Dispatch(request.value()));
  if (request.value().verb == "shutdown") {
    // Graceful drain; the response just enqueued is flushed before the
    // connection goes away (close-after-flush).
    BeginDrain(drain_timeout_millis_);
  }
}

double AnalysisServer::EffectiveResultWait(const Json& body) const {
  const double requested = ReadWaitMillis(body);
  if (requested <= 0.0 || requested > max_result_wait_millis_) {
    return max_result_wait_millis_;
  }
  return requested;
}

std::string AnalysisServer::ResultTimeoutResponse(JobId job) const {
  // Satellite-3 contract: the timeout error body carries the job's
  // *current* state so a client can tell "still running, poll again"
  // from the job's own deadline expiry.
  const char* state = "unknown";
  if (auto snapshot = scheduler_.Status(job); snapshot.ok()) {
    state = JobStateName(snapshot.value().state);
  }
  Json::Object extra;
  extra["job_id"] = Json(static_cast<int64_t>(job));
  extra["state"] = Json(std::string(state));
  return ErrorResponse(
      common::DeadlineExceededError(common::StrFormat(
          "job %lld not finished within the wait budget; currently %s",
          static_cast<long long>(job), state)),
      std::move(extra));
}

void AnalysisServer::HandleResultVerb(int64_t id, Connection& conn,
                                      const Json& body) {
  auto job = ReadJobId(body);
  if (!job.ok()) {
    conn.EnqueueResponse(ErrorResponse(job.status()));
    return;
  }
  auto snapshot = scheduler_.Status(job.value());
  if (!snapshot.ok()) {
    conn.EnqueueResponse(ErrorResponse(snapshot.status()));
    return;
  }
  if (IsTerminal(snapshot.value().state)) {
    conn.EnqueueResponse(OkResponse(
        SnapshotFields(snapshot.value(), /*include_artifacts=*/true)));
    return;
  }
  if (draining_) {
    conn.EnqueueResponse(ErrorResponse(
        common::UnavailableError("server is shutting down")));
    return;
  }
  // Park the connection: pipelined requests behind this one wait (in
  // order) and the loop thread moves on to other clients.
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ConnectionEntry& entry = it->second;
  entry.waiting = true;
  entry.wait_job = job.value();
  const uint64_t epoch = ++entry.wait_epoch;
  conn.PauseRequests();
  entry.wait_timer = loop_.ScheduleAfter(
      EffectiveResultWait(body),
      [this, id, epoch] { OnResultTimeout(id, epoch); });
  entry.has_wait_timer = true;
  auto subscription = scheduler_.Subscribe(
      job.value(), [this, id, epoch](const JobSnapshot& terminal) {
        // Runs on a scheduler worker (or inline); hop to the loop.
        loop_.Post([this, id, epoch, terminal] {
          OnResultComplete(id, epoch, terminal);
        });
      });
  if (!subscription.ok()) {
    // Unreachable in practice (jobs are never forgotten), kept for
    // robustness: unwind the park and answer with the error.
    ClearWait(entry);
    conn.EnqueueResponse(ErrorResponse(subscription.status()));
    conn.ResumeRequests();
    return;
  }
  // May be the inline sentinel 0 (job finished between Status and
  // Subscribe) — the completion is already posted in that case.
  entry.wait_subscription = subscription.value();
}

void AnalysisServer::OnResultTimeout(int64_t id, uint64_t epoch) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ConnectionEntry& entry = it->second;
  if (!entry.waiting || entry.wait_epoch != epoch) return;
  entry.has_wait_timer = false;  // This timer just fired.
  // Subscription 0 = fired inline at Subscribe; a false Unsubscribe =
  // the completion callback beat us. Either way the completion is in
  // flight on the loop queue and will answer — never respond twice.
  if (entry.wait_subscription == 0 ||
      !scheduler_.Unsubscribe(entry.wait_subscription)) {
    return;
  }
  const JobId job = entry.wait_job;
  entry.waiting = false;
  ++entry.wait_epoch;
  entry.conn->EnqueueResponse(ResultTimeoutResponse(job));
  entry.conn->ResumeRequests();
  ReapIfClosed(id);
}

void AnalysisServer::OnResultComplete(int64_t id, uint64_t epoch,
                                      const JobSnapshot& snapshot) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ConnectionEntry& entry = it->second;
  if (!entry.waiting || entry.wait_epoch != epoch) return;
  ClearWait(entry);
  entry.conn->EnqueueResponse(
      OkResponse(SnapshotFields(snapshot, /*include_artifacts=*/true)));
  entry.conn->ResumeRequests();
  ReapIfClosed(id);
}

void AnalysisServer::ClearWait(ConnectionEntry& entry) {
  if (entry.has_wait_timer) {
    loop_.CancelTimer(entry.wait_timer);
    entry.has_wait_timer = false;
  }
  if (entry.waiting && entry.wait_subscription != 0) {
    // False = the completion already fired; its posted task will find
    // the bumped epoch and bail.
    (void)scheduler_.Unsubscribe(entry.wait_subscription);
  }
  entry.wait_subscription = 0;
  entry.waiting = false;
  ++entry.wait_epoch;
}

void AnalysisServer::BeginDrain(double failsafe_millis) {
  if (!draining_) {
    draining_ = true;
    loop_.Unwatch(listener_.fd());
    listener_.Shutdown();  // Pending un-accepted clients see EOF.
    for (auto& [id, entry] : connections_) {
      if (entry.waiting) {
        const JobId job = entry.wait_job;
        ClearWait(entry);
        Json::Object extra;
        extra["job_id"] = Json(static_cast<int64_t>(job));
        entry.conn->EnqueueResponse(ErrorResponse(
            common::UnavailableError(
                "server shutting down before the job finished"),
            std::move(extra)));
      }
      entry.conn->StartDrain();
    }
    // Reap on a posted task, not here: BeginDrain can run inside a
    // connection's own request handler, and erasing that connection
    // mid-call would free it under our feet.
    loop_.Post([this] {
      std::vector<int64_t> closed;
      for (const auto& [id, entry] : connections_) {
        if (entry.conn->closed()) closed.push_back(id);
      }
      for (int64_t id : closed) RemoveConnection(id);
      if (connections_.empty()) loop_.Quit();
    });
  }
  loop_.ScheduleAfter(failsafe_millis, [this] {
    ForceCloseAll();
    loop_.Quit();
  });
}

void AnalysisServer::ForceCloseAll() {
  for (auto& [id, entry] : connections_) {
    ClearWait(entry);
    entry.conn->CloseNow();
  }
  connections_.clear();
  open_connections_.store(0);
  common::MetricsRegistry::Default()
      .GetGauge("service/open_connections")
      .Set(0.0);
}

void AnalysisServer::RemoveConnection(int64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ClearWait(it->second);
  it->second.conn->CloseNow();
  connections_.erase(it);
  open_connections_.store(static_cast<int64_t>(connections_.size()));
  common::MetricsRegistry::Default()
      .GetGauge("service/open_connections")
      .Set(static_cast<double>(connections_.size()));
  if (draining_ && connections_.empty()) loop_.Quit();
}

void AnalysisServer::ReapIfClosed(int64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  if (it->second.conn->closed()) RemoveConnection(id);
}

void AnalysisServer::SweepIdleConnections() {
  const auto now = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(idle_timeout_millis_));
  std::vector<int64_t> idle;
  for (const auto& [id, entry] : connections_) {
    // Parked waits are exempt: their lifetime is bounded by the result
    // wait cap, and evicting them would drop a promised response.
    if (entry.waiting) continue;
    if (now - entry.conn->last_activity() > budget) idle.push_back(id);
  }
  for (int64_t id : idle) {
    idle_disconnects_.fetch_add(1);
    common::MetricsRegistry::Default()
        .GetCounter("service/idle_disconnects")
        .Increment();
    RemoveConnection(id);
  }
  if (!draining_) {
    const double period = std::max(idle_timeout_millis_ / 4.0, 10.0);
    loop_.ScheduleAfter(period, [this] { SweepIdleConnections(); });
  }
}

common::Json AnalysisServer::ReplicationFields() const {
  const ReplicationStats replication = shipper_->stats();
  Json::Object fields;
  fields["shipped"] = Json(replication.shipped);
  fields["send_failures"] = Json(replication.send_failures);
  fields["reconnects"] = Json(replication.reconnects);
  fields["dropped"] = Json(replication.dropped);
  fields["queue_depth"] = Json(static_cast<int64_t>(replication.queue_depth));
  fields["connected"] = Json(replication.connected);
  return Json(std::move(fields));
}

std::string AnalysisServer::DispatchIngest(const Json& body) {
  auto cohort = ReadCohortName(body);
  if (!cohort.ok()) return ErrorResponse(cohort.status());
  auto rows = ParseIngestRecords(body);
  if (!rows.ok()) return ErrorResponse(rows.status());
  // Optional replay guard: commit only against this exact generation
  // (see CohortStore::Ingest). Lets a client retry a timed-out batch
  // without risking a double append.
  int64_t expected_generation = -1;
  if (const Json* expected = body.Find("expected_generation");
      expected != nullptr) {
    if (!expected->is_int() || expected->AsInt() < 0) {
      return ErrorResponse(common::InvalidArgumentError(
          "'expected_generation' must be a non-negative integer"));
    }
    expected_generation = expected->AsInt();
  }
  auto result =
      cohort_store_->Ingest(cohort.value(), rows.value(), expected_generation);
  if (!result.ok()) return ErrorResponse(result.status());
  Json::Object fields;
  fields["cohort"] = Json(cohort.value());
  fields["generation"] = Json(result.value().generation);
  fields["batch_records"] = Json(result.value().batch_records);
  fields["total_records"] = Json(result.value().total_records);
  fields["patients"] = Json(result.value().patients);
  return OkResponse(std::move(fields));
}

std::string AnalysisServer::DispatchCohortSubmit(const Json& body) {
  auto cohort = ReadCohortName(body);
  if (!cohort.ok()) return ErrorResponse(cohort.status());
  if (body.Find("csv") != nullptr || body.Find("synthetic") != nullptr) {
    return ErrorResponse(common::InvalidArgumentError(
        "submit takes exactly one of 'cohort', 'csv' or 'synthetic'"));
  }
  auto job_request = cohort_store_->BuildCohortJob(cohort.value());
  if (!job_request.ok()) return ErrorResponse(job_request.status());
  if (Status applied = ApplyJobOptionsFromBody(body, job_request.value());
      !applied.ok()) {
    return ErrorResponse(applied);
  }
  auto id = scheduler_.Submit(std::move(job_request).value());
  if (!id.ok()) return ErrorResponse(id.status());
  auto snapshot = scheduler_.Status(id.value());
  if (!snapshot.ok()) return ErrorResponse(snapshot.status());
  return OkResponse(SnapshotFields(snapshot.value(),
                                   /*include_artifacts=*/false));
}

std::string AnalysisServer::Dispatch(const Request& request) {
  if (request.verb == "submit") {
    if (role_.load() == ServerRole::kFollower) {
      // A follower must not run jobs the primary would also run: the
      // router owns routing, and this shard serves traffic only after
      // a `promote`. UNAVAILABLE is retryable, so a client racing a
      // failover backs off and retries against the promoted shard.
      return ErrorResponse(common::UnavailableError(
          "shard is a follower; not accepting jobs until promoted"));
    }
    if (request.body.Find("cohort") != nullptr) {
      return DispatchCohortSubmit(request.body);
    }
    auto job_request = BuildJobRequest(request.body);
    if (!job_request.ok()) return ErrorResponse(job_request.status());
    auto id = scheduler_.Submit(std::move(job_request).value());
    if (!id.ok()) return ErrorResponse(id.status());
    auto snapshot = scheduler_.Status(id.value());
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    return OkResponse(SnapshotFields(snapshot.value(),
                                     /*include_artifacts=*/false));
  }
  if (request.verb == "ingest") {
    if (role_.load() == ServerRole::kFollower) {
      // Same contract as submit: followers serve no writes until
      // promoted, and UNAVAILABLE tells the client to retry elsewhere.
      return ErrorResponse(common::UnavailableError(
          "shard is a follower; not accepting ingests until promoted"));
    }
    return DispatchIngest(request.body);
  }
  if (request.verb == "status") {
    auto id = ReadJobId(request.body);
    if (!id.ok()) return ErrorResponse(id.status());
    auto snapshot = scheduler_.Status(id.value());
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    return OkResponse(SnapshotFields(snapshot.value(),
                                     /*include_artifacts=*/false));
  }
  if (request.verb == "result") {
    // Blocking fallback for direct (socket-less) dispatch; the wire
    // path goes through HandleResultVerb instead. The same server-side
    // wait cap applies.
    auto id = ReadJobId(request.body);
    if (!id.ok()) return ErrorResponse(id.status());
    auto snapshot =
        scheduler_.AwaitResult(id.value(), EffectiveResultWait(request.body));
    if (!snapshot.ok()) {
      if (snapshot.status().code() ==
          common::StatusCode::kDeadlineExceeded) {
        return ResultTimeoutResponse(id.value());
      }
      return ErrorResponse(snapshot.status());
    }
    return OkResponse(SnapshotFields(snapshot.value(),
                                     /*include_artifacts=*/true));
  }
  if (request.verb == "cancel") {
    auto id = ReadJobId(request.body);
    if (!id.ok()) return ErrorResponse(id.status());
    if (Status cancelled = scheduler_.Cancel(id.value()); !cancelled.ok()) {
      return ErrorResponse(cancelled);
    }
    Json::Object fields;
    fields["job_id"] = id.value();
    fields["state"] = std::string(JobStateName(JobState::kCancelled));
    return OkResponse(std::move(fields));
  }
  if (request.verb == "stats") {
    Json::Object fields = scheduler_.StatsJson().AsObject();
    Json::Object server;
    server["open_connections"] = Json(open_connections_.load());
    server["total_connections"] = Json(total_connections_.load());
    server["shed_connections"] = Json(shed_connections_.load());
    server["idle_disconnects"] = Json(idle_disconnects_.load());
    server["role"] = Json(std::string(ServerRoleName(role_.load())));
    fields["server"] = Json(std::move(server));
    fields["ingest"] = cohort_store_->StatsJson();
    if (shipper_ != nullptr) {
      fields["replication"] = ReplicationFields();
    }
    return OkResponse(std::move(fields));
  }
  if (request.verb == "health") {
    // Liveness + load in one cheap round-trip: the router's prober and
    // `ada_client health` both read this. Everything here is a lock-
    // free or single-lock snapshot — a wedged worker session must not
    // wedge the health probe.
    const SchedulerStats scheduler_stats = scheduler_.stats();
    const double uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count();
    Json::Object fields;
    fields["service"] = "ada-health";
    fields["role"] = Json(std::string(ServerRoleName(role_.load())));
    fields["uptime_seconds"] = Json(uptime_seconds);
    fields["queue_depth"] =
        Json(static_cast<int64_t>(scheduler_stats.queue_depth));
    fields["active_workers"] =
        Json(static_cast<int64_t>(scheduler_stats.active_workers));
    fields["max_workers"] =
        Json(static_cast<int64_t>(scheduler_.options().max_workers));
    fields["cache_entries"] =
        Json(static_cast<int64_t>(scheduler_.cache().entries()));
    fields["jobs_submitted"] = Json(scheduler_stats.submitted);
    fields["jobs_completed"] = Json(scheduler_stats.completed);
    fields["jobs_failed"] = Json(scheduler_stats.failed);
    fields["open_connections"] = Json(open_connections_.load());
    fields["ingest"] = cohort_store_->StatsJson();
    if (shipper_ != nullptr) {
      fields["replication"] = ReplicationFields();
    }
    return OkResponse(std::move(fields));
  }
  if (request.verb == "promote") {
    // Router-driven failover: flip this follower to primary so it
    // starts accepting the re-driven jobs. Idempotent (promoting a
    // primary is a no-op) because the router may retry the promotion
    // after a dropped response.
    if (common::Status injected = ADA_FAILPOINT("service.shard.promote");
        !injected.ok()) {
      return ErrorResponse(injected);
    }
    const ServerRole previous = role_.exchange(ServerRole::kPrimary);
    ADA_LOG(kInfo) << "service: promoted to primary (was "
                   << ServerRoleName(previous) << ")";
    Json::Object fields;
    fields["role"] = Json(std::string(ServerRoleName(ServerRole::kPrimary)));
    fields["was_follower"] = Json(previous == ServerRole::kFollower);
    fields["cache_entries"] =
        Json(static_cast<int64_t>(scheduler_.cache().entries()));
    return OkResponse(std::move(fields));
  }
  if (request.verb == "replicate") {
    // Applied by a follower for every entry the primary's LogShipper
    // streams over. Idempotent: re-inserting a fingerprint refreshes
    // the entry, so at-least-once delivery needs no dedup state.
    const Json* entry_field = request.body.Find("entry");
    if (entry_field == nullptr) {
      return ErrorResponse(common::InvalidArgumentError(
          "replicate request must carry an 'entry' object"));
    }
    auto entry = CachedAnalysis::FromJson(*entry_field);
    if (!entry.ok()) return ErrorResponse(entry.status());
    // fire_hook=false: a replicated entry must not re-enter a shipper,
    // or a promoted ex-follower would loop records back at its peer.
    scheduler_.CommitCacheEntry(std::move(entry).value(),
                                /*fire_hook=*/false);
    Json::Object fields;
    fields["applied"] = true;
    fields["cache_entries"] =
        Json(static_cast<int64_t>(scheduler_.cache().entries()));
    return OkResponse(std::move(fields));
  }
  if (request.verb == "ping") {
    Json::Object fields;
    fields["service"] = "ada-health";
    return OkResponse(std::move(fields));
  }
  if (request.verb == "shutdown") {
    Json::Object fields;
    fields["stopping"] = true;
    return OkResponse(std::move(fields));
  }
  return ErrorResponse(common::InvalidArgumentError(
      common::StrFormat("unknown verb '%s'", request.verb.c_str())));
}

}  // namespace service
}  // namespace adahealth
