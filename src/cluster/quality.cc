#include "cluster/quality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "common/check.h"

namespace adahealth {
namespace cluster {

using transform::CosineSimilarity;
using transform::Matrix;
using transform::Norm;
using transform::SquaredDistance;

double SumSquaredError(const Matrix& data,
                       const std::vector<int32_t>& assignments,
                       const Matrix& centroids) {
  ADA_CHECK_EQ(assignments.size(), data.rows());
  double sse = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    int32_t c = assignments[i];
    ADA_CHECK_GE(c, 0);
    ADA_CHECK_LT(static_cast<size_t>(c), centroids.rows());
    sse += SquaredDistance(data.Row(i),
                           centroids.Row(static_cast<size_t>(c)));
  }
  return sse;
}

double OverallSimilarity(const Matrix& data,
                         const std::vector<int32_t>& assignments,
                         int32_t k) {
  ADA_CHECK_EQ(assignments.size(), data.rows());
  ADA_CHECK_GE(k, 1);
  if (data.rows() == 0) return 0.0;
  const size_t dims = data.cols();

  // Sum of cosine-normalized members per cluster.
  Matrix normalized_sums(static_cast<size_t>(k), dims, 0.0);
  std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
  for (size_t i = 0; i < data.rows(); ++i) {
    int32_t c = assignments[i];
    ADA_CHECK_GE(c, 0);
    ADA_CHECK_LT(c, k);
    ++sizes[static_cast<size_t>(c)];
    std::span<const double> point = data.Row(i);
    double norm = Norm(point);
    if (norm <= 0.0) continue;  // Zero vectors contribute no similarity.
    std::span<double> sum = normalized_sums.Row(static_cast<size_t>(c));
    for (size_t d = 0; d < dims; ++d) sum[d] += point[d] / norm;
  }

  double overall = 0.0;
  const double total = static_cast<double>(data.rows());
  for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
    if (sizes[c] == 0) continue;
    std::span<const double> sum = normalized_sums.Row(c);
    double norm_squared = 0.0;
    for (size_t d = 0; d < dims; ++d) norm_squared += sum[d] * sum[d];
    const double n = static_cast<double>(sizes[c]);
    // (n/N) * ||sum||^2 / n^2 == ||sum||^2 / (n * N).
    overall += norm_squared / (n * total);
  }
  return overall;
}

double OverallSimilarityExact(const Matrix& data,
                              const std::vector<int32_t>& assignments,
                              int32_t k) {
  ADA_CHECK_EQ(assignments.size(), data.rows());
  ADA_CHECK_GE(k, 1);
  if (data.rows() == 0) return 0.0;
  double overall = 0.0;
  const double total = static_cast<double>(data.rows());
  for (int32_t c = 0; c < k; ++c) {
    std::vector<size_t> members;
    for (size_t i = 0; i < data.rows(); ++i) {
      if (assignments[i] == c) members.push_back(i);
    }
    if (members.empty()) continue;
    double pair_sum = 0.0;
    for (size_t a : members) {
      for (size_t b : members) {
        pair_sum += CosineSimilarity(data.Row(a), data.Row(b));
      }
    }
    const double n = static_cast<double>(members.size());
    overall += (n / total) * (pair_sum / (n * n));
  }
  return overall;
}

double SilhouetteScore(const Matrix& data,
                       const std::vector<int32_t>& assignments, int32_t k,
                       size_t max_exact, uint64_t seed) {
  ADA_CHECK_EQ(assignments.size(), data.rows());
  ADA_CHECK_GE(k, 2);
  std::vector<int64_t> sizes = ClusterSizes(assignments, k);
  for (int64_t s : sizes) ADA_CHECK_GT(s, 0);

  std::vector<size_t> sample;
  if (data.rows() <= max_exact) {
    sample.resize(data.rows());
    for (size_t i = 0; i < sample.size(); ++i) sample[i] = i;
  } else {
    common::Rng rng(seed);
    sample = rng.SampleWithoutReplacement(data.rows(), max_exact);
  }

  double silhouette_sum = 0.0;
  size_t counted = 0;
  std::vector<double> cluster_distance(static_cast<size_t>(k));
  std::vector<int64_t> cluster_count(static_cast<size_t>(k));
  for (size_t i : sample) {
    std::fill(cluster_distance.begin(), cluster_distance.end(), 0.0);
    std::fill(cluster_count.begin(), cluster_count.end(), 0);
    std::span<const double> point = data.Row(i);
    for (size_t j = 0; j < data.rows(); ++j) {
      if (j == i) continue;
      double dist = std::sqrt(SquaredDistance(point, data.Row(j)));
      size_t c = static_cast<size_t>(assignments[j]);
      cluster_distance[c] += dist;
      ++cluster_count[c];
    }
    size_t own = static_cast<size_t>(assignments[i]);
    if (cluster_count[own] == 0) continue;  // Singleton: silhouette 0.
    double a = cluster_distance[own] /
               static_cast<double>(cluster_count[own]);
    double b = std::numeric_limits<double>::max();
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      if (c == own || cluster_count[c] == 0) continue;
      b = std::min(b, cluster_distance[c] /
                          static_cast<double>(cluster_count[c]));
    }
    double denom = std::max(a, b);
    silhouette_sum += denom > 0.0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? silhouette_sum / static_cast<double>(counted) : 0.0;
}

double DaviesBouldinIndex(const Matrix& data,
                          const std::vector<int32_t>& assignments,
                          int32_t k) {
  ADA_CHECK_EQ(assignments.size(), data.rows());
  ADA_CHECK_GE(k, 2);
  const size_t dims = data.cols();
  std::vector<int64_t> sizes = ClusterSizes(assignments, k);
  for (int64_t s : sizes) ADA_CHECK_GT(s, 0);

  // Centroids and mean intra-cluster distances (scatter).
  Matrix centroids(static_cast<size_t>(k), dims, 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    std::span<double> centroid =
        centroids.Row(static_cast<size_t>(assignments[i]));
    std::span<const double> point = data.Row(i);
    for (size_t d = 0; d < dims; ++d) centroid[d] += point[d];
  }
  for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
    std::span<double> centroid = centroids.Row(c);
    for (size_t d = 0; d < dims; ++d) {
      centroid[d] /= static_cast<double>(sizes[c]);
    }
  }
  std::vector<double> scatter(static_cast<size_t>(k), 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    size_t c = static_cast<size_t>(assignments[i]);
    scatter[c] += std::sqrt(SquaredDistance(data.Row(i), centroids.Row(c)));
  }
  for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
    scatter[c] /= static_cast<double>(sizes[c]);
  }

  double db = 0.0;
  for (size_t i = 0; i < static_cast<size_t>(k); ++i) {
    double worst = 0.0;
    for (size_t j = 0; j < static_cast<size_t>(k); ++j) {
      if (i == j) continue;
      double separation =
          std::sqrt(SquaredDistance(centroids.Row(i), centroids.Row(j)));
      if (separation <= 0.0) continue;
      worst = std::max(worst, (scatter[i] + scatter[j]) / separation);
    }
    db += worst;
  }
  return db / static_cast<double>(k);
}

double CalinskiHarabaszIndex(const Matrix& data,
                             const std::vector<int32_t>& assignments,
                             int32_t k) {
  ADA_CHECK_EQ(assignments.size(), data.rows());
  ADA_CHECK_GE(k, 2);
  ADA_CHECK_LT(static_cast<size_t>(k), data.rows());
  const size_t dims = data.cols();
  std::vector<int64_t> sizes = ClusterSizes(assignments, k);
  for (int64_t s : sizes) ADA_CHECK_GT(s, 0);

  std::vector<double> global_mean = data.ColumnMeans();
  Matrix centroids(static_cast<size_t>(k), dims, 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    std::span<double> centroid =
        centroids.Row(static_cast<size_t>(assignments[i]));
    std::span<const double> point = data.Row(i);
    for (size_t d = 0; d < dims; ++d) centroid[d] += point[d];
  }
  for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
    std::span<double> centroid = centroids.Row(c);
    for (size_t d = 0; d < dims; ++d) {
      centroid[d] /= static_cast<double>(sizes[c]);
    }
  }
  double between = 0.0;
  for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
    between += static_cast<double>(sizes[c]) *
               SquaredDistance(centroids.Row(c), global_mean);
  }
  double within = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    within += SquaredDistance(
        data.Row(i), centroids.Row(static_cast<size_t>(assignments[i])));
  }
  if (within <= 0.0) return 0.0;
  const double n = static_cast<double>(data.rows());
  return (between / static_cast<double>(k - 1)) /
         (within / (n - static_cast<double>(k)));
}

}  // namespace cluster
}  // namespace adahealth
