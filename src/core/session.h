// End-to-end ADA-HEALTH analysis session — the orchestration of every
// architecture block of the paper's Figure 1:
//
//   characterize -> select transformation -> adaptive partial mining
//   -> algorithm optimization -> knowledge extraction (clusters,
//   generalized itemsets, association rules) -> K-DB storage ->
//   feedback-adaptive ranking.
#ifndef ADAHEALTH_CORE_SESSION_H_
#define ADAHEALTH_CORE_SESSION_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "core/characterization.h"
#include "core/knowledge.h"
#include "core/optimizer.h"
#include "core/partial_mining.h"
#include "core/ranking.h"
#include "core/transform_selector.h"
#include "dataset/synthetic_cohort.h"
#include "kdb/database.h"
#include "patterns/generalized.h"
#include "patterns/rules.h"

namespace adahealth {
namespace core {

/// How one pipeline stage ended under the resilience layer.
enum class StageState {
  kOk = 0,        // Succeeded (possibly after retries — see attempts).
  kDegraded = 1,  // Failed or overran its budget; a fallback was used.
  kSkipped = 2,   // Not applicable this run (e.g. no taxonomy).
  kFailed = 3,    // Essential stage exhausted retries; session aborted.
};

/// "ok" / "degraded" / "skipped" / "failed".
const char* StageStateName(StageState state);

/// Structured record of one Figure-1 stage execution.
struct StageOutcome {
  /// Stage name ("characterize", "transform", "partial_mining",
  /// "optimizer", "knowledge", "pattern_mining", "ranking",
  /// "kdb_store"); the matching failpoint is "session.<name>".
  std::string stage;
  StageState state = StageState::kOk;
  /// Final status: OK for kOk/kSkipped, the terminal error for
  /// kDegraded/kFailed (budget overruns carry DEADLINE_EXCEEDED).
  common::Status status;
  /// Attempts consumed (>= 1); > 1 means the stage was retried.
  int32_t attempts = 1;
  /// Stage wall time in seconds (all attempts).
  double seconds = 0.0;
  /// True when the stage finished but overran its wall-clock budget.
  bool over_budget = false;
};

/// Resilience knobs for AnalysisSession::Run: per-stage retry, budgets
/// and graceful degradation of non-essential stages.
struct ResilienceOptions {
  /// When false, any stage failure aborts the session immediately
  /// (pre-resilience behavior); outcomes are still recorded.
  bool enabled = true;
  /// Retry policy applied at every stage boundary (and thereby to the
  /// K-DB storage I/O the kdb_store stage performs).
  common::RetryPolicy retry;
  /// Advisory wall-clock budget per stage, in seconds; a finished
  /// stage that overran is marked degraded/over_budget (stages cannot
  /// be preempted mid-flight). <= 0 disables the budget.
  double default_stage_budget_seconds = 0.0;
  /// Per-stage budget overrides by stage name.
  std::map<std::string, double> stage_budget_seconds;
};

/// Cross-run warm-start hint for stage 4 (the streaming cohort
/// store's delta re-analysis): the previous generation's selected
/// centroids plus the metadata needed to prove they still mean what
/// they meant. The hint is applied only when `exam_types` equals the
/// exam types partial mining selects THIS run and the centroid width
/// matches the VSM — otherwise the session silently runs cold. Because
/// the optimizer's independent restarts still run with their cold
/// seeds, a hinted run's report is byte-identical to a cold run
/// whenever the same configurations win; the hint can only speed up or
/// improve the sweep, never change what a worse solution would have
/// produced. Deliberately excluded from SessionOptionsSignature (see
/// service/fingerprint.cc): delta and cold submissions of the same
/// accumulated data share one fingerprint.
struct WarmStartOptions {
  /// Prior generation's selected centroids, in mining-VSM space.
  /// Empty = no hint (the default, always-cold path).
  transform::Matrix centroids{};
  /// Original exam-type ids (pre-FilterExamTypes dictionary indices)
  /// the centroid columns correspond to, in column order.
  std::vector<int32_t> exam_types;
  /// Prior generation's selected K (stored for diagnostics; the sweep
  /// re-evaluates every candidate regardless).
  int32_t best_k = 0;
  /// Restart count used when the hint applies (replacing
  /// OptimizerOptions::restarts): the warm run replaces most of the
  /// cold restarts' work, so delta jobs keep one independent restart
  /// by default. Ignored on the cold path.
  int32_t restarts = 1;
};

struct SessionOptions {
  /// Identifier under which artifacts are stored in the K-DB.
  std::string dataset_id = "dataset";
  TransformSelectorOptions transform;
  PartialMiningOptions partial;
  OptimizerOptions optimizer;
  /// Pattern mining (requires a taxonomy; skipped when absent).
  patterns::GeneralizedMiningOptions pattern_mining;
  patterns::RuleOptions rules;
  /// Cap on stored "selected knowledge" items (K-DB collection 5);
  /// the paper's goal is "a manageable set of knowledge".
  size_t max_selected_items = 12;
  /// Skip the raw-dataset upload to the K-DB (it is large).
  bool store_raw_dataset = false;
  /// When non-empty, the kdb_store stage also persists the whole K-DB
  /// to this directory (atomic per-collection writes, retried).
  std::string persist_directory;
  ResilienceOptions resilience;
  WarmStartOptions warm;
};

struct SessionResult {
  CharacterizationReport characterization;
  TransformSelection transform;
  PartialMiningResult partial;
  OptimizerResult optimizer;
  /// All extracted knowledge items, ranked.
  std::vector<KnowledgeItem> knowledge;
  /// Original exam-type ids (indices into the input log's dictionary)
  /// that partial mining selected for the VSM, in column order — the
  /// column meaning of result.optimizer centroids. The cohort store
  /// persists these next to the centroids so a later generation can
  /// verify a warm hint still lines up (SessionOptions::warm).
  std::vector<int32_t> mining_exam_types;
  /// One outcome per executed stage, in pipeline order.
  std::vector<StageOutcome> stages;
  /// Multi-line human-readable run summary (includes a resilience
  /// line whenever any stage retried, degraded or was skipped).
  std::string summary;

  /// Convenience: outcome for `stage` or nullptr when absent.
  [[nodiscard]] const StageOutcome* FindStage(std::string_view stage) const;
  /// Number of stages in the given state.
  [[nodiscard]] size_t CountStages(StageState state) const;
};

/// One analysis session against a K-DB instance.
class AnalysisSession {
 public:
  /// `db` must outlive the session; the schema is created on demand.
  explicit AnalysisSession(kdb::Database* db);

  /// Runs the full pipeline on `log`. `taxonomy` may be null (pattern
  /// mining is then skipped).
  [[nodiscard]] common::StatusOr<SessionResult> Run(const dataset::ExamLog& log,
                                      const dataset::Taxonomy* taxonomy,
                                      const SessionOptions& options);

 private:
  kdb::Database* db_;
};

/// Builds one knowledge item per cluster of `clustering`, profiled by
/// lift-distinctive exams. Exposed for reuse by examples. Returns
/// INVALID_ARGUMENT when `vsm` and `clustering` shapes disagree
/// (previously such errors were silently swallowed into an empty list).
[[nodiscard]] common::StatusOr<std::vector<KnowledgeItem>>
ClusterKnowledgeItems(const dataset::ExamLog& log,
                      const transform::Matrix& vsm,
                      const cluster::Clustering& clustering);

/// Builds a knowledge item listing the `top_n` most atypical patients
/// (centroid-relative outlier scores). An empty result (no outliers) is
/// OK; shape mismatches are INVALID_ARGUMENT.
[[nodiscard]] common::StatusOr<std::vector<KnowledgeItem>>
OutlierKnowledgeItems(const transform::Matrix& vsm,
                      const cluster::Clustering& clustering,
                      size_t top_n = 10);

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_SESSION_H_
