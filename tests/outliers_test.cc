#include "cluster/outliers.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace adahealth {
namespace cluster {
namespace {

using transform::Matrix;

/// A blob of 40 points around the origin plus one far-away point.
struct PlantedOutlier {
  Matrix points;
  size_t outlier_row;
};

PlantedOutlier MakePlanted() {
  test::Blobs blobs = test::MakeBlobs({{0.0, 0.0}}, 40, 0.5, 91);
  PlantedOutlier planted{Matrix(41, 2), 40};
  for (size_t i = 0; i < 40; ++i) {
    planted.points.At(i, 0) = blobs.points.At(i, 0);
    planted.points.At(i, 1) = blobs.points.At(i, 1);
  }
  planted.points.At(40, 0) = 25.0;
  planted.points.At(40, 1) = -25.0;
  return planted;
}

TEST(CentroidOutlierTest, PlantedOutlierScoresHighest) {
  PlantedOutlier planted = MakePlanted();
  KMeansOptions options;
  options.k = 1;
  auto clustering = RunKMeans(planted.points, options);
  ASSERT_TRUE(clustering.ok());
  auto scores = CentroidOutlierScores(planted.points, clustering.value());
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(TopOutliers(scores.value(), 1)[0], planted.outlier_row);
  EXPECT_GT((*scores)[planted.outlier_row], 3.0);
}

TEST(CentroidOutlierTest, TypicalMembersScoreNearOne) {
  test::Blobs blobs = test::MakeBlobs({{0.0}, {10.0}}, 50, 0.5, 93);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  auto scores = CentroidOutlierScores(blobs.points, clustering.value());
  ASSERT_TRUE(scores.ok());
  double mean = 0.0;
  for (double s : scores.value()) mean += s;
  mean /= static_cast<double>(scores->size());
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(CentroidOutlierTest, RejectsMismatchedShapes) {
  test::Blobs blobs = test::MakeBlobs({{0.0}}, 10, 0.5, 95);
  KMeansOptions options;
  options.k = 1;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  Matrix wrong(5, 1);
  EXPECT_FALSE(CentroidOutlierScores(wrong, clustering.value()).ok());
}

TEST(KnnOutlierTest, PlantedOutlierScoresHighest) {
  PlantedOutlier planted = MakePlanted();
  auto scores = KnnOutlierScores(planted.points, 5);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(TopOutliers(scores.value(), 1)[0], planted.outlier_row);
}

TEST(KnnOutlierTest, DenserPointsScoreLower) {
  // Two points at distance 1 from each other, a third far away.
  Matrix points(3, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 1.0;
  points.At(2, 0) = 100.0;
  auto scores = KnnOutlierScores(points, 1);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], 1.0);
  EXPECT_DOUBLE_EQ((*scores)[1], 1.0);
  EXPECT_DOUBLE_EQ((*scores)[2], 99.0);
}

TEST(KnnOutlierTest, RejectsBadK) {
  Matrix points(5, 1, 1.0);
  EXPECT_FALSE(KnnOutlierScores(points, 0).ok());
  EXPECT_FALSE(KnnOutlierScores(points, 5).ok());
  Matrix single(1, 1, 1.0);
  EXPECT_FALSE(KnnOutlierScores(single, 1).ok());
}

TEST(TopOutliersTest, OrderAndTruncation) {
  std::vector<double> scores{0.5, 3.0, 1.0, 3.0, 2.0};
  std::vector<size_t> top = TopOutliers(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // Tie between 1 and 3 -> lower index first.
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 4u);
  EXPECT_EQ(TopOutliers(scores, 99).size(), scores.size());
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
