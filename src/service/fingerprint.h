// Dataset characterization fingerprints for the analysis service's
// result cache.
//
// The EHR-mining survey's observation that hospital analytics workloads
// are repetitive across near-identical cohorts makes content-addressed
// caching the right admission-time optimization: two submissions of the
// same examination log with the same session options must map to the
// same key, and any change that could alter the session report (the
// data, the dictionary names that appear in knowledge descriptions, or
// any options knob) must change it.
//
// The key is a 64-bit FNV-1a digest over (a) the §2.1 statistical
// descriptors (stats::MetaFeatures) of the log, (b) the raw record
// stream and exam dictionary — descriptors alone could collide for
// distinct logs, and the cache serves reports verbatim — and (c) a
// canonical signature of every report-affecting SessionOptions field.
#ifndef ADAHEALTH_SERVICE_FINGERPRINT_H_
#define ADAHEALTH_SERVICE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/session.h"
#include "dataset/exam_log.h"

namespace adahealth {
namespace service {

/// Incremental 64-bit FNV-1a hasher. Doubles are mixed by bit pattern
/// so the digest is exact (no formatting round-off).
class Fnv1a {
 public:
  Fnv1a& Mix(const void* data, size_t size);
  Fnv1a& MixString(std::string_view text);
  Fnv1a& MixInt(int64_t value);
  Fnv1a& MixDouble(double value);

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Canonical flat-text rendering of every SessionOptions field that can
/// change the bytes of a session report. persist_directory and the
/// resilience knobs are deliberately excluded: they alter side effects
/// and failure handling, not the report produced on the success path.
std::string SessionOptionsSignature(const core::SessionOptions& options);

/// 16-hex-digit fingerprint of (log, options); see file comment.
std::string DatasetFingerprint(const dataset::ExamLog& log,
                               const core::SessionOptions& options);

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_FINGERPRINT_H_
