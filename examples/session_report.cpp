// Domain example 4 — the artifact a physician would actually receive:
// a Markdown analysis report generated from a full ADA-HEALTH session,
// including the cluster profiles, frequent patterns, rules and the
// atypical-patient (outlier) summary, plus per-collection K-DB usage.
#include <cstdio>

#include "core/report.h"
#include "kdb/aggregate.h"

int main() {
  using namespace adahealth;

  dataset::CohortConfig config = dataset::PaperScaleConfig();
  config.num_patients = 1200;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed\n");
    return 1;
  }

  kdb::Database db;
  core::AnalysisSession session(&db);
  core::SessionOptions options;
  options.dataset_id = "clinic-2016";
  options.optimizer.candidate_ks = {6, 8, 10};
  auto result = session.Run(cohort->log, &cohort->taxonomy, options);
  if (!result.ok()) {
    std::printf("session failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", core::RenderSessionReport(result.value(),
                                              options.dataset_id)
                        .c_str());

  // Appendix: K-DB usage via the aggregation API.
  std::printf("## K-DB appendix\n\n");
  kdb::Collection& items = db.GetOrCreate(kdb::Schema::kKnowledgeItems);
  std::printf("knowledge items by kind:\n");
  for (const auto& [kind, count] :
       kdb::GroupCount(items, "item.kind")) {
    std::printf("  %-12s %lld\n", kind.c_str(),
                static_cast<long long>(count));
  }
  kdb::FieldStats quality = kdb::Aggregate(items, "item.quality");
  std::printf("quality: mean %.3f, min %.3f, max %.3f over %lld items\n",
              quality.mean, quality.min, quality.max,
              static_cast<long long>(quality.count));
  return 0;
}
