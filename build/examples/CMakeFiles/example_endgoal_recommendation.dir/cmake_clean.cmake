file(REMOVE_RECURSE
  "CMakeFiles/example_endgoal_recommendation.dir/endgoal_recommendation.cpp.o"
  "CMakeFiles/example_endgoal_recommendation.dir/endgoal_recommendation.cpp.o.d"
  "endgoal_recommendation"
  "endgoal_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_endgoal_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
