// Apriori frequent-itemset mining (Agrawal & Srikant, VLDB'94): the
// level-wise baseline against which FP-growth is benchmarked.
#ifndef ADAHEALTH_PATTERNS_APRIORI_H_
#define ADAHEALTH_PATTERNS_APRIORI_H_

#include "common/status.h"
#include "patterns/transactions.h"

namespace adahealth {
namespace patterns {

struct MiningOptions {
  /// Minimum support as an absolute transaction count (>= 1).
  int64_t min_support_count = 1;
  /// Cap on itemset size; 0 means unbounded.
  size_t max_itemset_size = 0;
};

/// Converts a relative support threshold in (0, 1] to an absolute
/// count over `num_transactions` (ceil, at least 1).
int64_t AbsoluteSupport(double min_support_fraction, size_t num_transactions);

/// Mines all frequent itemsets of `db` with Apriori. Output is in
/// canonical order (SortCanonical).
[[nodiscard]] common::StatusOr<std::vector<FrequentItemset>> MineApriori(
    const TransactionDb& db, const MiningOptions& options);

}  // namespace patterns
}  // namespace adahealth

#endif  // ADAHEALTH_PATTERNS_APRIORI_H_
