// Shared helpers for the test suite.
#ifndef ADAHEALTH_TESTS_TEST_UTIL_H_
#define ADAHEALTH_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "transform/matrix.h"

namespace adahealth {
namespace test {

/// Gaussian blob dataset with ground-truth labels.
struct Blobs {
  transform::Matrix points;
  std::vector<int32_t> labels;
};

/// Generates `per_cluster` points around each of `centers` with
/// isotropic Gaussian `spread`.
inline Blobs MakeBlobs(const std::vector<std::vector<double>>& centers,
                       size_t per_cluster, double spread, uint64_t seed) {
  common::Rng rng(seed);
  const size_t dims = centers[0].size();
  Blobs blobs;
  blobs.points =
      transform::Matrix(centers.size() * per_cluster, dims);
  size_t row = 0;
  for (size_t c = 0; c < centers.size(); ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      for (size_t d = 0; d < dims; ++d) {
        blobs.points.At(row, d) = centers[c][d] + rng.Normal(0.0, spread);
      }
      blobs.labels.push_back(static_cast<int32_t>(c));
      ++row;
    }
  }
  return blobs;
}

/// Fraction of point pairs on which two labelings agree about being in
/// the same/different cluster (Rand index); 1.0 = identical partition.
inline double RandIndex(const std::vector<int32_t>& a,
                        const std::vector<int32_t>& b) {
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      bool same_a = a[i] == a[j];
      bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(agree) /
                         static_cast<double>(total)
                   : 1.0;
}

}  // namespace test
}  // namespace adahealth

#endif  // ADAHEALTH_TESTS_TEST_UTIL_H_
