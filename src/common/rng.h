// Deterministic pseudo-random number generation.
//
// Every stochastic component of ADA-HEALTH takes an explicit 64-bit seed
// so that experiments are reproducible run-to-run. The generator is
// xoshiro256** seeded through SplitMix64 (the initialization recommended
// by the xoshiro authors), which is fast, high-quality, and portable.
#ifndef ADAHEALTH_COMMON_RNG_H_
#define ADAHEALTH_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace adahealth {
namespace common {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Exposed for seeding and hashing utilities.
uint64_t SplitMix64Next(uint64_t& state);

/// Deterministic random number generator (xoshiro256**).
///
/// Not thread-safe; use one instance per thread (Fork() derives
/// independent child streams deterministically).
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns an unbiased integer uniform in [0, bound). `bound` > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns an integer uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a double uniform in [0, 1) with 53 bits of randomness.
  double UniformDouble();

  /// Returns a double uniform in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal deviate (Box–Muller, cached pair).
  double Normal();

  /// Returns a normal deviate with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Returns a Poisson deviate with rate `lambda` (> 0). Uses Knuth's
  /// method for small lambda and normal approximation above 64.
  int64_t Poisson(double lambda);

  /// Returns a Gamma(shape, scale) deviate (Marsaglia–Tsang).
  double Gamma(double shape, double scale);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples an index from an unnormalized discrete distribution given by
  /// non-negative `weights` (at least one strictly positive).
  size_t Discrete(const std::vector<double>& weights);

  /// Returns `k` distinct indices sampled uniformly from [0, n).
  /// Requires k <= n. Result order is unspecified but deterministic.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; repeated calls produce
  /// distinct deterministic streams.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_RNG_H_
