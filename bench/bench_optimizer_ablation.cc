// Ablation A3: the cluster-robustness assessor. The paper uses a
// decision tree ("In our first implementation, we used decision trees
// as classification model"); this bench compares it against a Gaussian
// naive Bayes assessor in the same Table-I protocol and reports which
// K each variant selects.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/optimizer.h"
#include "dataset/synthetic_cohort.h"
#include "transform/feature_select.h"
#include "transform/vsm.h"

namespace {

using namespace adahealth;

bool SmokeMode() {
  const char* env = std::getenv("ADA_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

int RunModel(const transform::Matrix& vsm, core::RobustnessModel model,
             const char* name, common::Json::Array& bench_rows) {
  core::OptimizerOptions options;
  options.candidate_ks =
      SmokeMode() ? std::vector<int32_t>{6, 8} : std::vector<int32_t>{6, 7, 8, 9, 10, 12};
  options.cv_folds = SmokeMode() ? 5 : 10;
  options.model = model;
  options.seed = 20160516;
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  common::WallTimer sweep_timer;
  auto result = core::OptimizeClustering(vsm, options);
  const double sweep_seconds = sweep_timer.ElapsedSeconds();
  if (!result.ok()) {
    std::printf("optimizer failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  {
    common::Json::Object row;
    row["assessor"] = name;
    row["sweep_seconds"] = sweep_seconds;
    row["selected_k"] = static_cast<int64_t>(result->best_k());
    row["composite"] = result->best().composite;
    row["candidates"] =
        static_cast<int64_t>(result->candidates.size());
    row["skipped"] = static_cast<int64_t>(result->num_skipped());
    row["warm_starts"] =
        metrics.GetCounter("optimizer/warm_starts").value();
    row["kmeans_restarts"] = metrics.GetCounter("optimizer/restarts").value();
    row["kmeans_skipped_distance_checks"] =
        metrics.GetCounter("kmeans/skipped_distance_checks").value();
    bench_rows.push_back(common::Json(std::move(row)));
  }
  std::printf("assessor: %s (%.1f s)\n", name, sweep_seconds);
  std::printf("%-4s %-10s %-14s %-10s %-10s\n", "K", "Accuracy",
              "AVG Precision", "AVG Recall", "composite");
  for (const auto& candidate : result->candidates) {
    if (candidate.skipped()) {
      std::printf("%-4d skipped: %s\n", candidate.k,
                  candidate.status.message().c_str());
      continue;
    }
    std::printf("%-4d %-10.2f %-14.2f %-10.2f %-10.3f%s\n", candidate.k,
                100.0 * candidate.accuracy,
                100.0 * candidate.avg_precision,
                100.0 * candidate.avg_recall, candidate.composite,
                candidate.k == result->best_k() ? "  <== selected" : "");
  }
  std::printf("\n");
  return 0;
}

int Run() {
  common::WallTimer timer;
  std::printf("=== Ablation A3: robustness assessor (decision tree vs "
              "naive Bayes) ===\n");
  dataset::CohortConfig config = dataset::PaperScaleConfig();
  config.num_patients = SmokeMode() ? 400 : 2000;  // Keeps 10-fold CV brisk.
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) return 1;
  std::vector<bool> mask =
      transform::TopFractionExamsMask(cohort->log, 0.40);
  transform::VsmOptions vsm_options{transform::VsmWeighting::kTfIdf,
                                    transform::VsmNormalization::kL2};
  transform::Matrix vsm =
      transform::BuildVsm(cohort->log.FilterExamTypes(mask), vsm_options);

  common::Json::Array bench_rows;
  if (RunModel(vsm, core::RobustnessModel::kDecisionTree,
               "decision tree (paper's choice)", bench_rows) != 0) {
    return 1;
  }
  if (RunModel(vsm, core::RobustnessModel::kNaiveBayes,
               "Gaussian naive Bayes", bench_rows) != 0) {
    return 1;
  }
  if (RunModel(vsm, core::RobustnessModel::kNearestNeighbors,
               "k-nearest neighbours (k=5)", bench_rows) != 0) {
    return 1;
  }
  const std::string metrics_path = "bench_optimizer_ablation_metrics.json";
  if (common::MetricsRegistry::Default().WriteJsonFile(metrics_path).ok()) {
    std::printf("[optimizer_ablation] metrics written to %s\n",
                metrics_path.c_str());
  }

  common::Json::Object doc;
  doc["bench"] = "optimizer_sweep";
  {
    common::Json::Object machine;
    machine["hardware_threads"] = static_cast<int64_t>(
        common::ThreadPool::Shared().num_threads());
    doc["machine"] = common::Json(std::move(machine));
  }
  {
    common::Json::Object cfg;
    cfg["rows"] = static_cast<int64_t>(vsm.rows());
    cfg["cols"] = static_cast<int64_t>(vsm.cols());
    cfg["smoke"] = SmokeMode();
    doc["config"] = common::Json(std::move(cfg));
  }
  doc["results"] = common::Json(std::move(bench_rows));
  const std::string bench_path = "BENCH_optimizer.json";
  std::ofstream out(bench_path);
  out << common::Json(std::move(doc)).Pretty() << "\n";
  if (!out) {
    std::printf("failed to write %s\n", bench_path.c_str());
    return 1;
  }
  std::printf("[optimizer_ablation] results written to %s\n",
              bench_path.c_str());
  std::printf("[optimizer_ablation] total time: %.1f s\n\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace

int main() { return Run(); }
