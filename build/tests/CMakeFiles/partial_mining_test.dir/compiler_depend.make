# Empty compiler generated dependencies file for partial_mining_test.
# This may be replaced when dependencies are built.
