file(REMOVE_RECURSE
  "CMakeFiles/elbow_correlations_test.dir/elbow_correlations_test.cc.o"
  "CMakeFiles/elbow_correlations_test.dir/elbow_correlations_test.cc.o.d"
  "elbow_correlations_test"
  "elbow_correlations_test.pdb"
  "elbow_correlations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elbow_correlations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
