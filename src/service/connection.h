// One client connection on the server's event loop.
//
// Owns the non-blocking socket plus its read/write buffers and drives
// the NDJSON framing: bytes in, complete request lines out (to the
// server's handler), response bytes queued back with partial-write
// resumption. A client may pipeline many request lines; they are
// dispatched strictly in order, and while a `result` wait is parked
// (PauseRequests) no further pipelined line is consumed — the unread
// socket backlog is the natural backpressure.
//
// Threading: every method runs on the event-loop thread. The server
// owns Connection objects and is the only caller; a Connection never
// destroys itself — it flips closed() and the server reaps it.
#ifndef ADAHEALTH_SERVICE_CONNECTION_H_
#define ADAHEALTH_SERVICE_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "service/event_loop.h"
#include "service/net_socket.h"

namespace adahealth {
namespace service {

class Connection {
 public:
  /// Receives one complete request line (no trailing newline). The
  /// handler either enqueues a response synchronously or parks the
  /// connection with PauseRequests() and responds later.
  using RequestHandler = std::function<void(Connection&, std::string line)>;

  Connection(int64_t id, FileDescriptor fd, EventLoop* loop,
             size_t max_line_bytes);
  /// Unwatches and releases the socket if still open.
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers the socket with the event loop. `dispatcher` is the
  /// loop callback (the server routes it back to HandleEvents so it
  /// can reap the connection afterwards).
  [[nodiscard]] common::Status Register(
      std::function<void(uint32_t)> dispatcher, RequestHandler on_request);

  /// Drives one epoll readiness notification: reads until EAGAIN,
  /// dispatches buffered request lines, flushes pending output.
  void HandleEvents(uint32_t events);

  /// Queues response bytes and flushes as much as the socket accepts
  /// now; the rest resumes on EPOLLOUT.
  void EnqueueResponse(std::string data);

  /// Parks the connection: buffered and future request lines wait
  /// until ResumeRequests(). Reading interest is dropped, so a client
  /// flooding pipelined requests during a park is throttled by TCP.
  void PauseRequests();

  /// Ends a park and dispatches any buffered pipelined lines.
  void ResumeRequests();

  /// Graceful teardown: consume no further requests, flush what is
  /// queued, then release the socket.
  void StartDrain();

  /// Immediate teardown (idle eviction, fatal errors): drops buffered
  /// output and releases the socket now.
  void CloseNow();

  [[nodiscard]] int64_t id() const { return id_; }
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] bool awaiting() const { return awaiting_; }
  [[nodiscard]] std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }

 private:
  void HandleReadable();
  void ProcessBuffered();
  void DispatchLine(std::string line);
  /// The satellite-2 guard: a line that exceeds max_line_bytes_ fails
  /// the connection with RESOURCE_EXHAUSTED instead of growing the
  /// buffer without bound.
  void FailOversizedLine();
  void FlushOutput();
  /// Recomputes the epoll interest mask and applies it on change.
  void UpdateInterest();

  const int64_t id_;
  FileDescriptor fd_;
  EventLoop* loop_;
  RequestHandler on_request_;
  const size_t max_line_bytes_;

  std::string inbuf_;
  size_t scan_pos_ = 0;  // inbuf_ prefix already scanned for '\n'.
  std::string outbuf_;

  bool awaiting_ = false;
  bool peer_eof_ = false;
  bool final_line_dispatched_ = false;
  bool close_after_flush_ = false;
  bool closed_ = false;
  uint32_t interest_ = 0;

  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_CONNECTION_H_
