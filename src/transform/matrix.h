// Dense row-major matrix of doubles.
//
// The VSM representation of the paper's cohort (6,380 x 159) fits
// comfortably in dense form; the clustering algorithms operate on this
// type. A CSR companion lives in transform/sparse_matrix.h.
#ifndef ADAHEALTH_TRANSFORM_MATRIX_H_
#define ADAHEALTH_TRANSFORM_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace adahealth {
namespace transform {

/// Row-major dense matrix. Rows are observation vectors (patients).
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t row, size_t col);
  double At(size_t row, size_t col) const;

  /// Contiguous view of one row.
  std::span<double> Row(size_t row);
  std::span<const double> Row(size_t row) const;

  const std::vector<double>& data() const { return data_; }

  /// Returns the column-wise mean vector. Requires rows() > 0.
  std::vector<double> ColumnMeans() const;

  /// L2-normalizes each row in place; zero rows are left unchanged.
  void L2NormalizeRows();

  /// Returns a copy containing only the rows in `row_ids` (in order).
  Matrix SelectRows(const std::vector<size_t>& row_ids) const;

  /// Returns a copy containing only the columns in `col_ids` (in order).
  Matrix SelectColumns(const std::vector<size_t>& col_ids) const;

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two equal-length vectors.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Squared L2 norm of each row of `m` (cached once, reused by the
/// fused distance kernel across iterations).
std::vector<double> RowSquaredNorms(const Matrix& m);

/// Fused batch distance kernel: writes into `out[c]` the squared
/// Euclidean distance from `point` to row c of `centroids`, computed
/// in the ‖x‖² + ‖c‖² − 2·x·c form with the norms supplied by the
/// caller (`point_norm2` = ‖point‖², `centroid_norms2[c]` = ‖c‖²).
/// One pass over the centroid block per call; the inner dot product
/// dispatches at runtime to the AVX2/FMA kernel in
/// transform/simd_kernels.h (scalar fallback always available).
///
/// The fused form trades the subtract-square loop for a dot product at
/// the cost of cancellation error up to about
/// `kFusedRelativeError(dims) * (point_norm2 + centroid_norms2[c])`
/// versus the plain SquaredDistance result; exact consumers must
/// re-check candidates within that margin (see cluster/kmeans_accel).
/// `out` must have centroids.rows() capacity.
void SquaredDistanceToAll(std::span<const double> point, double point_norm2,
                          const Matrix& centroids,
                          std::span<const double> centroid_norms2,
                          std::span<double> out);

/// Conservative bound on the relative disagreement (relative to
/// ‖x‖² + ‖c‖²) between the fused kernel and SquaredDistance for
/// `dims`-dimensional inputs. Covers the rounding of both forms.
double FusedRelativeError(size_t dims);

/// Dot product of two equal-length vectors.
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double Norm(std::span<const double> a);

/// Cosine similarity; 0 when either vector is zero.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

}  // namespace transform
}  // namespace adahealth

#endif  // ADAHEALTH_TRANSFORM_MATRIX_H_
