#include "common/string_util.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace common {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsSplit) {
  std::vector<std::string> parts{"alpha", "beta", "gamma"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nothing"), "nothing");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 42!"), "mixed 42!");
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseInt64Test, RejectsOverflow) {
  EXPECT_EQ(ParseInt64("99999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("k=%d sse=%.2f", 8, 2550.0), "k=8 sse=2550.00");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace common
}  // namespace adahealth
