// Domain example 3 — the self-learning loop of §III: the K-DB
// accumulates feedback from different physician personas; for a new
// dataset, ADA-HEALTH identifies the viable end-goals and predicts
// which ones each user will find interesting; the knowledge ranker
// then adapts an item ordering to live feedback.
#include <cstdio>

#include "common/check.h"
#include "core/endgoal.h"
#include "core/feedback_sim.h"
#include "core/ranking.h"
#include "dataset/synthetic_cohort.h"
#include "kdb/database.h"

int main() {
  using namespace adahealth;
  using core::EndGoal;

  // --- Accumulate per-persona feedback on past datasets in the K-DB.
  kdb::Database db;
  db.EnsureAdaHealthSchema();
  kdb::Collection& feedback = db.GetOrCreate(kdb::Schema::kFeedback);

  std::vector<core::PersonaConfig> personas = {
      core::DiabetologistPersona(), core::ClinicalResearcherPersona(),
      core::HospitalAdministratorPersona()};
  common::Rng rng(404);
  for (size_t p = 0; p < personas.size(); ++p) {
    core::FeedbackSimulator oracle(personas[p], 1000 + p);
    for (int d = 0; d < 40; ++d) {
      dataset::CohortConfig config = dataset::TestScaleConfig();
      config.num_patients =
          120 + static_cast<int32_t>(rng.UniformInt(0, 400));
      config.mean_records_per_patient = rng.UniformDouble(3.0, 18.0);
      config.zipf_exponent = rng.UniformDouble(0.3, 1.5);
      config.seed = rng.NextUint64();
      auto past = dataset::SyntheticCohortGenerator(config).Generate();
      if (!past.ok()) return 1;
      stats::MetaFeatures features =
          stats::ComputeMetaFeatures(past->log);
      for (int32_t g = 0; g < core::kNumEndGoals; ++g) {
        EndGoal goal = static_cast<EndGoal>(g);
        feedback.Insert(core::MakeGoalFeedbackDocument(
            "past-" + std::to_string(d), personas[p].name, features, goal,
            oracle.LabelGoal(features, goal)));
      }
    }
  }
  std::printf("K-DB feedback collection: %zu interaction records from %zu "
              "personas\n\n",
              feedback.size(), personas.size());

  // --- A new dataset arrives.
  auto cohort =
      dataset::SyntheticCohortGenerator(dataset::TestScaleConfig())
          .Generate();
  if (!cohort.ok()) return 1;
  stats::MetaFeatures features = stats::ComputeMetaFeatures(cohort->log);

  // --- Per-persona recommendations (train on that persona's feedback).
  for (const core::PersonaConfig& persona : personas) {
    kdb::Collection personal("feedback_subset");
    for (const kdb::Document& document :
         feedback.Find(kdb::Query().Eq("user",
                                       common::Json(persona.name)))) {
      kdb::Document copy = document;
      ADA_CHECK_OK(personal.Restore(std::move(copy)));
    }
    core::EndGoalEngine engine;
    if (!engine.TrainFromFeedback(personal).ok()) {
      std::printf("%s: not enough diverse feedback to train\n",
                  persona.name.c_str());
      continue;
    }
    auto recommendations = engine.RecommendGoals(features);
    if (!recommendations.ok()) return 1;
    std::printf("recommendations for %s:\n", persona.name.c_str());
    for (const auto& recommendation : recommendations.value()) {
      std::printf("  %-24s interest: %-6s (%s)\n",
                  core::EndGoalName(recommendation.viable.goal),
                  core::InterestName(recommendation.predicted_interest),
                  recommendation.viable.rationale.c_str());
    }
    std::printf("\n");
  }

  // --- Knowledge navigation: a feedback round reorders items.
  core::KnowledgeRanker ranker;
  std::vector<core::KnowledgeItem> items;
  for (int i = 0; i < 6; ++i) {
    core::KnowledgeItem item;
    item.id = "item:" + std::to_string(i);
    item.kind = i % 2 == 0 ? "cluster" : "rule";
    item.goal = i % 2 == 0 ? EndGoal::kPatientGrouping
                           : EndGoal::kInteractionDiscovery;
    item.quality = 0.4 + 0.1 * i;
    item.description = std::string(i % 2 == 0 ? "patient group" : "rule") +
                       " #" + std::to_string(i);
    items.push_back(item);
  }
  if (!ranker.AddItems(items).ok()) return 1;
  std::printf("initial ranking: ");
  for (const auto& item : ranker.Ranked()) {
    std::printf("%s ", item.id.c_str());
  }
  // The user loves rules and dislikes the top cluster.
  ADA_CHECK_OK(ranker.RecordFeedback("item:1", core::Interest::kHigh));
  ADA_CHECK_OK(ranker.RecordFeedback("item:4", core::Interest::kLow));
  std::printf("\nafter feedback:  ");
  for (const auto& item : ranker.Ranked()) {
    std::printf("%s ", item.id.c_str());
  }
  std::printf("\n");
  return 0;
}
