// Synthetic diabetic-cohort generator.
//
// The paper evaluates on a proprietary anonymized examination log
// (6,380 diabetic patients, 95,788 records, 159 exam types, ages 4–95,
// one year). This generator produces a log with the same shape:
//
//  * Exam-type marginal frequencies follow a Zipf law (exponent 1.0 by
//    default), which reproduces the paper's coverage curve: the top
//    20% of exam types by frequency cover ~70% of the records and the
//    top 40% cover ~85% (§IV-B), and gives the "inherently sparse
//    distribution" the paper emphasizes.
//  * Patients belong to one of `num_profiles` latent clinical profiles
//    (well-controlled, cardiovascular, retinopathy, nephropathy,
//    neuropathy, foot complication, newly diagnosed, multi-morbid).
//    Each profile boosts the sampling weight of its signature exam
//    groups, creating the recoverable group structure that drives the
//    paper's K-means experiments (Table I selects K = 8).
//
// Generation is fully deterministic given the seed.
#ifndef ADAHEALTH_DATASET_SYNTHETIC_COHORT_H_
#define ADAHEALTH_DATASET_SYNTHETIC_COHORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/exam_log.h"
#include "dataset/taxonomy.h"

namespace adahealth {
namespace dataset {

/// Parameters of the synthetic cohort. Defaults match the paper's
/// dataset scale.
struct CohortConfig {
  /// Number of patients in the cohort.
  int32_t num_patients = 6380;
  /// Number of distinct examination types.
  int32_t num_exam_types = 159;
  /// Expected records per patient (6380 * 15.015 ~= 95,788 records).
  double mean_records_per_patient = 15.015;
  /// Number of latent clinical profiles (paper's optimum: K = 8).
  int32_t num_profiles = 8;
  /// Zipf exponent of the exam-type popularity law. The default is
  /// calibrated so the top 20% / 40% of exam types cover ~70% / ~85%
  /// of the records (paper §IV-B).
  double zipf_exponent = 1.20;
  /// Peak multiplier applied to the weight of a profile's signature
  /// exams; the effective boost grows with the exam's within-group
  /// specialization rank (routine panels carry no profile signal).
  double profile_boost = 12.0;
  /// Per-patient heterogeneity: variance of the multiplicative gamma
  /// noise applied to each patient's exam-group propensities (mean 1).
  /// 0 disables it; higher values blur the latent profiles, mimicking
  /// the individual variability of real clinical histories.
  double patient_heterogeneity = 0.35;
  /// Days covered by the log (paper: one year).
  int32_t num_days = 365;
  /// RNG seed; identical seeds produce identical cohorts.
  uint64_t seed = 20160516;  // ICDEW'16 workshop date.
};

/// A generated cohort: the examination log plus the taxonomy used to
/// generate it and human-readable profile names.
struct Cohort {
  ExamLog log;
  Taxonomy taxonomy;
  std::vector<std::string> profile_names;
};

/// Generates a synthetic diabetic cohort.
class SyntheticCohortGenerator {
 public:
  explicit SyntheticCohortGenerator(CohortConfig config)
      : config_(config) {}

  /// Validates the config and generates the cohort.
  [[nodiscard]] common::StatusOr<Cohort> Generate() const;

  const CohortConfig& config() const { return config_; }

 private:
  CohortConfig config_;
};

/// Config matching the paper's dataset scale (the default CohortConfig).
CohortConfig PaperScaleConfig();

/// A reduced config (400 patients, 48 exam types, 4 profiles) for fast
/// unit tests; preserves the qualitative structure.
CohortConfig TestScaleConfig();

}  // namespace dataset
}  // namespace adahealth

#endif  // ADAHEALTH_DATASET_SYNTHETIC_COHORT_H_
