#include "ml/naive_bayes.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace adahealth {
namespace ml {
namespace {

using transform::Matrix;

TEST(NaiveBayesTest, SeparatesGaussianBlobs) {
  test::Blobs train = test::MakeBlobs({{0.0, 0.0}, {5.0, 5.0}}, 60, 0.8, 61);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(train.points, train.labels, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{0.2, -0.1}), 0);
  EXPECT_EQ(model.Predict(std::vector<double>{5.3, 4.8}), 1);
}

TEST(NaiveBayesTest, GeneralizesOnHeldOut) {
  test::Blobs train = test::MakeBlobs(
      {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}}, 60, 0.6, 63);
  test::Blobs held_out = test::MakeBlobs(
      {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}}, 40, 0.6, 64);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(train.points, train.labels, 3).ok());
  std::vector<int32_t> predicted = model.PredictBatch(held_out.points);
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == held_out.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / predicted.size(), 0.95);
}

TEST(NaiveBayesTest, PriorsBreakTiesTowardFrequentClass) {
  // Identical likelihoods, imbalanced priors.
  Matrix features(10, 1, 0.0);
  std::vector<int32_t> labels{0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(features, labels, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{0.0}), 0);
}

TEST(NaiveBayesTest, HandlesConstantFeatures) {
  Matrix features(6, 2);
  std::vector<int32_t> labels{0, 0, 0, 1, 1, 1};
  for (size_t i = 0; i < 6; ++i) {
    features.At(i, 0) = i < 3 ? 0.0 : 1.0;
    features.At(i, 1) = 42.0;  // Constant everywhere.
  }
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(features, labels, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{0.0, 42.0}), 0);
  EXPECT_EQ(model.Predict(std::vector<double>{1.0, 42.0}), 1);
}

TEST(NaiveBayesTest, UnseenClassNeverPredicted) {
  Matrix features(4, 1);
  for (size_t i = 0; i < 4; ++i) features.At(i, 0) = static_cast<double>(i);
  std::vector<int32_t> labels{0, 0, 2, 2};  // Class 1 absent.
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(features, labels, 3).ok());
  for (double x : {-1.0, 0.5, 2.5, 9.0}) {
    EXPECT_NE(model.Predict(std::vector<double>{x}), 1);
  }
}

TEST(NaiveBayesTest, RejectsInvalidInput) {
  Matrix features(3, 1, 1.0);
  GaussianNaiveBayes model;
  EXPECT_FALSE(model.Fit(features, {0, 1}, 2).ok());
  EXPECT_FALSE(model.Fit(features, {0, 1, 9}, 2).ok());
  EXPECT_FALSE(model.Fit(features, {0, 1, 1}, 0).ok());
  EXPECT_FALSE(model.Fit(Matrix(), {}, 2).ok());
}

}  // namespace
}  // namespace ml
}  // namespace adahealth
