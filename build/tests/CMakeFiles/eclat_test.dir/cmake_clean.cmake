file(REMOVE_RECURSE
  "CMakeFiles/eclat_test.dir/eclat_test.cc.o"
  "CMakeFiles/eclat_test.dir/eclat_test.cc.o.d"
  "eclat_test"
  "eclat_test.pdb"
  "eclat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
