#include "service/client.h"

#include <memory>
#include <utility>

#include "service/protocol.h"

namespace adahealth {
namespace service {

using common::Json;
using common::StatusOr;

StatusOr<AnalysisClient> AnalysisClient::Connect(uint16_t port) {
  ADA_ASSIGN_OR_RETURN(FileDescriptor connection, ConnectLoopback(port));
  AnalysisClient client;
  client.connection_ =
      std::make_unique<FileDescriptor>(std::move(connection));
  client.reader_ = std::make_unique<LineReader>(*client.connection_);
  return client;
}

StatusOr<Json> AnalysisClient::Call(const Json::Object& request) {
  ADA_RETURN_IF_ERROR(SendAll(*connection_, Json(request).Dump() + "\n"));
  ADA_ASSIGN_OR_RETURN(std::string line, reader_->ReadLine());
  return ParseResponse(line);
}

StatusOr<Json> AnalysisClient::Call(const std::string& verb) {
  Json::Object request;
  request["verb"] = verb;
  return Call(request);
}

}  // namespace service
}  // namespace adahealth
