#include "common/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace adahealth {
namespace common {
namespace {

using Rows = std::vector<std::vector<std::string>>;

TEST(ParseCsvTest, SimpleRows) {
  auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(ParseCsvTest, TrailingRowWithoutNewline) {
  auto rows = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(ParseCsvTest, QuotedFieldWithDelimiter) {
  auto rows = ParseCsv("\"a,b\",c\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"a,b", "c"}}));
}

TEST(ParseCsvTest, EscapedQuotes) {
  auto rows = ParseCsv("\"say \"\"hi\"\"\",x\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"say \"hi\"", "x"}}));
}

TEST(ParseCsvTest, EmbeddedNewlineInQuotedField) {
  auto rows = ParseCsv("\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"line1\nline2", "x"}}));
}

TEST(ParseCsvTest, CrLfTerminators) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(ParseCsvTest, EmptyFields) {
  auto rows = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"a", "", "c"}, {"", "", ""}}));
}

TEST(ParseCsvTest, CustomDelimiter) {
  auto rows = ParseCsv("a;b;c\n", ';');
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{{"a", "b", "c"}}));
}

TEST(ParseCsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"oops\n").ok());
}

TEST(ParseCsvTest, RejectsStrayQuote) {
  EXPECT_FALSE(ParseCsv("ab\"cd,e\n").ok());
}

TEST(WriteCsvTest, QuotesOnlyWhenNeeded) {
  Rows rows{{"plain", "with,comma", "with\"quote", "with\nnewline"}};
  EXPECT_EQ(WriteCsv(rows),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(WriteCsvTest, RoundTrip) {
  Rows rows{{"a", "b,c", "d\"e\"", ""}, {"1", "2\n3", "x", "y"}};
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), rows);
}

TEST(FileIoTest, WriteAndReadBack) {
  std::string path = testing::TempDir() + "/csv_io_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  auto contents = ReadFileToString("/nonexistent/definitely/missing.txt");
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace common
}  // namespace adahealth
