// Compressed sparse row (CSR) matrix.
//
// The paper stresses that medical logs are "inherently sparse"; the
// VSM of a large cohort is mostly zeros. CsrMatrix stores only the
// non-zero entries and supports the distance/similarity kernels needed
// by clustering quality metrics.
#ifndef ADAHEALTH_TRANSFORM_SPARSE_MATRIX_H_
#define ADAHEALTH_TRANSFORM_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "transform/matrix.h"

namespace adahealth {
namespace transform {

/// One non-zero entry of a sparse row.
struct SparseEntry {
  uint32_t column = 0;
  double value = 0.0;

  friend bool operator==(const SparseEntry& a, const SparseEntry& b) = default;
};

/// Immutable CSR matrix built row by row.
class CsrMatrix {
 public:
  /// Incremental builder; append rows in order.
  class Builder {
   public:
    explicit Builder(size_t cols) : cols_(cols) {}

    /// Appends a row given (column, value) pairs; columns must be
    /// strictly increasing and < cols. Zero values are dropped.
    void AddRow(const std::vector<SparseEntry>& entries);

    CsrMatrix Build() &&;

   private:
    size_t cols_;
    std::vector<size_t> row_offsets_{0};
    std::vector<SparseEntry> entries_;
  };

  size_t rows() const { return row_offsets_.size() - 1; }
  size_t cols() const { return cols_; }
  size_t num_nonzeros() const { return entries_.size(); }

  /// Entries of row `row` as a contiguous span.
  std::span<const SparseEntry> Row(size_t row) const;

  /// Converts to a dense matrix.
  Matrix ToDense() const;

  /// Builds from a dense matrix, dropping zeros.
  static CsrMatrix FromDense(const Matrix& dense);

  /// Fraction of cells that are non-zero.
  double Density() const;

 private:
  CsrMatrix(size_t cols, std::vector<size_t> row_offsets,
            std::vector<SparseEntry> entries)
      : cols_(cols),
        row_offsets_(std::move(row_offsets)),
        entries_(std::move(entries)) {}

  size_t cols_ = 0;
  std::vector<size_t> row_offsets_;
  std::vector<SparseEntry> entries_;
};

/// Dot product of two sparse rows (two-pointer merge).
double SparseDot(std::span<const SparseEntry> a,
                 std::span<const SparseEntry> b);

/// Cosine similarity of two sparse rows; 0 when either is empty.
double SparseCosineSimilarity(std::span<const SparseEntry> a,
                              std::span<const SparseEntry> b);

}  // namespace transform
}  // namespace adahealth

#endif  // ADAHEALTH_TRANSFORM_SPARSE_MATRIX_H_
