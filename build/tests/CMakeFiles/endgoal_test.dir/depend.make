# Empty dependencies file for endgoal_test.
# This may be replaced when dependencies are built.
