// Concurrency coverage for the epoll-based NDJSON server: many
// simultaneous clients, pipelining, slow-loris and parked-wait clients
// that must not stall anyone else, idle eviction, connection shedding,
// server-side result-wait caps, and oversized-line rejection. Every
// test here would hang or misbehave on a serial accept-handle-close
// server, which is exactly the regression this file guards against.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "common/json.h"
#include "common/status.h"
#include "core/report.h"
#include "core/session.h"
#include "kdb/database.h"
#include "service/client.h"
#include "service/net_socket.h"
#include "service/protocol.h"
#include "service/server.h"

namespace adahealth {
namespace {

using common::Json;
using common::StatusCode;

/// A small fast synthetic submit body (mirrors service_server_test).
Json::Object SubmitBody(int64_t seed, const std::string& dataset_id) {
  Json::Object synthetic;
  synthetic["patients"] = static_cast<int64_t>(100);
  synthetic["exam_types"] = static_cast<int64_t>(20);
  synthetic["profiles"] = static_cast<int64_t>(3);
  synthetic["seed"] = seed;
  Json::Object options;
  options["sample_fraction"] = 0.4;
  options["candidate_ks"] = Json(Json::Array{Json(3), Json(4)});
  options["cv_folds"] = static_cast<int64_t>(4);
  options["restarts"] = static_cast<int64_t>(1);
  Json::Object body;
  body["verb"] = "submit";
  body["synthetic"] = Json(std::move(synthetic));
  body["dataset_id"] = dataset_id;
  body["options"] = Json(std::move(options));
  return body;
}

std::unique_ptr<service::AnalysisServer> StartServer(
    service::ServerOptions options) {
  auto server = std::make_unique<service::AnalysisServer>(std::move(options));
  ADA_CHECK(server->Start().ok());
  return server;
}

service::AnalysisClient Connect(const service::AnalysisServer& server) {
  auto client = service::AnalysisClient::Connect(server.port());
  ADA_CHECK(client.ok());
  return std::move(client).value();
}

std::string Line(const Json::Object& request) {
  return Json(request).Dump() + "\n";
}

Json::Object ResultRequest(int64_t job_id, double wait_millis) {
  Json::Object request;
  request["verb"] = "result";
  request["job_id"] = job_id;
  if (wait_millis > 0) request["wait_millis"] = wait_millis;
  return request;
}

// ---------------------------------------------------------------------
// Fan-out: every client is served even though none has hung up yet.

TEST(C10kTest, HundredsOfPipelinedClientsAllAnswered) {
  service::ServerOptions options;
  options.max_connections = 512;
  options.scheduler.max_workers = 2;
  auto server = StartServer(options);

  // Open every connection and write every batch before reading a
  // single response: a serial accept-handle-close loop would park on
  // client 0 forever and this test would time out.
  constexpr int kClients = 120;
  constexpr int kPingsPerClient = 5;
  std::vector<service::FileDescriptor> connections;
  connections.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    auto connection = service::ConnectLoopback(server->port());
    ASSERT_TRUE(connection.ok()) << "client " << i;
    connections.push_back(std::move(connection).value());
  }
  Json::Object ping;
  ping["verb"] = "ping";
  std::string batch;
  for (int i = 0; i < kPingsPerClient; ++i) batch += Line(ping);
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(service::SendAll(connections[i], batch).ok()) << i;
  }
  for (int i = 0; i < kClients; ++i) {
    service::LineReader reader(connections[i]);
    for (int j = 0; j < kPingsPerClient; ++j) {
      auto line = reader.ReadLine();
      ASSERT_TRUE(line.ok()) << "client " << i << " response " << j;
      auto response = service::ParseResponse(line.value());
      ASSERT_TRUE(response.ok()) << "client " << i << " response " << j;
      EXPECT_EQ(response->Find("service")->AsString(), "ada-health");
    }
  }
  server->Stop();
}

// ---------------------------------------------------------------------
// The head-of-line-blocking regression test: one client parked in a
// long `result` wait and one slow-loris client mid-line, while other
// clients complete full round trips on the same server.

TEST(C10kTest, ParkedWaitAndSlowLorisDoNotBlockOtherClients) {
  service::ServerOptions options;
  options.scheduler.max_workers = 2;
  options.scheduler.start_paused = true;
  auto server = StartServer(options);

  // Client A submits and parks inside a 60 s result wait. The
  // scheduler is paused, so nothing can finish until Resume().
  auto a_connection = service::ConnectLoopback(server->port());
  ASSERT_TRUE(a_connection.ok());
  service::LineReader a_reader(a_connection.value());
  Json::Object submit = SubmitBody(1, "c10k_park");
  ASSERT_TRUE(service::SendAll(a_connection.value(), Line(submit)).ok());
  auto a_submitted = a_reader.ReadLine();
  ASSERT_TRUE(a_submitted.ok());
  auto a_response = service::ParseResponse(a_submitted.value());
  ASSERT_TRUE(a_response.ok());
  int64_t a_job = a_response->Find("job_id")->AsInt();
  ASSERT_TRUE(
      service::SendAll(a_connection.value(), Line(ResultRequest(a_job, 60000)))
          .ok());
  // A is now parked; deliberately not reading.

  // A slow-loris client: half a request line, then silence.
  auto loris = service::ConnectLoopback(server->port());
  ASSERT_TRUE(loris.ok());
  ASSERT_TRUE(service::SendAll(loris.value(), "{\"verb\":\"pi").ok());

  // Meanwhile N other clients complete ping + submit + status round
  // trips. On the old one-connection-at-a-time server every one of
  // these would block behind client A.
  constexpr int kOthers = 8;
  std::vector<service::AnalysisClient> others;
  std::vector<int64_t> other_jobs;
  for (int i = 0; i < kOthers; ++i) {
    others.push_back(Connect(*server));
    auto pong = others.back().Call("ping");
    ASSERT_TRUE(pong.ok()) << i;
    auto submitted = others.back().Call(SubmitBody(1, "c10k_park"));
    ASSERT_TRUE(submitted.ok()) << i;
    other_jobs.push_back(submitted->Find("job_id")->AsInt());
    Json::Object status;
    status["verb"] = "status";
    status["job_id"] = other_jobs.back();
    auto state = others.back().Call(status);
    ASSERT_TRUE(state.ok()) << i;
    EXPECT_EQ(state->Find("state")->AsString(), "queued") << i;
  }

  server->scheduler().Resume();

  // Everyone finishes: the parked client first (its job was submitted
  // first), then the rest, all against the same two workers.
  auto a_result_line = a_reader.ReadLine();
  ASSERT_TRUE(a_result_line.ok());
  auto a_result = service::ParseResponse(a_result_line.value());
  ASSERT_TRUE(a_result.ok());
  EXPECT_EQ(a_result->Find("state")->AsString(), "done");
  std::string wire_report = a_result->Find("report")->AsString();

  for (int i = 0; i < kOthers; ++i) {
    auto result = others[i].Call(ResultRequest(other_jobs[i], 60000));
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_EQ(result->Find("state")->AsString(), "done") << i;
    // Identical submission: same bytes over every connection.
    EXPECT_EQ(result->Find("report")->AsString(), wire_report) << i;
  }

  // The loris connection is still alive: complete its line and get a
  // normal answer out of the buffered fragment.
  ASSERT_TRUE(service::SendAll(loris.value(), "ng\"}\n").ok());
  service::LineReader loris_reader(loris.value());
  auto loris_line = loris_reader.ReadLine();
  ASSERT_TRUE(loris_line.ok());
  EXPECT_TRUE(service::ParseResponse(loris_line.value()).ok());

  // The report that went over the wire is byte-identical to a direct
  // in-process AnalysisSession run of the same request.
  auto request = service::BuildJobRequest(Json(submit));
  ASSERT_TRUE(request.ok());
  kdb::Database db;
  core::AnalysisSession session(&db);
  const dataset::Taxonomy* taxonomy =
      request->taxonomy.has_value() ? &*request->taxonomy : nullptr;
  auto direct = session.Run(request->log, taxonomy, request->options);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(wire_report, core::RenderSessionReport(
                             direct.value(), request->options.dataset_id));
  server->Stop();
}

// ---------------------------------------------------------------------
// Pipelined requests on one connection answer strictly in order.

TEST(C10kTest, PipelinedSubmitsAnswerInOrderWithDistinctJobIds) {
  service::ServerOptions options;
  options.scheduler.start_paused = true;
  auto server = StartServer(options);
  auto client = Connect(*server);

  Json::Object ping;
  ping["verb"] = "ping";
  std::vector<Json::Object> batch = {ping, SubmitBody(3, "pipe_a"),
                                     SubmitBody(3, "pipe_b"), ping};
  auto responses = client.CallPipelined(batch);
  ASSERT_EQ(responses.size(), 4u);
  ASSERT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[0]->Find("service")->AsString(), "ada-health");
  ASSERT_TRUE(responses[1].ok());
  ASSERT_TRUE(responses[2].ok());
  int64_t first = responses[1]->Find("job_id")->AsInt();
  int64_t second = responses[2]->Find("job_id")->AsInt();
  EXPECT_LT(first, second);
  ASSERT_TRUE(responses[3].ok());

  // Keep teardown quick: the staged jobs never need to run.
  for (int64_t job : {first, second}) {
    Json::Object cancel;
    cancel["verb"] = "cancel";
    cancel["job_id"] = job;
    EXPECT_TRUE(client.Call(cancel).ok());
  }
  server->scheduler().Resume();
  server->Stop();
}

// ---------------------------------------------------------------------
// Idle eviction: silent connections are dropped, parked waiters and a
// fresh client are untouched.

TEST(C10kTest, IdleConnectionsAreEvictedButWaitersAreExempt) {
  service::ServerOptions options;
  options.idle_timeout_millis = 150;
  options.scheduler.max_workers = 1;
  options.scheduler.start_paused = true;
  auto server = StartServer(options);

  auto idle = service::ConnectLoopback(server->port());
  ASSERT_TRUE(idle.ok());

  // A waiter parked on a queued job: idle by traffic, but exempt.
  auto waiter = service::ConnectLoopback(server->port());
  ASSERT_TRUE(waiter.ok());
  service::LineReader waiter_reader(waiter.value());
  ASSERT_TRUE(
      service::SendAll(waiter.value(), Line(SubmitBody(5, "c10k_idle"))).ok());
  auto submitted = waiter_reader.ReadLine();
  ASSERT_TRUE(submitted.ok());
  auto response = service::ParseResponse(submitted.value());
  ASSERT_TRUE(response.ok());
  int64_t job = response->Find("job_id")->AsInt();
  ASSERT_TRUE(
      service::SendAll(waiter.value(), Line(ResultRequest(job, 60000))).ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  // The idle connection was closed server-side...
  service::LineReader idle_reader(idle.value());
  EXPECT_EQ(idle_reader.ReadLine().status().code(), StatusCode::kOutOfRange);

  // ...the waiter was not, and completes once the job can run.
  server->scheduler().Resume();
  auto result_line = waiter_reader.ReadLine();
  ASSERT_TRUE(result_line.ok());
  auto result = service::ParseResponse(result_line.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("state")->AsString(), "done");

  auto client = Connect(*server);
  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->Find("server")->Find("idle_disconnects")->AsInt(), 1);
  server->Stop();
}

// ---------------------------------------------------------------------
// Connection shedding at the max_connections budget.

TEST(C10kTest, ConnectionsBeyondTheBudgetAreShed) {
  service::ServerOptions options;
  options.max_connections = 4;
  auto server = StartServer(options);

  std::vector<service::AnalysisClient> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(Connect(*server));
    ASSERT_TRUE(clients.back().Call("ping").ok()) << i;
  }

  // The fifth connection is answered RESOURCE_EXHAUSTED and dropped.
  auto extra = service::ConnectLoopback(server->port());
  ASSERT_TRUE(extra.ok());
  service::LineReader extra_reader(extra.value());
  auto shed_line = extra_reader.ReadLine();
  ASSERT_TRUE(shed_line.ok());
  auto shed = service::ParseResponse(shed_line.value());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(extra_reader.ReadLine().status().code(), StatusCode::kOutOfRange);

  // Hanging up frees a slot; the server notices the EOF on its own
  // schedule, so retry briefly.
  clients.erase(clients.begin());
  bool admitted = false;
  for (int attempt = 0; attempt < 50 && !admitted; ++attempt) {
    auto replacement = service::AnalysisClient::Connect(server->port());
    if (replacement.ok() && replacement->Call("ping").ok()) {
      admitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(admitted);

  auto stats = clients.back().Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->Find("server")->Find("shed_connections")->AsInt(), 1);
  server->Stop();
}

// ---------------------------------------------------------------------
// Server-side result-wait cap: an unbounded client wait is clamped and
// the timeout error carries the job's current state.

TEST(C10kTest, UnboundedResultWaitIsCappedAndCarriesJobState) {
  service::ServerOptions options;
  options.max_result_wait_millis = 100;
  options.scheduler.start_paused = true;
  auto server = StartServer(options);

  auto connection = service::ConnectLoopback(server->port());
  ASSERT_TRUE(connection.ok());
  service::LineReader reader(connection.value());
  ASSERT_TRUE(
      service::SendAll(connection.value(), Line(SubmitBody(5, "c10k_cap")))
          .ok());
  auto submitted = reader.ReadLine();
  ASSERT_TRUE(submitted.ok());
  auto response = service::ParseResponse(submitted.value());
  ASSERT_TRUE(response.ok());
  int64_t job = response->Find("job_id")->AsInt();

  // wait_millis omitted = "wait forever". The server caps it at 100 ms.
  auto started = std::chrono::steady_clock::now();
  ASSERT_TRUE(
      service::SendAll(connection.value(), Line(ResultRequest(job, 0))).ok());
  auto timeout_line = reader.ReadLine();
  ASSERT_TRUE(timeout_line.ok());
  double waited_millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  EXPECT_LT(waited_millis, 5000.0);

  // ParseResponse surfaces the error status; the raw line additionally
  // carries the job's state so a client can tell "still queued" from
  // "gone".
  EXPECT_EQ(service::ParseResponse(timeout_line.value()).status().code(),
            StatusCode::kDeadlineExceeded);
  auto raw = Json::Parse(timeout_line.value());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->Find("state")->AsString(), "queued");
  EXPECT_EQ(raw->Find("job_id")->AsInt(), job);

  // The connection survives the timeout: poll again after resuming.
  server->scheduler().Resume();
  bool done = false;
  for (int attempt = 0; attempt < 300 && !done; ++attempt) {
    ASSERT_TRUE(
        service::SendAll(connection.value(), Line(ResultRequest(job, 2000)))
            .ok());
    auto line = reader.ReadLine();
    ASSERT_TRUE(line.ok());
    auto result = service::ParseResponse(line.value());
    if (result.ok()) {
      EXPECT_EQ(result->Find("state")->AsString(), "done");
      done = true;
    }
  }
  EXPECT_TRUE(done);
  server->Stop();
}

// ---------------------------------------------------------------------
// Oversized request lines (a newline-less flood) fail the connection
// with RESOURCE_EXHAUSTED instead of growing the buffer forever.

TEST(C10kTest, NewlinelessFloodIsRejectedWithoutKillingTheServer) {
  service::ServerOptions options;
  options.max_line_bytes = 4096;
  auto server = StartServer(options);

  auto flood = service::ConnectLoopback(server->port());
  ASSERT_TRUE(flood.ok());
  std::string garbage(16384, 'x');  // 4x the cap, no newline anywhere.
  ASSERT_TRUE(service::SendAll(flood.value(), garbage).ok());
  service::LineReader flood_reader(flood.value());
  auto rejection_line = flood_reader.ReadLine();
  ASSERT_TRUE(rejection_line.ok());
  auto rejection = service::ParseResponse(rejection_line.value());
  EXPECT_EQ(rejection.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(flood_reader.ReadLine().status().code(),
            StatusCode::kOutOfRange);

  // Only the abusive connection died.
  auto client = Connect(*server);
  EXPECT_TRUE(client.Call("ping").ok());
  server->Stop();
}

}  // namespace
}  // namespace adahealth
