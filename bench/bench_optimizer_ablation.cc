// Ablation A3: the cluster-robustness assessor. The paper uses a
// decision tree ("In our first implementation, we used decision trees
// as classification model"); this bench compares it against a Gaussian
// naive Bayes assessor in the same Table-I protocol and reports which
// K each variant selects.
#include <cstdio>

#include "common/metrics.h"
#include "common/timer.h"
#include "core/optimizer.h"
#include "dataset/synthetic_cohort.h"
#include "transform/feature_select.h"
#include "transform/vsm.h"

namespace {

using namespace adahealth;

int RunModel(const transform::Matrix& vsm, core::RobustnessModel model,
             const char* name) {
  core::OptimizerOptions options;
  options.candidate_ks = {6, 7, 8, 9, 10, 12};
  options.cv_folds = 10;
  options.model = model;
  options.seed = 20160516;
  auto result = core::OptimizeClustering(vsm, options);
  if (!result.ok()) {
    std::printf("optimizer failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("assessor: %s\n", name);
  std::printf("%-4s %-10s %-14s %-10s %-10s\n", "K", "Accuracy",
              "AVG Precision", "AVG Recall", "composite");
  for (const auto& candidate : result->candidates) {
    if (candidate.skipped()) {
      std::printf("%-4d skipped: %s\n", candidate.k,
                  candidate.status.message().c_str());
      continue;
    }
    std::printf("%-4d %-10.2f %-14.2f %-10.2f %-10.3f%s\n", candidate.k,
                100.0 * candidate.accuracy,
                100.0 * candidate.avg_precision,
                100.0 * candidate.avg_recall, candidate.composite,
                candidate.k == result->best_k() ? "  <== selected" : "");
  }
  std::printf("\n");
  return 0;
}

int Run() {
  common::WallTimer timer;
  std::printf("=== Ablation A3: robustness assessor (decision tree vs "
              "naive Bayes) ===\n");
  dataset::CohortConfig config = dataset::PaperScaleConfig();
  config.num_patients = 2000;  // Reduced cohort keeps 10-fold CV brisk.
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) return 1;
  std::vector<bool> mask =
      transform::TopFractionExamsMask(cohort->log, 0.40);
  transform::VsmOptions vsm_options{transform::VsmWeighting::kTfIdf,
                                    transform::VsmNormalization::kL2};
  transform::Matrix vsm =
      transform::BuildVsm(cohort->log.FilterExamTypes(mask), vsm_options);

  if (RunModel(vsm, core::RobustnessModel::kDecisionTree,
               "decision tree (paper's choice)") != 0) {
    return 1;
  }
  if (RunModel(vsm, core::RobustnessModel::kNaiveBayes,
               "Gaussian naive Bayes") != 0) {
    return 1;
  }
  if (RunModel(vsm, core::RobustnessModel::kNearestNeighbors,
               "k-nearest neighbours (k=5)") != 0) {
    return 1;
  }
  const std::string metrics_path = "bench_optimizer_ablation_metrics.json";
  if (common::MetricsRegistry::Default().WriteJsonFile(metrics_path).ok()) {
    std::printf("[optimizer_ablation] metrics written to %s\n",
                metrics_path.c_str());
  }
  std::printf("[optimizer_ablation] total time: %.1f s\n\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace

int main() { return Run(); }
