// Horizontal sampling of patients — the horizontal dimension of the
// paper's partial-mining strategy ("partial mining can reduce the
// dataset ... by considering different subsets of the input data").
#ifndef ADAHEALTH_TRANSFORM_SAMPLING_H_
#define ADAHEALTH_TRANSFORM_SAMPLING_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dataset/exam_log.h"

namespace adahealth {
namespace transform {

/// Uniformly samples `fraction` of the patients (without replacement).
/// Result is sorted ascending. Fraction in (0, 1]; at least one patient
/// is returned when the log is non-empty.
[[nodiscard]] common::StatusOr<std::vector<dataset::PatientId>> SamplePatients(
    const dataset::ExamLog& log, double fraction, common::Rng& rng);

/// Samples `fraction` of the patients stratified by record-count
/// quartile so that high- and low-activity patients stay represented.
common::StatusOr<std::vector<dataset::PatientId>>
SamplePatientsStratifiedByActivity(const dataset::ExamLog& log,
                                   double fraction, common::Rng& rng);

/// Builds an incremental horizontal schedule: nested patient subsets of
/// the given fractions (each step is a superset of the previous one),
/// mirroring the paper's "at each step, a larger portion of data is
/// analyzed". Fractions must be strictly increasing in (0, 1].
common::StatusOr<std::vector<std::vector<dataset::PatientId>>>
BuildHorizontalSchedule(const dataset::ExamLog& log,
                        const std::vector<double>& fractions,
                        common::Rng& rng);

}  // namespace transform
}  // namespace adahealth

#endif  // ADAHEALTH_TRANSFORM_SAMPLING_H_
