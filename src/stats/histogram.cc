#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace adahealth {
namespace stats {

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), counts_(num_buckets, 0) {
  ADA_CHECK_LT(lo, hi);
  ADA_CHECK_GE(num_buckets, 1u);
}

void Histogram::Add(double value) {
  double span = hi_ - lo_;
  double position = (value - lo_) / span * static_cast<double>(counts_.size());
  int64_t bucket = static_cast<int64_t>(std::floor(position));
  bucket = std::clamp<int64_t>(bucket, 0,
                               static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bucket)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

int64_t Histogram::bucket_count(size_t bucket) const {
  ADA_CHECK_LT(bucket, counts_.size());
  return counts_[bucket];
}

double Histogram::BucketLow(size_t bucket) const {
  ADA_CHECK_LT(bucket, counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

double Histogram::BucketHigh(size_t bucket) const {
  ADA_CHECK_LT(bucket, counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ToAscii(size_t max_width) const {
  int64_t peak = 0;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t b = 0; b < counts_.size(); ++b) {
    size_t bar = peak == 0 ? 0
                           : static_cast<size_t>(
                                 std::llround(static_cast<double>(
                                                  counts_[b]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(max_width)));
    out += common::StrFormat("[%10.2f, %10.2f) %8lld |",
                             BucketLow(b), BucketHigh(b),
                             static_cast<long long>(counts_[b]));
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace stats
}  // namespace adahealth
