#include "cluster/profiles.h"

#include <gtest/gtest.h>
#include "cluster/kmeans.h"
#include "dataset/synthetic_cohort.h"
#include "transform/vsm.h"

namespace adahealth {
namespace cluster {
namespace {

struct Fixture {
  dataset::Cohort cohort;
  transform::Matrix vsm;
  Clustering clustering;
};

Fixture MakeFixture() {
  dataset::CohortConfig config = dataset::TestScaleConfig();
  config.num_exam_types = 159;
  config.patient_heterogeneity = 0.1;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  EXPECT_TRUE(cohort.ok());
  Fixture fixture{std::move(cohort).value(), {}, {}};
  fixture.vsm = transform::BuildVsm(
      fixture.cohort.log, {transform::VsmWeighting::kTfIdf,
                           transform::VsmNormalization::kL2});
  KMeansOptions options;
  options.k = 4;
  options.seed = 3;
  auto clustering = RunKMeans(fixture.vsm, options);
  EXPECT_TRUE(clustering.ok());
  fixture.clustering = std::move(clustering).value();
  return fixture;
}

TEST(ClusterProfilesTest, OneProfilePerCluster) {
  Fixture fixture = MakeFixture();
  auto profiles = BuildClusterProfiles(fixture.cohort.log, fixture.vsm,
                                       fixture.clustering);
  ASSERT_TRUE(profiles.ok());
  ASSERT_EQ(profiles->size(), 4u);
  int64_t total = 0;
  for (const ClusterProfile& profile : profiles.value()) {
    total += profile.size;
    EXPECT_GT(profile.size, 0);
    EXPECT_GT(profile.cohesion, 0.0);
    EXPECT_LE(profile.cohesion, 1.0 + 1e-9);
    EXPECT_FALSE(profile.top_by_weight.empty());
    EXPECT_FALSE(profile.top_by_lift.empty());
  }
  EXPECT_EQ(total, static_cast<int64_t>(fixture.vsm.rows()));
}

TEST(ClusterProfilesTest, WeightRankingIsDescending) {
  Fixture fixture = MakeFixture();
  auto profiles = BuildClusterProfiles(fixture.cohort.log, fixture.vsm,
                                       fixture.clustering);
  ASSERT_TRUE(profiles.ok());
  for (const ClusterProfile& profile : profiles.value()) {
    for (size_t i = 1; i < profile.top_by_weight.size(); ++i) {
      EXPECT_GE(profile.top_by_weight[i - 1].cluster_mean,
                profile.top_by_weight[i].cluster_mean);
    }
    for (size_t i = 1; i < profile.top_by_lift.size(); ++i) {
      EXPECT_GE(profile.top_by_lift[i - 1].lift,
                profile.top_by_lift[i].lift);
    }
  }
}

TEST(ClusterProfilesTest, LiftIsConsistentWithMeans) {
  Fixture fixture = MakeFixture();
  auto profiles = BuildClusterProfiles(fixture.cohort.log, fixture.vsm,
                                       fixture.clustering);
  ASSERT_TRUE(profiles.ok());
  for (const ClusterProfile& profile : profiles.value()) {
    for (const SignatureExam& exam : profile.top_by_lift) {
      ASSERT_GT(exam.global_mean, 0.0);
      EXPECT_NEAR(exam.lift, exam.cluster_mean / exam.global_mean, 1e-9);
    }
  }
}

TEST(ClusterProfilesTest, DistinctiveExamsHaveHighLift) {
  // At least one cluster must over-represent some exam by 1.5x; that is
  // the whole point of profile-structured data.
  Fixture fixture = MakeFixture();
  auto profiles = BuildClusterProfiles(fixture.cohort.log, fixture.vsm,
                                       fixture.clustering);
  ASSERT_TRUE(profiles.ok());
  double max_lift = 0.0;
  for (const ClusterProfile& profile : profiles.value()) {
    for (const SignatureExam& exam : profile.top_by_lift) {
      max_lift = std::max(max_lift, exam.lift);
    }
  }
  EXPECT_GT(max_lift, 1.5);
}

TEST(ClusterProfilesTest, TopKRespected) {
  Fixture fixture = MakeFixture();
  auto profiles = BuildClusterProfiles(fixture.cohort.log, fixture.vsm,
                                       fixture.clustering, 2);
  ASSERT_TRUE(profiles.ok());
  for (const ClusterProfile& profile : profiles.value()) {
    EXPECT_LE(profile.top_by_weight.size(), 2u);
    EXPECT_LE(profile.top_by_lift.size(), 2u);
  }
}

TEST(ClusterProfilesTest, FormatMentionsExamNames) {
  Fixture fixture = MakeFixture();
  auto profiles = BuildClusterProfiles(fixture.cohort.log, fixture.vsm,
                                       fixture.clustering);
  ASSERT_TRUE(profiles.ok());
  const ClusterProfile& profile = profiles->front();
  std::string text = FormatClusterProfile(profile, fixture.cohort.log);
  EXPECT_NE(text.find("group 0"), std::string::npos);
  EXPECT_NE(
      text.find(fixture.cohort.log.dictionary().Name(
          profile.top_by_lift.front().exam)),
      std::string::npos);
}

TEST(ClusterProfilesTest, RejectsMismatchedShapes) {
  Fixture fixture = MakeFixture();
  transform::Matrix wrong_rows(3, fixture.vsm.cols());
  EXPECT_FALSE(BuildClusterProfiles(fixture.cohort.log, wrong_rows,
                                    fixture.clustering)
                   .ok());
  transform::Matrix wrong_cols(fixture.vsm.rows(), 3);
  EXPECT_FALSE(BuildClusterProfiles(fixture.cohort.log, wrong_cols,
                                    fixture.clustering)
                   .ok());
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
