# Empty dependencies file for bench_patient_sampling.
# This may be replaced when dependencies are built.
