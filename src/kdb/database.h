// The K-DB: a named set of collections plus the six-collection
// ADA-HEALTH schema from the paper (§IV-A): "(1) the original dataset,
// (2) the transformed dataset after preprocessing and data
// transformation, (3) statistical descriptors to model the data
// distribution, (4-5) interesting and selected knowledge items
// discovered through different data mining algorithms, and (6) user
// interaction feedbacks."
#ifndef ADAHEALTH_KDB_DATABASE_H_
#define ADAHEALTH_KDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kdb/collection.h"
#include "kdb/storage.h"

namespace adahealth {
namespace kdb {

/// Canonical names of the six ADA-HEALTH collections.
struct Schema {
  static constexpr const char* kRawDatasets = "raw_datasets";
  static constexpr const char* kTransformedDatasets =
      "transformed_datasets";
  static constexpr const char* kDescriptors = "descriptors";
  static constexpr const char* kKnowledgeItems = "knowledge_items";
  static constexpr const char* kSelectedKnowledge = "selected_knowledge";
  static constexpr const char* kFeedback = "feedback";

  /// All six names in schema order.
  static std::vector<std::string> CollectionNames();
};

/// An in-process database of named collections with directory
/// persistence. Collection pointers remain valid for the lifetime of
/// the Database.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the collection, creating it if absent.
  Collection& GetOrCreate(const std::string& name);

  /// Returns the collection or NOT_FOUND.
  [[nodiscard]] common::StatusOr<Collection*> Get(const std::string& name);

  bool Has(const std::string& name) const {
    return collections_.contains(name);
  }

  std::vector<std::string> CollectionNames() const;

  /// Creates all six ADA-HEALTH collections (idempotent) and the
  /// default indexes (dataset_id on every derived collection).
  void EnsureAdaHealthSchema();

  /// Persists every collection to `<directory>/<name>.jsonl`. The
  /// directory must exist.
  [[nodiscard]] common::Status SaveTo(const std::string& directory) const;

  /// Loads every `names` collection from the directory, replacing any
  /// in-memory collections of the same name.
  [[nodiscard]] common::Status LoadFrom(const std::string& directory,
                          const std::vector<std::string>& names);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_DATABASE_H_
