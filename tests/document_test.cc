#include "kdb/document.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace kdb {
namespace {

using common::Json;

TEST(DocumentTest, EmptyDocumentIsObject) {
  Document document;
  EXPECT_TRUE(document.json().is_object());
  EXPECT_EQ(document.id(), 0);
  EXPECT_EQ(document.Dump(), "{}");
}

TEST(DocumentTest, SetAndGetTopLevel) {
  Document document;
  document.Set("name", Json("hba1c"));
  document.Set("count", Json(int64_t{3}));
  ASSERT_NE(document.Get("name"), nullptr);
  EXPECT_EQ(document.Get("name")->AsString(), "hba1c");
  EXPECT_EQ(document.Get("count")->AsInt(), 3);
  EXPECT_EQ(document.Get("missing"), nullptr);
}

TEST(DocumentTest, DottedPathLookup) {
  auto document = Document::Parse(
      R"({"metrics": {"sse": 2550.0, "nested": {"deep": true}}})");
  ASSERT_TRUE(document.ok());
  ASSERT_NE(document->Get("metrics.sse"), nullptr);
  EXPECT_DOUBLE_EQ(document->Get("metrics.sse")->AsDouble(), 2550.0);
  EXPECT_TRUE(document->Get("metrics.nested.deep")->AsBool());
  EXPECT_EQ(document->Get("metrics.missing"), nullptr);
  EXPECT_EQ(document->Get("metrics.sse.too_far"), nullptr);
}

TEST(DocumentTest, SetOverwrites) {
  Document document;
  document.Set("x", Json(int64_t{1}));
  document.Set("x", Json(int64_t{2}));
  EXPECT_EQ(document.Get("x")->AsInt(), 2);
}

TEST(DocumentTest, FromJsonRequiresObject) {
  EXPECT_TRUE(Document::FromJson(Json(Json::Object{})).ok());
  EXPECT_FALSE(Document::FromJson(Json(int64_t{5})).ok());
  EXPECT_FALSE(Document::FromJson(Json(Json::Array{})).ok());
}

TEST(DocumentTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Document::Parse("{").ok());
  EXPECT_FALSE(Document::Parse("[1,2]").ok());
}

TEST(DocumentTest, IdReadsIntegerUnderscoreId) {
  auto document = Document::Parse(R"({"_id": 42, "x": 1})");
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->id(), 42);
  auto stringy = Document::Parse(R"({"_id": "not-an-int"})");
  ASSERT_TRUE(stringy.ok());
  EXPECT_EQ(stringy->id(), 0);
}

TEST(DocumentTest, DumpParseRoundTrip) {
  Document original;
  original.Set("list", Json(Json::Array{Json(1), Json("two")}));
  original.Set("flag", Json(true));
  auto reparsed = Document::Parse(original.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), original);
}

}  // namespace
}  // namespace kdb
}  // namespace adahealth
