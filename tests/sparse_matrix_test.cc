#include "transform/sparse_matrix.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace transform {
namespace {

CsrMatrix MakeMatrix() {
  CsrMatrix::Builder builder(4);
  builder.AddRow({{0, 1.0}, {2, 2.0}});
  builder.AddRow({});
  builder.AddRow({{1, 3.0}, {2, 4.0}, {3, 5.0}});
  return std::move(builder).Build();
}

TEST(CsrMatrixTest, Shape) {
  CsrMatrix m = MakeMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.num_nonzeros(), 5u);
}

TEST(CsrMatrixTest, RowAccess) {
  CsrMatrix m = MakeMatrix();
  auto row0 = m.Row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].column, 0u);
  EXPECT_DOUBLE_EQ(row0[1].value, 2.0);
  EXPECT_EQ(m.Row(1).size(), 0u);
}

TEST(CsrMatrixTest, BuilderDropsExplicitZeros) {
  CsrMatrix::Builder builder(2);
  builder.AddRow({{0, 0.0}, {1, 1.0}});
  CsrMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.num_nonzeros(), 1u);
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  CsrMatrix m = MakeMatrix();
  Matrix dense = m.ToDense();
  EXPECT_DOUBLE_EQ(dense.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(dense.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(dense.At(2, 3), 5.0);
  CsrMatrix back = CsrMatrix::FromDense(dense);
  EXPECT_EQ(back.num_nonzeros(), m.num_nonzeros());
  for (size_t r = 0; r < m.rows(); ++r) {
    auto a = m.Row(r);
    auto b = back.Row(r);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CsrMatrixTest, Density) {
  CsrMatrix m = MakeMatrix();
  EXPECT_DOUBLE_EQ(m.Density(), 5.0 / 12.0);
}

TEST(SparseOpsTest, SparseDotMergesColumns) {
  CsrMatrix m = MakeMatrix();
  // Row 0 = [1,0,2,0], row 2 = [0,3,4,5] -> dot = 8.
  EXPECT_DOUBLE_EQ(SparseDot(m.Row(0), m.Row(2)), 8.0);
  EXPECT_DOUBLE_EQ(SparseDot(m.Row(0), m.Row(1)), 0.0);
}

TEST(SparseOpsTest, CosineMatchesDense) {
  CsrMatrix m = MakeMatrix();
  Matrix dense = m.ToDense();
  EXPECT_NEAR(SparseCosineSimilarity(m.Row(0), m.Row(2)),
              CosineSimilarity(dense.Row(0), dense.Row(2)), 1e-12);
  EXPECT_DOUBLE_EQ(SparseCosineSimilarity(m.Row(0), m.Row(1)), 0.0);
}

}  // namespace
}  // namespace transform
}  // namespace adahealth
