#include "patterns/fpgrowth.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/metrics.h"

namespace adahealth {
namespace patterns {

namespace {

/// One FP-tree node in the arena.
struct FpNode {
  ItemId item = -1;  // -1 for the root.
  int64_t count = 0;
  int32_t parent = -1;
  std::map<ItemId, int32_t> children;
};

/// FP-tree: arena of nodes plus a header table mapping each item to the
/// nodes carrying it and its total support.
struct FpTree {
  std::vector<FpNode> nodes;
  std::map<ItemId, std::vector<int32_t>> header;
  std::map<ItemId, int64_t> item_support;

  FpTree() { nodes.push_back(FpNode{}); }  // Root.

  /// Inserts `items` (ordered by descending global frequency) with the
  /// given multiplicity.
  void Insert(const std::vector<ItemId>& items, int64_t count) {
    int32_t current = 0;
    for (ItemId item : items) {
      auto it = nodes[static_cast<size_t>(current)].children.find(item);
      int32_t child;
      if (it == nodes[static_cast<size_t>(current)].children.end()) {
        child = static_cast<int32_t>(nodes.size());
        FpNode node;
        node.item = item;
        node.parent = current;
        // push_back may reallocate the arena, so the parent's children
        // map must be re-fetched afterwards (never held by reference
        // across the insertion).
        nodes.push_back(std::move(node));
        nodes[static_cast<size_t>(current)].children.emplace(item, child);
        header[item].push_back(child);
      } else {
        child = it->second;
      }
      nodes[static_cast<size_t>(child)].count += count;
      item_support[item] += count;
      current = child;
    }
  }

  /// True when the tree consists of a single path from the root.
  bool IsSinglePath() const {
    size_t current = 0;
    while (true) {
      const auto& children = nodes[current].children;
      if (children.empty()) return true;
      if (children.size() > 1) return false;
      current = static_cast<size_t>(children.begin()->second);
    }
  }
};

/// Recursive FP-growth over `tree`, appending results with the given
/// suffix itemset.
// Longest single path for which the 2^n subset enumeration is allowed;
// longer paths fall back to the general recursion.
constexpr size_t kMaxSinglePathShortcut = 24;

void Grow(const FpTree& tree, const std::vector<ItemId>& suffix,
          int64_t min_support, size_t max_size,
          std::vector<FrequentItemset>& out) {
  if (tree.IsSinglePath() && tree.nodes.size() <= kMaxSinglePathShortcut) {
    // Enumerate all item combinations along the path; the support of a
    // combination is the count of its deepest node.
    std::vector<std::pair<ItemId, int64_t>> path;
    size_t current = 0;
    while (!tree.nodes[current].children.empty()) {
      int32_t child = tree.nodes[current].children.begin()->second;
      const FpNode& node = tree.nodes[static_cast<size_t>(child)];
      path.emplace_back(node.item, node.count);
      current = static_cast<size_t>(child);
    }
    const size_t n = path.size();
    for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
      std::vector<ItemId> items = suffix;
      int64_t support = INT64_MAX;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (uint64_t{1} << i)) {
          items.push_back(path[i].first);
          support = std::min(support, path[i].second);
        }
      }
      if (support < min_support) continue;
      if (max_size != 0 && items.size() > max_size) continue;
      std::sort(items.begin(), items.end());
      out.push_back({std::move(items), support});
    }
    return;
  }

  // General case: iterate header items (ascending support so that
  // conditional trees shrink fastest; any order is correct).
  std::vector<std::pair<ItemId, int64_t>> items(
      tree.item_support.begin(), tree.item_support.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  for (const auto& [item, support] : items) {
    if (support < min_support) continue;
    std::vector<ItemId> new_suffix = suffix;
    new_suffix.push_back(item);
    if (max_size == 0 || new_suffix.size() <= max_size) {
      std::vector<ItemId> sorted = new_suffix;
      std::sort(sorted.begin(), sorted.end());
      out.push_back({std::move(sorted), support});
    }
    if (max_size != 0 && new_suffix.size() >= max_size) continue;

    // Conditional pattern base of `item`: prefix paths with counts.
    FpTree conditional;
    auto header_it = tree.header.find(item);
    ADA_CHECK(header_it != tree.header.end());
    for (int32_t node_id : header_it->second) {
      const FpNode& node = tree.nodes[static_cast<size_t>(node_id)];
      std::vector<ItemId> prefix;
      int32_t ancestor = node.parent;
      while (ancestor > 0) {
        prefix.push_back(tree.nodes[static_cast<size_t>(ancestor)].item);
        ancestor = tree.nodes[static_cast<size_t>(ancestor)].parent;
      }
      std::reverse(prefix.begin(), prefix.end());
      if (!prefix.empty()) conditional.Insert(prefix, node.count);
    }
    // Drop items that fell below the threshold in the conditional base
    // by rebuilding with only frequent items.
    FpTree filtered;
    {
      // Collect paths again from the conditional tree leaves is costly;
      // instead re-insert the pattern base filtered by support.
      for (int32_t node_id : header_it->second) {
        const FpNode& node = tree.nodes[static_cast<size_t>(node_id)];
        std::vector<ItemId> prefix;
        int32_t ancestor = node.parent;
        while (ancestor > 0) {
          ItemId prefix_item =
              tree.nodes[static_cast<size_t>(ancestor)].item;
          auto support_it = conditional.item_support.find(prefix_item);
          if (support_it != conditional.item_support.end() &&
              support_it->second >= min_support) {
            prefix.push_back(prefix_item);
          }
          ancestor = tree.nodes[static_cast<size_t>(ancestor)].parent;
        }
        std::reverse(prefix.begin(), prefix.end());
        if (!prefix.empty()) filtered.Insert(prefix, node.count);
      }
    }
    if (!filtered.item_support.empty()) {
      Grow(filtered, new_suffix, min_support, max_size, out);
    }
  }
}

}  // namespace

common::StatusOr<std::vector<FrequentItemset>> MineFpGrowth(
    const TransactionDb& db, const MiningOptions& options) {
  if (options.min_support_count < 1) {
    return common::InvalidArgumentError("min_support_count must be >= 1");
  }

  // Global item frequencies and the f-list order (descending support,
  // ascending id on ties).
  std::unordered_map<ItemId, int64_t> frequencies;
  for (const auto& transaction : db.transactions) {
    for (ItemId item : transaction) ++frequencies[item];
  }
  auto rank_less = [&](ItemId a, ItemId b) {
    int64_t fa = frequencies[a];
    int64_t fb = frequencies[b];
    if (fa != fb) return fa > fb;
    return a < b;
  };

  FpTree tree;
  std::vector<ItemId> filtered;
  for (const auto& transaction : db.transactions) {
    filtered.clear();
    for (ItemId item : transaction) {
      if (frequencies[item] >= options.min_support_count) {
        filtered.push_back(item);
      }
    }
    if (filtered.empty()) continue;
    std::sort(filtered.begin(), filtered.end(), rank_less);
    tree.Insert(filtered, 1);
  }

  std::vector<FrequentItemset> result;
  Grow(tree, {}, options.min_support_count, options.max_itemset_size,
       result);
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.GetCounter("patterns/fpgrowth/tree_nodes")
      .Increment(static_cast<int64_t>(tree.nodes.size()) - 1);
  metrics.GetCounter("patterns/fpgrowth/frequent_itemsets")
      .Increment(static_cast<int64_t>(result.size()));
  SortCanonical(result);
  return result;
}

std::vector<FrequentItemset> ClosedItemsets(
    std::vector<FrequentItemset> itemsets) {
  SortCanonical(itemsets);
  std::vector<FrequentItemset> closed;
  for (size_t i = 0; i < itemsets.size(); ++i) {
    bool is_closed = true;
    // A superset with equal support must be strictly larger; canonical
    // order sorts by size, so scan the tail.
    for (size_t j = i + 1; j < itemsets.size(); ++j) {
      if (itemsets[j].items.size() <= itemsets[i].items.size()) continue;
      if (itemsets[j].support != itemsets[i].support) continue;
      if (std::includes(itemsets[j].items.begin(), itemsets[j].items.end(),
                        itemsets[i].items.begin(),
                        itemsets[i].items.end())) {
        is_closed = false;
        break;
      }
    }
    if (is_closed) closed.push_back(itemsets[i]);
  }
  return closed;
}

std::vector<FrequentItemset> MaximalItemsets(
    std::vector<FrequentItemset> itemsets) {
  SortCanonical(itemsets);
  std::vector<FrequentItemset> maximal;
  for (size_t i = 0; i < itemsets.size(); ++i) {
    bool is_maximal = true;
    for (size_t j = i + 1; j < itemsets.size(); ++j) {
      if (itemsets[j].items.size() <= itemsets[i].items.size()) continue;
      if (std::includes(itemsets[j].items.begin(), itemsets[j].items.end(),
                        itemsets[i].items.begin(),
                        itemsets[i].items.end())) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.push_back(itemsets[i]);
  }
  return maximal;
}

}  // namespace patterns
}  // namespace adahealth
