#include "patterns/apriori.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace patterns {
namespace {

// The classic textbook database.
TransactionDb MakeDb() {
  TransactionDb db;
  db.num_items = 5;
  db.transactions = {
      {0, 1, 4},     // bread milk beer...
      {0, 3},
      {0, 2},
      {0, 1, 3},
      {1, 2},
      {0, 2},
      {1, 2},
      {0, 1, 2, 4},
      {0, 1, 2},
  };
  return db;
}

int64_t SupportOf(const std::vector<FrequentItemset>& itemsets,
                  const std::vector<ItemId>& items) {
  for (const auto& itemset : itemsets) {
    if (itemset.items == items) return itemset.support;
  }
  return -1;
}

TEST(AbsoluteSupportTest, CeilingSemantics) {
  EXPECT_EQ(AbsoluteSupport(0.5, 9), 5);
  EXPECT_EQ(AbsoluteSupport(1.0, 9), 9);
  EXPECT_EQ(AbsoluteSupport(0.01, 9), 1);
  EXPECT_EQ(AbsoluteSupport(0.2, 0), 1);  // At least 1.
}

TEST(AprioriTest, SingletonSupports) {
  MiningOptions options;
  options.min_support_count = 1;
  auto itemsets = MineApriori(MakeDb(), options);
  ASSERT_TRUE(itemsets.ok());
  EXPECT_EQ(SupportOf(itemsets.value(), {0}), 7);
  EXPECT_EQ(SupportOf(itemsets.value(), {1}), 6);
  EXPECT_EQ(SupportOf(itemsets.value(), {2}), 6);
  EXPECT_EQ(SupportOf(itemsets.value(), {3}), 2);
  EXPECT_EQ(SupportOf(itemsets.value(), {4}), 2);
}

TEST(AprioriTest, PairSupports) {
  MiningOptions options;
  options.min_support_count = 2;
  auto itemsets = MineApriori(MakeDb(), options);
  ASSERT_TRUE(itemsets.ok());
  EXPECT_EQ(SupportOf(itemsets.value(), {0, 1}), 4);
  EXPECT_EQ(SupportOf(itemsets.value(), {0, 2}), 4);
  EXPECT_EQ(SupportOf(itemsets.value(), {1, 2}), 4);
  EXPECT_EQ(SupportOf(itemsets.value(), {0, 4}), 2);
  EXPECT_EQ(SupportOf(itemsets.value(), {1, 4}), 2);
  EXPECT_EQ(SupportOf(itemsets.value(), {0, 1, 2}), 2);
  EXPECT_EQ(SupportOf(itemsets.value(), {0, 1, 4}), 2);
}

TEST(AprioriTest, MinSupportPrunes) {
  MiningOptions options;
  options.min_support_count = 3;
  auto itemsets = MineApriori(MakeDb(), options);
  ASSERT_TRUE(itemsets.ok());
  EXPECT_EQ(SupportOf(itemsets.value(), {3}), -1);
  EXPECT_EQ(SupportOf(itemsets.value(), {0, 1, 2}), -1);
  for (const auto& itemset : itemsets.value()) {
    EXPECT_GE(itemset.support, 3);
  }
}

TEST(AprioriTest, MaxItemsetSizeCaps) {
  MiningOptions options;
  options.min_support_count = 1;
  options.max_itemset_size = 1;
  auto itemsets = MineApriori(MakeDb(), options);
  ASSERT_TRUE(itemsets.ok());
  for (const auto& itemset : itemsets.value()) {
    EXPECT_EQ(itemset.items.size(), 1u);
  }
}

TEST(AprioriTest, EmptyDatabase) {
  TransactionDb db;
  db.num_items = 3;
  MiningOptions options;
  options.min_support_count = 1;
  auto itemsets = MineApriori(db, options);
  ASSERT_TRUE(itemsets.ok());
  EXPECT_TRUE(itemsets->empty());
}

TEST(AprioriTest, SupportAboveDbSizeYieldsNothing) {
  MiningOptions options;
  options.min_support_count = 100;
  auto itemsets = MineApriori(MakeDb(), options);
  ASSERT_TRUE(itemsets.ok());
  EXPECT_TRUE(itemsets->empty());
}

TEST(AprioriTest, RejectsInvalidSupport) {
  MiningOptions options;
  options.min_support_count = 0;
  EXPECT_FALSE(MineApriori(MakeDb(), options).ok());
}

TEST(AprioriTest, CanonicalOrder) {
  MiningOptions options;
  options.min_support_count = 2;
  auto itemsets = MineApriori(MakeDb(), options);
  ASSERT_TRUE(itemsets.ok());
  for (size_t i = 1; i < itemsets->size(); ++i) {
    const auto& prev = (*itemsets)[i - 1];
    const auto& curr = (*itemsets)[i];
    bool ordered = prev.items.size() < curr.items.size() ||
                   (prev.items.size() == curr.items.size() &&
                    prev.items < curr.items);
    EXPECT_TRUE(ordered);
  }
}

TEST(AprioriTest, DownwardClosureHolds) {
  // Every subset of a frequent itemset is present with >= support.
  MiningOptions options;
  options.min_support_count = 2;
  auto itemsets = MineApriori(MakeDb(), options);
  ASSERT_TRUE(itemsets.ok());
  for (const auto& itemset : itemsets.value()) {
    if (itemset.items.size() < 2) continue;
    for (size_t skip = 0; skip < itemset.items.size(); ++skip) {
      std::vector<ItemId> subset;
      for (size_t i = 0; i < itemset.items.size(); ++i) {
        if (i != skip) subset.push_back(itemset.items[i]);
      }
      int64_t subset_support = SupportOf(itemsets.value(), subset);
      EXPECT_GE(subset_support, itemset.support);
    }
  }
}

}  // namespace
}  // namespace patterns
}  // namespace adahealth
