#include "patterns/rules.h"

#include <algorithm>
#include <map>

namespace adahealth {
namespace patterns {

common::StatusOr<std::vector<AssociationRule>> GenerateRules(
    const std::vector<FrequentItemset>& itemsets, size_t num_transactions,
    const RuleOptions& options) {
  if (options.min_confidence <= 0.0 || options.min_confidence > 1.0) {
    return common::InvalidArgumentError("min_confidence must be in (0, 1]");
  }
  if (num_transactions == 0) {
    return common::InvalidArgumentError("num_transactions must be positive");
  }

  // Support lookup for subset supports.
  std::map<std::vector<ItemId>, int64_t> support_of;
  for (const auto& itemset : itemsets) {
    support_of[itemset.items] = itemset.support;
  }
  const double total = static_cast<double>(num_transactions);

  std::vector<AssociationRule> rules;
  for (const auto& itemset : itemsets) {
    const size_t n = itemset.items.size();
    if (n < 2) continue;
    // Every non-trivial bipartition: antecedent = bits set in mask.
    for (uint64_t mask = 1; mask + 1 < (uint64_t{1} << n); ++mask) {
      std::vector<ItemId> antecedent;
      std::vector<ItemId> consequent;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (uint64_t{1} << i)) {
          antecedent.push_back(itemset.items[i]);
        } else {
          consequent.push_back(itemset.items[i]);
        }
      }
      auto antecedent_it = support_of.find(antecedent);
      auto consequent_it = support_of.find(consequent);
      if (antecedent_it == support_of.end() ||
          consequent_it == support_of.end()) {
        // Can happen when itemsets were pre-filtered (e.g. closed sets);
        // skip rather than mis-compute.
        continue;
      }
      double confidence = static_cast<double>(itemset.support) /
                          static_cast<double>(antecedent_it->second);
      if (confidence < options.min_confidence) continue;
      double consequent_support =
          static_cast<double>(consequent_it->second) / total;
      double lift =
          consequent_support > 0.0 ? confidence / consequent_support : 0.0;
      if (options.min_lift > 0.0 && lift < options.min_lift) continue;
      AssociationRule rule;
      rule.antecedent = std::move(antecedent);
      rule.consequent = std::move(consequent);
      rule.support = static_cast<double>(itemset.support) / total;
      rule.confidence = confidence;
      rule.lift = lift;
      rules.push_back(std::move(rule));
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

}  // namespace patterns
}  // namespace adahealth
