// Capability-annotated synchronization primitives.
//
// Every mutex in the project is a common::Mutex and every critical
// section a common::MutexLock so that Clang's thread-safety analysis
// (-Wthread-safety, wired up as a hard gate by the ADA_THREAD_SAFETY
// CMake option) can prove lock discipline at compile time: protected
// members carry ADA_GUARDED_BY, internal helpers carry ADA_REQUIRES /
// ADA_EXCLUDES contracts, and a violated invariant is a build error on
// *every* interleaving rather than a TSan report on the interleavings
// a test happened to produce. Under compilers without the attributes
// the macros expand to nothing and the wrappers cost one bool over a
// raw std::lock_guard.
//
// Conventions:
//  * members protected by a mutex are declared `ADA_GUARDED_BY(mu_)`;
//  * a private helper that must be called with the lock held is
//    suffixed `Locked` and annotated `ADA_REQUIRES(mu_)`;
//  * a function that takes the lock itself (every public entry point
//    of a thread-safe class) is annotated `ADA_EXCLUDES(mu_)` so a
//    re-entrant call from a held-lock context cannot compile;
//  * `ADA_NO_THREAD_SAFETY_ANALYSIS` is a last resort for protocols
//    the analysis cannot express (see DESIGN.md §7); each use needs a
//    comment saying why the code is nevertheless correct.
//
// Direct std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable use outside this header and sync.cc is
// banned by the ada_lint `raw-mutex` rule: raw primitives are
// invisible to the analysis, so one raw lock would punch a silent
// hole in the compile-time guarantee.
#ifndef ADAHEALTH_COMMON_SYNC_H_
#define ADAHEALTH_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Thread-safety attribute spellings. Clang implements the analysis;
// everywhere else the annotations vanish.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADA_TSA_(x) __attribute__((x))
#endif
#endif
#ifndef ADA_TSA_
#define ADA_TSA_(x)
#endif

/// Marks a class as a lockable capability (the thing GUARDED_BY and
/// REQUIRES refer to). `x` names the capability kind in diagnostics.
#define ADA_CAPABILITY(x) ADA_TSA_(capability(x))
/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock below).
#define ADA_SCOPED_CAPABILITY ADA_TSA_(scoped_lockable)
/// Declares that a member is protected by capability `x`: every read
/// requires `x` held (shared) and every write requires it exclusive.
#define ADA_GUARDED_BY(x) ADA_TSA_(guarded_by(x))
/// As ADA_GUARDED_BY but for the data a pointer member points at.
#define ADA_PT_GUARDED_BY(x) ADA_TSA_(pt_guarded_by(x))
/// Function contract: the caller must hold the listed capabilities.
#define ADA_REQUIRES(...) ADA_TSA_(requires_capability(__VA_ARGS__))
/// Function contract: the function acquires the listed capabilities
/// (its own object when the list is empty) and does not release them.
#define ADA_ACQUIRE(...) ADA_TSA_(acquire_capability(__VA_ARGS__))
/// Function contract: releases capabilities the caller holds.
#define ADA_RELEASE(...) ADA_TSA_(release_capability(__VA_ARGS__))
/// Function contract: acquires the capability iff the return value
/// equals the first argument.
#define ADA_TRY_ACQUIRE(...) ADA_TSA_(try_acquire_capability(__VA_ARGS__))
/// Function contract: the caller must NOT hold the listed capabilities
/// (the function acquires them itself; holding one would deadlock).
#define ADA_EXCLUDES(...) ADA_TSA_(locks_excluded(__VA_ARGS__))
/// Runtime claim that the capability is held (trusted by the
/// analysis); for code reached only from held-lock contexts it cannot
/// see through, e.g. type-erased callbacks.
#define ADA_ASSERT_CAPABILITY(x) ADA_TSA_(assert_capability(x))
/// Documents that a getter returns a reference to the capability `x`.
#define ADA_RETURN_CAPABILITY(x) ADA_TSA_(lock_returned(x))
/// Opts one function out of the analysis entirely. Last resort; see
/// file comment.
#define ADA_NO_THREAD_SAFETY_ANALYSIS ADA_TSA_(no_thread_safety_analysis)

namespace adahealth {
namespace common {

class CondVar;

/// A std::mutex the thread-safety analysis can see. Non-recursive;
/// prefer MutexLock over manual Lock/Unlock pairs.
class ADA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ADA_ACQUIRE() { mu_.lock(); }
  void Unlock() ADA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() ADA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  // CondVar::Wait atomically releases mu_.
  std::mutex mu_;
};

/// RAII critical section: acquires on construction, releases on
/// destruction. Unlock()/Lock() support the drop-the-lock-around-a-
/// callback pattern (scheduler workers, ParallelFor inline fallback)
/// without giving up scoped release on every exit path.
class ADA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ADA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ADA_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex; the caller must re-Lock() (or let
  /// the destructor observe the released state) before touching
  /// guarded members again — the analysis enforces exactly that.
  void Unlock() ADA_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  void Lock() ADA_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// Condition variable bound to common::Mutex. Waits state their lock
/// requirement through ADA_REQUIRES, so forgetting to hold the mutex
/// across a Wait is a compile error, not a lost wakeup.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; `mu` is held
  /// again on return. Spurious wakeups happen — use the predicate
  /// overloads unless an outer loop re-checks.
  void Wait(Mutex& mu) ADA_REQUIRES(mu);

  /// As Wait, but returns false when `deadline` passes first.
  [[nodiscard]] bool WaitUntil(
      Mutex& mu, std::chrono::steady_clock::time_point deadline)
      ADA_REQUIRES(mu);

  /// Blocks until pred() holds (pred is evaluated with `mu` held).
  /// Annotate the predicate lambda itself with ADA_REQUIRES(<mutex>)
  /// when it reads guarded members.
  ///
  /// Body analysis is off (callers are still checked against the
  /// REQUIRES contract): the analysis cannot relate the `mu` parameter
  /// to the specific member mutex an annotated predicate requires, so
  /// the pred() call inside this trampoline is unprovable by design.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) ADA_REQUIRES(mu)
      ADA_NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) Wait(mu);
  }

  /// Blocks until pred() holds or `timeout_millis` elapses; returns
  /// the final pred() value (mirrors std::condition_variable::
  /// wait_for with a predicate). Same body-analysis note as Wait.
  template <typename Pred>
  [[nodiscard]] bool WaitFor(Mutex& mu, double timeout_millis, Pred pred)
      ADA_REQUIRES(mu) ADA_NO_THREAD_SAFETY_ANALYSIS {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_millis));
    while (!pred()) {
      if (!WaitUntil(mu, deadline)) return pred();
    }
    return true;
  }

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_SYNC_H_
