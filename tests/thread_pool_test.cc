#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

namespace adahealth {
namespace common {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsSlowTasks) {
  // Tasks that are still queued when the destructor runs must execute,
  // even when every worker is busy at destruction time.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Schedule([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorkerOrDeadlockWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.failed_tasks(), 1u);
  EXPECT_EQ(pool.first_failure_message(), "boom");
}

TEST(ThreadPoolTest, NonStdExceptionIsRecordedAsUnknown) {
  ThreadPool pool(1);
  pool.Schedule([] { throw 42; });
  pool.Wait();
  EXPECT_EQ(pool.failed_tasks(), 1u);
  EXPECT_EQ(pool.first_failure_message(), "unknown exception");
}

TEST(ThreadPoolTest, FirstFailureMessageIsKept) {
  ThreadPool pool(1);  // Single worker makes failure order deterministic.
  pool.Schedule([] { throw std::runtime_error("first"); });
  pool.Schedule([] { throw std::runtime_error("second"); });
  pool.Wait();
  EXPECT_EQ(pool.failed_tasks(), 2u);
  EXPECT_EQ(pool.first_failure_message(), "first");
}

TEST(ThreadPoolTest, TryScheduleRunsOnLivePool) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pool.TrySchedule([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ShutdownDrainsAcceptedWorkThenRejectsNewWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(pool.TrySchedule([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_FALSE(pool.TrySchedule([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();  // Idempotent; the destructor will call it again.
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 5, 5, [](size_t) { FAIL(); });
  ParallelFor(pool, 7, 3, [](size_t) { FAIL(); });
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  ParallelFor(pool, 10, 20,
              [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19.
}

TEST(ParallelForTest, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  ParallelFor(pool, 0, 3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace common
}  // namespace adahealth
