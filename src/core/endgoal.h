// Identification of viable end-goals — "the core and one of the most
// innovative contributions of the ADA-HEALTH architecture" (§III).
// Three components, as in the paper:
//  (i)  the K-DB stores past feedback (kdb::Schema::kFeedback);
//  (ii) an algorithm identifies *viable* end-goals for a dataset via
//       formal rules over its statistical characterization;
//  (iii) an algorithm selects the end-goals *of interest* for a user,
//        "addressed again as a classification problem, thus, the model
//        is trained by previous user interactions".
#ifndef ADAHEALTH_CORE_ENDGOAL_H_
#define ADAHEALTH_CORE_ENDGOAL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/knowledge.h"
#include "kdb/database.h"
#include "ml/classifier.h"
#include "stats/meta_features.h"

namespace adahealth {
namespace core {

/// A viable end-goal with the rule rationale that admitted it.
struct ViableGoal {
  EndGoal goal = EndGoal::kPatientGrouping;
  std::string rationale;
};

/// Applies the viability rules to a dataset characterization. Each
/// rule checks that the dataset can feasibly support the analysis
/// (enough patients for grouping, enough co-occurrence for pattern and
/// interaction mining, ...).
std::vector<ViableGoal> IdentifyViableEndGoals(
    const stats::MetaFeatures& features);

/// A recommended goal: viable, with predicted user interest.
struct GoalRecommendation {
  ViableGoal viable;
  Interest predicted_interest = Interest::kMedium;
};

/// Feedback-record helpers (K-DB "feedback" collection schema:
/// {dataset_id, user, features{...}, goal, interest}).
kdb::Document MakeGoalFeedbackDocument(const std::string& dataset_id,
                                       const std::string& user,
                                       const stats::MetaFeatures& features,
                                       EndGoal goal, Interest interest);

/// End-goal interest engine: trains a classifier on the K-DB feedback
/// collection and predicts the interest of (dataset, goal) pairs.
class EndGoalEngine {
 public:
  /// `factory` builds the interest model; defaults to a decision tree.
  explicit EndGoalEngine(ml::ClassifierFactory factory = nullptr);

  /// Trains from all parseable documents of `feedback`. Requires at
  /// least two distinct interest labels; FAILED_PRECONDITION otherwise.
  [[nodiscard]] common::Status TrainFromFeedback(const kdb::Collection& feedback);

  bool trained() const { return trained_; }
  /// Number of feedback records used by the last training.
  size_t training_samples() const { return training_samples_; }

  /// Predicts interest for one (dataset, goal) pair.
  /// FAILED_PRECONDITION before training.
  [[nodiscard]] common::StatusOr<Interest> PredictInterest(
      const stats::MetaFeatures& features, EndGoal goal) const;

  /// Viable goals ranked by predicted interest (descending; rule order
  /// breaks ties). Before training, every goal gets kMedium.
  [[nodiscard]] common::StatusOr<std::vector<GoalRecommendation>> RecommendGoals(
      const stats::MetaFeatures& features) const;

  /// Model input encoding: meta-features ++ one-hot goal.
  static std::vector<double> EncodeExample(
      const stats::MetaFeatures& features, EndGoal goal);

 private:
  ml::ClassifierFactory factory_;
  std::unique_ptr<ml::Classifier> model_;
  bool trained_ = false;
  size_t training_samples_ = 0;
};

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_ENDGOAL_H_
