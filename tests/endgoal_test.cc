#include "core/endgoal.h"

#include <gtest/gtest.h>
#include "core/feedback_sim.h"
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace core {
namespace {

stats::MetaFeatures CohortFeatures() {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  EXPECT_TRUE(cohort.ok());
  return stats::ComputeMetaFeatures(cohort->log);
}

TEST(ViableGoalsTest, RichCohortAdmitsAllGoals) {
  std::vector<ViableGoal> goals = IdentifyViableEndGoals(CohortFeatures());
  EXPECT_EQ(goals.size(), static_cast<size_t>(kNumEndGoals));
  for (const ViableGoal& goal : goals) {
    EXPECT_FALSE(goal.rationale.empty());
  }
}

TEST(ViableGoalsTest, TinyDatasetAdmitsFewGoals) {
  stats::MetaFeatures features;
  features.num_patients = 10;
  features.num_exam_types = 3;
  features.num_records = 15;
  features.mean_records_per_patient = 1.5;
  features.exam_frequency_gini = 0.1;
  std::vector<ViableGoal> goals = IdentifyViableEndGoals(features);
  EXPECT_TRUE(goals.empty());
}

TEST(ViableGoalsTest, RulesGateOnSpecificStatistics) {
  stats::MetaFeatures features = CohortFeatures();
  features.mean_records_per_patient = 1.0;  // Kills co-occurrence goals.
  std::vector<ViableGoal> goals = IdentifyViableEndGoals(features);
  for (const ViableGoal& goal : goals) {
    EXPECT_NE(goal.goal, EndGoal::kCommonExamPatterns);
    EXPECT_NE(goal.goal, EndGoal::kComplianceOutcome);
    EXPECT_NE(goal.goal, EndGoal::kInteractionDiscovery);
  }
}

TEST(FeedbackDocumentTest, SchemaFields) {
  stats::MetaFeatures features = CohortFeatures();
  kdb::Document document = MakeGoalFeedbackDocument(
      "d1", "dr_rossi", features, EndGoal::kPatientGrouping,
      Interest::kHigh);
  EXPECT_EQ(document.Get("dataset_id")->AsString(), "d1");
  EXPECT_EQ(document.Get("user")->AsString(), "dr_rossi");
  EXPECT_EQ(document.Get("goal")->AsString(), "patient_grouping");
  EXPECT_EQ(document.Get("interest")->AsString(), "high");
  EXPECT_NE(document.Get("features.num_patients"), nullptr);
}

TEST(EndGoalEngineTest, UntrainedPredictFails) {
  EndGoalEngine engine;
  EXPECT_FALSE(engine.trained());
  EXPECT_FALSE(
      engine.PredictInterest(CohortFeatures(), EndGoal::kPatientGrouping)
          .ok());
}

TEST(EndGoalEngineTest, UntrainedRecommendationsDefaultToMedium) {
  EndGoalEngine engine;
  auto recommendations = engine.RecommendGoals(CohortFeatures());
  ASSERT_TRUE(recommendations.ok());
  for (const GoalRecommendation& recommendation : recommendations.value()) {
    EXPECT_EQ(recommendation.predicted_interest, Interest::kMedium);
  }
}

TEST(EndGoalEngineTest, TrainingRequiresLabelDiversity) {
  kdb::Collection feedback("feedback");
  stats::MetaFeatures features = CohortFeatures();
  EndGoalEngine engine;
  EXPECT_FALSE(engine.TrainFromFeedback(feedback).ok());  // Empty.
  feedback.Insert(MakeGoalFeedbackDocument(
      "d", "u", features, EndGoal::kPatientGrouping, Interest::kHigh));
  feedback.Insert(MakeGoalFeedbackDocument(
      "d", "u", features, EndGoal::kResourcePlanning, Interest::kHigh));
  EXPECT_FALSE(engine.TrainFromFeedback(feedback).ok());  // Single label.
  feedback.Insert(MakeGoalFeedbackDocument(
      "d", "u", features, EndGoal::kResourcePlanning, Interest::kLow));
  EXPECT_TRUE(engine.TrainFromFeedback(feedback).ok());
  EXPECT_TRUE(engine.trained());
  EXPECT_EQ(engine.training_samples(), 3u);
}

TEST(EndGoalEngineTest, LearnsPersonaPreferences) {
  // Generate feedback from a persona oracle over varied datasets, then
  // check that predictions match the persona's noise-free labels.
  PersonaConfig persona = HospitalAdministratorPersona();
  persona.noise_stddev = 0.05;
  FeedbackSimulator oracle(persona, 17);
  kdb::Collection feedback("feedback");
  common::Rng rng(19);

  std::vector<stats::MetaFeatures> datasets;
  for (int d = 0; d < 40; ++d) {
    dataset::CohortConfig config = dataset::TestScaleConfig();
    config.num_patients = 150 + static_cast<int32_t>(rng.UniformInt(0, 250));
    config.mean_records_per_patient = rng.UniformDouble(3.0, 18.0);
    config.zipf_exponent = rng.UniformDouble(0.3, 1.4);
    config.seed = rng.NextUint64();
    auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
    ASSERT_TRUE(cohort.ok());
    datasets.push_back(stats::ComputeMetaFeatures(cohort->log));
  }
  for (const auto& features : datasets) {
    for (int32_t g = 0; g < kNumEndGoals; ++g) {
      EndGoal goal = static_cast<EndGoal>(g);
      feedback.Insert(MakeGoalFeedbackDocument(
          "d", persona.name, features, goal,
          oracle.LabelGoal(features, goal)));
    }
  }

  EndGoalEngine engine;
  ASSERT_TRUE(engine.TrainFromFeedback(feedback).ok());

  // Evaluate on fresh datasets against noise-free persona utilities.
  PersonaConfig clean = persona;
  clean.noise_stddev = 0.0;
  FeedbackSimulator truth(clean, 23);
  int correct = 0;
  int total = 0;
  for (int d = 0; d < 10; ++d) {
    dataset::CohortConfig config = dataset::TestScaleConfig();
    config.num_patients = 200 + 20 * d;
    config.mean_records_per_patient = 4.0 + d;
    config.seed = 1000 + static_cast<uint64_t>(d);
    auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
    ASSERT_TRUE(cohort.ok());
    stats::MetaFeatures features = stats::ComputeMetaFeatures(cohort->log);
    for (int32_t g = 0; g < kNumEndGoals; ++g) {
      EndGoal goal = static_cast<EndGoal>(g);
      auto predicted = engine.PredictInterest(features, goal);
      ASSERT_TRUE(predicted.ok());
      if (predicted.value() == truth.LabelGoal(features, goal)) ++correct;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);
}

TEST(EndGoalEngineTest, RecommendationsSortedByInterest) {
  stats::MetaFeatures features = CohortFeatures();
  kdb::Collection feedback("feedback");
  PersonaConfig persona = HospitalAdministratorPersona();
  persona.noise_stddev = 0.0;
  FeedbackSimulator oracle(persona, 29);
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (int32_t g = 0; g < kNumEndGoals; ++g) {
      EndGoal goal = static_cast<EndGoal>(g);
      feedback.Insert(MakeGoalFeedbackDocument(
          "d", persona.name, features, goal,
          oracle.LabelGoal(features, goal)));
    }
  }
  EndGoalEngine engine;
  ASSERT_TRUE(engine.TrainFromFeedback(feedback).ok());
  auto recommendations = engine.RecommendGoals(features);
  ASSERT_TRUE(recommendations.ok());
  for (size_t i = 1; i < recommendations->size(); ++i) {
    EXPECT_GE(static_cast<int32_t>(
                  (*recommendations)[i - 1].predicted_interest),
              static_cast<int32_t>(
                  (*recommendations)[i].predicted_interest));
  }
}

TEST(EndGoalEngineTest, ForeignDocumentsSkipped) {
  kdb::Collection feedback("feedback");
  kdb::Document junk;
  junk.Set("unrelated", common::Json("data"));
  feedback.Insert(std::move(junk));
  stats::MetaFeatures features = CohortFeatures();
  feedback.Insert(MakeGoalFeedbackDocument(
      "d", "u", features, EndGoal::kPatientGrouping, Interest::kHigh));
  feedback.Insert(MakeGoalFeedbackDocument(
      "d", "u", features, EndGoal::kResourcePlanning, Interest::kLow));
  EndGoalEngine engine;
  ASSERT_TRUE(engine.TrainFromFeedback(feedback).ok());
  EXPECT_EQ(engine.training_samples(), 2u);
}

TEST(EncodeExampleTest, OneHotGoalSuffix) {
  stats::MetaFeatures features = CohortFeatures();
  std::vector<double> example =
      EndGoalEngine::EncodeExample(features, EndGoal::kResourcePlanning);
  EXPECT_EQ(example.size(),
            stats::MetaFeatures::FeatureNames().size() +
                static_cast<size_t>(kNumEndGoals));
  // Exactly one hot goal bit, at position 4.
  double hot_sum = 0.0;
  for (size_t i = example.size() - kNumEndGoals; i < example.size(); ++i) {
    hot_sum += example[i];
  }
  EXPECT_DOUBLE_EQ(hot_sum, 1.0);
  EXPECT_DOUBLE_EQ(example.back(), 1.0);
}

}  // namespace
}  // namespace core
}  // namespace adahealth
