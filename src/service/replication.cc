#include "service/replication.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "service/net_socket.h"
#include "service/protocol.h"

namespace adahealth {
namespace service {

using common::Json;
using common::MutexLock;
using common::Status;

namespace {

/// Reads on the replication link never park forever against a wedged
/// follower: a stalled acknowledgement fails the send, the entry is
/// requeued, and the next reconnect's snapshot re-covers it.
constexpr double kAckTimeoutMillis = 5000.0;

}  // namespace

LogShipper::LogShipper(ReplicationOptions options, SnapshotProvider snapshot)
    : options_(options), snapshot_(std::move(snapshot)) {}

LogShipper::~LogShipper() { Stop(); }

void LogShipper::Start() {
  MutexLock lock(&mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { ShipLoop(); });
}

void LogShipper::Stop() {
  std::thread finished;
  {
    MutexLock lock(&mutex_);
    if (!running_) return;
    stopping_ = true;
    wake_.NotifyAll();
    finished = std::move(thread_);
  }
  // Joined outside the lock: the ship loop takes mutex_ on its way out.
  finished.join();
  MutexLock lock(&mutex_);
  running_ = false;
  stats_.connected = false;
}

void LogShipper::Enqueue(CachedAnalysis entry) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  MutexLock lock(&mutex_);
  queue_.push_back(std::move(entry));
  while (queue_.size() > options_.max_queue) {
    // Oldest-first drops: the next reconnect snapshot re-covers a
    // dropped entry, while the newest entries are the ones a promoted
    // follower is most likely to be asked about first.
    queue_.pop_front();
    ++stats_.dropped;
    metrics.GetCounter("service/replication_dropped").Increment();
  }
  stats_.queue_depth = queue_.size();
  metrics.GetGauge("service/replication_queue")
      .Set(static_cast<double>(queue_.size()));
  wake_.NotifyAll();
}

bool LogShipper::WaitUntilDrained(double timeout_millis) {
  MutexLock lock(&mutex_);
  return drained_.WaitFor(mutex_, timeout_millis, [this]() ADA_REQUIRES(
                                      mutex_) {
    return queue_.empty() && !in_flight_;
  });
}

ReplicationStats LogShipper::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void LogShipper::ShipLoop() {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  FileDescriptor socket;
  std::unique_ptr<LineReader> reader;
  double backoff_millis = options_.reconnect_backoff_millis;
  for (;;) {
    {
      MutexLock lock(&mutex_);
      wake_.Wait(mutex_, [this]() ADA_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (stopping_) return;
    }
    if (!socket.valid()) {
      socket = ConnectAndCatchUp();
      if (!socket.valid()) {
        MutexLock lock(&mutex_);
        // The backoff sleep stays responsive to Stop().
        if (wake_.WaitFor(mutex_, backoff_millis,
                          [this]() ADA_REQUIRES(mutex_) { return stopping_; })) {
          return;
        }
        backoff_millis = std::min(backoff_millis * 2.0,
                                  options_.max_reconnect_backoff_millis);
        continue;
      }
      // The reader buffers per-connection bytes, so it must be rebuilt
      // whenever the socket changes.
      reader = std::make_unique<LineReader>(socket);
      backoff_millis = options_.reconnect_backoff_millis;
    }
    CachedAnalysis entry;
    {
      MutexLock lock(&mutex_);
      if (stopping_) return;
      if (queue_.empty()) continue;  // Raced with a snapshot drain.
      entry = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
      stats_.queue_depth = queue_.size();
      metrics.GetGauge("service/replication_queue")
          .Set(static_cast<double>(queue_.size()));
    }
    Status shipped = ShipEntry(socket, *reader, entry);
    {
      MutexLock lock(&mutex_);
      in_flight_ = false;
      if (shipped.ok()) {
        ++stats_.shipped;
        metrics.GetCounter("service/replication_shipped").Increment();
        if (queue_.empty()) drained_.NotifyAll();
      } else {
        ++stats_.send_failures;
        stats_.connected = false;
        metrics.GetCounter("service/replication_send_failures").Increment();
        // At-least-once: the failed entry goes back to the front so the
        // reconnect ships it (again after the snapshot — idempotent).
        queue_.push_front(std::move(entry));
        stats_.queue_depth = queue_.size();
        metrics.GetGauge("service/replication_queue")
            .Set(static_cast<double>(queue_.size()));
      }
    }
    if (!shipped.ok()) {
      ADA_LOG(kWarning) << "replication: ship failed, reconnecting: "
                        << shipped.ToString();
      socket.Close();
      reader.reset();
    }
  }
}

FileDescriptor LogShipper::ConnectAndCatchUp() {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::StatusOr<FileDescriptor> connected =
      ConnectLoopback(options_.follower_port);
  if (!connected.ok()) return FileDescriptor();
  FileDescriptor socket = std::move(connected).value();
  if (!SetRecvTimeout(socket, kAckTimeoutMillis).ok()) {
    return FileDescriptor();
  }
  // Snapshot catch-up: ship the full cache (most recent first) before
  // the live tail, so a follower that was down — or never saw the
  // dropped-on-overflow entries — converges on this connection.
  LineReader reader(socket);
  std::vector<CachedAnalysis> snapshot =
      snapshot_ ? snapshot_() : std::vector<CachedAnalysis>();
  for (const CachedAnalysis& entry : snapshot) {
    Status shipped = ShipEntry(socket, reader, entry);
    if (!shipped.ok()) {
      ADA_LOG(kWarning) << "replication: catch-up failed: "
                        << shipped.ToString();
      MutexLock lock(&mutex_);
      ++stats_.send_failures;
      metrics.GetCounter("service/replication_send_failures").Increment();
      return FileDescriptor();
    }
    MutexLock lock(&mutex_);
    ++stats_.shipped;
    metrics.GetCounter("service/replication_shipped").Increment();
  }
  MutexLock lock(&mutex_);
  ++stats_.reconnects;
  stats_.connected = true;
  metrics.GetCounter("service/replication_reconnects").Increment();
  return socket;
}

Status LogShipper::ShipEntry(const FileDescriptor& socket, LineReader& reader,
                             const CachedAnalysis& entry) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.replication.send"));
  Json::Object request;
  request["verb"] = Json("replicate");
  request["entry"] = entry.ToJson();
  ADA_RETURN_IF_ERROR(SendAll(socket, Json(std::move(request)).Dump() + "\n"));
  common::StatusOr<std::string> line = reader.ReadLine();
  ADA_RETURN_IF_ERROR(line.status());
  return ParseResponse(*line).status();
}

}  // namespace service
}  // namespace adahealth
