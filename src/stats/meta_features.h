// Dataset meta-features: the statistical characterization of an
// examination log that ADA-HEALTH stores in the K-DB (collection 3,
// "statistical descriptors to model the data distribution") and feeds
// to the end-goal identification engine.
#ifndef ADAHEALTH_STATS_META_FEATURES_H_
#define ADAHEALTH_STATS_META_FEATURES_H_

#include <cstdint>
#include <string>

#include "common/json.h"
#include "dataset/exam_log.h"

namespace adahealth {
namespace stats {

/// Compact statistical fingerprint of an examination log.
struct MetaFeatures {
  int64_t num_patients = 0;
  int64_t num_exam_types = 0;
  int64_t num_records = 0;

  /// Fraction of (patient, exam-type) cells that are non-zero in the
  /// count matrix; 1 - density is the paper's "inherent sparseness".
  double density = 0.0;

  /// Records-per-patient distribution.
  double mean_records_per_patient = 0.0;
  double stddev_records_per_patient = 0.0;

  /// Exam-frequency distribution shape.
  double exam_frequency_entropy = 0.0;      // Normalized, in [0, 1].
  double exam_frequency_gini = 0.0;         // In [0, 1).
  double top20_coverage = 0.0;              // Mass of the top 20% exams.
  double top40_coverage = 0.0;              // Mass of the top 40% exams.

  /// Patient-coverage distribution: mean fraction of patients that
  /// underwent each exam type.
  double mean_patient_coverage = 0.0;

  /// Serializes to a flat JSON object (for the K-DB).
  common::Json ToJson() const;

  /// Parses a JSON object produced by ToJson(). Missing fields default
  /// to zero; non-objects fail.
  [[nodiscard]] static common::StatusOr<MetaFeatures> FromJson(const common::Json& json);

  /// Flattens to a fixed-order numeric vector (model input for the
  /// end-goal classifiers). Order matches FeatureNames().
  std::vector<double> ToVector() const;

  /// Names of the ToVector() dimensions.
  static std::vector<std::string> FeatureNames();
};

/// Computes the meta-features of `log`.
MetaFeatures ComputeMetaFeatures(const dataset::ExamLog& log);

}  // namespace stats
}  // namespace adahealth

#endif  // ADAHEALTH_STATS_META_FEATURES_H_
