// Content-addressed analysis-result cache for the service layer.
//
// Keys are dataset fingerprints (service/fingerprint.h); values are the
// rendered artifacts of one completed AnalysisSession::Run. The cache
// is LRU-bounded by a byte budget and serves repeat analyses of
// near-identical cohorts from memory (the admission-time optimization
// motivated by the repetitive hospital workloads of the EHR-mining
// survey). Optionally it persists through the crash-safe K-DB storage
// layer: entries are documents of a "result_cache" collection, written
// atomically (tmp+fsync+rename) and restored with salvage-mode loads.
#ifndef ADAHEALTH_SERVICE_RESULT_CACHE_H_
#define ADAHEALTH_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/sync.h"

namespace adahealth {
namespace service {

/// The cached artifacts of one analysis: everything a repeat submission
/// needs to be answered without re-running the session.
struct CachedAnalysis {
  std::string fingerprint;
  std::string dataset_id;
  /// SessionResult::summary of the original run.
  std::string summary;
  /// core::RenderSessionReport output — byte-identical to what a fresh
  /// run with the same (log, options) would render.
  std::string report;
  int64_t knowledge_items = 0;
  /// Streaming-cohort versioning (service/cohort_store.h): non-empty
  /// `cohort` marks this entry as one generation of a named cohort.
  /// Insert() then supersedes the cohort's older generations (and
  /// drops the entry itself when a newer generation is already cached,
  /// which replication replay can deliver out of order).
  std::string cohort;
  int64_t generation = 0;

  /// Approximate in-memory footprint, used against the byte budget.
  [[nodiscard]] size_t ByteSize() const;

  [[nodiscard]] common::Json ToJson() const;
  [[nodiscard]] static common::StatusOr<CachedAnalysis> FromJson(
      const common::Json& json);
};

/// Thread-safe LRU cache of CachedAnalysis keyed by fingerprint.
///
/// Metrics (MetricsRegistry::Default()): "service/cache_hits",
/// "service/cache_misses", "service/cache_evictions" counters and the
/// "service/cache_bytes" gauge. Failpoints: "service.cache.store"
/// (Persist) and "service.cache.load" (Restore).
class ResultCache {
 public:
  /// `max_bytes` bounds the sum of entry ByteSize()s; an entry larger
  /// than the whole budget is rejected silently (never cached).
  explicit ResultCache(size_t max_bytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the entry and marks it most-recently-used; counts a hit
  /// or miss.
  [[nodiscard]] std::optional<CachedAnalysis> Lookup(
      const std::string& fingerprint) ADA_EXCLUDES(mutex_);

  /// Inserts (or refreshes) an entry, then evicts least-recently-used
  /// entries until the byte budget holds. A cohort-versioned entry
  /// additionally evicts every cached older generation of its cohort
  /// exactly once ("service/cache_superseded" counter) — the cache
  /// serves only the latest consistent snapshot — and is itself dropped
  /// when a newer generation is already cached.
  void Insert(CachedAnalysis entry) ADA_EXCLUDES(mutex_);

  /// Drops every entry (counters are not reset).
  void Clear() ADA_EXCLUDES(mutex_);

  [[nodiscard]] size_t entries() const ADA_EXCLUDES(mutex_);
  [[nodiscard]] size_t bytes() const ADA_EXCLUDES(mutex_);
  [[nodiscard]] size_t max_bytes() const { return max_bytes_; }
  [[nodiscard]] int64_t hits() const ADA_EXCLUDES(mutex_);
  [[nodiscard]] int64_t misses() const ADA_EXCLUDES(mutex_);
  [[nodiscard]] int64_t evictions() const ADA_EXCLUDES(mutex_);
  /// Cohort generations evicted (or rejected) by a newer generation.
  [[nodiscard]] int64_t superseded() const ADA_EXCLUDES(mutex_);

  /// Inserts not yet covered by a successful Persist(). Lets callers
  /// batch persistence (full rewrites are O(all entries)) instead of
  /// rewriting the file after every insert.
  [[nodiscard]] size_t dirty_entries() const ADA_EXCLUDES(mutex_);

  /// Copy of every entry, most recently used first. Recency-order
  /// matters to the replication snapshot: a follower with a smaller
  /// byte budget keeps the hottest entries when it replays these in
  /// order. Does not touch LRU order or the hit/miss counters.
  [[nodiscard]] std::vector<CachedAnalysis> Entries() const
      ADA_EXCLUDES(mutex_);

  /// Persists every entry to `<directory>/result_cache.jsonl` through
  /// the crash-safe K-DB storage layer (atomic write, no residue on
  /// failure). The lock is NOT held across the disk write: entries are
  /// copied out under one lock scope and the dirty debt settled under a
  /// second, so inserts may race the write (they stay dirty).
  [[nodiscard]] common::Status Persist(const std::string& directory) const
      ADA_EXCLUDES(mutex_);

  /// Replaces the cache contents with the persisted entries (salvage
  /// mode: a torn file restores its valid prefix). Entries are loaded
  /// in persisted-recency order, so the byte budget keeps the most
  /// recently used ones.
  [[nodiscard]] common::Status Restore(const std::string& directory)
      ADA_EXCLUDES(mutex_);

 private:
  void EvictLocked() ADA_REQUIRES(mutex_);
  void TouchMetricsLocked() ADA_REQUIRES(mutex_);

  const size_t max_bytes_;
  mutable common::Mutex mutex_;
  /// Front = most recently used.
  std::list<CachedAnalysis> lru_ ADA_GUARDED_BY(mutex_);
  std::map<std::string, std::list<CachedAnalysis>::iterator, std::less<>>
      index_ ADA_GUARDED_BY(mutex_);
  size_t bytes_ ADA_GUARDED_BY(mutex_) = 0;
  /// Inserts since the last successful Persist (mutable: a successful
  /// const Persist resets the debt it just paid off).
  mutable size_t dirty_ ADA_GUARDED_BY(mutex_) = 0;
  int64_t hits_ ADA_GUARDED_BY(mutex_) = 0;
  int64_t misses_ ADA_GUARDED_BY(mutex_) = 0;
  int64_t evictions_ ADA_GUARDED_BY(mutex_) = 0;
  int64_t superseded_ ADA_GUARDED_BY(mutex_) = 0;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_RESULT_CACHE_H_
