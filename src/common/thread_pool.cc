#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/sync.h"

namespace adahealth {
namespace common {

ThreadPool::ThreadPool(size_t num_threads) {
  ADA_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

ThreadPool& ThreadPool::Shared() {
  // Function-local static: constructed on first use, joined at process
  // exit. Subsystems schedule through TrySchedule so a task arriving
  // during exit teardown is executed inline by the caller instead.
  static ThreadPool pool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    ADA_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  task_available_.NotifyOne();
}

bool ThreadPool::TrySchedule(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  task_available_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  all_done_.Wait(mutex_, [this]() ADA_REQUIRES(mutex_) {
    return queue_.empty() && active_ == 0;
  });
}

size_t ThreadPool::failed_tasks() const {
  MutexLock lock(&mutex_);
  return failed_tasks_;
}

std::string ThreadPool::first_failure_message() const {
  MutexLock lock(&mutex_);
  return first_failure_message_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      task_available_.Wait(mutex_, [this]() ADA_REQUIRES(mutex_) {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    bool failed = false;
    std::string failure_message;
    // Fault injection: "thread_pool.task" simulates a task whose
    // execution failed. The task body still runs — completion is
    // load-bearing for ParallelFor's pending count — only the pool's
    // failure accounting fires.
    Status injected = ADA_FAILPOINT("thread_pool.task");
    if (!injected.ok()) {
      failed = true;
      failure_message = injected.message();
    }
    try {
      task();
    } catch (const std::exception& e) {
      failed = true;
      failure_message = e.what();
      ADA_LOG(kWarning) << "thread pool task failed: " << failure_message;
    } catch (...) {
      failed = true;
      failure_message = "unknown exception";
      ADA_LOG(kWarning)
          << "thread pool task failed with a non-std exception";
    }
    {
      MutexLock lock(&mutex_);
      if (failed) {
        ++failed_tasks_;
        if (failed_tasks_ == 1) first_failure_message_ = failure_message;
      }
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.NotifyAll();
    }
  }
}

namespace {

/// Shared state of one ParallelForChunks call. Workers and the caller
/// claim chunk ids from `next`; whoever finishes the last chunk
/// notifies `done_cv`. Held in a shared_ptr so helper tasks stay valid
/// even if the caller unwinds first.
struct ParallelForState {
  std::function<void(size_t, size_t)> body;
  size_t begin = 0;
  size_t end = 0;
  size_t chunk = 1;
  size_t num_chunks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> remaining{0};
  Mutex done_mutex;
  CondVar done_cv;
  /// First body exception, wherever it ran; rethrown by the caller
  /// once every chunk has finished.
  std::exception_ptr first_error ADA_GUARDED_BY(done_mutex);
};

void FinishChunk(ParallelForState& state) {
  if (state.remaining.fetch_sub(1) == 1) {
    // Lock before notifying so the last decrement cannot slip between
    // a waiter's predicate check and its sleep.
    MutexLock lock(&state.done_mutex);
    state.done_cv.NotifyAll();
  }
}

/// Claims and executes chunks until none remain. A throwing body has
/// its exception recorded in the shared state (first one wins — the
/// caller rethrows it after the barrier, no matter which thread ran
/// the chunk) and the loop keeps claiming, so every chunk is finished
/// by someone and WaitAllChunks can never hang on an unclaimed chunk.
void RunClaimLoop(ParallelForState& state) {
  while (true) {
    const size_t id = state.next.fetch_add(1);
    if (id >= state.num_chunks) return;
    const size_t chunk_begin = state.begin + id * state.chunk;
    const size_t chunk_end = std::min(state.end, chunk_begin + state.chunk);
    try {
      state.body(chunk_begin, chunk_end);
      // Not swallowed: the caller rethrows first_error after the
      // barrier (see ParallelForChunks).
    } catch (...) {  // ada-lint: allow(catch-swallow)
      MutexLock lock(&state.done_mutex);
      if (state.first_error == nullptr) {
        state.first_error = std::current_exception();
      }
    }
    FinishChunk(state);
  }
}

/// Blocks until every chunk has finished and returns the first body
/// exception (nullptr when none). The error is read under done_mutex —
/// the annotations surfaced that the old post-barrier read relied on
/// the cv/atomic ordering alone instead of the lock that guards it.
std::exception_ptr WaitAllChunks(ParallelForState& state) {
  MutexLock lock(&state.done_mutex);
  state.done_cv.Wait(state.done_mutex,
                     [&state] { return state.remaining.load() == 0; });
  return state.first_error;
}

}  // namespace

size_t ParallelForChunks(
    ThreadPool& pool, size_t begin, size_t end,
    const std::function<void(size_t, size_t)>& chunk_body,
    size_t max_chunk) {
  if (begin >= end) return 0;
  const size_t total = end - begin;
  const size_t workers = pool.num_threads();
  // Oversubscribe chunks 4x relative to workers so a straggler chunk
  // does not serialize the tail; an explicit max_chunk is exact (the
  // chunk grid is then a deterministic function of the range alone,
  // which deterministic reductions rely on).
  size_t chunk = max_chunk;
  if (chunk == 0) {
    const size_t target = workers * 4;
    chunk = std::max<size_t>(1, (total + target - 1) / target);
  }
  const size_t num_chunks = (total + chunk - 1) / chunk;

  auto state = std::make_shared<ParallelForState>();
  state->body = chunk_body;
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->num_chunks = num_chunks;
  state->remaining.store(num_chunks);

  // The caller participates, so only num_chunks - 1 helpers can ever
  // find work; TrySchedule failure (pool shutting down) just means the
  // caller runs every chunk itself.
  const size_t helpers = std::min(workers, num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    if (!pool.TrySchedule([state] { RunClaimLoop(*state); })) break;
  }
  RunClaimLoop(*state);
  // The barrier hands back the first error under its own lock: the
  // caller rethrows it regardless of which thread hit it.
  if (std::exception_ptr first_error = WaitAllChunks(*state)) {
    std::rethrow_exception(first_error);
  }
  return num_chunks;
}

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t max_chunk) {
  ParallelForChunks(
      pool, begin, end,
      [&body](size_t chunk_begin, size_t chunk_end) {
        for (size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      },
      max_chunk);
}

}  // namespace common
}  // namespace adahealth
