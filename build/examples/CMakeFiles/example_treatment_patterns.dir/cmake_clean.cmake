file(REMOVE_RECURSE
  "CMakeFiles/example_treatment_patterns.dir/treatment_patterns.cpp.o"
  "CMakeFiles/example_treatment_patterns.dir/treatment_patterns.cpp.o.d"
  "treatment_patterns"
  "treatment_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_treatment_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
