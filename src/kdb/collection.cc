#include "kdb/collection.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"

namespace adahealth {
namespace kdb {

using common::Json;
using common::Status;
using common::StatusOr;

namespace {

common::Counter& KdbCounter(const char* name) {
  return common::MetricsRegistry::Default().GetCounter(name);
}

}  // namespace

DocumentId Collection::Insert(Document document) {
  KdbCounter("kdb/inserts").Increment();
  DocumentId id = next_id_++;
  document.set_id(id);
  size_t position = documents_.size();
  documents_.push_back(std::move(document));
  id_to_position_[id] = position;
  IndexDocument(documents_.back(), position);
  return id;
}

Status Collection::Restore(Document document) {
  DocumentId id = document.id();
  if (id <= 0) {
    return common::InvalidArgumentError(
        "restored document must carry a positive _id");
  }
  if (id_to_position_.contains(id)) {
    return common::AlreadyExistsError("duplicate _id " + std::to_string(id));
  }
  size_t position = documents_.size();
  documents_.push_back(std::move(document));
  id_to_position_[id] = position;
  next_id_ = std::max(next_id_, id + 1);
  IndexDocument(documents_.back(), position);
  return common::OkStatus();
}

StatusOr<Document> Collection::FindById(DocumentId id) const {
  auto it = id_to_position_.find(id);
  if (it == id_to_position_.end()) {
    return common::NotFoundError("no document with _id " +
                                 std::to_string(id));
  }
  return documents_[it->second];
}

std::vector<Document> Collection::Find(const Query& query,
                                       size_t limit) const {
  KdbCounter("kdb/queries").Increment();
  std::vector<Document> matches;

  // Try an indexed equality condition first.
  for (const Condition& condition : query.conditions()) {
    if (condition.op != QueryOp::kEq) continue;
    auto index_it = indexes_.find(condition.path);
    if (index_it == indexes_.end()) continue;
    KdbCounter("kdb/index_lookups").Increment();
    auto bucket_it = index_it->second.find(condition.value.Dump());
    if (bucket_it == index_it->second.end()) return matches;
    for (size_t position : bucket_it->second) {
      const Document& document = documents_[position];
      if (query.Matches(document)) {
        matches.push_back(document);
        if (limit != 0 && matches.size() >= limit) return matches;
      }
    }
    return matches;
  }

  for (const Document& document : documents_) {
    if (query.Matches(document)) {
      matches.push_back(document);
      if (limit != 0 && matches.size() >= limit) break;
    }
  }
  return matches;
}

StatusOr<Document> Collection::FindOne(const Query& query) const {
  std::vector<Document> matches = Find(query, 1);
  if (matches.empty()) {
    return common::NotFoundError("no document matches query in " + name_);
  }
  return matches.front();
}

size_t Collection::Count(const Query& query) const {
  return Find(query).size();
}

Status Collection::UpdateById(DocumentId id, const Json& fields) {
  KdbCounter("kdb/updates").Increment();
  if (!fields.is_object()) {
    return common::InvalidArgumentError("update fields must be an object");
  }
  auto it = id_to_position_.find(id);
  if (it == id_to_position_.end()) {
    return common::NotFoundError("no document with _id " +
                                 std::to_string(id));
  }
  Document& document = documents_[it->second];
  for (const auto& [key, value] : fields.AsObject()) {
    if (key == "_id") continue;  // Ids are immutable.
    document.Set(key, value);
  }
  ReindexAll();
  return common::OkStatus();
}

Status Collection::DeleteById(DocumentId id) {
  KdbCounter("kdb/deletes").Increment();
  auto it = id_to_position_.find(id);
  if (it == id_to_position_.end()) {
    return common::NotFoundError("no document with _id " +
                                 std::to_string(id));
  }
  documents_.erase(documents_.begin() +
                   static_cast<ptrdiff_t>(it->second));
  id_to_position_.clear();
  for (size_t position = 0; position < documents_.size(); ++position) {
    id_to_position_[documents_[position].id()] = position;
  }
  ReindexAll();
  return common::OkStatus();
}

void Collection::CreateIndex(const std::string& path) {
  indexes_[path].clear();
  auto& index = indexes_[path];
  for (size_t position = 0; position < documents_.size(); ++position) {
    const Json* field = documents_[position].Get(path);
    if (field != nullptr) index[field->Dump()].push_back(position);
  }
}

void Collection::IndexDocument(const Document& document, size_t position) {
  for (auto& [path, index] : indexes_) {
    const Json* field = document.Get(path);
    if (field != nullptr) index[field->Dump()].push_back(position);
  }
}

void Collection::ReindexAll() {
  for (auto& [path, index] : indexes_) {
    index.clear();
    for (size_t position = 0; position < documents_.size(); ++position) {
      const Json* field = documents_[position].Get(path);
      if (field != nullptr) index[field->Dump()].push_back(position);
    }
  }
}

}  // namespace kdb
}  // namespace adahealth
