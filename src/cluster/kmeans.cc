#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/metrics.h"

namespace adahealth {
namespace cluster {

using common::Rng;
using common::StatusOr;
using transform::Matrix;
using transform::SquaredDistance;

Matrix InitializeCentroids(const Matrix& data, int32_t k, KMeansInit init,
                           Rng& rng) {
  const size_t n = data.rows();
  ADA_CHECK_GE(k, 1);
  ADA_CHECK_LE(static_cast<size_t>(k), n);
  Matrix centroids(static_cast<size_t>(k), data.cols());

  if (init == KMeansInit::kRandom) {
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(n, static_cast<size_t>(k));
    for (size_t c = 0; c < picks.size(); ++c) {
      std::span<const double> src = data.Row(picks[c]);
      std::span<double> dst = centroids.Row(c);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    return centroids;
  }

  // k-means++ (Arthur & Vassilvitskii): first centroid uniform, each
  // further centroid sampled proportionally to its squared distance to
  // the closest chosen centroid.
  std::vector<double> min_distance(n, std::numeric_limits<double>::max());
  size_t first = static_cast<size_t>(rng.UniformUint64(n));
  {
    std::span<const double> src = data.Row(first);
    std::span<double> dst = centroids.Row(0);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  for (int32_t c = 1; c < k; ++c) {
    std::span<const double> last = centroids.Row(static_cast<size_t>(c - 1));
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = SquaredDistance(data.Row(i), last);
      min_distance[i] = std::min(min_distance[i], d);
      total += min_distance[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.UniformDouble() * total;
      double cumulative = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cumulative += min_distance[i];
        if (target < cumulative) {
          chosen = i;
          break;
        }
        chosen = i;
      }
    } else {
      // All remaining distances zero (duplicated points): pick uniformly.
      chosen = static_cast<size_t>(rng.UniformUint64(n));
    }
    std::span<const double> src = data.Row(chosen);
    std::span<double> dst = centroids.Row(static_cast<size_t>(c));
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return centroids;
}

double AssignToCentroids(const Matrix& data, const Matrix& centroids,
                         std::vector<int32_t>& assignments) {
  const size_t n = data.rows();
  const size_t k = centroids.rows();
  ADA_CHECK_GE(k, 1u);
  assignments.resize(n);
  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    std::span<const double> point = data.Row(i);
    double best = std::numeric_limits<double>::max();
    int32_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      double d = SquaredDistance(point, centroids.Row(c));
      if (d < best) {
        best = d;
        best_c = static_cast<int32_t>(c);
      }
    }
    assignments[i] = best_c;
    sse += best;
  }
  return sse;
}

void RecomputeCentroids(const Matrix& data,
                        const std::vector<int32_t>& assignments,
                        Matrix& centroids) {
  const size_t k = centroids.rows();
  const size_t dims = centroids.cols();
  ADA_CHECK_EQ(assignments.size(), data.rows());
  std::vector<int64_t> counts(k, 0);
  Matrix sums(k, dims, 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    int32_t c = assignments[i];
    ADA_CHECK_GE(c, 0);
    ADA_CHECK_LT(static_cast<size_t>(c), k);
    ++counts[static_cast<size_t>(c)];
    std::span<const double> point = data.Row(i);
    std::span<double> sum = sums.Row(static_cast<size_t>(c));
    for (size_t d = 0; d < dims; ++d) sum[d] += point[d];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    std::span<const double> sum = sums.Row(c);
    std::span<double> centroid = centroids.Row(c);
    for (size_t d = 0; d < dims; ++d) {
      centroid[d] = sum[d] / static_cast<double>(counts[c]);
    }
  }
  // Re-seed empty clusters with the point farthest from its centroid so
  // that every cluster stays non-empty. Each donor point may seed only
  // one cluster, and donating decrements its cluster's count, so two
  // clusters emptied in the same iteration get distinct seeds.
  std::vector<bool> consumed;
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] != 0) continue;
    if (consumed.empty()) consumed.assign(data.rows(), false);
    double worst = -1.0;
    size_t worst_point = 0;
    for (size_t i = 0; i < data.rows(); ++i) {
      if (consumed[i]) continue;
      size_t assigned = static_cast<size_t>(assignments[i]);
      if (counts[assigned] <= 1) continue;  // Don't empty another cluster.
      double d = SquaredDistance(data.Row(i), centroids.Row(assigned));
      if (d > worst) {
        worst = d;
        worst_point = i;
      }
    }
    if (worst >= 0.0) {
      std::span<const double> src = data.Row(worst_point);
      std::span<double> dst = centroids.Row(c);
      std::copy(src.begin(), src.end(), dst.begin());
      consumed[worst_point] = true;
      --counts[static_cast<size_t>(assignments[worst_point])];
      counts[c] = 1;
      common::MetricsRegistry::Default()
          .GetCounter("kmeans/reseeded_clusters")
          .Increment();
    }
  }
}

std::vector<int64_t> ClusterSizes(const std::vector<int32_t>& assignments,
                                  int32_t k) {
  ADA_CHECK_GE(k, 1);
  std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
  for (int32_t a : assignments) {
    ADA_CHECK_GE(a, 0);
    ADA_CHECK_LT(a, k);
    ++sizes[static_cast<size_t>(a)];
  }
  return sizes;
}

StatusOr<Clustering> RunKMeans(const Matrix& data,
                               const KMeansOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return common::InvalidArgumentError("k-means requires non-empty data");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > data.rows()) {
    return common::InvalidArgumentError(
        "k must be in [1, number of points]");
  }
  if (options.max_iterations < 1) {
    return common::InvalidArgumentError("max_iterations must be >= 1");
  }

  Rng rng(options.seed);
  Clustering result;
  result.k = options.k;
  result.centroids = InitializeCentroids(data, options.k, options.init, rng);

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::WallTimer assign_timer;
  double assign_seconds = 0.0;
  int64_t assign_passes = 0;

  std::vector<int32_t> previous;
  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    assign_timer.Restart();
    result.sse = AssignToCentroids(data, result.centroids,
                                   result.assignments);
    assign_seconds += assign_timer.ElapsedSeconds();
    ++assign_passes;
    result.iterations = iter + 1;
    if (result.assignments == previous) {
      result.converged = true;
      break;
    }
    previous = result.assignments;
    RecomputeCentroids(data, result.assignments, result.centroids);
  }
  if (!result.converged) {
    // The loop exited after a RecomputeCentroids, so assignments/sse are
    // stale; re-assign against the final centroids. On a converged exit
    // the assignment is already consistent and re-running it would just
    // repeat an identical full-data pass.
    assign_timer.Restart();
    result.sse = AssignToCentroids(data, result.centroids,
                                   result.assignments);
    assign_seconds += assign_timer.ElapsedSeconds();
    ++assign_passes;
  }

  metrics.GetCounter("kmeans/runs").Increment();
  metrics.GetCounter("kmeans/iterations").Increment(result.iterations);
  metrics.GetCounter("kmeans/assign_passes").Increment(assign_passes);
  metrics.GetHistogram("kmeans/assign_seconds").Record(assign_seconds);
  return result;
}

}  // namespace cluster
}  // namespace adahealth
