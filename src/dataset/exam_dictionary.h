// Bidirectional mapping between examination-type ids and names.
#ifndef ADAHEALTH_DATASET_EXAM_DICTIONARY_H_
#define ADAHEALTH_DATASET_EXAM_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataset/exam_record.h"

namespace adahealth {
namespace dataset {

/// Dense dictionary of examination types. Ids are assigned in insertion
/// order starting at 0.
class ExamDictionary {
 public:
  ExamDictionary() = default;

  /// Adds `name` if absent; returns its id either way.
  ExamTypeId Intern(std::string_view name);

  /// Returns the id for `name`, or NOT_FOUND.
  [[nodiscard]] common::StatusOr<ExamTypeId> Lookup(std::string_view name) const;

  /// Returns the name of `id`. Requires 0 <= id < size().
  const std::string& Name(ExamTypeId id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ExamTypeId> index_;
};

}  // namespace dataset
}  // namespace adahealth

#endif  // ADAHEALTH_DATASET_EXAM_DICTIONARY_H_
