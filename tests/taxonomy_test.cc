#include "dataset/taxonomy.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace dataset {
namespace {

Taxonomy MakeTaxonomy() {
  // 5 leaves, 3 groups, 2 categories.
  auto taxonomy = Taxonomy::Build(
      /*leaf_group=*/{0, 0, 1, 2, 2},
      /*group_names=*/{"glycemic", "eye", "cardio"},
      /*group_category=*/{0, 1, 1},
      /*category_names=*/{"laboratory", "specialist"});
  EXPECT_TRUE(taxonomy.ok());
  return std::move(taxonomy).value();
}

TEST(TaxonomyTest, Sizes) {
  Taxonomy taxonomy = MakeTaxonomy();
  EXPECT_EQ(taxonomy.num_leaves(), 5u);
  EXPECT_EQ(taxonomy.num_groups(), 3u);
  EXPECT_EQ(taxonomy.num_categories(), 2u);
  EXPECT_EQ(taxonomy.num_nodes(), 10u);
}

TEST(TaxonomyTest, GroupAndCategoryLookups) {
  Taxonomy taxonomy = MakeTaxonomy();
  EXPECT_EQ(taxonomy.GroupOfLeaf(1), 0);
  EXPECT_EQ(taxonomy.GroupOfLeaf(3), 2);
  EXPECT_EQ(taxonomy.CategoryOfGroup(0), 0);
  EXPECT_EQ(taxonomy.CategoryOfLeaf(2), 1);
  EXPECT_EQ(taxonomy.GroupName(1), "eye");
  EXPECT_EQ(taxonomy.CategoryName(0), "laboratory");
}

TEST(TaxonomyTest, GlobalNodeIds) {
  Taxonomy taxonomy = MakeTaxonomy();
  EXPECT_EQ(taxonomy.GroupNode(0), 5);
  EXPECT_EQ(taxonomy.GroupNode(2), 7);
  EXPECT_EQ(taxonomy.CategoryNode(0), 8);
  EXPECT_EQ(taxonomy.CategoryNode(1), 9);
}

TEST(TaxonomyTest, Levels) {
  Taxonomy taxonomy = MakeTaxonomy();
  EXPECT_EQ(taxonomy.LevelOf(0), 0);
  EXPECT_EQ(taxonomy.LevelOf(4), 0);
  EXPECT_EQ(taxonomy.LevelOf(5), 1);
  EXPECT_EQ(taxonomy.LevelOf(7), 1);
  EXPECT_EQ(taxonomy.LevelOf(8), 2);
  EXPECT_EQ(taxonomy.LevelOf(9), 2);
}

TEST(TaxonomyTest, Parents) {
  Taxonomy taxonomy = MakeTaxonomy();
  EXPECT_EQ(taxonomy.ParentOf(0), taxonomy.GroupNode(0));
  EXPECT_EQ(taxonomy.ParentOf(2), taxonomy.GroupNode(1));
  EXPECT_EQ(taxonomy.ParentOf(taxonomy.GroupNode(1)),
            taxonomy.CategoryNode(1));
  EXPECT_EQ(taxonomy.ParentOf(taxonomy.CategoryNode(0)), -1);
}

TEST(TaxonomyTest, LeavesUnder) {
  Taxonomy taxonomy = MakeTaxonomy();
  EXPECT_EQ(taxonomy.LeavesUnder(3), (std::vector<ExamTypeId>{3}));
  EXPECT_EQ(taxonomy.LeavesUnder(taxonomy.GroupNode(0)),
            (std::vector<ExamTypeId>{0, 1}));
  EXPECT_EQ(taxonomy.LeavesUnder(taxonomy.CategoryNode(1)),
            (std::vector<ExamTypeId>{2, 3, 4}));
}

TEST(TaxonomyTest, BuildRejectsBadInput) {
  EXPECT_FALSE(Taxonomy::Build({}, {"g"}, {0}, {"c"}).ok());
  EXPECT_FALSE(Taxonomy::Build({0}, {}, {}, {"c"}).ok());
  EXPECT_FALSE(Taxonomy::Build({1}, {"g"}, {0}, {"c"}).ok());   // Leaf oob.
  EXPECT_FALSE(Taxonomy::Build({0}, {"g"}, {1}, {"c"}).ok());   // Group oob.
  EXPECT_FALSE(Taxonomy::Build({0}, {"g"}, {0, 0}, {"c"}).ok());  // Sizes.
}

}  // namespace
}  // namespace dataset
}  // namespace adahealth
