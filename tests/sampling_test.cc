#include "transform/sampling.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace transform {
namespace {

dataset::ExamLog MakeLog(int32_t num_patients) {
  std::vector<dataset::Patient> patients;
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("a");
  std::vector<dataset::ExamRecord> records;
  for (int32_t i = 0; i < num_patients; ++i) {
    patients.push_back({i, 50, -1});
    // Patient i has i+1 records (activity gradient for stratification).
    for (int32_t r = 0; r <= i; ++r) records.push_back({i, a, r});
  }
  return dataset::ExamLog(std::move(patients), std::move(dictionary),
                          std::move(records));
}

TEST(SamplePatientsTest, SizeAndRange) {
  dataset::ExamLog log = MakeLog(100);
  common::Rng rng(5);
  auto sample = SamplePatients(log, 0.3, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample->begin(), sample->end()));
  std::set<dataset::PatientId> distinct(sample->begin(), sample->end());
  EXPECT_EQ(distinct.size(), 30u);
}

TEST(SamplePatientsTest, FullFraction) {
  dataset::ExamLog log = MakeLog(10);
  common::Rng rng(5);
  auto sample = SamplePatients(log, 1.0, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 10u);
}

TEST(SamplePatientsTest, TinyFractionReturnsAtLeastOne) {
  dataset::ExamLog log = MakeLog(10);
  common::Rng rng(5);
  auto sample = SamplePatients(log, 0.01, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 1u);
}

TEST(SamplePatientsTest, RejectsBadFractions) {
  dataset::ExamLog log = MakeLog(10);
  common::Rng rng(5);
  EXPECT_FALSE(SamplePatients(log, 0.0, rng).ok());
  EXPECT_FALSE(SamplePatients(log, 1.1, rng).ok());
}

TEST(StratifiedSamplingTest, RepresentsAllActivityQuartiles) {
  dataset::ExamLog log = MakeLog(100);
  common::Rng rng(7);
  auto sample = SamplePatientsStratifiedByActivity(log, 0.2, rng);
  ASSERT_TRUE(sample.ok());
  // 5 from each quartile.
  EXPECT_EQ(sample->size(), 20u);
  int quartile_hits[4] = {0, 0, 0, 0};
  for (dataset::PatientId id : sample.value()) {
    ++quartile_hits[std::min<int>(3, id / 25)];
  }
  for (int hits : quartile_hits) EXPECT_EQ(hits, 5);
}

TEST(BuildHorizontalScheduleTest, SubsetsAreNested) {
  dataset::ExamLog log = MakeLog(50);
  common::Rng rng(9);
  auto schedule = BuildHorizontalSchedule(log, {0.2, 0.5, 1.0}, rng);
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->size(), 3u);
  EXPECT_EQ((*schedule)[0].size(), 10u);
  EXPECT_EQ((*schedule)[1].size(), 25u);
  EXPECT_EQ((*schedule)[2].size(), 50u);
  // Nesting: every patient of step i appears in step i+1.
  for (size_t s = 0; s + 1 < schedule->size(); ++s) {
    std::set<dataset::PatientId> next((*schedule)[s + 1].begin(),
                                      (*schedule)[s + 1].end());
    for (dataset::PatientId id : (*schedule)[s]) {
      EXPECT_TRUE(next.contains(id));
    }
  }
}

TEST(BuildHorizontalScheduleTest, RejectsNonIncreasingFractions) {
  dataset::ExamLog log = MakeLog(10);
  common::Rng rng(9);
  EXPECT_FALSE(BuildHorizontalSchedule(log, {0.5, 0.5}, rng).ok());
  EXPECT_FALSE(BuildHorizontalSchedule(log, {0.5, 0.2}, rng).ok());
  EXPECT_FALSE(BuildHorizontalSchedule(log, {}, rng).ok());
  EXPECT_FALSE(BuildHorizontalSchedule(log, {0.0, 0.5}, rng).ok());
}

TEST(SamplingTest, DeterministicGivenSeed) {
  dataset::ExamLog log = MakeLog(60);
  common::Rng rng_a(13);
  common::Rng rng_b(13);
  auto a = SamplePatients(log, 0.4, rng_a);
  auto b = SamplePatients(log, 0.4, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace transform
}  // namespace adahealth
