#include "transform/matrix.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "transform/simd_kernels.h"

namespace adahealth {
namespace transform {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::At(size_t row, size_t col) {
  ADA_CHECK_LT(row, rows_);
  ADA_CHECK_LT(col, cols_);
  return data_[row * cols_ + col];
}

double Matrix::At(size_t row, size_t col) const {
  ADA_CHECK_LT(row, rows_);
  ADA_CHECK_LT(col, cols_);
  return data_[row * cols_ + col];
}

std::span<double> Matrix::Row(size_t row) {
  ADA_CHECK_LT(row, rows_);
  return std::span<double>(data_.data() + row * cols_, cols_);
}

std::span<const double> Matrix::Row(size_t row) const {
  ADA_CHECK_LT(row, rows_);
  return std::span<const double>(data_.data() + row * cols_, cols_);
}

std::vector<double> Matrix::ColumnMeans() const {
  ADA_CHECK_GT(rows_, 0u);
  std::vector<double> means(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    std::span<const double> row = Row(r);
    for (size_t c = 0; c < cols_; ++c) means[c] += row[c];
  }
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

void Matrix::L2NormalizeRows() {
  for (size_t r = 0; r < rows_; ++r) {
    std::span<double> row = Row(r);
    double norm = Norm(row);
    if (norm <= 0.0) continue;
    for (double& v : row) v /= norm;
  }
}

Matrix Matrix::SelectRows(const std::vector<size_t>& row_ids) const {
  Matrix out(row_ids.size(), cols_);
  for (size_t i = 0; i < row_ids.size(); ++i) {
    ADA_CHECK_LT(row_ids[i], rows_);
    std::span<const double> src = Row(row_ids[i]);
    std::span<double> dst = out.Row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Matrix::SelectColumns(const std::vector<size_t>& col_ids) const {
  Matrix out(rows_, col_ids.size());
  for (size_t c = 0; c < col_ids.size(); ++c) ADA_CHECK_LT(col_ids[c], cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::span<const double> src = Row(r);
    std::span<double> dst = out.Row(r);
    for (size_t c = 0; c < col_ids.size(); ++c) dst[c] = src[col_ids[c]];
  }
  return out;
}

std::vector<double> RowSquaredNorms(const Matrix& m) {
  std::vector<double> norms(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    norms[r] = simd::SquaredNorm(m.Row(r));
  }
  return norms;
}

void SquaredDistanceToAll(std::span<const double> point, double point_norm2,
                          const Matrix& centroids,
                          std::span<const double> centroid_norms2,
                          std::span<double> out) {
  const size_t k = centroids.rows();
  const size_t dims = centroids.cols();
  ADA_CHECK_EQ(point.size(), dims);
  ADA_CHECK_EQ(centroid_norms2.size(), k);
  ADA_CHECK_GE(out.size(), k);
  for (size_t c = 0; c < k; ++c) {
    // The dot product dispatches to the AVX2/FMA kernel when the CPU
    // has it; either way the reduction order is fixed per ISA, and the
    // reassociation stays inside FusedRelativeError's envelope.
    const double dot = simd::DotProduct(point, centroids.Row(c));
    out[c] = point_norm2 + centroid_norms2[c] - 2.0 * dot;
  }
}

double FusedRelativeError(size_t dims) {
  // Each form accumulates O(dims) roundings of terms bounded by
  // ‖x‖² + ‖c‖² (Cauchy–Schwarz bounds every partial product sum);
  // the factor 16 leaves a wide safety margin over the worst case.
  // This covers every reduction order the dispatched kernels can pick
  // (scalar 4-accumulator, AVX2 lanes, sparse per-entry): all of them
  // perform at most O(dims) roundings of the same bounded terms.
  return 16.0 * static_cast<double>(dims + 8) *
         std::numeric_limits<double>::epsilon();
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  ADA_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  ADA_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

double CosineSimilarity(std::span<const double> a,
                        std::span<const double> b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace transform
}  // namespace adahealth
