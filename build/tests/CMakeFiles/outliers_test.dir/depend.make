# Empty dependencies file for outliers_test.
# This may be replaced when dependencies are built.
