// Interactive knowledge ranking (paper §III, "Knowledge navigation"):
// orders extracted knowledge items by estimated interest and adapts the
// order as user feedback arrives — both to the rated item itself and,
// generalizing, to items of the same kind and end-goal.
#ifndef ADAHEALTH_CORE_RANKING_H_
#define ADAHEALTH_CORE_RANKING_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/knowledge.h"

namespace adahealth {
namespace core {

struct RankerOptions {
  /// Blend weight of direct item feedback vs. base quality.
  double feedback_weight = 0.5;
  /// Weight of the kind-level bias learned from feedback.
  double kind_bias_weight = 0.2;
  /// Weight of the goal-level bias learned from feedback.
  double goal_bias_weight = 0.2;
};

/// Feedback-adaptive ranker over a set of knowledge items.
class KnowledgeRanker {
 public:
  explicit KnowledgeRanker(RankerOptions options = RankerOptions())
      : options_(options) {}

  /// Registers items (ids must be unique; duplicates are rejected).
  [[nodiscard]] common::Status AddItems(const std::vector<KnowledgeItem>& items);

  size_t size() const { return items_.size(); }

  /// Records user feedback for an item; NOT_FOUND on unknown ids.
  /// Updates the item's own score and the kind/goal biases.
  [[nodiscard]] common::Status RecordFeedback(const std::string& item_id,
                                Interest interest);

  /// Current score of an item (NOT_FOUND on unknown ids).
  [[nodiscard]] common::StatusOr<double> ScoreOf(const std::string& item_id) const;

  /// Items ordered by descending score; ties broken by id for
  /// determinism. Item `interest` fields are updated to the feedback
  /// label when one was recorded.
  std::vector<KnowledgeItem> Ranked() const;

 private:
  struct Entry {
    KnowledgeItem item;
    bool has_feedback = false;
    double feedback_value = 0.0;  // Mean of feedback in [0, 1].
    int64_t feedback_count = 0;
  };

  static double InterestValue(Interest interest) {
    return static_cast<double>(static_cast<int32_t>(interest)) / 2.0;
  }

  double Score(const Entry& entry) const;

  RankerOptions options_;
  std::map<std::string, Entry> items_;
  // Aggregated feedback per kind / per goal: (sum, count).
  std::map<std::string, std::pair<double, int64_t>> kind_feedback_;
  std::map<int32_t, std::pair<double, int64_t>> goal_feedback_;
};

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_RANKING_H_
