# Empty compiler generated dependencies file for descriptors_test.
# This may be replaced when dependencies are built.
