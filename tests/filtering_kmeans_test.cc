#include "cluster/filtering_kmeans.h"

#include <gtest/gtest.h>
#include "cluster/quality.h"
#include "dataset/synthetic_cohort.h"
#include "test_util.h"
#include "transform/vsm.h"

namespace adahealth {
namespace cluster {
namespace {

using test::MakeBlobs;
using test::RandIndex;
using transform::Matrix;

TEST(FilteringKMeansTest, RecoversBlobs) {
  test::Blobs blobs = MakeBlobs(
      {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}, 60, 0.5, 2);
  KMeansOptions options;
  options.k = 3;
  options.seed = 4;
  auto clustering = RunFilteringKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GT(RandIndex(clustering->assignments, blobs.labels), 0.99);
}

TEST(FilteringKMeansTest, MatchesLloydFixedPoint) {
  // Same initialization (same seed) -> same final SSE as plain Lloyd,
  // up to floating-point noise.
  test::Blobs blobs = MakeBlobs(
      {{0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}, {6.0, 6.0}}, 50, 0.8, 6);
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    KMeansOptions options;
    options.k = 4;
    options.seed = seed;
    auto lloyd = RunKMeans(blobs.points, options);
    auto filtering = RunFilteringKMeans(blobs.points, options);
    ASSERT_TRUE(lloyd.ok());
    ASSERT_TRUE(filtering.ok());
    EXPECT_NEAR(lloyd->sse, filtering->sse, 1e-6 * lloyd->sse)
        << "seed " << seed;
    EXPECT_GT(RandIndex(lloyd->assignments, filtering->assignments), 0.999)
        << "seed " << seed;
  }
}

TEST(FilteringKMeansTest, MatchesLloydOnSparseVsmData) {
  // The paper's actual workload: sparse patient VSM vectors.
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  Matrix vsm = transform::BuildVsm(cohort->log);
  KMeansOptions options;
  options.k = 4;
  options.seed = 12;
  auto lloyd = RunKMeans(vsm, options);
  auto filtering = RunFilteringKMeans(vsm, options);
  ASSERT_TRUE(lloyd.ok());
  ASSERT_TRUE(filtering.ok());
  EXPECT_NEAR(lloyd->sse, filtering->sse, 1e-6 * lloyd->sse);
}

TEST(FilteringKMeansTest, VariousLeafSizesAgree) {
  test::Blobs blobs = MakeBlobs({{0.0}, {7.0}}, 60, 0.6, 8);
  KMeansOptions options;
  options.k = 2;
  options.seed = 10;
  auto reference = RunFilteringKMeans(blobs.points, options, 1);
  ASSERT_TRUE(reference.ok());
  for (size_t leaf_size : {2u, 8u, 64u, 1000u}) {
    auto clustering = RunFilteringKMeans(blobs.points, options, leaf_size);
    ASSERT_TRUE(clustering.ok());
    EXPECT_NEAR(clustering->sse, reference->sse, 1e-9)
        << "leaf size " << leaf_size;
  }
}

TEST(FilteringKMeansTest, KEqualsOne) {
  test::Blobs blobs = MakeBlobs({{3.0, 3.0}}, 50, 1.0, 14);
  KMeansOptions options;
  options.k = 1;
  auto clustering = RunFilteringKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  std::vector<double> means = blobs.points.ColumnMeans();
  EXPECT_NEAR(clustering->centroids.At(0, 0), means[0], 1e-9);
}

TEST(FilteringKMeansTest, DeterministicForSeed) {
  test::Blobs blobs = MakeBlobs({{0.0}, {9.0}}, 40, 0.5, 16);
  KMeansOptions options;
  options.k = 2;
  options.seed = 77;
  auto a = RunFilteringKMeans(blobs.points, options);
  auto b = RunFilteringKMeans(blobs.points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST(FilteringKMeansTest, InvalidArgumentsRejected) {
  Matrix points(5, 2, 1.0);
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(RunFilteringKMeans(points, options).ok());
  options.k = 9;
  EXPECT_FALSE(RunFilteringKMeans(points, options).ok());
  options.k = 2;
  options.max_iterations = 0;
  EXPECT_FALSE(RunFilteringKMeans(points, options).ok());
  EXPECT_FALSE(RunFilteringKMeans(Matrix(), options).ok());
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
