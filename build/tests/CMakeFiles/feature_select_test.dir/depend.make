# Empty dependencies file for feature_select_test.
# This may be replaced when dependencies are built.
