file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_mining.dir/bench_partial_mining.cc.o"
  "CMakeFiles/bench_partial_mining.dir/bench_partial_mining.cc.o.d"
  "bench_partial_mining"
  "bench_partial_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
