// Exam co-occurrence correlation discovery.
//
// The paper explains the partial-mining result by noting that "some
// examination types are probably correlated (e.g. they could be
// prescribed in conjunction or are needed to monitor/diagnose the same
// condition)". This module finds those correlated exam pairs directly
// from the per-patient count vectors.
#ifndef ADAHEALTH_STATS_CORRELATIONS_H_
#define ADAHEALTH_STATS_CORRELATIONS_H_

#include <vector>

#include "common/status.h"
#include "dataset/exam_log.h"

namespace adahealth {
namespace stats {

/// One correlated exam pair.
struct ExamCorrelation {
  dataset::ExamTypeId exam_a = 0;
  dataset::ExamTypeId exam_b = 0;
  /// Pearson correlation of the two exams' per-patient counts.
  double correlation = 0.0;
};

/// Returns the `top_n` most positively correlated exam pairs among
/// exams with at least `min_patients` distinct patients (rare exams
/// produce spurious correlations). Pairs are sorted by descending
/// correlation; ties by (exam_a, exam_b). O(E^2 * P) — fine for
/// hundreds of exam types.
[[nodiscard]] common::StatusOr<std::vector<ExamCorrelation>> TopExamCorrelations(
    const dataset::ExamLog& log, size_t top_n, int64_t min_patients = 20);

}  // namespace stats
}  // namespace adahealth

#endif  // ADAHEALTH_STATS_CORRELATIONS_H_
