#include "dataset/exam_log.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/csv.h"
#include "common/string_util.h"

namespace adahealth {
namespace dataset {

using common::InvalidArgumentError;
using common::Status;
using common::StatusOr;

ExamLog::ExamLog(std::vector<Patient> patients, ExamDictionary dictionary,
                 std::vector<ExamRecord> records)
    : patients_(std::move(patients)),
      dictionary_(std::move(dictionary)),
      records_(std::move(records)) {
  // invariant: callers (FromCsv, the Filter* rebuilders) construct
  // dense, validated ids before reaching this constructor; raw user
  // input is rejected with Status in FromCsv, never here.
  for (size_t i = 0; i < patients_.size(); ++i) {
    ADA_CHECK_EQ(patients_[i].id, static_cast<PatientId>(i));
  }
  // invariant: same as above — record ids were validated or interned.
  for (const ExamRecord& record : records_) {
    ADA_CHECK_GE(record.patient, 0);
    ADA_CHECK_LT(static_cast<size_t>(record.patient), patients_.size());
    ADA_CHECK_GE(record.exam_type, 0);
    ADA_CHECK_LT(static_cast<size_t>(record.exam_type), dictionary_.size());
  }
}

StatusOr<ExamLog> ExamLog::FromCsv(const std::string& csv_text) {
  auto rows_or = common::ParseCsv(csv_text);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty()) return InvalidArgumentError("empty exam-log CSV");
  const auto& header = rows[0];
  if (header.size() != 3 || header[0] != "patient_id" ||
      header[1] != "exam_type" || header[2] != "day") {
    return InvalidArgumentError(
        "exam-log CSV must have header patient_id,exam_type,day");
  }

  ExamDictionary dictionary;
  std::vector<ExamRecord> records;
  records.reserve(rows.size() - 1);
  PatientId max_patient = -1;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 3) {
      return InvalidArgumentError("exam-log CSV row " + std::to_string(r) +
                                  " has wrong field count");
    }
    auto patient_or = common::ParseInt64(row[0]);
    if (!patient_or.ok()) return patient_or.status();
    auto day_or = common::ParseInt64(row[2]);
    if (!day_or.ok()) return day_or.status();
    if (patient_or.value() < 0) {
      return InvalidArgumentError("negative patient id in exam-log CSV");
    }
    ExamRecord record;
    record.patient = static_cast<PatientId>(patient_or.value());
    record.exam_type = dictionary.Intern(row[1]);
    record.day = static_cast<int32_t>(day_or.value());
    max_patient = std::max(max_patient, record.patient);
    records.push_back(record);
  }

  std::vector<Patient> patients(static_cast<size_t>(max_patient + 1));
  for (size_t i = 0; i < patients.size(); ++i) {
    patients[i].id = static_cast<PatientId>(i);
    patients[i].age = 0;
    patients[i].profile = Patient::kUnknownProfile;
  }
  return ExamLog(std::move(patients), std::move(dictionary),
                 std::move(records));
}

Status ExamLog::Append(const std::vector<RawExamRecord>& rows) {
  for (const RawExamRecord& row : rows) {
    if (row.patient < 0) {
      return InvalidArgumentError("negative patient id in appended records");
    }
    if (row.exam_type.empty()) {
      return InvalidArgumentError("empty exam-type name in appended records");
    }
  }
  PatientId max_patient =
      patients_.empty() ? -1
                        : static_cast<PatientId>(patients_.size() - 1);
  records_.reserve(records_.size() + rows.size());
  for (const RawExamRecord& row : rows) {
    ExamRecord record;
    record.patient = row.patient;
    record.exam_type = dictionary_.Intern(row.exam_type);
    record.day = row.day;
    max_patient = std::max(max_patient, record.patient);
    records_.push_back(record);
  }
  // Densify the patient table up to the highest id seen, with the same
  // unknown age/profile placeholders FromCsv materializes.
  for (PatientId id = static_cast<PatientId>(patients_.size());
       id <= max_patient; ++id) {
    Patient patient;
    patient.id = id;
    patient.age = 0;
    patient.profile = Patient::kUnknownProfile;
    patients_.push_back(patient);
  }
  return common::OkStatus();
}

StatusOr<ExamLog> ExamLog::Load(const std::string& path) {
  auto text = common::ReadFileToString(path);
  if (!text.ok()) return text.status();
  return FromCsv(text.value());
}

std::string ExamLog::ToCsv() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records_.size() + 1);
  rows.push_back({"patient_id", "exam_type", "day"});
  for (const ExamRecord& record : records_) {
    rows.push_back({std::to_string(record.patient),
                    dictionary_.Name(record.exam_type),
                    std::to_string(record.day)});
  }
  return common::WriteCsv(rows);
}

Status ExamLog::Save(const std::string& path) const {
  return common::WriteStringToFile(path, ToCsv());
}

std::vector<int64_t> ExamLog::ExamFrequencies() const {
  std::vector<int64_t> counts(dictionary_.size(), 0);
  for (const ExamRecord& record : records_) {
    ++counts[static_cast<size_t>(record.exam_type)];
  }
  return counts;
}

std::vector<int64_t> ExamLog::RecordsPerPatient() const {
  std::vector<int64_t> counts(patients_.size(), 0);
  for (const ExamRecord& record : records_) {
    ++counts[static_cast<size_t>(record.patient)];
  }
  return counts;
}

std::vector<int64_t> ExamLog::PatientsPerExam() const {
  // Distinct (patient, exam) pairs per exam; bitset per exam would cost
  // |E|*|P| bits, so instead sort-free counting via hash of pairs.
  std::vector<std::unordered_map<PatientId, bool>> seen(dictionary_.size());
  std::vector<int64_t> counts(dictionary_.size(), 0);
  for (const ExamRecord& record : records_) {
    auto& patients_seen = seen[static_cast<size_t>(record.exam_type)];
    if (patients_seen.emplace(record.patient, true).second) {
      ++counts[static_cast<size_t>(record.exam_type)];
    }
  }
  return counts;
}

std::vector<int32_t> ExamLog::ProfileLabels() const {
  std::vector<int32_t> labels(patients_.size());
  for (size_t i = 0; i < patients_.size(); ++i) labels[i] = patients_[i].profile;
  return labels;
}

ExamLog ExamLog::FilterExamTypes(const std::vector<bool>& keep) const {
  // invariant: API precondition — `keep` is produced by code that read
  // dictionary_.size(), not by end-user input.
  ADA_CHECK_EQ(keep.size(), dictionary_.size());
  // Rebuild a dense dictionary over the kept types.
  ExamDictionary new_dictionary;
  std::vector<ExamTypeId> remap(dictionary_.size(), -1);
  for (size_t e = 0; e < dictionary_.size(); ++e) {
    if (keep[e]) {
      remap[e] =
          new_dictionary.Intern(dictionary_.Name(static_cast<ExamTypeId>(e)));
    }
  }
  std::vector<ExamRecord> new_records;
  new_records.reserve(records_.size());
  for (const ExamRecord& record : records_) {
    ExamTypeId mapped = remap[static_cast<size_t>(record.exam_type)];
    if (mapped < 0) continue;
    ExamRecord copy = record;
    copy.exam_type = mapped;
    new_records.push_back(copy);
  }
  return ExamLog(patients_, std::move(new_dictionary), std::move(new_records));
}

ExamLog ExamLog::FilterPatients(
    const std::vector<PatientId>& patient_ids) const {
  std::vector<PatientId> remap(patients_.size(), -1);
  std::vector<Patient> new_patients;
  new_patients.reserve(patient_ids.size());
  // invariant: API precondition — callers pass ids they obtained from
  // this log (e.g. sampling indices), so out-of-range or duplicate ids
  // are programmer errors, not data errors.
  for (PatientId id : patient_ids) {
    ADA_CHECK_GE(id, 0);
    ADA_CHECK_LT(static_cast<size_t>(id), patients_.size());
    // invariant: see above — duplicate ids are a caller bug.
    ADA_CHECK_MSG(remap[static_cast<size_t>(id)] < 0,
                  "duplicate patient id %d in FilterPatients", id);
    Patient patient = patients_[static_cast<size_t>(id)];
    patient.id = static_cast<PatientId>(new_patients.size());
    remap[static_cast<size_t>(id)] = patient.id;
    new_patients.push_back(patient);
  }
  std::vector<ExamRecord> new_records;
  for (const ExamRecord& record : records_) {
    PatientId mapped = remap[static_cast<size_t>(record.patient)];
    if (mapped < 0) continue;
    ExamRecord copy = record;
    copy.patient = mapped;
    new_records.push_back(copy);
  }
  return ExamLog(std::move(new_patients), dictionary_, std::move(new_records));
}

}  // namespace dataset
}  // namespace adahealth
