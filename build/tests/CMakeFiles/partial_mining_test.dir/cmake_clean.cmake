file(REMOVE_RECURSE
  "CMakeFiles/partial_mining_test.dir/partial_mining_test.cc.o"
  "CMakeFiles/partial_mining_test.dir/partial_mining_test.cc.o.d"
  "partial_mining_test"
  "partial_mining_test.pdb"
  "partial_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
