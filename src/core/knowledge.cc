#include "core/knowledge.h"

namespace adahealth {
namespace core {

using common::Json;
using common::StatusOr;

const char* EndGoalName(EndGoal goal) {
  switch (goal) {
    case EndGoal::kPatientGrouping:
      return "patient_grouping";
    case EndGoal::kCommonExamPatterns:
      return "common_exam_patterns";
    case EndGoal::kComplianceOutcome:
      return "compliance_outcome";
    case EndGoal::kInteractionDiscovery:
      return "interaction_discovery";
    case EndGoal::kResourcePlanning:
      return "resource_planning";
  }
  return "?";
}

const char* InterestName(Interest interest) {
  switch (interest) {
    case Interest::kLow:
      return "low";
    case Interest::kMedium:
      return "medium";
    case Interest::kHigh:
      return "high";
  }
  return "?";
}

StatusOr<EndGoal> EndGoalFromName(const std::string& name) {
  for (int32_t g = 0; g < kNumEndGoals; ++g) {
    EndGoal goal = static_cast<EndGoal>(g);
    if (name == EndGoalName(goal)) return goal;
  }
  return common::InvalidArgumentError("unknown end-goal: " + name);
}

StatusOr<Interest> InterestFromName(const std::string& name) {
  for (int32_t i = 0; i < kNumInterestLevels; ++i) {
    Interest interest = static_cast<Interest>(i);
    if (name == InterestName(interest)) return interest;
  }
  return common::InvalidArgumentError("unknown interest: " + name);
}

Json KnowledgeItem::ToJson() const {
  Json::Object object;
  object["item_id"] = Json(id);
  object["goal"] = Json(std::string(EndGoalName(goal)));
  object["kind"] = Json(kind);
  object["description"] = Json(description);
  object["quality"] = Json(quality);
  object["payload"] = payload;
  object["interest"] = Json(std::string(InterestName(interest)));
  return Json(std::move(object));
}

StatusOr<KnowledgeItem> KnowledgeItem::FromJson(const Json& json) {
  if (!json.is_object()) {
    return common::InvalidArgumentError("knowledge item must be an object");
  }
  KnowledgeItem item;
  const Json* id = json.Find("item_id");
  if (id == nullptr || !id->is_string()) {
    return common::InvalidArgumentError("knowledge item missing item_id");
  }
  item.id = id->AsString();
  const Json* goal = json.Find("goal");
  if (goal == nullptr || !goal->is_string()) {
    return common::InvalidArgumentError("knowledge item missing goal");
  }
  auto parsed_goal = EndGoalFromName(goal->AsString());
  if (!parsed_goal.ok()) return parsed_goal.status();
  item.goal = parsed_goal.value();
  if (const Json* kind = json.Find("kind"); kind != nullptr &&
      kind->is_string()) {
    item.kind = kind->AsString();
  }
  if (const Json* description = json.Find("description");
      description != nullptr && description->is_string()) {
    item.description = description->AsString();
  }
  if (const Json* quality = json.Find("quality");
      quality != nullptr && quality->is_number()) {
    item.quality = quality->AsDouble();
  }
  if (const Json* payload = json.Find("payload"); payload != nullptr) {
    item.payload = *payload;
  }
  if (const Json* interest = json.Find("interest");
      interest != nullptr && interest->is_string()) {
    auto parsed = InterestFromName(interest->AsString());
    if (!parsed.ok()) return parsed.status();
    item.interest = parsed.value();
  }
  return item;
}

}  // namespace core
}  // namespace adahealth
