// Compressed sparse row (CSR) matrix.
//
// The paper stresses that medical logs are "inherently sparse"; the
// VSM of a large cohort is mostly zeros. CsrMatrix stores only the
// non-zero entries and supports the distance/similarity kernels needed
// by clustering: a fused error-bounded screen over dense centroids,
// an exact squared distance that is bit-identical to the dense scalar
// formula, and gather/scatter helpers for the centroid reduction.
#ifndef ADAHEALTH_TRANSFORM_SPARSE_MATRIX_H_
#define ADAHEALTH_TRANSFORM_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "transform/matrix.h"

namespace adahealth {
namespace transform {

/// Default nnz-density threshold at or below which the CSR
/// representation beats dense for the clustering kernels. The fused
/// screen does O(nnz) work per centroid instead of O(dims), but each
/// sparse entry costs ~3x a dense lane (scattered accumulation vs a
/// contiguous SIMD dot), so the measured crossover against the
/// dispatched dense kernels sits near 10% — comfortably above the
/// paper cohort's ~7% density. transform/vsm and cluster/kmeans both
/// key their auto-selection off this value.
inline constexpr double kDefaultSparseDensityThreshold = 0.10;

/// One non-zero entry of a sparse row.
struct SparseEntry {
  uint32_t column = 0;
  double value = 0.0;

  friend bool operator==(const SparseEntry& a, const SparseEntry& b) = default;
};

/// Immutable CSR matrix built row by row.
class CsrMatrix {
 public:
  /// An empty 0 x 0 matrix (so the type can sit in result structs that
  /// populate it conditionally).
  CsrMatrix() = default;

  /// Incremental builder; append rows in order.
  class Builder {
   public:
    explicit Builder(size_t cols) : cols_(cols) {}

    /// Appends a row given (column, value) pairs. Returns
    /// INVALID_ARGUMENT — and appends nothing — when a column is out
    /// of range (>= cols), columns are not strictly increasing, or a
    /// value is NaN; the builder stays usable for further rows. Zero
    /// values are dropped.
    [[nodiscard]] common::Status AddRow(
        const std::vector<SparseEntry>& entries);

    CsrMatrix Build() &&;

   private:
    size_t cols_;
    std::vector<size_t> row_offsets_{0};
    std::vector<SparseEntry> entries_;
  };

  size_t rows() const { return row_offsets_.size() - 1; }
  size_t cols() const { return cols_; }
  size_t num_nonzeros() const { return entries_.size(); }

  /// Entries of row `row` as a contiguous span.
  std::span<const SparseEntry> Row(size_t row) const;

  /// Converts to a dense matrix.
  Matrix ToDense() const;

  /// Builds from a dense matrix, dropping zeros (including negative
  /// zeros, which densify back as +0.0). CHECK-fails on NaN cells —
  /// callers converting possibly-unsanitized data must screen first.
  static CsrMatrix FromDense(const Matrix& dense);

  /// Fraction of cells that are non-zero.
  double Density() const;

 private:
  CsrMatrix(size_t cols, std::vector<size_t> row_offsets,
            std::vector<SparseEntry> entries)
      : cols_(cols),
        row_offsets_(std::move(row_offsets)),
        entries_(std::move(entries)) {}

  size_t cols_ = 0;
  std::vector<size_t> row_offsets_{0};
  std::vector<SparseEntry> entries_;
};

/// Dot product of two sparse rows (two-pointer merge).
double SparseDot(std::span<const SparseEntry> a,
                 std::span<const SparseEntry> b);

/// Cosine similarity of two sparse rows; 0 when either is empty.
double SparseCosineSimilarity(std::span<const SparseEntry> a,
                              std::span<const SparseEntry> b);

// --- Clustering batch kernels -------------------------------------------
//
// These power the sparse k-means path (cluster/kmeans*). The contract
// mirrors the dense kernels in transform/matrix.h: the fused form is
// an error-bounded screen, the exact form reproduces the dense scalar
// arithmetic bit for bit so engine results stay identical across
// representations.

/// ‖row‖² of every row (sum of squared non-zeros, in column order).
std::vector<double> RowSquaredNorms(const CsrMatrix& m);

/// Exact squared Euclidean distance from a sparse row to a dense
/// vector, bit-identical to SquaredDistance(densified_row, dense):
/// the same (a[d] - b[d]) * (a[d] - b[d]) terms folded into the same
/// sequential accumulator in the same dimension order (a zero a[d]
/// contributes b[d]*b[d], which IEEE-754 guarantees equals
/// (0.0 - b[d]) * (0.0 - b[d])). `row` columns must be < dense.size().
double SparseSquaredDistance(std::span<const SparseEntry> row,
                             std::span<const double> dense);

/// Fused batch distance screen: writes into `out[c]` the value
/// ‖row‖² + ‖c‖² − 2·row·c against every column c of `centroids_t`,
/// the TRANSPOSED (dims x k) centroid block. Transposing turns the
/// per-entry gather into a contiguous k-wide axpy, which the SIMD
/// dispatcher vectorizes. Error-bounded exactly like the dense
/// SquaredDistanceToAll: consumers needing exact distances re-check
/// within the FusedRelativeError(dims) margin. `out` must have
/// centroids_t.cols() capacity and is fully overwritten.
void SparseSquaredDistanceToAll(std::span<const SparseEntry> row,
                                double row_norm2, const Matrix& centroids_t,
                                std::span<const double> centroid_norms2,
                                std::span<double> out);

/// Sparse-gather accumulation: `sum[column] += value` for every entry.
/// Adding only the non-zeros is bit-identical to the dense row-sum
/// because a dense accumulation's remaining `+= 0.0` terms cannot
/// change any finite sum. `row` columns must be < sum.size().
void AccumulateRow(std::span<const SparseEntry> row, std::span<double> sum);

/// Scatters a sparse row into `out`: zero-fills, then assigns the
/// non-zeros. `out.size()` must equal the matrix column count.
void DensifyRow(std::span<const SparseEntry> row, std::span<double> out);

}  // namespace transform
}  // namespace adahealth

#endif  // ADAHEALTH_TRANSFORM_SPARSE_MATRIX_H_
