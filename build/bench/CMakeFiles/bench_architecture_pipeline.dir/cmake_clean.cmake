file(REMOVE_RECURSE
  "CMakeFiles/bench_architecture_pipeline.dir/bench_architecture_pipeline.cc.o"
  "CMakeFiles/bench_architecture_pipeline.dir/bench_architecture_pipeline.cc.o.d"
  "bench_architecture_pipeline"
  "bench_architecture_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architecture_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
