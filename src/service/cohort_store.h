// Streaming cohort store: the ingestion half of the analysis service.
//
// A cohort is a named, append-only examination log that grows one
// `ingest` batch at a time. Every committed batch advances the
// cohort's **generation**; an analyze-on-cohort job snapshots the log
// at its current generation and the scheduler versions its dataset
// fingerprint as `<cohort>@<generation>/<hash>`, so the result cache
// always serves the latest consistent snapshot and supersedes older
// generations (service/result_cache.h).
//
// Persistence (when a directory is configured) follows the K-DB
// crash-safety discipline with a two-file layout per cohort:
//  * `<name>.records` — the raw records CSV, appended in arrival
//    order and fsync'd per batch;
//  * `<name>.manifest.json` — everything else (generation, the byte
//    count of the valid records prefix, the incrementally maintained
//    descriptors, and the warm-start state), rewritten atomically
//    (tmp + fsync + rename + directory fsync) after the records hit
//    disk.
// A crash between the append and the manifest rename leaves stale
// bytes past `committed_bytes` that the loader never reads and the
// next append truncates away: the prior generation stays readable, a
// batch is either fully committed or never happened.
//
// Descriptors (the paper's §2.1 characterization: counts, per-exam
// marginals, matrix density) are maintained incrementally per batch —
// never recomputed from the accumulated log on the ingest path — and
// cross-checked against a full recompute by the tests.
//
// Delta re-analysis: after a cohort job succeeds, OnAnalysisCommitted
// persists the selected centroids, the exam types their columns mean,
// and the best K. The next BuildCohortJob attaches them as a
// SessionOptions warm hint unless the cohort drifted too far since
// the analyzed generation (drift_threshold), in which case the job
// runs cold. The hint is identity-gated inside the session (see
// core::WarmStartOptions): it can speed the sweep up but never
// changes what a cold run on the same data would report.
//
// Failpoints: "service.ingest.append" (records append),
// "service.ingest.snapshot" (manifest write — both the per-batch one
// and the post-analysis warm-state one; a failed warm snapshot drops
// the warm state, degrading the next job to a cold run), and
// "service.ingest.adapt" (warm-hint attachment; a failure falls back
// to cold). Metrics: "service/ingest_batches", "_records",
// "_warm_starts", "_cold_fallbacks", "_snapshot_failures" counters.
#ifndef ADAHEALTH_SERVICE_COHORT_STORE_H_
#define ADAHEALTH_SERVICE_COHORT_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/sync.h"
#include "dataset/exam_log.h"
#include "service/scheduler.h"
#include "transform/matrix.h"

namespace adahealth {
namespace service {

struct CohortStoreOptions {
  /// Directory for the per-cohort records/manifest files. Empty = pure
  /// in-memory store (tests, demos): nothing survives the process, but
  /// every other contract holds.
  std::string directory;
  /// Warm-start drift gate: when more than this fraction of the
  /// cohort's records arrived after the last analyzed generation, the
  /// prior centroids are considered stale and the next job runs cold.
  double drift_threshold = 0.5;
};

/// What one committed ingest batch did.
struct IngestResult {
  int64_t generation = 0;     // Generation the batch committed as.
  int64_t batch_records = 0;  // Records in this batch.
  int64_t total_records = 0;  // Accumulated records after the batch.
  int64_t patients = 0;       // Accumulated distinct-patient count.
};

/// Point-in-time copy of one cohort's incrementally maintained §2.1
/// descriptors.
struct CohortDescriptors {
  int64_t generation = 0;
  int64_t records = 0;
  int64_t patients = 0;
  int64_t exam_types = 0;
  /// Non-zero fraction of the patient x exam-type count matrix.
  double density = 0.0;
  double mean_records_per_patient = 0.0;
  /// Per-exam record counts (the marginals), keyed by exam name.
  std::map<std::string, int64_t> exam_marginals;
};

/// Exact per-store ingest counters (the `stats`/`health` "ingest"
/// object).
struct CohortStoreStats {
  int64_t batches = 0;
  int64_t records = 0;
  int64_t cohorts = 0;
  int64_t generations = 0;  // Sum of current generations over cohorts.
  int64_t warm_starts = 0;
  int64_t cold_fallbacks = 0;
  int64_t snapshot_failures = 0;
};

/// Thread-safe named-cohort store. All methods are safe to call
/// concurrently; each batch commits atomically under one lock scope.
class CohortStore {
 public:
  /// Restores every persisted cohort from options.directory (salvage
  /// semantics: a cohort whose manifest or committed records prefix
  /// cannot be parsed is skipped with a logged warning, never a
  /// constructor failure).
  explicit CohortStore(CohortStoreOptions options);

  CohortStore(const CohortStore&) = delete;
  CohortStore& operator=(const CohortStore&) = delete;

  /// Appends one batch to `cohort` (creating it on first use) and
  /// advances its generation. All-or-nothing: on any failure —
  /// validation, an injected "service.ingest.append"/".snapshot"
  /// fault, or real I/O — the cohort's previous generation stays
  /// intact in memory and on disk. INVALID_ARGUMENT for a malformed
  /// cohort name, an empty batch, or invalid records.
  ///
  /// `expected_generation` is the client's replay guard: when >= 0 the
  /// batch commits only if the cohort is currently at exactly that
  /// generation (0 for a cohort that does not exist yet); otherwise
  /// FAILED_PRECONDITION, nothing applied. A client that resends a
  /// batch after a lost ack thus cannot double-apply it: the original
  /// commit advanced the generation, so the replay is rejected and the
  /// mismatch tells the client the first attempt (or a concurrent
  /// writer) already landed. -1 = unconditional append.
  [[nodiscard]] common::StatusOr<IngestResult> Ingest(
      const std::string& cohort,
      const std::vector<dataset::RawExamRecord>& rows,
      int64_t expected_generation = -1) ADA_EXCLUDES(mutex_);

  /// Builds an analyze job over the cohort's current snapshot: the
  /// accumulated log, the versioning fields (JobRequest::cohort /
  /// cohort_generation), dataset_id defaulted to the cohort name, and
  /// — when warm state exists, the drift gate passes and
  /// "service.ingest.adapt" does not fire — the warm-start hint.
  /// NOT_FOUND for an unknown cohort.
  [[nodiscard]] common::StatusOr<JobRequest> BuildCohortJob(
      const std::string& cohort) ADA_EXCLUDES(mutex_);

  /// Records a successful analysis of `cohort` at `generation`: the
  /// selected centroids + exam types + best K become the next warm
  /// state, persisted into the manifest. `analyzed_records` is the
  /// record count of the snapshot that was analyzed (the job's log,
  /// NOT the cohort's live log, which may already hold batches that
  /// arrived after the snapshot) — it is what the drift gate measures
  /// fresh records against. A failed persist (the
  /// "service.ingest.snapshot" failpoint or real I/O) drops the warm
  /// state instead of installing it — the next job degrades to a cold
  /// run, never a wrong answer. Stale and duplicate notifications (a
  /// generation no newer than one already analyzed) are ignored, so
  /// re-analyses of the same generation cannot perturb the stored
  /// hint. Wired to SchedulerOptions::on_session_success by the
  /// server.
  void OnAnalysisCommitted(const std::string& cohort, int64_t generation,
                           int64_t analyzed_records,
                           const core::SessionResult& result)
      ADA_EXCLUDES(mutex_);

  /// Descriptor snapshot; NOT_FOUND for unknown cohorts.
  [[nodiscard]] common::StatusOr<CohortDescriptors> Descriptors(
      const std::string& cohort) const ADA_EXCLUDES(mutex_);

  /// Copy of the accumulated log (what a cohort job would analyze);
  /// NOT_FOUND for unknown cohorts.
  [[nodiscard]] common::StatusOr<dataset::ExamLog> Snapshot(
      const std::string& cohort) const ADA_EXCLUDES(mutex_);

  [[nodiscard]] CohortStoreStats stats() const ADA_EXCLUDES(mutex_);
  /// The stats as the JSON object embedded in `stats`/`health`.
  [[nodiscard]] common::Json StatsJson() const ADA_EXCLUDES(mutex_);

  [[nodiscard]] size_t num_cohorts() const ADA_EXCLUDES(mutex_);
  const CohortStoreOptions& options() const { return options_; }

 private:
  struct CohortState {
    int64_t generation = 0;
    dataset::ExamLog log;
    /// Bytes of the records file covered by the last durable manifest.
    size_t committed_bytes = 0;
    /// Incremental descriptors (see CohortDescriptors).
    std::map<std::string, int64_t> exam_marginals;
    std::set<std::pair<int32_t, int32_t>> distinct_pairs;
    /// Warm-start state from the last committed analysis.
    bool has_warm = false;
    transform::Matrix warm_centroids;
    std::vector<int32_t> warm_exam_types;
    int32_t warm_best_k = 0;
    int64_t analyzed_generation = 0;
    /// Record count of the analyzed snapshot itself (not of the live
    /// log at notification time): the drift gate's baseline.
    int64_t analyzed_records = 0;
  };

  [[nodiscard]] std::string RecordsPath(const std::string& cohort) const;
  [[nodiscard]] std::string ManifestPath(const std::string& cohort) const;
  /// Appends `payload` to the cohort's records file after truncating
  /// any uncommitted residue past state.committed_bytes, then fsyncs.
  [[nodiscard]] common::Status AppendRecordsFile(const std::string& cohort,
                                                 const CohortState& state,
                                                 const std::string& payload);
  /// Atomically rewrites the cohort's manifest from `state`
  /// (tmp + fsync + rename + dir fsync; "service.ingest.snapshot").
  [[nodiscard]] common::Status WriteManifest(const std::string& cohort,
                                             const CohortState& state);
  [[nodiscard]] common::Json ManifestJson(const std::string& cohort,
                                          const CohortState& state) const;
  /// Loads one persisted cohort (constructor path).
  [[nodiscard]] common::Status LoadCohort(const std::string& cohort)
      ADA_REQUIRES(mutex_);

  const CohortStoreOptions options_;

  mutable common::Mutex mutex_;
  std::map<std::string, CohortState> cohorts_ ADA_GUARDED_BY(mutex_);
  CohortStoreStats stats_ ADA_GUARDED_BY(mutex_);
};

/// True when `name` is a filesystem- and protocol-safe cohort name:
/// 1-64 chars from [A-Za-z0-9_-].
[[nodiscard]] bool IsValidCohortName(std::string_view name);

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_COHORT_STORE_H_
