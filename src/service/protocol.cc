#include "service/protocol.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace service {

using common::Json;
using common::Status;
using common::StatusOr;

namespace {

// Field readers with defaults. The wire format is permissive about
// int-vs-double (clients hand-write these payloads), so numeric
// accessors accept either.
StatusOr<int64_t> ReadInt(const Json& body, std::string_view key,
                          int64_t fallback) {
  const Json* field = body.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_int()) {
    return common::InvalidArgumentError(
        common::StrFormat("field '%s' must be an integer",
                          std::string(key).c_str()));
  }
  return field->AsInt();
}

StatusOr<double> ReadDouble(const Json& body, std::string_view key,
                            double fallback) {
  const Json* field = body.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    return common::InvalidArgumentError(
        common::StrFormat("field '%s' must be a number",
                          std::string(key).c_str()));
  }
  return field->AsDouble();
}

StatusOr<bool> ReadBool(const Json& body, std::string_view key,
                        bool fallback) {
  const Json* field = body.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_bool()) {
    return common::InvalidArgumentError(
        common::StrFormat("field '%s' must be a boolean",
                          std::string(key).c_str()));
  }
  return field->AsBool();
}

StatusOr<std::string> ReadString(const Json& body, std::string_view key,
                                 std::string fallback) {
  const Json* field = body.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_string()) {
    return common::InvalidArgumentError(
        common::StrFormat("field '%s' must be a string",
                          std::string(key).c_str()));
  }
  return field->AsString();
}

// Applies the supported session-option subset from an "options" object.
Status ApplySessionOptions(const Json& options_json,
                           core::SessionOptions& options) {
  if (!options_json.is_object()) {
    return common::InvalidArgumentError("'options' must be an object");
  }
  if (const Json* ks = options_json.Find("candidate_ks"); ks != nullptr) {
    if (!ks->is_array() || ks->AsArray().empty()) {
      return common::InvalidArgumentError(
          "'candidate_ks' must be a non-empty array of integers");
    }
    std::vector<int32_t> candidate_ks;
    for (const Json& k : ks->AsArray()) {
      if (!k.is_int()) {
        return common::InvalidArgumentError(
            "'candidate_ks' must be a non-empty array of integers");
      }
      candidate_ks.push_back(static_cast<int32_t>(k.AsInt()));
    }
    options.optimizer.candidate_ks = std::move(candidate_ks);
  }
  ADA_ASSIGN_OR_RETURN(
      int64_t cv_folds,
      ReadInt(options_json, "cv_folds", options.optimizer.cv_folds));
  options.optimizer.cv_folds = static_cast<int32_t>(cv_folds);
  ADA_ASSIGN_OR_RETURN(
      int64_t restarts,
      ReadInt(options_json, "restarts", options.optimizer.restarts));
  options.optimizer.restarts = static_cast<int32_t>(restarts);
  ADA_ASSIGN_OR_RETURN(
      int64_t seed,
      ReadInt(options_json, "seed",
              static_cast<int64_t>(options.optimizer.seed)));
  options.optimizer.seed = static_cast<uint64_t>(seed);
  ADA_ASSIGN_OR_RETURN(
      int64_t max_selected,
      ReadInt(options_json, "max_selected_items",
              static_cast<int64_t>(options.max_selected_items)));
  if (max_selected <= 0) {
    return common::InvalidArgumentError("'max_selected_items' must be > 0");
  }
  options.max_selected_items = static_cast<size_t>(max_selected);
  ADA_ASSIGN_OR_RETURN(
      double sample_fraction,
      ReadDouble(options_json, "sample_fraction",
                 options.transform.sample_fraction));
  options.transform.sample_fraction = sample_fraction;
  return common::OkStatus();
}

}  // namespace

StatusOr<Request> ParseRequest(const std::string& line) {
  ADA_ASSIGN_OR_RETURN(Json body, Json::Parse(line));
  if (!body.is_object()) {
    return common::InvalidArgumentError("request must be a JSON object");
  }
  ADA_ASSIGN_OR_RETURN(std::string verb, ReadString(body, "verb", ""));
  if (verb.empty()) {
    return common::InvalidArgumentError(
        "request must carry a non-empty 'verb'");
  }
  Request request;
  request.verb = std::move(verb);
  request.body = std::move(body);
  return request;
}

std::string OkResponse(Json::Object fields) {
  fields["ok"] = true;
  return Json(std::move(fields)).Dump() + "\n";
}

std::string ErrorResponse(const Status& status) {
  return ErrorResponse(status, Json::Object{});
}

std::string ErrorResponse(const Status& status,
                          Json::Object extra_fields) {
  Json::Object error;
  error["code"] = std::string(common::StatusCodeName(status.code()));
  error["message"] = status.message();
  Json::Object fields = std::move(extra_fields);
  fields["ok"] = false;
  fields["error"] = Json(std::move(error));
  return Json(std::move(fields)).Dump() + "\n";
}

StatusOr<Json> ParseResponse(const std::string& line) {
  ADA_ASSIGN_OR_RETURN(Json response, Json::Parse(line));
  if (!response.is_object()) {
    return common::InvalidArgumentError("response must be a JSON object");
  }
  const Json* ok = response.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return common::InvalidArgumentError(
        "response must carry a boolean 'ok'");
  }
  if (ok->AsBool()) return response;
  const Json* error = response.Find("error");
  if (error == nullptr || !error->is_object()) {
    return common::InvalidArgumentError(
        "error response must carry an 'error' object");
  }
  ADA_ASSIGN_OR_RETURN(std::string code_name,
                       ReadString(*error, "code", "UNKNOWN"));
  ADA_ASSIGN_OR_RETURN(std::string message, ReadString(*error, "message", ""));
  auto code = common::StatusCodeFromName(code_name);
  // An unrecognized code name still surfaces the server's message.
  if (!code.ok()) return Status(common::StatusCode::kInternal, message);
  return Status(code.value(), std::move(message));
}

StatusOr<JobRequest> BuildJobRequest(const Json& body) {
  JobRequest request;
  const Json* csv = body.Find("csv");
  const Json* synthetic = body.Find("synthetic");
  if ((csv != nullptr) == (synthetic != nullptr)) {
    return common::InvalidArgumentError(
        "submit requires exactly one of 'csv' or 'synthetic'");
  }
  if (csv != nullptr) {
    if (!csv->is_string()) {
      return common::InvalidArgumentError("'csv' must be a string");
    }
    ADA_ASSIGN_OR_RETURN(request.log, dataset::ExamLog::FromCsv(csv->AsString()));
  } else {
    if (!synthetic->is_object()) {
      return common::InvalidArgumentError("'synthetic' must be an object");
    }
    dataset::CohortConfig config = dataset::TestScaleConfig();
    ADA_ASSIGN_OR_RETURN(int64_t patients,
                         ReadInt(*synthetic, "patients", config.num_patients));
    config.num_patients = static_cast<int32_t>(patients);
    ADA_ASSIGN_OR_RETURN(
        int64_t exam_types,
        ReadInt(*synthetic, "exam_types", config.num_exam_types));
    config.num_exam_types = static_cast<int32_t>(exam_types);
    ADA_ASSIGN_OR_RETURN(int64_t profiles,
                         ReadInt(*synthetic, "profiles", config.num_profiles));
    config.num_profiles = static_cast<int32_t>(profiles);
    ADA_ASSIGN_OR_RETURN(
        double mean_records,
        ReadDouble(*synthetic, "mean_records",
                   config.mean_records_per_patient));
    config.mean_records_per_patient = mean_records;
    ADA_ASSIGN_OR_RETURN(int64_t days,
                         ReadInt(*synthetic, "days", config.num_days));
    config.num_days = static_cast<int32_t>(days);
    ADA_ASSIGN_OR_RETURN(
        int64_t seed,
        ReadInt(*synthetic, "seed", static_cast<int64_t>(config.seed)));
    config.seed = static_cast<uint64_t>(seed);
    ADA_ASSIGN_OR_RETURN(dataset::Cohort cohort,
                         dataset::SyntheticCohortGenerator(config).Generate());
    request.log = std::move(cohort.log);
    ADA_ASSIGN_OR_RETURN(bool use_taxonomy,
                         ReadBool(body, "use_taxonomy", true));
    if (use_taxonomy) request.taxonomy = std::move(cohort.taxonomy);
  }
  ADA_RETURN_IF_ERROR(ApplyJobOptionsFromBody(body, request));
  return request;
}

Status ApplyJobOptionsFromBody(const Json& body, JobRequest& request) {
  ADA_ASSIGN_OR_RETURN(
      request.options.dataset_id,
      ReadString(body, "dataset_id", request.options.dataset_id));
  if (const Json* options_json = body.Find("options");
      options_json != nullptr) {
    ADA_RETURN_IF_ERROR(ApplySessionOptions(*options_json, request.options));
  }
  ADA_ASSIGN_OR_RETURN(int64_t priority, ReadInt(body, "priority", 0));
  request.priority = static_cast<int32_t>(priority);
  ADA_ASSIGN_OR_RETURN(request.deadline_millis,
                       ReadDouble(body, "deadline_millis", 0.0));
  return common::OkStatus();
}

StatusOr<std::vector<dataset::RawExamRecord>> ParseIngestRecords(
    const Json& body) {
  const Json* records = body.Find("records");
  if (records == nullptr || !records->is_array() ||
      records->AsArray().empty()) {
    return common::InvalidArgumentError(
        "ingest requires a non-empty 'records' array");
  }
  std::vector<dataset::RawExamRecord> rows;
  rows.reserve(records->AsArray().size());
  for (const Json& record : records->AsArray()) {
    if (!record.is_object()) {
      return common::InvalidArgumentError(
          "each ingest record must be an object");
    }
    dataset::RawExamRecord row;
    ADA_ASSIGN_OR_RETURN(int64_t patient, ReadInt(record, "patient", -1));
    row.patient = static_cast<dataset::PatientId>(patient);
    ADA_ASSIGN_OR_RETURN(row.exam_type, ReadString(record, "exam_type", ""));
    ADA_ASSIGN_OR_RETURN(int64_t day, ReadInt(record, "day", 0));
    row.day = static_cast<int32_t>(day);
    rows.push_back(std::move(row));
  }
  return rows;
}

Json::Object SnapshotFields(const JobSnapshot& snapshot,
                            bool include_artifacts) {
  Json::Object fields;
  fields["job_id"] = snapshot.id;
  fields["state"] = std::string(JobStateName(snapshot.state));
  fields["dataset_id"] = snapshot.dataset_id;
  fields["fingerprint"] = snapshot.fingerprint;
  fields["priority"] = static_cast<int64_t>(snapshot.priority);
  fields["cache_hit"] = snapshot.cache_hit;
  fields["wait_seconds"] = snapshot.wait_seconds;
  fields["run_seconds"] = snapshot.run_seconds;
  fields["knowledge_items"] = snapshot.knowledge_items;
  if (!snapshot.status.ok()) {
    fields["status_code"] =
        std::string(common::StatusCodeName(snapshot.status.code()));
    fields["status_message"] = snapshot.status.message();
  }
  if (include_artifacts) {
    fields["summary"] = snapshot.summary;
    fields["report"] = snapshot.report;
  }
  return fields;
}

}  // namespace service
}  // namespace adahealth
