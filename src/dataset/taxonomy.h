// Three-level examination taxonomy (exam -> group -> category).
//
// Used by (a) the synthetic cohort generator, whose latent clinical
// profiles boost whole exam groups, and (b) generalized pattern mining
// (MeTA-style, paper reference [2]), which mines itemsets at different
// abstraction levels.
#ifndef ADAHEALTH_DATASET_TAXONOMY_H_
#define ADAHEALTH_DATASET_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/exam_record.h"

namespace adahealth {
namespace dataset {

/// Node identifier in the taxonomy's global id space:
///   [0, num_leaves)                      leaf exams (== ExamTypeId)
///   [num_leaves, num_leaves+num_groups)  exam groups
///   [.., .. + num_categories)            top-level categories
using TaxonomyNodeId = int32_t;

/// Immutable 3-level taxonomy over examination types.
class Taxonomy {
 public:
  /// Creates an empty taxonomy (no nodes); useful as a container
  /// default. Use Build() to create a populated one.
  Taxonomy() = default;

  /// Builds a taxonomy.
  /// `leaf_group[e]` is the group index of exam `e`;
  /// `group_category[g]` is the category index of group `g`.
  /// Fails if any index is out of range or a level is empty.
  [[nodiscard]] static common::StatusOr<Taxonomy> Build(
      std::vector<int32_t> leaf_group, std::vector<std::string> group_names,
      std::vector<int32_t> group_category,
      std::vector<std::string> category_names);

  size_t num_leaves() const { return leaf_group_.size(); }
  size_t num_groups() const { return group_names_.size(); }
  size_t num_categories() const { return category_names_.size(); }
  /// Total nodes across all three levels.
  size_t num_nodes() const {
    return num_leaves() + num_groups() + num_categories();
  }

  /// Group index of a leaf exam.
  int32_t GroupOfLeaf(ExamTypeId exam) const;
  /// Category index of a group.
  int32_t CategoryOfGroup(int32_t group) const;
  /// Category index of a leaf exam.
  int32_t CategoryOfLeaf(ExamTypeId exam) const;

  const std::string& GroupName(int32_t group) const;
  const std::string& CategoryName(int32_t category) const;

  /// Global node id of group `group`.
  TaxonomyNodeId GroupNode(int32_t group) const {
    return static_cast<TaxonomyNodeId>(num_leaves() + group);
  }
  /// Global node id of category `category`.
  TaxonomyNodeId CategoryNode(int32_t category) const {
    return static_cast<TaxonomyNodeId>(num_leaves() + num_groups() + category);
  }

  /// Abstraction level of a node: 0 = leaf, 1 = group, 2 = category.
  int LevelOf(TaxonomyNodeId node) const;

  /// Parent of a node in the global id space; -1 for categories (roots).
  TaxonomyNodeId ParentOf(TaxonomyNodeId node) const;

  /// Leaf exam ids descending from `node` (the node itself if a leaf).
  std::vector<ExamTypeId> LeavesUnder(TaxonomyNodeId node) const;

 private:
  std::vector<int32_t> leaf_group_;
  std::vector<std::string> group_names_;
  std::vector<int32_t> group_category_;
  std::vector<std::string> category_names_;
};

}  // namespace dataset
}  // namespace adahealth

#endif  // ADAHEALTH_DATASET_TAXONOMY_H_
