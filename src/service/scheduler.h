// Concurrent analysis-job scheduler: the service layer that turns
// AnalysisSession into a long-running multi-tenant engine.
//
// Three cooperating pieces:
//  * a bounded admission queue with per-job priorities and deadlines —
//    submissions beyond the queue bound are shed with
//    RESOURCE_EXHAUSTED, and queued jobs whose deadline passes before a
//    worker picks them up are shed with DEADLINE_EXCEEDED;
//  * N worker sessions multiplexed onto ThreadPool::Shared(): workers
//    are pool tasks (not dedicated threads), so concurrent
//    AnalysisSession::Run calls share the parallel k-means backend
//    with the row-level parallelism instead of oversubscribing cores.
//    A worker task drains jobs until the queue is empty, then retires;
//    submissions spawn workers back up to the configured ceiling;
//  * the fingerprint result cache (service/result_cache.h) consulted
//    before every session run — the unit of work is the fully
//    automated session (no per-request tuning), so a fingerprint match
//    serves the stored report with no second execution.
//
// Determinism: a job produces a byte-identical session report to a
// direct AnalysisSession::Run with the same log and options, also when
// many jobs run concurrently (the PR-4 engines are thread-count
// independent and each job gets a private K-DB instance).
//
// Failpoints: "service.admission" (Submit), "service.worker.session"
// (evaluated once per job before the session runs). Metrics:
// "service/jobs_*" counters, "service/job_wait_seconds" and
// "service/job_run_seconds" histograms, "service/queue_depth" and
// "service/active_workers" gauges.
#ifndef ADAHEALTH_SERVICE_SCHEDULER_H_
#define ADAHEALTH_SERVICE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "common/json.h"
#include "common/status.h"
#include "core/session.h"
#include "dataset/exam_log.h"
#include "dataset/taxonomy.h"
#include "service/result_cache.h"

namespace adahealth {
namespace service {

using JobId = int64_t;

/// Lifecycle of a scheduled job. Terminal states: kDone, kFailed,
/// kExpired, kCancelled.
enum class JobState {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       // Session succeeded or the cache served the result.
  kFailed = 3,     // The session returned an error.
  kExpired = 4,    // Deadline passed before a worker started the job.
  kCancelled = 5,  // Cancelled while still queued.
};

/// "queued" / "running" / "done" / "failed" / "expired" / "cancelled".
const char* JobStateName(JobState state);

/// True for the four states a job can never leave.
[[nodiscard]] bool IsTerminal(JobState state);

/// One unit of work: a dataset plus the fully automated session that
/// should analyze it.
struct JobRequest {
  dataset::ExamLog log;
  /// Pattern mining is skipped when absent (mirrors AnalysisSession).
  std::optional<dataset::Taxonomy> taxonomy;
  core::SessionOptions options;
  /// Higher priorities are dequeued first; ties run in submit order.
  int32_t priority = 0;
  /// Relative deadline: the job must *start* within this many
  /// milliseconds of admission or it is shed. <= 0 disables it.
  double deadline_millis = 0.0;
};

/// Point-in-time copy of one job's externally visible state.
struct JobSnapshot {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// OK, or why the job failed / expired / was cancelled.
  common::Status status;
  std::string dataset_id;
  std::string fingerprint;
  int32_t priority = 0;
  /// True when the result was served from the fingerprint cache.
  bool cache_hit = false;
  /// Queue wait (admission -> worker pickup) and session run time.
  double wait_seconds = 0.0;
  double run_seconds = 0.0;
  /// Populated on kDone: the session summary and rendered report.
  std::string summary;
  std::string report;
  int64_t knowledge_items = 0;
};

struct SchedulerOptions {
  /// Concurrent worker sessions (>= 1); each is a ThreadPool::Shared()
  /// task, so the effective parallelism stays bounded by the pool.
  size_t max_workers = 4;
  /// Admission bound on queued (not yet running) jobs.
  size_t max_queue_depth = 64;
  /// Result-cache byte budget.
  size_t cache_bytes = 8 * 1024 * 1024;
  /// When non-empty, the cache is restored from this directory at
  /// construction, persisted (crash-safely) whenever the dirty-entry
  /// threshold is reached, and flushed once more at destruction.
  std::string cache_directory;
  /// Persist once this many inserts have accumulated since the last
  /// successful persist (clamped to >= 1; 1 = persist after every
  /// insert). Each persist is an O(all entries) full rewrite, so
  /// batching keeps a busy scheduler from rewriting the file per job;
  /// the destructor's final flush bounds the loss window to a crash.
  size_t cache_persist_threshold = 8;
  /// Construction-time Pause() (tests: stage jobs deterministically).
  bool start_paused = false;
};

/// Monotonic per-scheduler counters (the global metrics registry is
/// shared across schedulers and tests; these are exact per-instance).
struct SchedulerStats {
  int64_t submitted = 0;
  int64_t completed = 0;          // kDone, including cache hits.
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t expired = 0;            // Deadline shed at dequeue.
  int64_t shed = 0;               // Admission-time rejections.
  int64_t cache_served = 0;       // kDone answered by the cache.
  int64_t sessions_executed = 0;  // Actual AnalysisSession::Run calls.
  size_t queue_depth = 0;
  size_t active_workers = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);
  /// Cancels the queued backlog, waits for running jobs, persists the
  /// cache when a cache_directory is configured.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits a job. Errors: RESOURCE_EXHAUSTED (queue full),
  /// FAILED_PRECONDITION (scheduler shutting down), INVALID_ARGUMENT
  /// (empty dataset), or an injected "service.admission" failure —
  /// all counted as shed except the invalid-argument case.
  [[nodiscard]] common::StatusOr<JobId> Submit(JobRequest request);

  /// Snapshot of one job; NOT_FOUND for unknown ids.
  [[nodiscard]] common::StatusOr<JobSnapshot> Status(JobId id) const;

  /// Blocks until the job reaches a terminal state (or
  /// `timeout_millis` elapses -> DEADLINE_EXCEEDED; <= 0 waits
  /// forever). Returns the terminal snapshot.
  [[nodiscard]] common::StatusOr<JobSnapshot> AwaitResult(
      JobId id, double timeout_millis = 0.0);

  /// Cancels a queued job. FAILED_PRECONDITION when it is already
  /// running or terminal, NOT_FOUND when unknown.
  [[nodiscard]] common::Status Cancel(JobId id);

  using SubscriptionId = int64_t;
  using CompletionCallback = std::function<void(const JobSnapshot&)>;

  /// Registers `callback` to fire exactly once when the job reaches a
  /// terminal state — the event-loop-safe alternative to parking a
  /// thread in AwaitResult. When the job is already terminal the
  /// callback is invoked before Subscribe returns (on the calling
  /// thread) and the sentinel id 0 — never issued for a live
  /// subscription — is returned. NOT_FOUND for unknown jobs.
  ///
  /// Callbacks run on whichever thread finishes the job (a scheduler
  /// worker), with the scheduler's internal lock held — they must be
  /// cheap and must never call back into this Scheduler (deadlock).
  /// Hand real work to an executor: the server posts to its event
  /// loop.
  [[nodiscard]] common::StatusOr<SubscriptionId> Subscribe(
      JobId id, CompletionCallback callback);

  /// Removes a pending subscription. Returns true when the callback
  /// was cancelled before firing; false when it already fired (or the
  /// id is unknown/the inline sentinel) — the caller must then expect
  /// the notification to arrive.
  bool Unsubscribe(SubscriptionId id);

  /// Stops dispatching queued jobs (running jobs finish). Idempotent.
  void Pause();
  /// Resumes dispatching.
  void Resume();

  /// Blocks until the queue is empty and every worker has retired.
  /// Resumes a paused scheduler first (a paused drain would deadlock).
  void Drain();

  [[nodiscard]] SchedulerStats stats() const;
  /// Stats plus cache counters as one JSON object (the `stats` verb).
  [[nodiscard]] common::Json StatsJson() const;

  ResultCache& cache() { return cache_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  struct Job {
    JobId id = 0;
    JobRequest request;
    std::string fingerprint;
    JobState state = JobState::kQueued;
    common::Status status;
    bool cache_hit = false;
    std::chrono::steady_clock::time_point enqueue_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none.
    bool has_deadline = false;
    double wait_seconds = 0.0;
    double run_seconds = 0.0;
    std::string summary;
    std::string report;
    int64_t knowledge_items = 0;

    [[nodiscard]] JobSnapshot Snapshot() const;
  };

  /// (-priority, id): lowest key = next to run.
  using PendingKey = std::pair<int64_t, JobId>;

  void SpawnWorkersLocked(std::unique_lock<std::mutex>& lock);
  void DrainLoop();
  void RunJob(Job& job);
  void FinishJob(Job& job, JobState state, common::Status status);
  void UpdateGaugesLocked() const;

  const SchedulerOptions options_;
  ResultCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable state_changed_;  // Terminal transitions.
  std::condition_variable workers_idle_;   // Worker retirement.
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::set<PendingKey> pending_;
  /// Pending completion subscriptions; fired (and erased) by
  /// FinishJob. The by-job index finds a job's subscribers without a
  /// full scan.
  struct Subscription {
    JobId job = 0;
    CompletionCallback callback;
  };
  std::map<SubscriptionId, Subscription> subscriptions_;
  std::multimap<JobId, SubscriptionId> subscriptions_by_job_;
  SubscriptionId next_subscription_id_ = 1;
  JobId next_id_ = 1;
  size_t active_workers_ = 0;
  bool paused_ = false;
  bool draining_ = false;
  SchedulerStats stats_;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_SCHEDULER_H_
