// The NDJSON protocol front-end: one TCP server that exposes a
// Scheduler over the loopback interface.
//
// Connection model: one request-response exchange per line; a client
// may pipeline several lines on one connection; connections are served
// sequentially by a single accept thread (commands are cheap — all
// heavy work runs on the scheduler's workers, so a serving thread
// never blocks behind an analysis). The `result` verb with a
// wait_millis budget is the one deliberate exception: it parks the
// serving thread in Scheduler::AwaitResult.
//
// Metrics: "service/server_connections", "service/server_requests",
// "service/server_errors" counters.
#ifndef ADAHEALTH_SERVICE_SERVER_H_
#define ADAHEALTH_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "service/net_socket.h"
#include "service/protocol.h"
#include "service/scheduler.h"

namespace adahealth {
namespace service {

struct ServerOptions {
  /// 0 = kernel-assigned ephemeral port (see AnalysisServer::port()).
  uint16_t port = 0;
  SchedulerOptions scheduler;
};

/// The analysis service: scheduler + NDJSON protocol endpoint.
class AnalysisServer {
 public:
  explicit AnalysisServer(ServerOptions options);
  /// Stops the server (as Stop()) before tearing down the scheduler.
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Binds the listening socket and starts the accept thread.
  /// UNAVAILABLE when the port cannot be bound; FAILED_PRECONDITION
  /// when already started.
  [[nodiscard]] common::Status Start();

  /// Unblocks the accept loop and joins the thread. Idempotent; safe
  /// to call from a serving thread's verb handler is NOT supported —
  /// the `shutdown` verb instead flips a flag the accept loop observes.
  void Stop();

  /// Blocks until the accept loop exits (a `shutdown` verb or Stop()).
  void Wait();

  /// The bound port (valid after Start()).
  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

  Scheduler& scheduler() { return scheduler_; }

  /// Handles one already-parsed request and returns the serialized
  /// response line. Exposed so tests can drive the dispatch table
  /// without sockets.
  [[nodiscard]] std::string Dispatch(const Request& request);

 private:
  void AcceptLoop();
  void ServeConnection(const FileDescriptor& connection);

  Scheduler scheduler_;
  ServerSocket listener_;
  std::mutex join_mutex_;  // Serializes Stop()/Wait() joins.
  /// The connection ServeConnection is currently parked on, if any:
  /// Stop() must wake a serving thread blocked in recv on it, not just
  /// the listener.
  std::mutex connection_mutex_;
  const FileDescriptor* active_connection_ = nullptr;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  uint16_t port_ = 0;
  const uint16_t requested_port_;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_SERVER_H_
