// Transaction encoding of the examination log for frequent-pattern
// discovery (the paper's second exploratory algorithm class, ref [2]):
// each patient becomes one transaction containing the distinct exam
// types (or taxonomy ancestors) they underwent.
#ifndef ADAHEALTH_PATTERNS_TRANSACTIONS_H_
#define ADAHEALTH_PATTERNS_TRANSACTIONS_H_

#include <cstdint>
#include <vector>

#include "dataset/exam_log.h"
#include "dataset/taxonomy.h"

namespace adahealth {
namespace patterns {

/// Item identifier; leaf items equal ExamTypeId, generalized items are
/// taxonomy node ids.
using ItemId = int32_t;

/// A transaction database: every transaction is a strictly increasing
/// item list; `num_items` bounds the item id space.
struct TransactionDb {
  size_t num_items = 0;
  std::vector<std::vector<ItemId>> transactions;

  size_t size() const { return transactions.size(); }
};

/// Builds one transaction per patient from the distinct exam types in
/// their history. Patients without records yield empty transactions
/// (kept, so transaction index == PatientId).
TransactionDb BuildTransactions(const dataset::ExamLog& log);

/// Builds transactions whose items are the taxonomy ancestors of the
/// patient's exams at `level` (0 = leaf exams, 1 = groups,
/// 2 = categories). Item ids are global taxonomy node ids.
TransactionDb BuildTransactionsAtLevel(const dataset::ExamLog& log,
                                       const dataset::Taxonomy& taxonomy,
                                       int level);

/// An itemset found frequent: items ascending, `support` = number of
/// containing transactions.
struct FrequentItemset {
  std::vector<ItemId> items;
  int64_t support = 0;

  friend bool operator==(const FrequentItemset& a,
                         const FrequentItemset& b) = default;
};

/// Canonically orders itemsets (by size, then lexicographic items) so
/// miner outputs are directly comparable; used in tests to assert
/// Apriori == FP-growth.
void SortCanonical(std::vector<FrequentItemset>& itemsets);

}  // namespace patterns
}  // namespace adahealth

#endif  // ADAHEALTH_PATTERNS_TRANSACTIONS_H_
