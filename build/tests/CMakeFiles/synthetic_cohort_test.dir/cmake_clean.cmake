file(REMOVE_RECURSE
  "CMakeFiles/synthetic_cohort_test.dir/synthetic_cohort_test.cc.o"
  "CMakeFiles/synthetic_cohort_test.dir/synthetic_cohort_test.cc.o.d"
  "synthetic_cohort_test"
  "synthetic_cohort_test.pdb"
  "synthetic_cohort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_cohort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
