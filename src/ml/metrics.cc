#include "ml/metrics.h"

namespace adahealth {
namespace ml {

common::StatusOr<ClassificationReport> EvaluateClassification(
    const std::vector<int32_t>& truth, const std::vector<int32_t>& predicted,
    int32_t num_classes) {
  if (truth.size() != predicted.size()) {
    return common::InvalidArgumentError(
        "truth and prediction sizes disagree");
  }
  if (truth.empty()) {
    return common::InvalidArgumentError("cannot evaluate an empty sample");
  }
  if (num_classes < 1) {
    return common::InvalidArgumentError("num_classes must be >= 1");
  }

  ClassificationReport report;
  report.num_classes = num_classes;
  report.num_samples = static_cast<int64_t>(truth.size());
  report.confusion.assign(
      static_cast<size_t>(num_classes),
      std::vector<int64_t>(static_cast<size_t>(num_classes), 0));

  int64_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || truth[i] >= num_classes || predicted[i] < 0 ||
        predicted[i] >= num_classes) {
      return common::InvalidArgumentError(
          "label outside [0, num_classes)");
    }
    ++report.confusion[static_cast<size_t>(truth[i])]
                      [static_cast<size_t>(predicted[i])];
    if (truth[i] == predicted[i]) ++correct;
  }
  report.accuracy =
      static_cast<double>(correct) / static_cast<double>(truth.size());

  report.precision.assign(static_cast<size_t>(num_classes), 0.0);
  report.recall.assign(static_cast<size_t>(num_classes), 0.0);
  report.f1.assign(static_cast<size_t>(num_classes), 0.0);
  for (int32_t c = 0; c < num_classes; ++c) {
    int64_t true_positive = report.confusion[static_cast<size_t>(c)]
                                            [static_cast<size_t>(c)];
    int64_t predicted_positive = 0;
    int64_t actual_positive = 0;
    for (int32_t other = 0; other < num_classes; ++other) {
      predicted_positive += report.confusion[static_cast<size_t>(other)]
                                            [static_cast<size_t>(c)];
      actual_positive += report.confusion[static_cast<size_t>(c)]
                                         [static_cast<size_t>(other)];
    }
    double precision = predicted_positive > 0
                           ? static_cast<double>(true_positive) /
                                 static_cast<double>(predicted_positive)
                           : 0.0;
    double recall = actual_positive > 0
                        ? static_cast<double>(true_positive) /
                              static_cast<double>(actual_positive)
                        : 0.0;
    report.precision[static_cast<size_t>(c)] = precision;
    report.recall[static_cast<size_t>(c)] = recall;
    report.f1[static_cast<size_t>(c)] =
        (precision + recall) > 0.0
            ? 2.0 * precision * recall / (precision + recall)
            : 0.0;
    report.macro_precision += precision;
    report.macro_recall += recall;
    report.macro_f1 += report.f1[static_cast<size_t>(c)];
  }
  report.macro_precision /= static_cast<double>(num_classes);
  report.macro_recall /= static_cast<double>(num_classes);
  report.macro_f1 /= static_cast<double>(num_classes);
  return report;
}

double GiniImpurity(const std::vector<int64_t>& class_counts) {
  int64_t total = 0;
  for (int64_t c : class_counts) total += c;
  if (total == 0) return 0.0;
  double sum_squared = 0.0;
  for (int64_t c : class_counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    sum_squared += p * p;
  }
  return 1.0 - sum_squared;
}

}  // namespace ml
}  // namespace adahealth
