// Document model of the K-DB (the paper's Knowledge Base, implemented
// there on "a cluster of MongoDBs"; here an embedded store — see
// DESIGN.md substitution table).
//
// A Document is a JSON object with a reserved integer "_id" field
// assigned by the owning collection. Queries address fields with
// dotted paths ("metrics.sse").
#ifndef ADAHEALTH_KDB_DOCUMENT_H_
#define ADAHEALTH_KDB_DOCUMENT_H_

#include <string>
#include <string_view>

#include "common/json.h"

namespace adahealth {
namespace kdb {

/// Document id; 0 means "not yet inserted".
using DocumentId = int64_t;

/// A JSON-object document.
class Document {
 public:
  /// Creates an empty document.
  Document() : json_(common::Json::Object{}) {}

  /// Wraps an existing JSON object; fails if `json` is not an object.
  [[nodiscard]] static common::StatusOr<Document> FromJson(common::Json json);

  /// Parses a JSON text into a document.
  [[nodiscard]] static common::StatusOr<Document> Parse(std::string_view text);

  /// The assigned id, or 0 when not inserted yet.
  DocumentId id() const;

  /// Sets/overwrites a top-level field.
  void Set(std::string_view field, common::Json value);

  /// Resolves a dotted path ("a.b.c") against nested objects; returns
  /// nullptr when any component is missing or not an object.
  const common::Json* Get(std::string_view path) const;

  /// Whole-object access.
  const common::Json& json() const { return json_; }

  std::string Dump() const { return json_.Dump(); }

  friend bool operator==(const Document& a, const Document& b) {
    return a.json_ == b.json_;
  }

 private:
  friend class Collection;  // Assigns "_id" on insert.
  explicit Document(common::Json json) : json_(std::move(json)) {}

  void set_id(DocumentId id);

  common::Json json_;
};

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_DOCUMENT_H_
