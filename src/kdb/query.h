// Declarative filter over K-DB documents: a conjunction of per-path
// conditions, evaluated against dotted paths.
#ifndef ADAHEALTH_KDB_QUERY_H_
#define ADAHEALTH_KDB_QUERY_H_

#include <string>
#include <vector>

#include "kdb/document.h"

namespace adahealth {
namespace kdb {

/// Comparison operator of one condition.
enum class QueryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kExists,
};

/// One path/op/value condition. For kExists the value is ignored.
struct Condition {
  std::string path;
  QueryOp op = QueryOp::kEq;
  common::Json value;
};

/// Conjunction of conditions (empty query matches everything).
/// Comparison semantics: numbers compare numerically (int vs double
/// allowed); strings lexicographically; booleans by value; ordering
/// ops on mismatched or non-scalar types never match; kNe matches when
/// kEq would not, including missing fields.
class Query {
 public:
  Query() = default;

  /// Matches every document.
  static Query All() { return Query(); }

  Query& Where(std::string path, QueryOp op, common::Json value);
  Query& Eq(std::string path, common::Json value);
  Query& Exists(std::string path);

  bool Matches(const Document& document) const;

  const std::vector<Condition>& conditions() const { return conditions_; }

 private:
  std::vector<Condition> conditions_;
};

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_QUERY_H_
