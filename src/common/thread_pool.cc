#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/logging.h"

namespace adahealth {
namespace common {

ThreadPool::ThreadPool(size_t num_threads) {
  ADA_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ADA_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

bool ThreadPool::TrySchedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::failed_tasks() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failed_tasks_;
}

std::string ThreadPool::first_failure_message() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return first_failure_message_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    bool failed = false;
    std::string failure_message;
    // Fault injection: "thread_pool.task" simulates a task whose
    // execution failed. The task body still runs — completion is
    // load-bearing for ParallelFor's pending count — only the pool's
    // failure accounting fires.
    Status injected = ADA_FAILPOINT("thread_pool.task");
    if (!injected.ok()) {
      failed = true;
      failure_message = injected.message();
    }
    try {
      task();
    } catch (const std::exception& e) {
      failed = true;
      failure_message = e.what();
      ADA_LOG(kWarning) << "thread pool task failed: " << failure_message;
    } catch (...) {
      failed = true;
      failure_message = "unknown exception";
      ADA_LOG(kWarning)
          << "thread pool task failed with a non-std exception";
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (failed) {
        ++failed_tasks_;
        if (failed_tasks_ == 1) first_failure_message_ = failure_message;
      }
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t workers = pool.num_threads();
  const size_t chunk = std::max<size_t>(1, (total + workers - 1) / workers);
  std::atomic<size_t> pending{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t scheduled = 0;
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
    ++scheduled;
  }
  pending.store(scheduled);
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
    const size_t chunk_end = std::min(end, chunk_begin + chunk);
    pool.Schedule([&, chunk_begin, chunk_end] {
      for (size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      if (pending.fetch_sub(1) == 1) {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending.load() == 0; });
}

}  // namespace common
}  // namespace adahealth
