#include "core/transform_selector.h"

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace core {
namespace {

TEST(TransformSelectorTest, DefaultCandidatesCoverAllCombinations) {
  TransformSelectorOptions options;
  EXPECT_EQ(options.candidates.size(), 6u);
}

TEST(TransformSelectorTest, ScoresEveryCandidateAndPicksBest) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  TransformSelectorOptions options;
  options.sample_fraction = 0.5;
  options.proxy_k = 4;
  auto selection = SelectTransformation(cohort->log, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->scores.size(), 6u);
  double best = selection->scores[selection->best_index].lift;
  for (const auto& score : selection->scores) {
    EXPECT_GT(score.overall_similarity, 0.0);
    EXPECT_GT(score.baseline_similarity, 0.0);
    EXPECT_GT(score.lift, 0.0);
    EXPECT_LE(score.lift, best + 1e-12);
  }
  // A real clustering must beat the random baseline in the winning
  // representation.
  EXPECT_GT(best, 1.0);
}

TEST(TransformSelectorTest, DeterministicForSeed) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  TransformSelectorOptions options;
  options.sample_fraction = 0.5;
  auto a = SelectTransformation(cohort->log, options);
  auto b = SelectTransformation(cohort->log, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->best_index, b->best_index);
  for (size_t i = 0; i < a->scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->scores[i].overall_similarity,
                     b->scores[i].overall_similarity);
    EXPECT_DOUBLE_EQ(a->scores[i].lift, b->scores[i].lift);
  }
}

TEST(TransformSelectorTest, SingleCandidateWins) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  TransformSelectorOptions options;
  options.candidates = {{transform::VsmWeighting::kBinary,
                         transform::VsmNormalization::kL2}};
  auto selection = SelectTransformation(cohort->log, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->best_index, 0u);
  EXPECT_EQ(selection->best().weighting, transform::VsmWeighting::kBinary);
}

TEST(TransformSelectorTest, RejectsBadOptions) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  TransformSelectorOptions options;
  options.candidates.clear();
  EXPECT_FALSE(SelectTransformation(cohort->log, options).ok());
  options = TransformSelectorOptions();
  options.sample_fraction = 0.0;
  EXPECT_FALSE(SelectTransformation(cohort->log, options).ok());
  // Empty log.
  dataset::ExamDictionary dictionary;
  dictionary.Intern("x");
  dataset::ExamLog empty({}, std::move(dictionary), {});
  EXPECT_FALSE(
      SelectTransformation(empty, TransformSelectorOptions()).ok());
}

}  // namespace
}  // namespace core
}  // namespace adahealth
