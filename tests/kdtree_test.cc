#include "cluster/kdtree.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>
#include "test_util.h"

namespace adahealth {
namespace cluster {
namespace {

using transform::Matrix;

TEST(KdTreeTest, SinglePointTree) {
  Matrix points(1, 2);
  points.At(0, 0) = 1.0;
  points.At(0, 1) = 2.0;
  KdTree tree(points);
  EXPECT_EQ(tree.num_nodes(), 1u);
  const KdTree::Node& root = tree.node(tree.root());
  EXPECT_TRUE(root.is_leaf());
  EXPECT_EQ(root.count(), 1u);
  EXPECT_DOUBLE_EQ(root.sum[0], 1.0);
  EXPECT_DOUBLE_EQ(root.sum_squared_norms, 5.0);
}

TEST(KdTreeTest, RootStatisticsCoverAllPoints) {
  test::Blobs blobs = test::MakeBlobs({{0.0, 0.0}, {5.0, 5.0}}, 50, 1.0, 3);
  KdTree tree(blobs.points, 8);
  const KdTree::Node& root = tree.node(tree.root());
  EXPECT_EQ(root.count(), 100u);
  std::vector<double> expected_sum(2, 0.0);
  double expected_sq = 0.0;
  for (size_t i = 0; i < blobs.points.rows(); ++i) {
    for (size_t d = 0; d < 2; ++d) {
      expected_sum[d] += blobs.points.At(i, d);
      expected_sq += blobs.points.At(i, d) * blobs.points.At(i, d);
    }
  }
  EXPECT_NEAR(root.sum[0], expected_sum[0], 1e-9);
  EXPECT_NEAR(root.sum[1], expected_sum[1], 1e-9);
  EXPECT_NEAR(root.sum_squared_norms, expected_sq, 1e-9);
}

TEST(KdTreeTest, LeafSizeRespected) {
  test::Blobs blobs = test::MakeBlobs({{0.0, 0.0}}, 200, 2.0, 5);
  KdTree tree(blobs.points, 10);
  for (size_t n = 0; n < tree.num_nodes(); ++n) {
    const KdTree::Node& node = tree.node(n);
    if (node.is_leaf()) {
      EXPECT_LE(node.count(), 10u);
    }
  }
}

TEST(KdTreeTest, ChildrenPartitionParent) {
  test::Blobs blobs = test::MakeBlobs({{0.0, 0.0}}, 100, 3.0, 7);
  KdTree tree(blobs.points, 8);
  for (size_t n = 0; n < tree.num_nodes(); ++n) {
    const KdTree::Node& node = tree.node(n);
    if (node.is_leaf()) continue;
    const KdTree::Node& left = tree.node(static_cast<size_t>(node.left));
    const KdTree::Node& right = tree.node(static_cast<size_t>(node.right));
    EXPECT_EQ(left.begin, node.begin);
    EXPECT_EQ(left.end, right.begin);
    EXPECT_EQ(right.end, node.end);
    EXPECT_NEAR(left.sum[0] + right.sum[0], node.sum[0], 1e-9);
    EXPECT_NEAR(left.sum_squared_norms + right.sum_squared_norms,
                node.sum_squared_norms, 1e-9);
  }
}

TEST(KdTreeTest, BoundingBoxesContainPoints) {
  test::Blobs blobs = test::MakeBlobs({{1.0, -1.0}}, 120, 2.5, 9);
  KdTree tree(blobs.points, 16);
  for (size_t n = 0; n < tree.num_nodes(); ++n) {
    const KdTree::Node& node = tree.node(n);
    for (size_t i = node.begin; i < node.end; ++i) {
      size_t point = tree.point_indices()[i];
      for (size_t d = 0; d < 2; ++d) {
        EXPECT_GE(blobs.points.At(point, d), node.box_min[d] - 1e-12);
        EXPECT_LE(blobs.points.At(point, d), node.box_max[d] + 1e-12);
      }
    }
  }
}

TEST(KdTreeTest, PointIndicesAreAPermutation) {
  test::Blobs blobs = test::MakeBlobs({{0.0}}, 77, 1.0, 11);
  KdTree tree(blobs.points, 4);
  std::set<size_t> distinct(tree.point_indices().begin(),
                            tree.point_indices().end());
  EXPECT_EQ(distinct.size(), 77u);
  EXPECT_EQ(*distinct.rbegin(), 76u);
}

TEST(KdTreeTest, IdenticalPointsStayOneLeaf) {
  Matrix points(50, 3, 2.0);
  KdTree tree(points, 4);
  // No split possible: all points identical -> single (oversized) leaf.
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.node(0).is_leaf());
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
