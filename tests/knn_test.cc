#include "ml/knn.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace adahealth {
namespace ml {
namespace {

using transform::Matrix;

TEST(KnnTest, SeparatesBlobs) {
  test::Blobs train = test::MakeBlobs({{0.0, 0.0}, {8.0, 8.0}}, 40, 0.6,
                                      101);
  KnnClassifier model;
  ASSERT_TRUE(model.Fit(train.points, train.labels, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{0.3, -0.2}), 0);
  EXPECT_EQ(model.Predict(std::vector<double>{8.1, 7.7}), 1);
}

TEST(KnnTest, KOneIsNearestNeighbor) {
  Matrix features(2, 1);
  features.At(0, 0) = 0.0;
  features.At(1, 0) = 10.0;
  KnnOptions options;
  options.k = 1;
  KnnClassifier model(options);
  ASSERT_TRUE(model.Fit(features, {0, 1}, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{2.0}), 0);
  EXPECT_EQ(model.Predict(std::vector<double>{8.0}), 1);
}

TEST(KnnTest, MajorityVoteBeatsSingleNeighbor) {
  // Nearest point has label 1, but the 3-neighborhood majority is 0.
  Matrix features(4, 1);
  features.At(0, 0) = 1.0;   // Label 1 (closest to query 0.9).
  features.At(1, 0) = 1.5;   // Label 0.
  features.At(2, 0) = 1.6;   // Label 0.
  features.At(3, 0) = 50.0;  // Label 1, far away.
  KnnOptions options;
  options.k = 3;
  KnnClassifier model(options);
  ASSERT_TRUE(model.Fit(features, {1, 0, 0, 1}, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{0.9}), 0);
}

TEST(KnnTest, KLargerThanTrainingSetClamps) {
  Matrix features(3, 1);
  for (size_t i = 0; i < 3; ++i) features.At(i, 0) = static_cast<double>(i);
  KnnOptions options;
  options.k = 50;
  KnnClassifier model(options);
  ASSERT_TRUE(model.Fit(features, {0, 0, 1}, 2).ok());
  EXPECT_EQ(model.Predict(std::vector<double>{5.0}), 0);  // Majority.
}

TEST(KnnTest, GeneralizesOnHeldOut) {
  test::Blobs train = test::MakeBlobs(
      {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}}, 50, 0.6, 103);
  test::Blobs held_out = test::MakeBlobs(
      {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}}, 30, 0.6, 104);
  KnnClassifier model;
  ASSERT_TRUE(model.Fit(train.points, train.labels, 3).ok());
  std::vector<int32_t> predicted = model.PredictBatch(held_out.points);
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == held_out.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / predicted.size(), 0.95);
}

TEST(KnnTest, RejectsInvalidInput) {
  Matrix features(3, 1, 1.0);
  KnnClassifier model;
  EXPECT_FALSE(model.Fit(features, {0, 1}, 2).ok());
  EXPECT_FALSE(model.Fit(features, {0, 1, 7}, 2).ok());
  EXPECT_FALSE(model.Fit(Matrix(), {}, 2).ok());
  KnnOptions bad;
  bad.k = 0;
  KnnClassifier bad_model(bad);
  EXPECT_FALSE(bad_model.Fit(features, {0, 1, 1}, 2).ok());
}

}  // namespace
}  // namespace ml
}  // namespace adahealth
