#include "core/session.h"

#include <set>

#include <gtest/gtest.h>
#include "cluster/kmeans.h"
#include "common/metrics.h"
#include "kdb/query.h"
#include "transform/vsm.h"

namespace adahealth {
namespace core {
namespace {

SessionOptions FastSessionOptions() {
  SessionOptions options;
  options.dataset_id = "test-cohort";
  options.transform.sample_fraction = 0.4;
  options.transform.proxy_k = 4;
  options.partial.fractions = {0.3, 0.6, 1.0};
  options.partial.ks = {3, 4};
  options.partial.kmeans.max_iterations = 30;
  options.optimizer.candidate_ks = {3, 4, 6};
  options.optimizer.cv_folds = 4;
  options.optimizer.num_threads = 2;
  options.pattern_mining.min_support_level0 = 0.4;
  options.pattern_mining.min_support_level1 = 0.5;
  options.pattern_mining.min_support_level2 = 0.6;
  options.pattern_mining.max_itemset_size = 3;
  return options;
}

class SessionTest : public testing::Test {
 protected:
  void SetUp() override {
    auto cohort = dataset::SyntheticCohortGenerator(
                      dataset::TestScaleConfig())
                      .Generate();
    ASSERT_TRUE(cohort.ok());
    cohort_ = std::move(cohort).value();
  }

  dataset::Cohort cohort_;
};

TEST_F(SessionTest, FullPipelineProducesAllArtifacts) {
  kdb::Database db;
  AnalysisSession session(&db);
  auto result =
      session.Run(cohort_.log, &cohort_.taxonomy, FastSessionOptions());
  ASSERT_TRUE(result.ok());

  // Characterization present.
  EXPECT_EQ(result->characterization.features.num_patients, 400);
  // Transform selection scored all candidates.
  EXPECT_EQ(result->transform.scores.size(), 6u);
  // Partial mining produced steps and a selection.
  EXPECT_GE(result->partial.steps.size(), 3u);
  EXPECT_LT(result->partial.selected_step, result->partial.steps.size());
  // Optimizer chose one of the candidate Ks.
  bool known_k = false;
  for (int32_t k : FastSessionOptions().optimizer.candidate_ks) {
    known_k |= result->optimizer.best_k() == k;
  }
  EXPECT_TRUE(known_k);
  // Knowledge items exist and include clusters.
  EXPECT_GE(result->knowledge.size(),
            static_cast<size_t>(result->optimizer.best_k()));
  bool has_cluster = false;
  for (const KnowledgeItem& item : result->knowledge) {
    if (item.kind == "cluster") has_cluster = true;
  }
  EXPECT_TRUE(has_cluster);
  EXPECT_FALSE(result->summary.empty());
}

TEST_F(SessionTest, PopulatesKdbCollections) {
  kdb::Database db;
  AnalysisSession session(&db);
  auto result =
      session.Run(cohort_.log, &cohort_.taxonomy, FastSessionOptions());
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(db.GetOrCreate(kdb::Schema::kDescriptors).size(), 1u);
  EXPECT_EQ(db.GetOrCreate(kdb::Schema::kTransformedDatasets).size(), 1u);
  EXPECT_EQ(db.GetOrCreate(kdb::Schema::kKnowledgeItems).size(),
            result->knowledge.size());
  size_t expected_selected = std::min(
      FastSessionOptions().max_selected_items, result->knowledge.size());
  EXPECT_EQ(db.GetOrCreate(kdb::Schema::kSelectedKnowledge).size(),
            expected_selected);
  // Raw dataset skipped by default.
  EXPECT_EQ(db.GetOrCreate(kdb::Schema::kRawDatasets).size(), 0u);

  // Stored items parse back into KnowledgeItems.
  for (const kdb::Document& document :
       db.GetOrCreate(kdb::Schema::kKnowledgeItems).documents()) {
    ASSERT_NE(document.Get("item"), nullptr);
    EXPECT_TRUE(KnowledgeItem::FromJson(*document.Get("item")).ok());
    EXPECT_EQ(document.Get("dataset_id")->AsString(), "test-cohort");
  }
}

TEST_F(SessionTest, SelectedKnowledgeIsRankedPrefix) {
  kdb::Database db;
  AnalysisSession session(&db);
  SessionOptions options = FastSessionOptions();
  options.max_selected_items = 5;
  auto result = session.Run(cohort_.log, &cohort_.taxonomy, options);
  ASSERT_TRUE(result.ok());
  kdb::Collection& selected =
      db.GetOrCreate(kdb::Schema::kSelectedKnowledge);
  ASSERT_EQ(selected.size(), 5u);
  for (const kdb::Document& document : selected.documents()) {
    int64_t rank = document.Get("rank")->AsInt();
    auto item = KnowledgeItem::FromJson(*document.Get("item"));
    ASSERT_TRUE(item.ok());
    EXPECT_EQ(item->id, result->knowledge[static_cast<size_t>(rank)].id);
  }
}

TEST_F(SessionTest, WorksWithoutTaxonomy) {
  kdb::Database db;
  AnalysisSession session(&db);
  auto result = session.Run(cohort_.log, nullptr, FastSessionOptions());
  ASSERT_TRUE(result.ok());
  // Only clustering-derived items, no itemsets/rules.
  for (const KnowledgeItem& item : result->knowledge) {
    EXPECT_TRUE(item.kind == "cluster" || item.kind == "outliers")
        << item.kind;
  }
}

TEST_F(SessionTest, StoreRawDatasetWhenRequested) {
  kdb::Database db;
  AnalysisSession session(&db);
  SessionOptions options = FastSessionOptions();
  options.store_raw_dataset = true;
  auto result = session.Run(cohort_.log, nullptr, options);
  ASSERT_TRUE(result.ok());
  kdb::Collection& raw = db.GetOrCreate(kdb::Schema::kRawDatasets);
  ASSERT_EQ(raw.size(), 1u);
  // Round-trip the stored CSV.
  auto restored = dataset::ExamLog::FromCsv(
      raw.documents()[0].Get("csv")->AsString());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_records(), cohort_.log.num_records());
}

TEST_F(SessionTest, PipelineRunPopulatesMetricsRegistry) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  kdb::Database db;
  AnalysisSession session(&db);
  auto result =
      session.Run(cohort_.log, &cohort_.taxonomy, FastSessionOptions());
  ASSERT_TRUE(result.ok());

  // Every pipeline layer recorded into the default registry.
  EXPECT_EQ(metrics.GetCounter("session/runs").value(), 1);
  for (const char* stage :
       {"session/characterize_seconds", "session/transform_select_seconds",
        "session/partial_mining_seconds", "session/optimize_seconds",
        "session/knowledge_seconds", "session/store_seconds",
        "session/total_seconds"}) {
    EXPECT_EQ(metrics.GetHistogram(stage).count(), 1) << stage;
  }
  EXPECT_GT(metrics.GetCounter("kmeans/runs").value(), 0);
  EXPECT_GT(metrics.GetCounter("kmeans/iterations").value(), 0);
  EXPECT_GT(metrics.GetHistogram("kmeans/assign_seconds").count(), 0);
  EXPECT_EQ(
      metrics.GetHistogram("optimizer/candidate_eval_seconds").count(),
      static_cast<int64_t>(
          FastSessionOptions().optimizer.candidate_ks.size()));
  EXPECT_GT(metrics.GetCounter("cv/folds").value(), 0);
  EXPECT_GT(metrics.GetCounter("partial_mining/steps").value(), 0);
  EXPECT_GT(metrics.GetCounter("kdb/inserts").value(), 0);

  // The registry exports as JSON for the bench trajectory.
  auto parsed = common::Json::Parse(metrics.ToJson().Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->Find("histograms")->Find("session/optimize_seconds"),
            nullptr);
}

// Regression tests for the [[nodiscard]] sweep: the knowledge-item
// helpers used to swallow shape errors into a silently-empty item list,
// which made a broken pipeline look like "no knowledge found". They now
// propagate the Status.
TEST_F(SessionTest, ClusterKnowledgeItemsPropagatesShapeErrors) {
  transform::Matrix vsm(4, cohort_.log.num_exam_types(), 0.1);
  cluster::Clustering clustering;
  clustering.k = 2;
  clustering.assignments = {0, 1};  // 2 assignments for 4 rows: invalid.
  auto items = ClusterKnowledgeItems(cohort_.log, vsm, clustering);
  ASSERT_FALSE(items.ok());
  EXPECT_EQ(items.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, ClusterKnowledgeItemsBuildsOneItemPerCluster) {
  transform::Matrix vsm = transform::BuildVsm(
      cohort_.log, transform::VsmOptions());
  auto clustering = cluster::RunKMeans(vsm, cluster::KMeansOptions{.k = 3});
  ASSERT_TRUE(clustering.ok());
  auto items = ClusterKnowledgeItems(cohort_.log, vsm, clustering.value());
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 3u);
}

TEST_F(SessionTest, OutlierKnowledgeItemsPropagatesShapeErrors) {
  transform::Matrix vsm(4, 3, 0.1);
  cluster::Clustering clustering;
  clustering.k = 2;
  clustering.assignments = {0, 1};  // Wrong length again.
  auto items = OutlierKnowledgeItems(vsm, clustering);
  ASSERT_FALSE(items.ok());
  EXPECT_EQ(items.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, KnowledgeItemIdsAreUnique) {
  kdb::Database db;
  AnalysisSession session(&db);
  auto result =
      session.Run(cohort_.log, &cohort_.taxonomy, FastSessionOptions());
  ASSERT_TRUE(result.ok());
  std::set<std::string> ids;
  for (const KnowledgeItem& item : result->knowledge) {
    EXPECT_TRUE(ids.insert(item.id).second) << "duplicate " << item.id;
  }
}

}  // namespace
}  // namespace core
}  // namespace adahealth
