# Empty dependencies file for transform_selector_test.
# This may be replaced when dependencies are built.
