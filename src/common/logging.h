// Minimal leveled logger used across ADA-HEALTH.
//
// Usage:
//   ADA_LOG(kInfo) << "optimizer picked k=" << best_k;
//
// Messages below the global threshold (default kInfo) are discarded
// cheaply. Output goes to stderr with a level prefix.
#ifndef ADAHEALTH_COMMON_LOGGING_H_
#define ADAHEALTH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace adahealth {
namespace common {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global minimum level that is actually emitted.
void SetLogThreshold(LogLevel level);

/// Returns the current global threshold.
LogLevel LogThreshold();

/// One in-flight log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace common
}  // namespace adahealth

#define ADA_LOG(severity)                                        \
  ::adahealth::common::LogMessage(                               \
      ::adahealth::common::LogLevel::severity, __FILE__, __LINE__)

#endif  // ADAHEALTH_COMMON_LOGGING_H_
