file(REMOVE_RECURSE
  "CMakeFiles/bisecting_test.dir/bisecting_test.cc.o"
  "CMakeFiles/bisecting_test.dir/bisecting_test.cc.o.d"
  "bisecting_test"
  "bisecting_test.pdb"
  "bisecting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisecting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
