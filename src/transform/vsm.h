// Vector Space Model construction (paper §IV-A: "a single
// pre-processing block capable of tailoring a given dataset to a Vector
// Space Model (VSM) representation, which is particularly suited to
// handle sparse datasets").
//
// Each patient becomes one vector whose components count (or weight)
// the examinations they underwent.
#ifndef ADAHEALTH_TRANSFORM_VSM_H_
#define ADAHEALTH_TRANSFORM_VSM_H_

#include "common/status.h"
#include "dataset/exam_log.h"
#include "transform/matrix.h"
#include "transform/sparse_matrix.h"

namespace adahealth {
namespace transform {

/// Component weighting scheme of the VSM.
enum class VsmWeighting {
  /// Raw occurrence counts (the paper's preliminary implementation:
  /// "number of times he/she underwent each examination").
  kCount,
  /// 1 if the patient underwent the exam at least once, else 0.
  kBinary,
  /// count * log(num_patients / patients_with_exam); the classic
  /// TF-IDF weighting, de-emphasizing ubiquitous checkups.
  kTfIdf,
};

/// Row post-processing of the VSM.
enum class VsmNormalization {
  kNone,
  /// Scale each patient vector to unit L2 norm.
  kL2,
};

struct VsmOptions {
  VsmWeighting weighting = VsmWeighting::kCount;
  VsmNormalization normalization = VsmNormalization::kNone;
};

/// Builds the dense patient x exam-type VSM of `log`.
/// Rows are indexed by PatientId, columns by ExamTypeId.
Matrix BuildVsm(const dataset::ExamLog& log,
                const VsmOptions& options = VsmOptions());

/// Builds the same VSM in CSR form without materializing the dense
/// matrix (memory-efficient path for very sparse logs). Cell-for-cell
/// bit-identical to BuildVsm (same weighting and normalization
/// arithmetic in the same order), so downstream consumers may pick
/// either representation freely.
CsrMatrix BuildSparseVsm(const dataset::ExamLog& log,
                         const VsmOptions& options = VsmOptions());

/// VSM in whichever representation the measured density calls for:
/// exactly one of `dense` / `sparse` is populated (`is_sparse` says
/// which), `density` is the measured nnz fraction either way.
struct VsmBuild {
  Matrix dense;
  CsrMatrix sparse;
  bool is_sparse = false;
  double density = 0.0;
};

/// Builds the VSM and keeps it in CSR form when the nnz density is at
/// or below `density_threshold` (the paper cohort sits around 7%, far
/// under the default), densifying otherwise. The sparse k-means path
/// consumes the CSR form without ever materializing the dense matrix.
VsmBuild BuildVsmAuto(
    const dataset::ExamLog& log, const VsmOptions& options = VsmOptions(),
    double density_threshold = kDefaultSparseDensityThreshold);

/// Human-readable names for the enum values (for reports and the K-DB).
const char* VsmWeightingName(VsmWeighting weighting);
const char* VsmNormalizationName(VsmNormalization normalization);

}  // namespace transform
}  // namespace adahealth

#endif  // ADAHEALTH_TRANSFORM_VSM_H_
