#include "transform/feature_select.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace adahealth {
namespace transform {

using dataset::ExamLog;
using dataset::ExamTypeId;

std::vector<ExamTypeId> RankExamsByFrequency(const ExamLog& log) {
  std::vector<int64_t> frequencies = log.ExamFrequencies();
  std::vector<ExamTypeId> order(frequencies.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](ExamTypeId a, ExamTypeId b) {
                     return frequencies[static_cast<size_t>(a)] >
                            frequencies[static_cast<size_t>(b)];
                   });
  return order;
}

std::vector<bool> TopExamsMask(const ExamLog& log, size_t count) {
  ADA_CHECK_LE(count, log.num_exam_types());
  std::vector<ExamTypeId> ranked = RankExamsByFrequency(log);
  std::vector<bool> mask(log.num_exam_types(), false);
  for (size_t i = 0; i < count; ++i) {
    mask[static_cast<size_t>(ranked[i])] = true;
  }
  return mask;
}

std::vector<bool> TopFractionExamsMask(const ExamLog& log, double fraction) {
  ADA_CHECK_GE(fraction, 0.0);
  ADA_CHECK_LE(fraction, 1.0);
  size_t count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(log.num_exam_types())));
  count = std::min(count, log.num_exam_types());
  return TopExamsMask(log, count);
}

double RecordCoverage(const ExamLog& log, const std::vector<bool>& mask) {
  ADA_CHECK_EQ(mask.size(), log.num_exam_types());
  if (log.num_records() == 0) return 0.0;
  int64_t kept = 0;
  for (const auto& record : log.records()) {
    if (mask[static_cast<size_t>(record.exam_type)]) ++kept;
  }
  return static_cast<double>(kept) / static_cast<double>(log.num_records());
}

common::StatusOr<std::vector<VerticalSubset>> BuildVerticalSchedule(
    const ExamLog& log, const std::vector<double>& fractions) {
  if (fractions.empty()) {
    return common::InvalidArgumentError("empty vertical schedule");
  }
  std::vector<VerticalSubset> schedule;
  schedule.reserve(fractions.size());
  for (double fraction : fractions) {
    if (fraction <= 0.0 || fraction > 1.0) {
      return common::InvalidArgumentError(
          "vertical fractions must be in (0, 1]");
    }
    VerticalSubset subset;
    subset.exam_fraction = fraction;
    subset.mask = TopFractionExamsMask(log, fraction);
    subset.record_coverage = RecordCoverage(log, subset.mask);
    schedule.push_back(std::move(subset));
  }
  return schedule;
}

}  // namespace transform
}  // namespace adahealth
