// K-means clustering (Lloyd's algorithm) with random and k-means++
// initialization. The kd-tree accelerated variant cited by the paper
// (Kanungo et al. [3]) lives in cluster/filtering_kmeans.h and produces
// identical results faster.
#ifndef ADAHEALTH_CLUSTER_KMEANS_H_
#define ADAHEALTH_CLUSTER_KMEANS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "transform/matrix.h"
#include "transform/sparse_matrix.h"

namespace adahealth {
namespace cluster {

/// Centroid initialization strategy.
enum class KMeansInit {
  /// k distinct data points chosen uniformly at random.
  kRandom,
  /// k-means++ seeding (D^2 weighting).
  kKMeansPlusPlus,
};

/// Assignment-loop implementation. Both engines produce bit-identical
/// assignments, centroids, SSE and iteration counts for the same
/// options; they differ only in speed.
enum class KMeansEngine {
  /// Reference Lloyd: full O(n·k·d) distance scan every pass.
  kNaive,
  /// Hamerly bound-pruned Lloyd with fused distance kernels and
  /// chunked parallel passes on ThreadPool::Shared()
  /// (cluster/kmeans_accel.h). Exact, not approximate.
  kAccelerated,
};

/// Data-layout selection for the assignment/update kernels. Whatever
/// the representation, results are identical: the sparse kernels
/// reproduce the dense scalar arithmetic bit for bit (assignments,
/// SSE, iteration counts; centroids may differ only in the sign of
/// zero when the input contains negative zeros, which compare equal).
enum class KMeansRepresentation {
  /// Measure the nnz density and pick: accelerated runs on data at or
  /// below KMeansOptions::sparse_density_threshold (and at least
  /// kMinSparseDims columns) go CSR, everything else stays dense.
  kAuto,
  /// Always run the dense kernels.
  kDense,
  /// Always run the CSR kernels (dense inputs are converted once).
  kSparse,
};

struct KMeansOptions {
  /// Number of clusters; 1 <= k <= number of points.
  int32_t k = 8;
  KMeansInit init = KMeansInit::kKMeansPlusPlus;
  /// Hard iteration cap.
  int32_t max_iterations = 100;
  /// Converged when no assignment changes in an iteration.
  uint64_t seed = 1;
  KMeansEngine engine = KMeansEngine::kAccelerated;
  KMeansRepresentation representation = KMeansRepresentation::kAuto;
  /// kAuto density cutoff for switching to the CSR kernels.
  double sparse_density_threshold =
      transform::kDefaultSparseDensityThreshold;
  /// Warm start: when non-empty (must be k x data.cols()), used as the
  /// initial centroids instead of running `init`. The optimizer seeds
  /// restarts and adjacent candidate Ks from earlier solutions this
  /// way. Copied by value so the options stay self-contained. The
  /// explicit {} is a default member initializer so designated-init
  /// call sites (`KMeansOptions{.k = 3}`) stay clean under
  /// -Wmissing-field-initializers.
  transform::Matrix initial_centroids{};
};

/// Result of a clustering run.
struct Clustering {
  int32_t k = 0;
  /// Cluster index per data row, in [0, k).
  std::vector<int32_t> assignments;
  /// k x dims centroid matrix.
  transform::Matrix centroids;
  /// Sum of squared errors (total squared distance to closest centroid).
  double sse = 0.0;
  /// Lloyd iterations executed.
  int32_t iterations = 0;
  /// True if the run converged before max_iterations.
  bool converged = false;
};

/// Runs Lloyd's K-means on the rows of `data`.
/// Fails if k is out of range or data is empty. Deterministic in
/// (data, options).
[[nodiscard]] common::StatusOr<Clustering> RunKMeans(const transform::Matrix& data,
                                       const KMeansOptions& options);

/// Same contract on a CSR matrix, without ever materializing the dense
/// data (the memory-efficient path for BuildSparseVsm output). Results
/// are identical to running on data.ToDense().
[[nodiscard]] common::StatusOr<Clustering> RunKMeans(
    const transform::CsrMatrix& data, const KMeansOptions& options);

// --- Building blocks shared with the accelerated variants ---------------

/// Chooses initial centroids from the rows of `data`.
transform::Matrix InitializeCentroids(const transform::Matrix& data,
                                      int32_t k, KMeansInit init,
                                      common::Rng& rng);
transform::Matrix InitializeCentroids(const transform::CsrMatrix& data,
                                      int32_t k, KMeansInit init,
                                      common::Rng& rng);

/// Assigns each row to its closest centroid; returns the SSE.
/// `assignments` is resized to data.rows(). The CSR overload computes
/// the same distances bit for bit.
double AssignToCentroids(const transform::Matrix& data,
                         const transform::Matrix& centroids,
                         std::vector<int32_t>& assignments);
double AssignToCentroids(const transform::CsrMatrix& data,
                         const transform::Matrix& centroids,
                         std::vector<int32_t>& assignments);

/// Recomputes centroids as assignment means. Empty clusters are
/// re-seeded with the point farthest from its current centroid, which
/// guarantees k non-empty clusters when data.rows() >= k.
void RecomputeCentroids(const transform::Matrix& data,
                        const std::vector<int32_t>& assignments,
                        transform::Matrix& centroids);
void RecomputeCentroids(const transform::CsrMatrix& data,
                        const std::vector<int32_t>& assignments,
                        transform::Matrix& centroids);

/// Sizes of each cluster given `assignments` (values < k).
std::vector<int64_t> ClusterSizes(const std::vector<int32_t>& assignments,
                                  int32_t k);

/// Warm-start helper: adapts a solved clustering of `data` into
/// starting centroids for a run with `target_k` clusters (for
/// KMeansOptions::initial_centroids). Equal K returns the centroids
/// unchanged; a smaller K keeps the centroids of the largest clusters;
/// a larger K adds data points by deterministic farthest-point
/// selection. `source.assignments` must be aligned with `data`.
transform::Matrix AdaptCentroids(const transform::Matrix& data,
                                 const Clustering& source, int32_t target_k);

namespace internal {

/// Row-chunk width of the deterministic centroid reduction. Both
/// engines accumulate per-chunk partial sums on this fixed grid and
/// merge them in chunk order, so the serial (naive) and parallel
/// (accelerated) reductions produce bit-identical centroids.
inline constexpr size_t kCentroidChunkRows = 2048;

/// kAuto never picks CSR below this many columns: with few dimensions
/// the dense row fits in a couple of cache lines and the sparse
/// branchiness costs more than the skipped zeros save.
inline constexpr size_t kMinSparseDims = 32;

/// kAuto never picks CSR below this many clusters either: the density
/// scan plus CSR conversion cost about two dense assignment passes of
/// fixed O(rows x cols) work, and the per-pass saving scales with k —
/// a small-k run that converges in a handful of iterations never
/// earns the conversion back. Callers that amortize one conversion
/// over many runs (the optimizer sweep) pin kSparse explicitly and
/// bypass this gate.
inline constexpr int32_t kMinSparseClusters = 4;

// Representation-generic row primitives. Each pair computes
// bit-identical results; the engine templates call them unqualified so
// one source instantiates both data layouts.

/// Exact squared distance from row `i` of `data` to the dense vector
/// `v` — the naive scan's arithmetic on either representation.
inline double ExactRowDistance(const transform::Matrix& data, size_t i,
                               std::span<const double> v) {
  return transform::SquaredDistance(data.Row(i), v);
}
inline double ExactRowDistance(const transform::CsrMatrix& data, size_t i,
                               std::span<const double> v) {
  return transform::SparseSquaredDistance(data.Row(i), v);
}

/// Copies row `i` of `data` into `dst` (densifying a CSR row).
inline void CopyRowInto(const transform::Matrix& data, size_t i,
                        std::span<double> dst) {
  std::span<const double> src = data.Row(i);
  std::copy(src.begin(), src.end(), dst.begin());
}
inline void CopyRowInto(const transform::CsrMatrix& data, size_t i,
                        std::span<double> dst) {
  transform::DensifyRow(data.Row(i), dst);
}

/// Measured nnz density of `data`; returns 1.0 (never sparse-eligible)
/// when any cell is NaN, so garbage inputs keep the legacy dense
/// behavior instead of tripping the CSR builder's validation.
double MeasuredDensity(const transform::Matrix& data);

/// True when `options` (representation + density threshold + engine)
/// selects the CSR kernels for this dense input.
bool ShouldUseSparse(const transform::Matrix& data,
                     const KMeansOptions& options);

/// Per-cluster running sums and counts of one reduction chunk.
struct CentroidAccumulator {
  transform::Matrix sums;       // k x dims.
  std::vector<int64_t> counts;  // k.

  CentroidAccumulator() = default;
  CentroidAccumulator(size_t k, size_t dims)
      : sums(k, dims, 0.0), counts(k, 0) {}
};

/// Accumulates rows [begin, end) of `data` into `acc` in row order.
/// The CSR overload gathers only the non-zeros (bit-identical sums).
void AccumulateRows(const transform::Matrix& data,
                    const std::vector<int32_t>& assignments, size_t begin,
                    size_t end, CentroidAccumulator& acc);
void AccumulateRows(const transform::CsrMatrix& data,
                    const std::vector<int32_t>& assignments, size_t begin,
                    size_t end, CentroidAccumulator& acc);

/// Adds `part` into `total` (cluster-row order).
void MergeAccumulator(const CentroidAccumulator& part,
                      CentroidAccumulator& total);

/// Turns accumulated sums/counts into centroids: divides by counts and
/// re-seeds empty clusters exactly as RecomputeCentroids documents.
/// Mutates `acc.counts` while re-seeding.
void FinalizeCentroids(const transform::Matrix& data,
                       const std::vector<int32_t>& assignments,
                       CentroidAccumulator& acc,
                       transform::Matrix& centroids);
void FinalizeCentroids(const transform::CsrMatrix& data,
                       const std::vector<int32_t>& assignments,
                       CentroidAccumulator& acc,
                       transform::Matrix& centroids);

/// Shared argument validation of RunKMeans and RunAcceleratedKMeans.
[[nodiscard]] common::Status ValidateKMeansArgs(
    const transform::Matrix& data, const KMeansOptions& options);
[[nodiscard]] common::Status ValidateKMeansArgs(
    const transform::CsrMatrix& data, const KMeansOptions& options);

/// Chooses the starting centroids per options (initial_centroids when
/// provided, otherwise `init` via `rng`).
transform::Matrix StartingCentroids(const transform::Matrix& data,
                                    const KMeansOptions& options,
                                    common::Rng& rng);
transform::Matrix StartingCentroids(const transform::CsrMatrix& data,
                                    const KMeansOptions& options,
                                    common::Rng& rng);

}  // namespace internal

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_KMEANS_H_
