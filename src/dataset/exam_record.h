// Plain record types of the examination-log data model.
//
// The paper's substrate is an anonymized examination log: each record
// holds a patient identifier, the examination type, and the date.
#ifndef ADAHEALTH_DATASET_EXAM_RECORD_H_
#define ADAHEALTH_DATASET_EXAM_RECORD_H_

#include <cstdint>

namespace adahealth {
namespace dataset {

/// Identifier of an examination type (dense index into ExamDictionary).
using ExamTypeId = int32_t;

/// Identifier of a patient (dense index into ExamLog::patients()).
using PatientId = int32_t;

/// One row of the examination log: patient `patient` underwent exam
/// `exam_type` on day `day` (0-based day within the covered period).
struct ExamRecord {
  PatientId patient = 0;
  ExamTypeId exam_type = 0;
  int32_t day = 0;

  friend bool operator==(const ExamRecord& a, const ExamRecord& b) = default;
};

/// Patient metadata. `profile` is the latent clinical profile assigned
/// by the synthetic generator (ground truth for evaluation); it is
/// kUnknownProfile for data loaded from external sources.
struct Patient {
  static constexpr int32_t kUnknownProfile = -1;

  PatientId id = 0;
  int32_t age = 0;
  int32_t profile = kUnknownProfile;

  friend bool operator==(const Patient& a, const Patient& b) = default;
};

}  // namespace dataset
}  // namespace adahealth

#endif  // ADAHEALTH_DATASET_EXAM_RECORD_H_
