#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace adahealth {
namespace common {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delimiter);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

StatusOr<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty integer literal");
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return OutOfRangeError("integer out of range: " + buffer);
  }
  if (end == buffer.c_str() || *end != '\0') {
    return InvalidArgumentError("malformed integer: " + buffer);
  }
  return static_cast<int64_t>(value);
}

StatusOr<double> ParseDouble(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty double literal");
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return OutOfRangeError("double out of range: " + buffer);
  }
  if (end == buffer.c_str() || *end != '\0') {
    return InvalidArgumentError("malformed double: " + buffer);
  }
  return value;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), format, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace common
}  // namespace adahealth
