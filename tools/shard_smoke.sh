#!/usr/bin/env bash
# Sharded-cluster smoke test: a router in front of two shards, each a
# primary ada_server replicating to a follower. Two fault runs:
#   1. real SIGKILL — a shard primary is killed mid-workload;
#   2. failpoint kill — ADA_FAILPOINTS=service.shard.kill makes a
#      primary _Exit(137) mid-request, the way a crash bug would;
# and in both the invariant is the same: every submitted job completes
# exactly once through the router (all clients exit 0, the router's
# completed counter equals its submitted counter), the follower is
# promoted (failovers >= 1), and the cross-shard `stats` totals equal
# the per-shard sum.
#
# Usage: tools/shard_smoke.sh [BUILD_DIR]   (default: build)
# CI runs this under ASan+UBSan (the shard-smoke job).
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="${BUILD_DIR}/tools/ada_server"
CLIENT="${BUILD_DIR}/tools/ada_client"
ROUTER="${BUILD_DIR}/tools/ada_router"
LOG_DIR="$(mktemp -d /tmp/ada_shard_smoke.XXXXXX)"
ALL_PIDS=()

for binary in "${SERVER}" "${CLIENT}" "${ROUTER}"; do
  if [[ ! -x "${binary}" ]]; then
    echo "shard_smoke: missing ${binary}; build the ada_server," \
         "ada_client and ada_router targets first" >&2
    exit 2
  fi
done

cleanup() {
  for pid in "${ALL_PIDS[@]:-}"; do
    kill -9 "${pid}" 2>/dev/null || true
  done
  for pid in "${ALL_PIDS[@]:-}"; do
    wait "${pid}" 2>/dev/null || true
  done
  rm -rf "${LOG_DIR}"
}
trap cleanup EXIT

fail() {
  echo "shard_smoke: FAIL: $*" >&2
  for log in "${LOG_DIR}"/*.log; do
    echo "--- ${log} ---" >&2
    cat "${log}" >&2 || true
  done
  exit 1
}

# Starts a process whose stdout announces "listening on port N"; sets
# LAST_PID and LAST_PORT. Usage: start_proc NAME BINARY [ARGS...]
start_proc() {
  local name="$1"
  shift
  local log="${LOG_DIR}/${name}.log"
  "$@" >"${log}" 2>&1 &
  LAST_PID=$!
  ALL_PIDS+=("${LAST_PID}")
  LAST_PORT=""
  for _ in $(seq 1 100); do
    LAST_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' \
        "${log}" | head -1)"
    [[ -n "${LAST_PORT}" ]] && break
    kill -0 "${LAST_PID}" 2>/dev/null \
      || fail "${name} exited during startup"
    sleep 0.1
  done
  [[ -n "${LAST_PORT}" ]] || fail "${name} never reported its port"
  echo "shard_smoke: ${name} up on port ${LAST_PORT} (pid ${LAST_PID})"
}

wait_for_exit() {
  local pid="$1" name="$2"
  for _ in $(seq 1 100); do
    kill -0 "${pid}" 2>/dev/null || return 0
    sleep 0.1
  done
  fail "${name} still running"
}

# Asserts the cluster invariant after a fault run. Arguments: the
# router port, the number of jobs submitted in the run.
check_cluster_stats() {
  local port="$1" jobs="$2"
  local stats
  stats="$("${CLIENT}" --router "${port}" stats)" \
    || fail "stats verb failed"
  python3 - "${stats}" "${jobs}" <<'EOF' || fail "cluster stats off"
import json, sys
stats = json.loads(sys.argv[1])
jobs = int(sys.argv[2])
router = stats["router"]
bad = {}
if router["submitted"] != jobs:
    bad["router.submitted"] = (router["submitted"], jobs)
# Exactly-once: every client-visible job id reached a terminal state
# exactly once (the counter only fires on a route's first terminal
# sighting, so a double-completion cannot hide here).
if router["completed"] != jobs:
    bad["router.completed"] = (router["completed"], jobs)
if router["failovers"] != 1:
    bad["router.failovers"] = (router["failovers"], 1)
if router["dead_shards"] != 0:
    bad["router.dead_shards"] = (router["dead_shards"], 0)
# Cross-shard aggregation: the totals roll-up must equal the sum of
# the per-shard integers it claims to aggregate.
for key in ("jobs_submitted", "jobs_completed", "sessions_executed"):
    per_shard = sum(e["stats"].get(key, 0)
                    for e in stats["shards"] if "stats" in e)
    if stats["totals"].get(key, 0) != per_shard:
        bad[f"totals.{key}"] = (stats["totals"].get(key), per_shard)
# No shard may be lost: both survived via follower promotion.
alive = sum(1 for e in stats["shards"] if e["alive"])
if alive != 2:
    bad["alive shards"] = (alive, 2)
if bad:
    print(f"stat mismatches (got, want): {bad}", file=sys.stderr)
    sys.exit(1)
EOF
}

# One complete cluster lifecycle with a fault injected mid-workload.
# Usage: run_cluster NAME KILL_MODE   (KILL_MODE: sigkill | failpoint)
run_cluster() {
  local name="$1" kill_mode="$2"
  echo "== cluster '${name}' (${kill_mode}) =="

  start_proc "${name}-follower-a" "${SERVER}" --port 0 --role follower \
      --workers 2
  local fa_port="${LAST_PORT}"
  start_proc "${name}-follower-b" "${SERVER}" --port 0 --role follower \
      --workers 2
  local fb_port="${LAST_PORT}"

  # In failpoint mode shard A's primary dies the way a crash bug
  # would: mid-request, no flush, exit 137. The 12th request line it
  # sees (forwards and probes both count) pulls the trigger.
  local -a primary_a_env=()
  if [[ "${kill_mode}" == "failpoint" ]]; then
    primary_a_env=(env "ADA_FAILPOINTS=service.shard.kill=error(UNAVAILABLE)*1@12")
  fi
  start_proc "${name}-primary-a" \
      ${primary_a_env[@]+"${primary_a_env[@]}"} "${SERVER}" \
      --port 0 --workers 2 --replicate-to "${fa_port}"
  local pa_pid="${LAST_PID}" pa_port="${LAST_PORT}"
  start_proc "${name}-primary-b" "${SERVER}" --port 0 --workers 2 \
      --replicate-to "${fb_port}"
  local pb_port="${LAST_PORT}"

  start_proc "${name}-router" "${ROUTER}" --port 0 \
      --shard "${pa_port}:${fa_port}" --shard "${pb_port}:${fb_port}" \
      --probe-interval-ms 100 --probe-failures 2
  local router_pid="${LAST_PID}" router_port="${LAST_PORT}"

  # Eight distinct jobs ride the ring in parallel; each client waits
  # for its result through the router and must exit 0 even though a
  # primary dies underneath it.
  local jobs=8
  local -a client_pids=()
  for seed in $(seq 1 "${jobs}"); do
    "${CLIENT}" --router "${router_port}" --connect-retries 3 \
        submit --patients 100 --exam-types 20 --seed "${seed}" \
        --dataset-id "${name}" --fast --wait \
        >"${LOG_DIR}/${name}-client-${seed}.log" 2>&1 &
    client_pids+=($!)
  done

  if [[ "${kill_mode}" == "sigkill" ]]; then
    sleep 0.3  # Let the workload get in flight first.
    echo "shard_smoke: SIGKILL primary-a (pid ${pa_pid})"
    kill -9 "${pa_pid}"
  fi

  local failed=0
  for pid in "${client_pids[@]}"; do
    wait "${pid}" || failed=$((failed + 1))
  done
  [[ "${failed}" -eq 0 ]] \
    || fail "${failed}/${jobs} clients failed during the ${kill_mode} run"
  for seed in $(seq 1 "${jobs}"); do
    grep -q '^state: done$' "${LOG_DIR}/${name}-client-${seed}.log" \
      || fail "client ${seed} did not reach state done"
  done
  # The killed primary must actually be gone. In failpoint mode the
  # trigger may fire on a health probe after the workload drained;
  # probes keep arriving every 100 ms, so this converges fast.
  wait_for_exit "${pa_pid}" "${name}-primary-a"

  # Give the prober time to notice and promote: when the workload beat
  # the kill, no forward ever failed, and failover happens on probe
  # failures alone.
  local promoted=""
  for _ in $(seq 1 100); do
    promoted="$("${CLIENT}" --router "${router_port}" health \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["failovers"])')" \
      || fail "health poll failed"
    [[ "${promoted}" == "1" ]] && break
    sleep 0.1
  done
  [[ "${promoted}" == "1" ]] \
    || fail "router never promoted the follower (failovers=${promoted})"

  check_cluster_stats "${router_port}" "${jobs}"

  # Failover visible in health, and the promoted follower serves a
  # fresh job for its shard.
  local health
  health="$("${CLIENT}" --router "${router_port}" health)" \
    || fail "health verb failed"
  python3 - "${health}" <<'EOF' || fail "router health off"
import json, sys
health = json.loads(sys.argv[1])
assert health["role"] == "router", health
assert health["failovers"] == 1, health
promoted = [s for s in health["shards"] if s["using_follower"]]
assert len(promoted) == 1, health
assert all(s["alive"] for s in health["shards"]), health
EOF
  "${CLIENT}" --router "${router_port}" submit --patients 100 \
      --exam-types 20 --seed 99 --dataset-id "${name}-post" --fast --wait \
      >/dev/null || fail "post-failover submit failed"

  # Shutdown cascades from the router to every live shard endpoint.
  "${CLIENT}" --router "${router_port}" shutdown >/dev/null \
    || fail "router shutdown failed"
  wait_for_exit "${router_pid}" "${name}-router"
  for pid in "${ALL_PIDS[@]}"; do
    wait_for_exit "${pid}" "cluster '${name}' process ${pid}"
  done
  ALL_PIDS=()
  echo "shard_smoke: cluster '${name}' PASS"
}

run_cluster sigkill-run sigkill
run_cluster failpoint-run failpoint

echo "shard_smoke: PASS"
