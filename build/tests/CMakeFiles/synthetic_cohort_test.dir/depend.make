# Empty dependencies file for synthetic_cohort_test.
# This may be replaced when dependencies are built.
