// Eclat frequent-itemset mining (Zaki, TKDE 2000): depth-first search
// over the *vertical* layout (per-item transaction-id bitsets).
//
// This is the literal "vertical mining" representation the paper's
// §III mentions ("partial mining can reduce the dataset along any
// dimension (vertical mining)"); it also serves as a third independent
// miner for cross-validation of Apriori and FP-growth results.
#ifndef ADAHEALTH_PATTERNS_ECLAT_H_
#define ADAHEALTH_PATTERNS_ECLAT_H_

#include "common/status.h"
#include "patterns/apriori.h"
#include "patterns/transactions.h"

namespace adahealth {
namespace patterns {

/// Mines all frequent itemsets of `db` with Eclat. Output is in
/// canonical order and identical to MineApriori / MineFpGrowth.
[[nodiscard]] common::StatusOr<std::vector<FrequentItemset>> MineEclat(
    const TransactionDb& db, const MiningOptions& options);

}  // namespace patterns
}  // namespace adahealth

#endif  // ADAHEALTH_PATTERNS_ECLAT_H_
