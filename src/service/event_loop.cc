#include "service/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace adahealth {
namespace service {

using common::Status;

namespace {

Status ErrnoError(const char* operation) {
  // strerror's static buffer is fine here: the loop is single-threaded
  // and the message is formatted into the Status immediately.
  return common::UnavailableError(common::StrFormat(
      "%s failed: %s", operation,
      std::strerror(errno)));  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace

EventLoop::~EventLoop() {
  // Mark exited so late Post() calls from worker threads are dropped
  // instead of queued into a dead loop.
  common::MutexLock lock(&posted_mutex_);
  loop_exited_ = true;
}

Status EventLoop::Init() {
  epoll_fd_ = FileDescriptor(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) return ErrnoError("epoll_create1");
  wakeup_fd_ = FileDescriptor(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_fd_.valid()) return ErrnoError("eventfd");
  return Watch(wakeup_fd_.get(), EPOLLIN, [this](uint32_t) {
    uint64_t drained = 0;
    // Reset the counter; posted tasks are collected by DrainPosted().
    while (::read(wakeup_fd_.get(), &drained, sizeof(drained)) > 0) {
    }
  });
}

Status EventLoop::Watch(int fd, uint32_t events, IoCallback callback) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  const bool known = callbacks_.count(fd) > 0;
  int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_.get(), op, fd, &event) != 0) {
    return ErrnoError("epoll_ctl");
  }
  callbacks_[fd] = std::make_shared<IoCallback>(std::move(callback));
  return common::OkStatus();
}

Status EventLoop::SetInterest(int fd, uint32_t events) {
  if (callbacks_.count(fd) == 0) {
    return common::NotFoundError(
        common::StrFormat("fd %d is not watched", fd));
  }
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &event) != 0) {
    return ErrnoError("epoll_ctl(MOD)");
  }
  return common::OkStatus();
}

void EventLoop::Unwatch(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  // Best effort: the kernel also deregisters automatically when the fd
  // is released.
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::ScheduleAfter(double delay_millis, Task task) {
  if (delay_millis < 0) delay_millis = 0;
  const Clock::time_point due =
      Clock::now() + std::chrono::microseconds(
                         static_cast<int64_t>(delay_millis * 1000.0));
  const TimerId id = next_timer_id_++;
  timers_[id] = Timer{due, std::move(task)};
  timer_order_.emplace(due, id);
  return id;
}

bool EventLoop::CancelTimer(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  const Clock::time_point due = it->second.due;
  timers_.erase(it);
  for (auto range = timer_order_.equal_range(due);
       range.first != range.second; ++range.first) {
    if (range.first->second == id) {
      timer_order_.erase(range.first);
      break;
    }
  }
  return true;
}

void EventLoop::Post(Task task) {
  bool need_wakeup = false;
  {
    common::MutexLock lock(&posted_mutex_);
    if (loop_exited_) return;  // Teardown race: drop silently.
    need_wakeup = posted_.empty();
    posted_.push_back(std::move(task));
  }
  if (need_wakeup && wakeup_fd_.valid()) {
    uint64_t one = 1;
    // A full eventfd counter (impossible in practice) still wakes the
    // loop; ignore the result.
    [[maybe_unused]] ssize_t n =
        ::write(wakeup_fd_.get(), &one, sizeof(one));
  }
}

void EventLoop::DrainPosted() {
  std::vector<Task> tasks;
  {
    common::MutexLock lock(&posted_mutex_);
    tasks.swap(posted_);
  }
  for (Task& task : tasks) task();
}

void EventLoop::FirePendingTimers() {
  const Clock::time_point now = Clock::now();
  while (!timer_order_.empty() && timer_order_.begin()->first <= now) {
    const TimerId id = timer_order_.begin()->second;
    timer_order_.erase(timer_order_.begin());
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // Cancelled.
    Task task = std::move(it->second.task);
    timers_.erase(it);
    task();
  }
}

int EventLoop::NextTimerTimeout() const {
  if (timer_order_.empty()) return -1;
  const auto now = Clock::now();
  const auto due = timer_order_.begin()->first;
  if (due <= now) return 0;
  const int64_t millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(due - now)
          .count();
  // Round up so we do not spin on a timer that is <1ms away.
  return static_cast<int>(millis) + 1;
}

void EventLoop::Run() {
  quit_ = false;
  epoll_event events[64];
  while (!quit_) {
    DrainPosted();
    FirePendingTimers();
    if (quit_) break;
    const int timeout = NextTimerTimeout();
    int ready = ::epoll_wait(epoll_fd_.get(), events, 64, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // Unrecoverable epoll failure; exit rather than spin.
    }
    for (int i = 0; i < ready && !quit_; ++i) {
      auto it = callbacks_.find(events[i].data.fd);
      if (it == callbacks_.end()) continue;  // Unwatched mid-iteration.
      // Keep the callable alive even if it unwatches itself.
      std::shared_ptr<IoCallback> callback = it->second;
      (*callback)(events[i].events);
    }
  }
  DrainPosted();  // Run anything posted before quit was observed.
  common::MutexLock lock(&posted_mutex_);
  loop_exited_ = true;
}

}  // namespace service
}  // namespace adahealth
