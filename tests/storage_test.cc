#include "kdb/storage.h"

#include <algorithm>
#include <cstdio>

#include <gtest/gtest.h>

namespace adahealth {
namespace kdb {
namespace {

using common::Json;

Collection MakeCollection() {
  Collection collection("test_items");
  for (int64_t i = 0; i < 5; ++i) {
    Document document;
    document.Set("value", Json(i));
    document.Set("name", Json("item-" + std::to_string(i)));
    collection.Insert(std::move(document));
  }
  return collection;
}

TEST(StorageTest, SerializeOneLinePerDocument) {
  std::string text = SerializeCollection(MakeCollection());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(StorageTest, SerializeDeserializeRoundTrip) {
  Collection original = MakeCollection();
  auto restored =
      DeserializeCollection("test_items", SerializeCollection(original));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), original.size());
  EXPECT_EQ(restored->last_id(), original.last_id());
  for (const Document& document : original.documents()) {
    auto found = restored->FindById(document.id());
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), document);
  }
}

TEST(StorageTest, InsertAfterReloadContinuesIds) {
  Collection original = MakeCollection();
  auto restored =
      DeserializeCollection("test_items", SerializeCollection(original));
  ASSERT_TRUE(restored.ok());
  Document fresh;
  fresh.Set("value", Json(int64_t{99}));
  EXPECT_EQ(restored->Insert(std::move(fresh)), original.last_id() + 1);
}

TEST(StorageTest, BlankLinesTolerated) {
  auto restored = DeserializeCollection(
      "x", "\n{\"_id\":1,\"a\":1}\n\n{\"_id\":2,\"a\":2}\n\n");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
}

TEST(StorageTest, MalformedLineIsDataLoss) {
  auto restored = DeserializeCollection(
      "x", "{\"_id\":1}\n{\"_id\":2,  TRUNCATED");
  EXPECT_EQ(restored.status().code(), common::StatusCode::kDataLoss);
}

TEST(StorageTest, MissingIdRejected) {
  auto restored = DeserializeCollection("x", "{\"a\":1}\n");
  EXPECT_FALSE(restored.ok());
}

TEST(StorageTest, FileRoundTrip) {
  Collection original = MakeCollection();
  std::string directory = testing::TempDir();
  ASSERT_TRUE(SaveCollection(original, directory).ok());
  auto loaded = LoadCollection("test_items", directory);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), original.size());
  std::remove((directory + "/test_items.jsonl").c_str());
}

TEST(StorageTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadCollection("does_not_exist", testing::TempDir());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kNotFound);
}

}  // namespace
}  // namespace kdb
}  // namespace adahealth
