#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/csv.h"

namespace adahealth {
namespace common {

double LatencyHistogram::BucketUpperBound(size_t b) {
  // Buckets 0..8 end at 1e-6, 1e-5, ..., 1e2 seconds; bucket 9 is open.
  if (b >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::pow(10.0, static_cast<double>(b) - 6.0);
}

void LatencyHistogram::Record(double seconds) {
  size_t bucket = 0;
  while (bucket < kNumBuckets - 1 && seconds > BucketUpperBound(bucket)) {
    ++bucket;
  }
  MutexLock lock(&mutex_);
  if (state_.count == 0) {
    state_.min_seconds = seconds;
    state_.max_seconds = seconds;
  } else {
    state_.min_seconds = std::min(state_.min_seconds, seconds);
    state_.max_seconds = std::max(state_.max_seconds, seconds);
  }
  ++state_.count;
  state_.total_seconds += seconds;
  ++state_.buckets[bucket];
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  MutexLock lock(&mutex_);
  return state_;
}

void LatencyHistogram::Reset() {
  MutexLock lock(&mutex_);
  state_ = Snapshot{};
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

Json MetricsRegistry::ToJson() const {
  MutexLock lock(&mutex_);
  Json::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = Json(counter->value());
  }
  Json::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = Json(gauge->value());
  }
  Json::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    LatencyHistogram::Snapshot snapshot = histogram->snapshot();
    Json::Object entry;
    entry["count"] = Json(snapshot.count);
    entry["total_seconds"] = Json(snapshot.total_seconds);
    entry["min_seconds"] = Json(snapshot.min_seconds);
    entry["max_seconds"] = Json(snapshot.max_seconds);
    entry["mean_seconds"] = Json(snapshot.mean_seconds());
    Json::Array buckets;
    for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      buckets.push_back(Json(snapshot.buckets[b]));
    }
    entry["buckets"] = Json(std::move(buckets));
    histograms[name] = Json(std::move(entry));
  }
  Json::Object root;
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  return Json(std::move(root));
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  return WriteStringToFile(path, ToJson().Pretty() + "\n");
}

}  // namespace common
}  // namespace adahealth
