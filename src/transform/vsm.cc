#include "transform/vsm.h"

#include <cmath>
#include <map>

#include "common/check.h"

namespace adahealth {
namespace transform {

namespace {

/// Per-column IDF factors; 0 for exams no patient underwent.
std::vector<double> IdfFactors(const dataset::ExamLog& log) {
  std::vector<int64_t> patients_per_exam = log.PatientsPerExam();
  std::vector<double> idf(patients_per_exam.size(), 0.0);
  const double num_patients = static_cast<double>(log.num_patients());
  for (size_t e = 0; e < patients_per_exam.size(); ++e) {
    if (patients_per_exam[e] > 0) {
      idf[e] = std::log(num_patients /
                        static_cast<double>(patients_per_exam[e]));
    }
  }
  return idf;
}

}  // namespace

Matrix BuildVsm(const dataset::ExamLog& log, const VsmOptions& options) {
  Matrix vsm(log.num_patients(), log.num_exam_types());
  for (const auto& record : log.records()) {
    double& cell = vsm.At(static_cast<size_t>(record.patient),
                          static_cast<size_t>(record.exam_type));
    switch (options.weighting) {
      case VsmWeighting::kCount:
      case VsmWeighting::kTfIdf:
        cell += 1.0;
        break;
      case VsmWeighting::kBinary:
        cell = 1.0;
        break;
    }
  }
  if (options.weighting == VsmWeighting::kTfIdf) {
    std::vector<double> idf = IdfFactors(log);
    for (size_t r = 0; r < vsm.rows(); ++r) {
      std::span<double> row = vsm.Row(r);
      for (size_t c = 0; c < vsm.cols(); ++c) row[c] *= idf[c];
    }
  }
  if (options.normalization == VsmNormalization::kL2) {
    vsm.L2NormalizeRows();
  }
  return vsm;
}

CsrMatrix BuildSparseVsm(const dataset::ExamLog& log,
                         const VsmOptions& options) {
  // Accumulate counts per patient with ordered maps so rows come out in
  // ascending column order.
  std::vector<std::map<uint32_t, double>> rows(log.num_patients());
  for (const auto& record : log.records()) {
    double& cell =
        rows[static_cast<size_t>(record.patient)]
            [static_cast<uint32_t>(record.exam_type)];
    switch (options.weighting) {
      case VsmWeighting::kCount:
      case VsmWeighting::kTfIdf:
        cell += 1.0;
        break;
      case VsmWeighting::kBinary:
        cell = 1.0;
        break;
    }
  }
  std::vector<double> idf;
  if (options.weighting == VsmWeighting::kTfIdf) idf = IdfFactors(log);

  CsrMatrix::Builder builder(log.num_exam_types());
  std::vector<SparseEntry> entries;
  for (auto& row : rows) {
    entries.clear();
    double norm_squared = 0.0;
    for (auto& [column, value] : row) {
      double weighted = value;
      if (!idf.empty()) weighted *= idf[column];
      if (weighted != 0.0) {
        entries.push_back({column, weighted});
        norm_squared += weighted * weighted;
      }
    }
    if (options.normalization == VsmNormalization::kL2 &&
        norm_squared > 0.0) {
      double norm = std::sqrt(norm_squared);
      for (SparseEntry& entry : entries) entry.value /= norm;
    }
    // Columns come out of the ordered map strictly increasing and in
    // range; weights are finite products of counts and IDF logs.
    ADA_CHECK_OK(builder.AddRow(entries));
  }
  return std::move(builder).Build();
}

VsmBuild BuildVsmAuto(const dataset::ExamLog& log, const VsmOptions& options,
                      double density_threshold) {
  VsmBuild out;
  out.sparse = BuildSparseVsm(log, options);
  out.density = out.sparse.Density();
  if (out.density <= density_threshold) {
    out.is_sparse = true;
  } else {
    out.dense = out.sparse.ToDense();
    out.sparse = CsrMatrix();
  }
  return out;
}

const char* VsmWeightingName(VsmWeighting weighting) {
  switch (weighting) {
    case VsmWeighting::kCount:
      return "count";
    case VsmWeighting::kBinary:
      return "binary";
    case VsmWeighting::kTfIdf:
      return "tfidf";
  }
  return "?";
}

const char* VsmNormalizationName(VsmNormalization normalization) {
  switch (normalization) {
    case VsmNormalization::kNone:
      return "none";
    case VsmNormalization::kL2:
      return "l2";
  }
  return "?";
}

}  // namespace transform
}  // namespace adahealth
