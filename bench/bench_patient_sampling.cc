// Ablation A4: patient-subset (horizontal) adaptive partial mining —
// the other reduction axis of the paper's §III ("partial mining can
// reduce the dataset ... by considering different subsets of the input
// data"). Quality is tracked on nested patient samples of growing
// size; the strategy stops when consecutive steps agree within
// tolerance, i.e. mining more patients no longer changes the picture.
#include <cstdio>

#include "common/timer.h"
#include "core/partial_mining.h"
#include "dataset/synthetic_cohort.h"

namespace {

using namespace adahealth;

int Run() {
  common::WallTimer timer;
  std::printf("=== Ablation A4: patient-subset partial mining ===\n");

  auto cohort =
      dataset::SyntheticCohortGenerator(dataset::PaperScaleConfig())
          .Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed\n");
    return 1;
  }

  core::PartialMiningOptions options;
  options.fractions = {0.1, 0.2, 0.4, 0.7, 1.0};
  options.ks = {6, 8, 10};
  options.tolerance = 0.03;
  options.vsm = {transform::VsmWeighting::kTfIdf,
                 transform::VsmNormalization::kL2};
  options.kmeans.seed = 20160516;
  auto result = core::RunPatientSubsetPartialMining(cohort->log, options);
  if (!result.ok()) {
    std::printf("partial mining failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %-14s", "patients", "record cover");
  for (int32_t k : result->ks) std::printf(" OS(K=%-3d)", k);
  std::printf(" %-14s\n", "diff vs prev");
  for (size_t s = 0; s < result->steps.size(); ++s) {
    const core::PartialMiningStep& step = result->steps[s];
    std::printf("%8.0f%% %13.1f%%", 100.0 * step.fraction,
                100.0 * step.record_coverage);
    for (double similarity : step.overall_similarity) {
      std::printf(" %9.4f", similarity);
    }
    std::printf(" %9.2f%%%s\n", 100.0 * step.mean_relative_diff,
                s == result->selected_step ? "   <== selected" : "");
  }
  const core::PartialMiningStep& selected =
      result->steps[result->selected_step];
  std::printf("\nquality stabilizes at %.0f%% of the patients: mining "
              "the rest would not change the extracted structure by "
              "more than %.0f%%\n",
              100.0 * selected.fraction, 100.0 * options.tolerance);
  std::printf("[patient_sampling] total time: %.1f s\n\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace

int main() { return Run(); }
