#include "cluster/elbow.h"

#include <cmath>

namespace adahealth {
namespace cluster {

common::StatusOr<ElbowAnalysis> AnalyzeElbow(
    const std::vector<SsePoint>& sweep, double flat_threshold) {
  if (sweep.size() < 3) {
    return common::InvalidArgumentError(
        "elbow analysis needs at least three sweep points");
  }
  if (flat_threshold <= 0.0 || flat_threshold > 1.0) {
    return common::InvalidArgumentError(
        "flat_threshold must be in (0, 1]");
  }
  for (size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].sse < 0.0) {
      return common::InvalidArgumentError("SSE must be non-negative");
    }
    if (i > 0 && sweep[i].k <= sweep[i - 1].k) {
      return common::InvalidArgumentError("K must be strictly increasing");
    }
  }

  ElbowAnalysis analysis;

  // Knee: maximum perpendicular distance from the chord between the
  // first and last points, in the normalized (K, SSE) plane.
  const double k_span =
      static_cast<double>(sweep.back().k - sweep.front().k);
  const double sse_span = sweep.front().sse - sweep.back().sse;
  analysis.knee_scores.resize(sweep.size(), 0.0);
  double best_distance = -1.0;
  for (size_t i = 0; i < sweep.size(); ++i) {
    double x = k_span > 0.0 ? static_cast<double>(sweep[i].k -
                                                  sweep.front().k) /
                                  k_span
                            : 0.0;
    double y = sse_span != 0.0
                   ? (sweep.front().sse - sweep[i].sse) / sse_span
                   : 0.0;
    // Distance from the chord y = x (normalized endpoints are (0,0)
    // and (1,1)): proportional to y - x.
    double distance = y - x;
    analysis.knee_scores[i] = distance;
    if (distance > best_distance) {
      best_distance = distance;
      analysis.knee_k = sweep[i].k;
    }
  }

  // Admissible range: improvements per added cluster flatten out.
  double first_rate =
      (sweep.front().sse - sweep[1].sse) /
      static_cast<double>(sweep[1].k - sweep.front().k);
  analysis.admissible_from_k = sweep.back().k;
  if (first_rate <= 0.0) {
    // Already flat from the start.
    analysis.admissible_from_k = sweep.front().k;
    return analysis;
  }
  for (size_t i = 1; i < sweep.size(); ++i) {
    double rate = (sweep[i - 1].sse - sweep[i].sse) /
                  static_cast<double>(sweep[i].k - sweep[i - 1].k);
    if (rate <= flat_threshold * first_rate) {
      analysis.admissible_from_k = sweep[i].k;
      break;
    }
  }
  return analysis;
}

}  // namespace cluster
}  // namespace adahealth
