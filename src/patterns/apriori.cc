#include "patterns/apriori.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/metrics.h"

namespace adahealth {
namespace patterns {

int64_t AbsoluteSupport(double min_support_fraction,
                        size_t num_transactions) {
  ADA_CHECK_GT(min_support_fraction, 0.0);
  ADA_CHECK_LE(min_support_fraction, 1.0);
  int64_t count = static_cast<int64_t>(
      std::ceil(min_support_fraction * static_cast<double>(num_transactions)));
  return std::max<int64_t>(count, 1);
}

namespace {

/// True if all (size-1)-subsets of `candidate` are frequent (present in
/// the sorted `previous_level`).
bool AllSubsetsFrequent(const std::vector<ItemId>& candidate,
                        const std::vector<std::vector<ItemId>>&
                            previous_level) {
  std::vector<ItemId> subset(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    size_t idx = 0;
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[idx++] = candidate[i];
    }
    if (!std::binary_search(previous_level.begin(), previous_level.end(),
                            subset)) {
      return false;
    }
  }
  return true;
}

/// True if the sorted `items` are a subset of the sorted `transaction`.
bool IsSubset(const std::vector<ItemId>& items,
              const std::vector<ItemId>& transaction) {
  size_t t = 0;
  for (ItemId item : items) {
    while (t < transaction.size() && transaction[t] < item) ++t;
    if (t == transaction.size() || transaction[t] != item) return false;
    ++t;
  }
  return true;
}

}  // namespace

common::StatusOr<std::vector<FrequentItemset>> MineApriori(
    const TransactionDb& db, const MiningOptions& options) {
  if (options.min_support_count < 1) {
    return common::InvalidArgumentError("min_support_count must be >= 1");
  }

  std::vector<FrequentItemset> result;
  int64_t candidates_generated = 0;
  int64_t pruned_by_subset = 0;
  int64_t pruned_by_support = 0;

  // Level 1: frequent single items.
  std::map<ItemId, int64_t> singleton_counts;
  for (const auto& transaction : db.transactions) {
    for (ItemId item : transaction) ++singleton_counts[item];
  }
  std::vector<std::vector<ItemId>> current_level;
  for (const auto& [item, count] : singleton_counts) {
    if (count >= options.min_support_count) {
      result.push_back({{item}, count});
      current_level.push_back({item});
    }
  }

  size_t level = 1;
  while (!current_level.empty()) {
    ++level;
    if (options.max_itemset_size != 0 && level > options.max_itemset_size) {
      break;
    }
    // Candidate generation: join pairs sharing a (k-2)-prefix, then
    // prune candidates with an infrequent subset.
    std::vector<std::vector<ItemId>> candidates;
    for (size_t i = 0; i < current_level.size(); ++i) {
      for (size_t j = i + 1; j < current_level.size(); ++j) {
        const auto& a = current_level[i];
        const auto& b = current_level[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
          // current_level is sorted, so once prefixes diverge no later j
          // can match i.
          break;
        }
        std::vector<ItemId> candidate = a;
        candidate.push_back(b.back());
        ++candidates_generated;
        if (AllSubsetsFrequent(candidate, current_level)) {
          candidates.push_back(std::move(candidate));
        } else {
          ++pruned_by_subset;
        }
      }
    }
    if (candidates.empty()) break;

    // Support counting.
    std::vector<int64_t> counts(candidates.size(), 0);
    for (const auto& transaction : db.transactions) {
      if (transaction.size() < level) continue;
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (IsSubset(candidates[c], transaction)) ++counts[c];
      }
    }

    std::vector<std::vector<ItemId>> next_level;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= options.min_support_count) {
        result.push_back({candidates[c], counts[c]});
        next_level.push_back(std::move(candidates[c]));
      } else {
        ++pruned_by_support;
      }
    }
    std::sort(next_level.begin(), next_level.end());
    current_level = std::move(next_level);
  }

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.GetCounter("patterns/apriori/candidates")
      .Increment(candidates_generated);
  metrics.GetCounter("patterns/apriori/pruned_by_subset")
      .Increment(pruned_by_subset);
  metrics.GetCounter("patterns/apriori/pruned_by_support")
      .Increment(pruned_by_support);
  metrics.GetCounter("patterns/apriori/frequent_itemsets")
      .Increment(static_cast<int64_t>(result.size()));

  SortCanonical(result);
  return result;
}

}  // namespace patterns
}  // namespace adahealth
