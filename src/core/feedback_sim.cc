#include "core/feedback_sim.h"

#include <algorithm>

namespace adahealth {
namespace core {

namespace {

Interest Threshold(const PersonaConfig& persona, double utility) {
  if (utility >= persona.high_threshold) return Interest::kHigh;
  if (utility >= persona.medium_threshold) return Interest::kMedium;
  return Interest::kLow;
}

}  // namespace

Interest FeedbackSimulator::LabelItem(const KnowledgeItem& item) {
  double utility =
      persona_.goal_affinity[static_cast<size_t>(item.goal)] +
      persona_.quality_weight * item.quality +
      rng_.Normal(0.0, persona_.noise_stddev);
  return Threshold(persona_, utility);
}

double FeedbackSimulator::GoalUtility(const stats::MetaFeatures& features,
                                      EndGoal goal) const {
  double utility = persona_.goal_affinity[static_cast<size_t>(goal)];
  // Dataset-shape interactions: each goal has a statistical regime in
  // which this persona finds it worthwhile.
  switch (goal) {
    case EndGoal::kPatientGrouping:
      // Sparse, high-variability cohorts make grouping informative.
      utility += 0.8 * (1.0 - features.density);
      break;
    case EndGoal::kCommonExamPatterns:
      // Skewed exam frequencies mean strong common panels exist.
      utility += 0.8 * features.top20_coverage;
      break;
    case EndGoal::kComplianceOutcome:
      // Needs many observations per patient.
      utility +=
          0.05 * std::min(features.mean_records_per_patient, 20.0);
      break;
    case EndGoal::kInteractionDiscovery:
      // Needs co-occurrence: long histories and broad coverage.
      utility += 0.04 * std::min(features.mean_records_per_patient, 20.0) +
                 0.4 * features.mean_patient_coverage;
      break;
    case EndGoal::kResourcePlanning:
      // Concentrated demand (high Gini) simplifies planning wins.
      utility += 0.8 * features.exam_frequency_gini;
      break;
  }
  return utility;
}

Interest FeedbackSimulator::LabelGoal(const stats::MetaFeatures& features,
                                      EndGoal goal) {
  double utility =
      GoalUtility(features, goal) + rng_.Normal(0.0, persona_.noise_stddev);
  return Threshold(persona_, utility);
}

PersonaConfig DiabetologistPersona() {
  PersonaConfig persona;
  persona.name = "diabetologist";
  persona.goal_affinity = {0.7, 0.6, 0.5, 0.4, 0.1};
  persona.quality_weight = 0.8;
  persona.noise_stddev = 0.20;
  return persona;
}

PersonaConfig ClinicalResearcherPersona() {
  PersonaConfig persona;
  persona.name = "clinical_researcher";
  persona.goal_affinity = {0.5, 0.5, 0.6, 0.8, 0.1};
  persona.quality_weight = 1.0;
  persona.noise_stddev = 0.20;
  return persona;
}

PersonaConfig HospitalAdministratorPersona() {
  PersonaConfig persona;
  persona.name = "hospital_administrator";
  persona.goal_affinity = {0.2, 0.3, 0.4, 0.2, 0.9};
  persona.quality_weight = 0.6;
  persona.noise_stddev = 0.20;
  return persona;
}

}  // namespace core
}  // namespace adahealth
