#include "core/transform_selector.h"

#include <algorithm>

#include "cluster/kmeans.h"
#include "cluster/quality.h"
#include "common/rng.h"
#include "transform/sampling.h"

namespace adahealth {
namespace core {

using transform::VsmNormalization;
using transform::VsmOptions;
using transform::VsmWeighting;

TransformSelectorOptions::TransformSelectorOptions() {
  for (VsmWeighting weighting :
       {VsmWeighting::kCount, VsmWeighting::kBinary, VsmWeighting::kTfIdf}) {
    for (VsmNormalization normalization :
         {VsmNormalization::kNone, VsmNormalization::kL2}) {
      candidates.push_back({weighting, normalization});
    }
  }
}

common::StatusOr<TransformSelection> SelectTransformation(
    const dataset::ExamLog& log, const TransformSelectorOptions& options) {
  if (log.num_patients() == 0 || log.num_records() == 0) {
    return common::InvalidArgumentError(
        "transformation selection requires a non-empty log");
  }
  if (options.candidates.empty()) {
    return common::InvalidArgumentError("no candidate transformations");
  }
  if (options.sample_fraction <= 0.0 || options.sample_fraction > 1.0) {
    return common::InvalidArgumentError("sample_fraction must be in (0, 1]");
  }

  common::Rng rng(options.seed);
  auto sample = transform::SamplePatients(log, options.sample_fraction, rng);
  if (!sample.ok()) return sample.status();
  dataset::ExamLog sampled = log.FilterPatients(sample.value());

  // The proxy K must not exceed the sample size.
  int32_t proxy_k = std::min<int32_t>(
      options.proxy_k, static_cast<int32_t>(sampled.num_patients()));
  if (proxy_k < 1) proxy_k = 1;

  TransformSelection selection;
  double best_lift = -1.0;
  for (size_t i = 0; i < options.candidates.size(); ++i) {
    transform::Matrix vsm = BuildVsm(sampled, options.candidates[i]);
    cluster::KMeansOptions kmeans;
    kmeans.k = proxy_k;
    kmeans.max_iterations = 30;
    kmeans.seed = options.seed + i + 1;
    auto clustering = cluster::RunKMeans(vsm, kmeans);
    if (!clustering.ok()) return clustering.status();
    TransformCandidateScore score;
    score.options = options.candidates[i];
    score.overall_similarity = cluster::OverallSimilarity(
        vsm, clustering->assignments, clustering->k);
    // Random-assignment baseline in the same representation space.
    common::Rng baseline_rng(options.seed + 1000 + i);
    std::vector<int32_t> random_assignments(vsm.rows());
    for (int32_t& assignment : random_assignments) {
      assignment = static_cast<int32_t>(
          baseline_rng.UniformUint64(static_cast<uint64_t>(proxy_k)));
    }
    score.baseline_similarity =
        cluster::OverallSimilarity(vsm, random_assignments, proxy_k);
    score.lift = score.baseline_similarity > 0.0
                     ? score.overall_similarity / score.baseline_similarity
                     : 0.0;
    if (score.lift > best_lift) {
      best_lift = score.lift;
      selection.best_index = i;
    }
    selection.scores.push_back(std::move(score));
  }
  return selection;
}

}  // namespace core
}  // namespace adahealth
