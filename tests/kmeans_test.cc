#include "cluster/kmeans.h"

#include <set>

#include <gtest/gtest.h>
#include "common/metrics.h"
#include "test_util.h"

namespace adahealth {
namespace cluster {
namespace {

using test::MakeBlobs;
using test::RandIndex;
using transform::Matrix;

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  test::Blobs blobs = MakeBlobs(
      {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}, 50, 0.5, 1);
  KMeansOptions options;
  options.k = 3;
  options.seed = 3;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_TRUE(clustering->converged);
  EXPECT_GT(RandIndex(clustering->assignments, blobs.labels), 0.99);
}

TEST(KMeansTest, SseDecreasesWithMoreClusters) {
  test::Blobs blobs = MakeBlobs(
      {{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}, {8.0, 8.0}}, 40, 1.0, 5);
  double previous_sse = 1e300;
  for (int32_t k : {2, 4, 8, 16}) {
    KMeansOptions options;
    options.k = k;
    options.seed = 7;
    auto clustering = RunKMeans(blobs.points, options);
    ASSERT_TRUE(clustering.ok());
    EXPECT_LT(clustering->sse, previous_sse);
    previous_sse = clustering->sse;
  }
}

TEST(KMeansTest, AssignmentsConsistentWithCentroids) {
  test::Blobs blobs = MakeBlobs({{0.0}, {5.0}}, 30, 0.3, 9);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  // Every point is assigned to its genuinely closest centroid.
  for (size_t i = 0; i < blobs.points.rows(); ++i) {
    double assigned = transform::SquaredDistance(
        blobs.points.Row(i),
        clustering->centroids.Row(
            static_cast<size_t>(clustering->assignments[i])));
    for (size_t c = 0; c < clustering->centroids.rows(); ++c) {
      EXPECT_LE(assigned, transform::SquaredDistance(
                              blobs.points.Row(i),
                              clustering->centroids.Row(c)) +
                              1e-9);
    }
  }
}

TEST(KMeansTest, SseMatchesAssignments) {
  test::Blobs blobs = MakeBlobs({{0.0}, {4.0}}, 25, 0.4, 11);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  double sse = 0.0;
  for (size_t i = 0; i < blobs.points.rows(); ++i) {
    sse += transform::SquaredDistance(
        blobs.points.Row(i),
        clustering->centroids.Row(
            static_cast<size_t>(clustering->assignments[i])));
  }
  EXPECT_NEAR(sse, clustering->sse, 1e-9);
}

TEST(KMeansTest, KEqualsOneGivesGlobalMean) {
  test::Blobs blobs = MakeBlobs({{1.0, 2.0}}, 40, 1.0, 13);
  KMeansOptions options;
  options.k = 1;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  std::vector<double> means = blobs.points.ColumnMeans();
  EXPECT_NEAR(clustering->centroids.At(0, 0), means[0], 1e-9);
  EXPECT_NEAR(clustering->centroids.At(0, 1), means[1], 1e-9);
}

TEST(KMeansTest, KEqualsNPerfectFit) {
  Matrix points(4, 1);
  for (size_t i = 0; i < 4; ++i) points.At(i, 0) = static_cast<double>(i * 10);
  KMeansOptions options;
  options.k = 4;
  auto clustering = RunKMeans(points, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_NEAR(clustering->sse, 0.0, 1e-12);
  std::set<int32_t> distinct(clustering->assignments.begin(),
                             clustering->assignments.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(KMeansTest, DeterministicForSeed) {
  test::Blobs blobs = MakeBlobs({{0.0}, {5.0}}, 30, 0.5, 15);
  KMeansOptions options;
  options.k = 2;
  options.seed = 99;
  auto a = RunKMeans(blobs.points, options);
  auto b = RunKMeans(blobs.points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->sse, b->sse);
}

TEST(KMeansTest, RandomInitAlsoConverges) {
  test::Blobs blobs = MakeBlobs({{0.0, 0.0}, {10.0, 10.0}}, 40, 0.5, 17);
  KMeansOptions options;
  options.k = 2;
  options.init = KMeansInit::kRandom;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GT(RandIndex(clustering->assignments, blobs.labels), 0.99);
}

TEST(KMeansTest, NoEmptyClustersEvenWithDuplicatePoints) {
  Matrix points(10, 1, 3.0);  // All identical.
  KMeansOptions options;
  options.k = 3;
  auto clustering = RunKMeans(points, options);
  ASSERT_TRUE(clustering.ok());
  // SSE must be 0; assignments all valid.
  EXPECT_NEAR(clustering->sse, 0.0, 1e-12);
  for (int32_t a : clustering->assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

TEST(KMeansTest, InvalidArgumentsRejected) {
  Matrix points(5, 2, 1.0);
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(RunKMeans(points, options).ok());
  options.k = 6;  // More clusters than points.
  EXPECT_FALSE(RunKMeans(points, options).ok());
  options.k = 2;
  options.max_iterations = 0;
  EXPECT_FALSE(RunKMeans(points, options).ok());
  EXPECT_FALSE(RunKMeans(Matrix(), options).ok());
}

TEST(KMeansTest, TwoEmptyClustersReseedWithDistinctPoints) {
  // Clusters 0 and 1 hold two points each; clusters 2 and 3 are empty.
  // Both reseed scans would pick the same globally-farthest point if
  // the donor were not marked as consumed after the first reseed.
  Matrix points(4, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 10.0;
  points.At(2, 0) = 100.0;
  points.At(3, 0) = 101.0;
  std::vector<int32_t> assignments{0, 0, 1, 1};
  Matrix centroids(4, 1, 0.0);
  RecomputeCentroids(points, assignments, centroids);
  // Non-empty clusters keep their means.
  EXPECT_NEAR(centroids.At(0, 0), 5.0, 1e-12);
  EXPECT_NEAR(centroids.At(1, 0), 100.5, 1e-12);
  // The two reseeded centroids must be distinct data points.
  EXPECT_NE(centroids.At(2, 0), centroids.At(3, 0));
}

TEST(KMeansTest, ConvergedRunSkipsRedundantFinalAssignment) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  test::Blobs blobs = MakeBlobs({{0.0, 0.0}, {10.0, 10.0}}, 30, 0.4, 23);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  ASSERT_TRUE(clustering->converged);
  // A converged run needs exactly one full-data assignment pass per
  // iteration — no extra pass after the loop.
  EXPECT_EQ(metrics.GetCounter("kmeans/assign_passes").value(),
            clustering->iterations);
  // SSE stays consistent with the returned assignments/centroids.
  double sse = 0.0;
  for (size_t i = 0; i < blobs.points.rows(); ++i) {
    sse += transform::SquaredDistance(
        blobs.points.Row(i),
        clustering->centroids.Row(
            static_cast<size_t>(clustering->assignments[i])));
  }
  EXPECT_NEAR(sse, clustering->sse, 1e-9);
}

TEST(KMeansTest, NonConvergedRunReassignsAgainstFinalCentroids) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  test::Blobs blobs = MakeBlobs(
      {{0.0, 0.0}, {3.0, 0.0}, {0.0, 3.0}, {3.0, 3.0}}, 30, 1.5, 29);
  KMeansOptions options;
  options.k = 4;
  options.max_iterations = 2;  // Force a non-converged exit.
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  ASSERT_FALSE(clustering->converged);
  EXPECT_EQ(metrics.GetCounter("kmeans/assign_passes").value(),
            clustering->iterations + 1);
  // The final assignment is consistent with the final centroids.
  for (size_t i = 0; i < blobs.points.rows(); ++i) {
    double assigned = transform::SquaredDistance(
        blobs.points.Row(i),
        clustering->centroids.Row(
            static_cast<size_t>(clustering->assignments[i])));
    for (size_t c = 0; c < clustering->centroids.rows(); ++c) {
      EXPECT_LE(assigned, transform::SquaredDistance(
                              blobs.points.Row(i),
                              clustering->centroids.Row(c)) +
                              1e-9);
    }
  }
}

TEST(ClusterSizesTest, CountsPerCluster) {
  std::vector<int32_t> assignments{0, 1, 1, 2, 1};
  EXPECT_EQ(ClusterSizes(assignments, 3),
            (std::vector<int64_t>{1, 3, 1}));
}

TEST(AdaptCentroidsTest, SameKReturnsCentroidsUnchanged) {
  test::Blobs blobs = MakeBlobs({{0.0}, {6.0}}, 20, 0.3, 91);
  KMeansOptions options;
  options.k = 2;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  Matrix adapted = AdaptCentroids(blobs.points, *clustering, 2);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(adapted.At(c, 0), clustering->centroids.At(c, 0));
  }
}

TEST(AdaptCentroidsTest, ShrinkingKeepsLargestClusters) {
  // Cluster 1 is tiny; shrinking to k=2 must drop exactly its centroid.
  Matrix points(7, 1);
  for (size_t i = 0; i < 3; ++i) points.At(i, 0) = 0.0 + 0.1 * i;
  points.At(3, 0) = 50.0;
  for (size_t i = 4; i < 7; ++i) points.At(i, 0) = 100.0 + 0.1 * i;
  Clustering source;
  source.k = 3;
  source.assignments = {0, 0, 0, 1, 2, 2, 2};
  source.centroids = Matrix(3, 1);
  source.centroids.At(0, 0) = 0.1;
  source.centroids.At(1, 0) = 50.0;
  source.centroids.At(2, 0) = 100.5;
  Matrix adapted = AdaptCentroids(points, source, 2);
  ASSERT_EQ(adapted.rows(), 2u);
  EXPECT_EQ(adapted.At(0, 0), 0.1);
  EXPECT_EQ(adapted.At(1, 0), 100.5);
}

TEST(AdaptCentroidsTest, GrowingAddsFarthestPoints) {
  Matrix points(5, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 1.0;
  points.At(2, 0) = 2.0;
  points.At(3, 0) = 100.0;
  points.At(4, 0) = 101.0;
  Clustering source;
  source.k = 1;
  source.assignments = {0, 0, 0, 0, 0};
  source.centroids = Matrix(1, 1);
  source.centroids.At(0, 0) = 1.0;
  Matrix adapted = AdaptCentroids(points, source, 2);
  ASSERT_EQ(adapted.rows(), 2u);
  EXPECT_EQ(adapted.At(0, 0), 1.0);
  // The farthest point from the existing centroid is 101.
  EXPECT_EQ(adapted.At(1, 0), 101.0);
}

TEST(KMeansTest, WarmStartFromOwnSolutionConvergesImmediately) {
  test::Blobs blobs = MakeBlobs({{0.0, 0.0}, {9.0, 9.0}}, 40, 0.5, 93);
  KMeansOptions options;
  options.k = 2;
  auto first = RunKMeans(blobs.points, options);
  ASSERT_TRUE(first.ok());
  options.initial_centroids = first->centroids;
  auto second = RunKMeans(blobs.points, options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->converged);
  // Seeding from a converged solution re-converges right after the
  // first pass (the loop needs a second pass to observe stability).
  EXPECT_EQ(second->iterations, 2);
  EXPECT_EQ(second->assignments, first->assignments);
  EXPECT_EQ(second->sse, first->sse);
}

TEST(InitializeCentroidsTest, PlusPlusPicksDistinctPoints) {
  test::Blobs blobs = MakeBlobs({{0.0}, {100.0}, {200.0}}, 10, 0.1, 19);
  common::Rng rng(21);
  Matrix centroids = InitializeCentroids(blobs.points, 3,
                                         KMeansInit::kKMeansPlusPlus, rng);
  // With D^2 seeding on well-separated blobs, the three seeds land in
  // three different blobs.
  std::set<int> regions;
  for (size_t c = 0; c < 3; ++c) {
    regions.insert(static_cast<int>(centroids.At(c, 0) / 50.0));
  }
  EXPECT_EQ(regions.size(), 3u);
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
