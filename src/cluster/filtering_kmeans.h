// The kd-tree "filtering" K-means of Kanungo, Mount, Netanyahu, Piatko,
// Silverman & Wu (IEEE TPAMI 2002) — the efficient K-means
// implementation the paper cites as reference [3].
//
// Instead of computing every point-centroid distance, each Lloyd
// iteration walks the kd-tree with a shrinking set of candidate
// centroids; a subtree whose bounding box is entirely closer to one
// candidate than to all others is assigned wholesale using the node's
// cached sufficient statistics.
//
// Produces the same fixed point as plain Lloyd for the same
// initialization (up to distance ties).
#ifndef ADAHEALTH_CLUSTER_FILTERING_KMEANS_H_
#define ADAHEALTH_CLUSTER_FILTERING_KMEANS_H_

#include "cluster/kmeans.h"

namespace adahealth {
namespace cluster {

/// Runs filtering K-means with the same options/result contract as
/// RunKMeans. `leaf_size` tunes the kd-tree granularity.
[[nodiscard]] common::StatusOr<Clustering> RunFilteringKMeans(
    const transform::Matrix& data, const KMeansOptions& options,
    size_t leaf_size = 16);

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_FILTERING_KMEANS_H_
