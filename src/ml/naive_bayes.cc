#include "ml/naive_bayes.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace adahealth {
namespace ml {

using common::Status;
using transform::Matrix;

Status GaussianNaiveBayes::Fit(const Matrix& features,
                               const std::vector<int32_t>& labels,
                               int32_t num_classes) {
  if (features.rows() == 0 || features.cols() == 0) {
    return common::InvalidArgumentError("empty training data");
  }
  if (labels.size() != features.rows()) {
    return common::InvalidArgumentError("label count != sample count");
  }
  if (num_classes < 1) {
    return common::InvalidArgumentError("num_classes must be >= 1");
  }
  for (int32_t label : labels) {
    if (label < 0 || label >= num_classes) {
      return common::InvalidArgumentError("label outside [0, num_classes)");
    }
  }

  num_classes_ = num_classes;
  num_features_ = features.cols();
  const size_t k = static_cast<size_t>(num_classes);
  std::vector<int64_t> counts(k, 0);
  means_.assign(k, std::vector<double>(num_features_, 0.0));
  variances_.assign(k, std::vector<double>(num_features_, 0.0));

  for (size_t i = 0; i < features.rows(); ++i) {
    size_t c = static_cast<size_t>(labels[i]);
    ++counts[c];
    std::span<const double> row = features.Row(i);
    for (size_t f = 0; f < num_features_; ++f) means_[c][f] += row[f];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (size_t f = 0; f < num_features_; ++f) {
      means_[c][f] /= static_cast<double>(counts[c]);
    }
  }
  for (size_t i = 0; i < features.rows(); ++i) {
    size_t c = static_cast<size_t>(labels[i]);
    std::span<const double> row = features.Row(i);
    for (size_t f = 0; f < num_features_; ++f) {
      double d = row[f] - means_[c][f];
      variances_[c][f] += d * d;
    }
  }
  // Global variance scale for smoothing (sklearn-style: epsilon
  // proportional to the largest feature variance).
  double max_feature_variance = 0.0;
  {
    std::vector<double> global_mean(num_features_, 0.0);
    for (size_t i = 0; i < features.rows(); ++i) {
      std::span<const double> row = features.Row(i);
      for (size_t f = 0; f < num_features_; ++f) global_mean[f] += row[f];
    }
    for (double& m : global_mean) m /= static_cast<double>(features.rows());
    for (size_t f = 0; f < num_features_; ++f) {
      double var = 0.0;
      for (size_t i = 0; i < features.rows(); ++i) {
        double d = features.At(i, f) - global_mean[f];
        var += d * d;
      }
      var /= static_cast<double>(features.rows());
      max_feature_variance = std::max(max_feature_variance, var);
    }
  }
  const double epsilon =
      options_.variance_smoothing * std::max(max_feature_variance, 1.0);

  log_priors_.assign(k, -std::numeric_limits<double>::infinity());
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (size_t f = 0; f < num_features_; ++f) {
      variances_[c][f] =
          variances_[c][f] / static_cast<double>(counts[c]) + epsilon;
    }
    log_priors_[c] = std::log(static_cast<double>(counts[c]) /
                              static_cast<double>(features.rows()));
  }
  return common::OkStatus();
}

int32_t GaussianNaiveBayes::Predict(std::span<const double> features) const {
  ADA_CHECK_GT(num_classes_, 0);
  ADA_CHECK_EQ(features.size(), num_features_);
  double best = -std::numeric_limits<double>::infinity();
  int32_t best_class = 0;
  for (int32_t c = 0; c < num_classes_; ++c) {
    size_t ci = static_cast<size_t>(c);
    if (std::isinf(log_priors_[ci])) continue;  // Unseen class.
    double log_posterior = log_priors_[ci];
    for (size_t f = 0; f < num_features_; ++f) {
      double var = variances_[ci][f];
      double d = features[f] - means_[ci][f];
      log_posterior -= 0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
    }
    if (log_posterior > best) {
      best = log_posterior;
      best_class = c;
    }
  }
  return best_class;
}

}  // namespace ml
}  // namespace adahealth
