// Additional clustering-quality properties: the Calinski–Harabasz
// index and cross-index consistency sweeps (parameterized).
#include <gtest/gtest.h>
#include "cluster/kmeans.h"
#include "cluster/quality.h"
#include "test_util.h"

namespace adahealth {
namespace cluster {
namespace {

using transform::Matrix;

TEST(CalinskiHarabaszTest, HigherForBetterSeparation) {
  test::Blobs tight = test::MakeBlobs({{0.0, 0.0}, {20.0, 0.0}}, 40, 0.5,
                                      131);
  test::Blobs loose = test::MakeBlobs({{0.0, 0.0}, {2.0, 0.0}}, 40, 1.5,
                                      131);
  KMeansOptions options;
  options.k = 2;
  auto tight_clustering = RunKMeans(tight.points, options);
  auto loose_clustering = RunKMeans(loose.points, options);
  ASSERT_TRUE(tight_clustering.ok());
  ASSERT_TRUE(loose_clustering.ok());
  EXPECT_GT(CalinskiHarabaszIndex(tight.points,
                                  tight_clustering->assignments, 2),
            CalinskiHarabaszIndex(loose.points,
                                  loose_clustering->assignments, 2));
}

TEST(CalinskiHarabaszTest, TrueLabelingBeatsRandom) {
  test::Blobs blobs = test::MakeBlobs({{0.0}, {10.0}, {20.0}}, 30, 0.5,
                                      133);
  common::Rng rng(135);
  std::vector<int32_t> random(blobs.points.rows());
  for (auto& a : random) a = static_cast<int32_t>(rng.UniformUint64(3));
  // Random assignment could leave a cluster empty; regenerate until not
  // (deterministic seed, converges immediately in practice).
  while (true) {
    std::vector<int64_t> sizes(3, 0);
    for (int32_t a : random) ++sizes[static_cast<size_t>(a)];
    bool ok = true;
    for (int64_t s : sizes) ok &= s > 0;
    if (ok) break;
    for (auto& a : random) a = static_cast<int32_t>(rng.UniformUint64(3));
  }
  EXPECT_GT(CalinskiHarabaszIndex(blobs.points, blobs.labels, 3),
            10.0 * CalinskiHarabaszIndex(blobs.points, random, 3));
}

/// Property sweep: on well-separated blobs of every configuration, the
/// k-means clustering at the true K must score better than a random
/// labeling on every index (SSE lower, OS/silhouette/CH higher, DB
/// lower).
struct IndexSweepCase {
  int32_t k;
  size_t per_cluster;
  double spread;
  uint64_t seed;
};

class QualityIndexSweep : public testing::TestWithParam<IndexSweepCase> {};

TEST_P(QualityIndexSweep, AllIndicesPreferTrueStructure) {
  const IndexSweepCase& param = GetParam();
  std::vector<std::vector<double>> centers;
  for (int32_t c = 0; c < param.k; ++c) {
    centers.push_back({12.0 * c, 12.0 * ((c * 7) % param.k)});
  }
  test::Blobs blobs =
      test::MakeBlobs(centers, param.per_cluster, param.spread, param.seed);
  KMeansOptions options;
  options.k = param.k;
  options.seed = param.seed + 1;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());

  common::Rng rng(param.seed + 2);
  std::vector<int32_t> random(blobs.points.rows());
  while (true) {
    for (auto& a : random) {
      a = static_cast<int32_t>(
          rng.UniformUint64(static_cast<uint64_t>(param.k)));
    }
    std::vector<int64_t> sizes(static_cast<size_t>(param.k), 0);
    for (int32_t a : random) ++sizes[static_cast<size_t>(a)];
    bool ok = true;
    for (int64_t s : sizes) ok &= s > 0;
    if (ok) break;
  }

  // Centroids of the random labeling for its SSE.
  Matrix random_centroids(static_cast<size_t>(param.k),
                          blobs.points.cols(), 0.0);
  RecomputeCentroids(blobs.points, random, random_centroids);

  EXPECT_LT(clustering->sse,
            SumSquaredError(blobs.points, random, random_centroids));
  EXPECT_GT(OverallSimilarity(blobs.points, clustering->assignments,
                              param.k),
            OverallSimilarity(blobs.points, random, param.k));
  EXPECT_GT(SilhouetteScore(blobs.points, clustering->assignments,
                            param.k),
            SilhouetteScore(blobs.points, random, param.k));
  EXPECT_GT(CalinskiHarabaszIndex(blobs.points, clustering->assignments,
                                  param.k),
            CalinskiHarabaszIndex(blobs.points, random, param.k));
  EXPECT_LT(DaviesBouldinIndex(blobs.points, clustering->assignments,
                               param.k),
            DaviesBouldinIndex(blobs.points, random, param.k));
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, QualityIndexSweep,
    testing::Values(IndexSweepCase{2, 30, 0.5, 1},
                    IndexSweepCase{3, 25, 0.8, 2},
                    IndexSweepCase{4, 20, 0.6, 3},
                    IndexSweepCase{5, 15, 0.7, 4},
                    IndexSweepCase{8, 12, 0.5, 5}));

TEST(CalinskiHarabaszTest, ZeroWithinDispersion) {
  // Two clusters of identical points each: within = 0 -> define 0.
  Matrix points(4, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 0.0;
  points.At(2, 0) = 5.0;
  points.At(3, 0) = 5.0;
  std::vector<int32_t> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(CalinskiHarabaszIndex(points, labels, 2), 0.0);
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
