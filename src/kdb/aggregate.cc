#include "kdb/aggregate.h"

#include <algorithm>

namespace adahealth {
namespace kdb {

using common::Json;

std::map<std::string, int64_t> GroupCount(const Collection& collection,
                                          const std::string& path,
                                          const Query& filter) {
  std::map<std::string, int64_t> counts;
  for (const Document& document : collection.documents()) {
    if (!filter.Matches(document)) continue;
    const Json* field = document.Get(path);
    ++counts[field != nullptr ? field->Dump() : "<missing>"];
  }
  return counts;
}

FieldStats Aggregate(const Collection& collection, const std::string& path,
                     const Query& filter) {
  FieldStats stats;
  for (const Document& document : collection.documents()) {
    if (!filter.Matches(document)) continue;
    const Json* field = document.Get(path);
    if (field == nullptr || !field->is_number()) continue;
    double value = field->AsDouble();
    if (stats.count == 0) {
      stats.min = value;
      stats.max = value;
    } else {
      stats.min = std::min(stats.min, value);
      stats.max = std::max(stats.max, value);
    }
    stats.sum += value;
    ++stats.count;
  }
  if (stats.count > 0) {
    stats.mean = stats.sum / static_cast<double>(stats.count);
  }
  return stats;
}

namespace {

/// Sort key: rank (0 number, 1 string, 2 other/missing) then value.
struct SortKey {
  int rank = 2;
  double number = 0.0;
  std::string text;

  static SortKey From(const Document& document, const std::string& path) {
    SortKey key;
    const Json* field = document.Get(path);
    if (field == nullptr) return key;
    if (field->is_number()) {
      key.rank = 0;
      key.number = field->AsDouble();
    } else if (field->is_string()) {
      key.rank = 1;
      key.text = field->AsString();
    }
    return key;
  }

  friend bool operator<(const SortKey& a, const SortKey& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.rank == 0) return a.number < b.number;
    if (a.rank == 1) return a.text < b.text;
    return false;
  }
};

}  // namespace

std::vector<Document> SortedFind(const Collection& collection,
                                 const Query& filter,
                                 const std::string& sort_path,
                                 bool descending, size_t limit) {
  std::vector<std::pair<SortKey, const Document*>> keyed;
  for (const Document& document : collection.documents()) {
    if (!filter.Matches(document)) continue;
    keyed.emplace_back(SortKey::From(document, sort_path), &document);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const auto& a, const auto& b) {
                     // Missing/other fields sort last in either order.
                     if (a.first.rank == 2 || b.first.rank == 2) {
                       return a.first.rank < b.first.rank;
                     }
                     return descending ? b.first < a.first
                                       : a.first < b.first;
                   });
  std::vector<Document> out;
  size_t take = limit == 0 ? keyed.size() : std::min(limit, keyed.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(*keyed[i].second);
  return out;
}

}  // namespace kdb
}  // namespace adahealth
