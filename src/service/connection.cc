#include "service/connection.h"

#include <sys/epoll.h>

#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"
#include "service/protocol.h"

namespace adahealth {
namespace service {

using common::Status;

namespace {

void CountServerError() {
  common::MetricsRegistry::Default()
      .GetCounter("service/server_errors")
      .Increment();
}

}  // namespace

Connection::Connection(int64_t id, FileDescriptor fd, EventLoop* loop,
                       size_t max_line_bytes)
    : id_(id),
      fd_(std::move(fd)),
      loop_(loop),
      max_line_bytes_(max_line_bytes),
      last_activity_(std::chrono::steady_clock::now()) {}

Connection::~Connection() {
  if (!closed_) {
    loop_->Unwatch(fd_.get());
    fd_.Close();
    closed_ = true;
  }
}

Status Connection::Register(std::function<void(uint32_t)> dispatcher,
                            RequestHandler on_request) {
  on_request_ = std::move(on_request);
  interest_ = EPOLLIN;
  return loop_->Watch(fd_.get(), interest_, std::move(dispatcher));
}

void Connection::HandleEvents(uint32_t events) {
  if (closed_) return;
  last_activity_ = std::chrono::steady_clock::now();
  if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) HandleReadable();
  if (closed_) return;
  if (events & EPOLLOUT) FlushOutput();
  if (closed_) return;
  UpdateInterest();
}

void Connection::HandleReadable() {
  char chunk[16384];
  while (!closed_ && !peer_eof_ && !close_after_flush_) {
    auto read = RecvNonBlocking(fd_, chunk, sizeof(chunk));
    if (!read.ok()) {
      CountServerError();
      CloseNow();
      return;
    }
    if (read->would_block) break;
    if (read->eof) {
      peer_eof_ = true;
      break;
    }
    inbuf_.append(chunk, read->bytes);
    // Give the parser a chance before the next recv so an oversized
    // line fails fast instead of buffering the whole flood first.
    if (inbuf_.size() >= max_line_bytes_) break;
  }
  ProcessBuffered();
}

void Connection::ProcessBuffered() {
  while (!closed_ && !awaiting_ && !close_after_flush_) {
    size_t newline = inbuf_.find('\n', scan_pos_);
    if (newline == std::string::npos) {
      scan_pos_ = inbuf_.size();
      if (inbuf_.size() >= max_line_bytes_) FailOversizedLine();
      break;
    }
    std::string line = inbuf_.substr(0, newline);
    inbuf_.erase(0, newline + 1);
    scan_pos_ = 0;
    DispatchLine(std::move(line));
  }
  // End-of-stream parity with the blocking LineReader: a final line
  // without a terminator is still a request.
  if (peer_eof_ && !closed_ && !awaiting_ && !close_after_flush_) {
    if (!inbuf_.empty() && !final_line_dispatched_) {
      final_line_dispatched_ = true;
      std::string line = std::move(inbuf_);
      inbuf_.clear();
      scan_pos_ = 0;
      DispatchLine(std::move(line));
    }
    // The dispatched final line may have parked the connection; only
    // finish once every response has been delivered.
    if (!closed_ && !awaiting_) StartDrain();
  }
}

void Connection::DispatchLine(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return;  // Blank keep-alive lines are ignored.
  on_request_(*this, std::move(line));
}

void Connection::FailOversizedLine() {
  CountServerError();
  inbuf_.clear();
  scan_pos_ = 0;
  // Set before enqueueing: the response usually flushes in full right
  // inside EnqueueResponse, and FlushOutput closes on drain only if
  // the flag is already up.
  close_after_flush_ = true;
  EnqueueResponse(ErrorResponse(common::ResourceExhaustedError(
      common::StrFormat("request line exceeds %zu bytes without a newline",
                        max_line_bytes_))));
  if (!closed_) UpdateInterest();
}

void Connection::EnqueueResponse(std::string data) {
  if (closed_) return;
  outbuf_ += data;
  FlushOutput();
  if (!closed_) UpdateInterest();
}

void Connection::PauseRequests() {
  awaiting_ = true;
  if (!closed_) UpdateInterest();
}

void Connection::ResumeRequests() {
  if (closed_) return;
  awaiting_ = false;
  ProcessBuffered();
  if (!closed_) UpdateInterest();
}

void Connection::StartDrain() {
  if (closed_) return;
  close_after_flush_ = true;
  if (outbuf_.empty()) {
    CloseNow();
    return;
  }
  UpdateInterest();
}

void Connection::CloseNow() {
  if (closed_) return;
  closed_ = true;
  loop_->Unwatch(fd_.get());
  fd_.Close();
  outbuf_.clear();
  inbuf_.clear();
}

void Connection::FlushOutput() {
  while (!closed_ && !outbuf_.empty()) {
    auto sent = SendNonBlocking(fd_, outbuf_);
    if (!sent.ok()) {
      CountServerError();
      CloseNow();
      return;
    }
    if (sent.value() == 0) return;  // Socket full; resume on EPOLLOUT.
    outbuf_.erase(0, sent.value());
    last_activity_ = std::chrono::steady_clock::now();
  }
  if (outbuf_.empty() && close_after_flush_) CloseNow();
}

void Connection::UpdateInterest() {
  uint32_t wanted = 0;
  if (!awaiting_ && !peer_eof_ && !close_after_flush_) wanted |= EPOLLIN;
  if (!outbuf_.empty()) wanted |= EPOLLOUT;
  if (wanted == interest_) return;
  interest_ = wanted;
  // A failed interest update leaves the old mask: worst case we wake
  // spuriously (level-triggered), never lose readiness.
  (void)loop_->SetInterest(fd_.get(), wanted);
}

}  // namespace service
}  // namespace adahealth
