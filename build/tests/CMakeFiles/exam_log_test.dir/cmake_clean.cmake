file(REMOVE_RECURSE
  "CMakeFiles/exam_log_test.dir/exam_log_test.cc.o"
  "CMakeFiles/exam_log_test.dir/exam_log_test.cc.o.d"
  "exam_log_test"
  "exam_log_test.pdb"
  "exam_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exam_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
