# Empty dependencies file for vsm_test.
# This may be replaced when dependencies are built.
