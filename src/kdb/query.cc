#include "kdb/query.h"

namespace adahealth {
namespace kdb {

using common::Json;

namespace {

/// Three-way comparison of scalar JSON values where ordered comparison
/// makes sense. Returns false in `comparable` for mixed or non-scalar
/// types (other than int/double mixes).
struct CompareResult {
  bool comparable = false;
  int order = 0;  // -1, 0, 1.
};

CompareResult CompareScalars(const Json& a, const Json& b) {
  CompareResult result;
  if (a.is_number() && b.is_number()) {
    double da = a.AsDouble();
    double db = b.AsDouble();
    result.comparable = true;
    result.order = da < db ? -1 : (da > db ? 1 : 0);
    return result;
  }
  if (a.is_string() && b.is_string()) {
    result.comparable = true;
    int cmp = a.AsString().compare(b.AsString());
    result.order = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    return result;
  }
  if (a.is_bool() && b.is_bool()) {
    result.comparable = true;
    result.order = static_cast<int>(a.AsBool()) -
                   static_cast<int>(b.AsBool());
    return result;
  }
  return result;
}

bool ValuesEqual(const Json& a, const Json& b) {
  // Numeric equality across int/double; otherwise structural equality.
  if (a.is_number() && b.is_number()) return a.AsDouble() == b.AsDouble();
  return a == b;
}

}  // namespace

Query& Query::Where(std::string path, QueryOp op, Json value) {
  conditions_.push_back({std::move(path), op, std::move(value)});
  return *this;
}

Query& Query::Eq(std::string path, Json value) {
  return Where(std::move(path), QueryOp::kEq, std::move(value));
}

Query& Query::Exists(std::string path) {
  return Where(std::move(path), QueryOp::kExists, Json());
}

bool Query::Matches(const Document& document) const {
  for (const Condition& condition : conditions_) {
    const Json* field = document.Get(condition.path);
    switch (condition.op) {
      case QueryOp::kExists:
        if (field == nullptr) return false;
        break;
      case QueryOp::kEq:
        if (field == nullptr || !ValuesEqual(*field, condition.value)) {
          return false;
        }
        break;
      case QueryOp::kNe:
        if (field != nullptr && ValuesEqual(*field, condition.value)) {
          return false;
        }
        break;
      default: {
        if (field == nullptr) return false;
        CompareResult cmp = CompareScalars(*field, condition.value);
        if (!cmp.comparable) return false;
        bool ok = false;
        switch (condition.op) {
          case QueryOp::kLt: ok = cmp.order < 0; break;
          case QueryOp::kLe: ok = cmp.order <= 0; break;
          case QueryOp::kGt: ok = cmp.order > 0; break;
          case QueryOp::kGe: ok = cmp.order >= 0; break;
          default: break;
        }
        if (!ok) return false;
      }
    }
  }
  return true;
}

}  // namespace kdb
}  // namespace adahealth
