// Concurrent analysis-job scheduler: the service layer that turns
// AnalysisSession into a long-running multi-tenant engine.
//
// Three cooperating pieces:
//  * a bounded admission queue with per-job priorities and deadlines —
//    submissions beyond the queue bound are shed with
//    RESOURCE_EXHAUSTED, and queued jobs whose deadline passes before a
//    worker picks them up are shed with DEADLINE_EXCEEDED;
//  * N worker sessions multiplexed onto ThreadPool::Shared(): workers
//    are pool tasks (not dedicated threads), so concurrent
//    AnalysisSession::Run calls share the parallel k-means backend
//    with the row-level parallelism instead of oversubscribing cores.
//    A worker task drains jobs until the queue is empty, then retires;
//    submissions spawn workers back up to the configured ceiling;
//  * the fingerprint result cache (service/result_cache.h) consulted
//    before every session run — the unit of work is the fully
//    automated session (no per-request tuning), so a fingerprint match
//    serves the stored report with no second execution.
//
// Determinism: a job produces a byte-identical session report to a
// direct AnalysisSession::Run with the same log and options, also when
// many jobs run concurrently (the PR-4 engines are thread-count
// independent and each job gets a private K-DB instance).
//
// Failpoints: "service.admission" (Submit), "service.worker.session"
// (evaluated once per job before the session runs). Metrics:
// "service/jobs_*" counters, "service/job_wait_seconds" and
// "service/job_run_seconds" histograms, "service/queue_depth" and
// "service/active_workers" gauges.
#ifndef ADAHEALTH_SERVICE_SCHEDULER_H_
#define ADAHEALTH_SERVICE_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/session.h"
#include "dataset/exam_log.h"
#include "dataset/taxonomy.h"
#include "service/result_cache.h"

namespace adahealth {
namespace service {

using JobId = int64_t;

/// Lifecycle of a scheduled job. Terminal states: kDone, kFailed,
/// kExpired, kCancelled.
enum class JobState {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       // Session succeeded or the cache served the result.
  kFailed = 3,     // The session returned an error.
  kExpired = 4,    // Deadline passed before a worker started the job.
  kCancelled = 5,  // Cancelled while still queued.
};

/// "queued" / "running" / "done" / "failed" / "expired" / "cancelled".
const char* JobStateName(JobState state);

/// True for the four states a job can never leave.
[[nodiscard]] bool IsTerminal(JobState state);

/// One unit of work: a dataset plus the fully automated session that
/// should analyze it.
struct JobRequest {
  dataset::ExamLog log;
  /// Pattern mining is skipped when absent (mirrors AnalysisSession).
  std::optional<dataset::Taxonomy> taxonomy;
  core::SessionOptions options;
  /// Higher priorities are dequeued first; ties run in submit order.
  int32_t priority = 0;
  /// Relative deadline: the job must *start* within this many
  /// milliseconds of admission or it is shed. <= 0 disables it.
  double deadline_millis = 0.0;
  /// Streaming-cohort versioning (service/cohort_store.h). When
  /// `cohort` is non-empty the scheduler versions the job's dataset
  /// fingerprint as `<cohort>@<generation>/<hash>`, supersedes queued
  /// jobs of the same cohort with older generations, and fires
  /// SchedulerOptions::on_session_success after the result commits.
  std::string cohort;
  int64_t cohort_generation = 0;
};

/// Point-in-time copy of one job's externally visible state.
struct JobSnapshot {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// OK, or why the job failed / expired / was cancelled.
  common::Status status;
  std::string dataset_id;
  std::string fingerprint;
  int32_t priority = 0;
  /// True when the result was served from the fingerprint cache.
  bool cache_hit = false;
  /// Queue wait (admission -> worker pickup) and session run time.
  double wait_seconds = 0.0;
  double run_seconds = 0.0;
  /// Populated on kDone: the session summary and rendered report.
  std::string summary;
  std::string report;
  int64_t knowledge_items = 0;
};

struct SchedulerOptions {
  /// Concurrent worker sessions (>= 1); each is a ThreadPool::Shared()
  /// task, so the effective parallelism stays bounded by the pool.
  size_t max_workers = 4;
  /// Admission bound on queued (not yet running) jobs.
  size_t max_queue_depth = 64;
  /// Result-cache byte budget.
  size_t cache_bytes = 8 * 1024 * 1024;
  /// When non-empty, the cache is restored from this directory at
  /// construction, persisted (crash-safely) whenever the dirty-entry
  /// threshold is reached, and flushed once more at destruction.
  std::string cache_directory;
  /// Persist once this many inserts have accumulated since the last
  /// successful persist (clamped to >= 1; 1 = persist after every
  /// insert). Each persist is an O(all entries) full rewrite, so
  /// batching keeps a busy scheduler from rewriting the file per job;
  /// the destructor's final flush bounds the loss window to a crash.
  size_t cache_persist_threshold = 8;
  /// Construction-time Pause() (tests: stage jobs deterministically).
  bool start_paused = false;
  /// Fired after a session's artifacts are committed to the result
  /// cache (insert + batched persist), outside the scheduler lock —
  /// the replication hook: a shard primary wires this to its
  /// LogShipper so every committed result streams to the follower.
  /// Runs on the worker thread that finished the job; must not block.
  std::function<void(const CachedAnalysis&)> on_result_committed;
  /// Fired after a session run succeeds and its result is committed to
  /// the cache, outside the scheduler lock, on the worker thread — the
  /// cohort-store hook: the server wires this to
  /// CohortStore::OnAnalysisCommitted so a finished cohort job's
  /// centroids become the next generation's warm-start state. Not fired
  /// for cache hits (no new session ran) or non-cohort jobs.
  std::function<void(const JobRequest&, const core::SessionResult&)>
      on_session_success;
};

/// Monotonic per-scheduler counters (the global metrics registry is
/// shared across schedulers and tests; these are exact per-instance).
struct SchedulerStats {
  int64_t submitted = 0;
  int64_t completed = 0;          // kDone, including cache hits.
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t superseded = 0;         // Stale cohort generations cancelled.
  int64_t expired = 0;            // Deadline shed at dequeue.
  int64_t shed = 0;               // Admission-time rejections.
  int64_t cache_served = 0;       // kDone answered by the cache.
  int64_t sessions_executed = 0;  // Actual AnalysisSession::Run calls.
  size_t queue_depth = 0;
  size_t active_workers = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);
  /// Cancels the queued backlog, waits for running jobs, persists the
  /// cache when a cache_directory is configured.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits a job. Errors: RESOURCE_EXHAUSTED (queue full),
  /// FAILED_PRECONDITION (scheduler shutting down), INVALID_ARGUMENT
  /// (empty dataset), or an injected "service.admission" failure —
  /// all counted as shed except the invalid-argument case.
  [[nodiscard]] common::StatusOr<JobId> Submit(JobRequest request)
      ADA_EXCLUDES(mutex_);

  /// Snapshot of one job; NOT_FOUND for unknown ids.
  [[nodiscard]] common::StatusOr<JobSnapshot> Status(JobId id) const
      ADA_EXCLUDES(mutex_);

  /// Blocks until the job reaches a terminal state (or
  /// `timeout_millis` elapses -> DEADLINE_EXCEEDED; <= 0 waits
  /// forever). Returns the terminal snapshot.
  [[nodiscard]] common::StatusOr<JobSnapshot> AwaitResult(
      JobId id, double timeout_millis = 0.0) ADA_EXCLUDES(mutex_);

  /// Cancels a queued job. FAILED_PRECONDITION when it is already
  /// running or terminal, NOT_FOUND when unknown.
  [[nodiscard]] common::Status Cancel(JobId id) ADA_EXCLUDES(mutex_);

  using SubscriptionId = int64_t;
  using CompletionCallback = std::function<void(const JobSnapshot&)>;

  /// Registers `callback` to fire exactly once when the job reaches a
  /// terminal state — the event-loop-safe alternative to parking a
  /// thread in AwaitResult. When the job is already terminal the
  /// callback is invoked before Subscribe returns (on the calling
  /// thread) and the sentinel id 0 — never issued for a live
  /// subscription — is returned. NOT_FOUND for unknown jobs.
  ///
  /// Callbacks run on whichever thread finishes the job (a scheduler
  /// worker, or the thread calling Cancel / the destructor), after the
  /// scheduler's internal lock has been released — so a callback may
  /// safely call back into this Scheduler (Status, stats, ...). Long
  /// work should still be handed to an executor (the server posts to
  /// its event loop): the callback runs inside a worker's drain loop
  /// and delays that worker's next job.
  [[nodiscard]] common::StatusOr<SubscriptionId> Subscribe(
      JobId id, CompletionCallback callback) ADA_EXCLUDES(mutex_);

  /// Removes a pending subscription. Returns true when the callback
  /// was cancelled before firing; false when it already fired or is
  /// about to (or the id is unknown/the inline sentinel) — the caller
  /// must then expect the notification to arrive.
  bool Unsubscribe(SubscriptionId id) ADA_EXCLUDES(mutex_);

  /// Stops dispatching queued jobs (running jobs finish). Idempotent.
  void Pause() ADA_EXCLUDES(mutex_);
  /// Resumes dispatching.
  void Resume() ADA_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and every worker has retired.
  /// Resumes a paused scheduler first (a paused drain would deadlock).
  void Drain() ADA_EXCLUDES(mutex_);

  [[nodiscard]] SchedulerStats stats() const ADA_EXCLUDES(mutex_);
  /// Stats plus cache counters as one JSON object (the `stats` verb).
  [[nodiscard]] common::Json StatsJson() const ADA_EXCLUDES(mutex_);

  /// Commits one finished analysis to the result cache: inserts the
  /// entry, persists when the dirty-entry threshold is reached (and a
  /// cache_directory is configured), and — when `fire_hook` — invokes
  /// on_result_committed. Workers call this with fire_hook=true; a
  /// follower applying a replicated entry calls it with false so a
  /// replica chain cannot loop a record back at its own primary.
  void CommitCacheEntry(CachedAnalysis entry, bool fire_hook)
      ADA_EXCLUDES(mutex_);

  ResultCache& cache() { return cache_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  struct Job {
    JobId id = 0;
    JobRequest request;
    std::string fingerprint;
    JobState state = JobState::kQueued;
    common::Status status;
    bool cache_hit = false;
    std::chrono::steady_clock::time_point enqueue_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none.
    bool has_deadline = false;
    double wait_seconds = 0.0;
    double run_seconds = 0.0;
    std::string summary;
    std::string report;
    int64_t knowledge_items = 0;

    [[nodiscard]] JobSnapshot Snapshot() const;
  };

  /// (-priority, id): lowest key = next to run.
  using PendingKey = std::pair<int64_t, JobId>;

  /// A completion callback extracted (and retired) under mutex_ by
  /// FinishJob, to be invoked by the caller once the lock is released.
  struct Notification {
    CompletionCallback callback;
    JobSnapshot snapshot;
  };

  /// Spawns workers up to the ceiling. Returns true when the shared
  /// pool refused a task (process teardown): the caller must release
  /// mutex_ and run DrainLoop() inline so no admitted job is lost.
  [[nodiscard]] bool SpawnWorkersLocked() ADA_REQUIRES(mutex_);
  void DrainLoop() ADA_EXCLUDES(mutex_);
  void RunJob(Job& job) ADA_EXCLUDES(mutex_);
  /// Moves the job to a terminal state and appends its subscriptions
  /// to `notifications` instead of firing them — callbacks run outside
  /// the lock (see Subscribe), so every caller drains the vector with
  /// FireNotifications after unlocking.
  void FinishJob(Job& job, JobState state, common::Status status,
                 std::vector<Notification>* notifications)
      ADA_REQUIRES(mutex_);
  void FireNotifications(std::vector<Notification>& notifications)
      ADA_EXCLUDES(mutex_);
  void UpdateGaugesLocked() const ADA_REQUIRES(mutex_);

  const SchedulerOptions options_;
  ResultCache cache_;

  mutable common::Mutex mutex_;
  common::CondVar state_changed_;  // Terminal transitions.
  common::CondVar workers_idle_;   // Worker retirement.
  /// Jobs are created at admission and never erased. The map itself is
  /// guarded; a kRunning job body is owned by the worker that dequeued
  /// it, which reads the admission-time-immutable fields (request,
  /// fingerprint) without the lock and re-acquires mutex_ for every
  /// mutation. Everyone else observes jobs via Snapshot() under the
  /// lock.
  std::map<JobId, std::unique_ptr<Job>> jobs_ ADA_GUARDED_BY(mutex_);
  std::set<PendingKey> pending_ ADA_GUARDED_BY(mutex_);
  /// Pending completion subscriptions; extracted (and erased) by
  /// FinishJob. The by-job index finds a job's subscribers without a
  /// full scan.
  struct Subscription {
    JobId job = 0;
    CompletionCallback callback;
  };
  std::map<SubscriptionId, Subscription> subscriptions_
      ADA_GUARDED_BY(mutex_);
  std::multimap<JobId, SubscriptionId> subscriptions_by_job_
      ADA_GUARDED_BY(mutex_);
  SubscriptionId next_subscription_id_ ADA_GUARDED_BY(mutex_) = 1;
  JobId next_id_ ADA_GUARDED_BY(mutex_) = 1;
  size_t active_workers_ ADA_GUARDED_BY(mutex_) = 0;
  bool paused_ ADA_GUARDED_BY(mutex_) = false;
  bool draining_ ADA_GUARDED_BY(mutex_) = false;
  SchedulerStats stats_ ADA_GUARDED_BY(mutex_);
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_SCHEDULER_H_
