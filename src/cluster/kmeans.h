// K-means clustering (Lloyd's algorithm) with random and k-means++
// initialization. The kd-tree accelerated variant cited by the paper
// (Kanungo et al. [3]) lives in cluster/filtering_kmeans.h and produces
// identical results faster.
#ifndef ADAHEALTH_CLUSTER_KMEANS_H_
#define ADAHEALTH_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "transform/matrix.h"

namespace adahealth {
namespace cluster {

/// Centroid initialization strategy.
enum class KMeansInit {
  /// k distinct data points chosen uniformly at random.
  kRandom,
  /// k-means++ seeding (D^2 weighting).
  kKMeansPlusPlus,
};

struct KMeansOptions {
  /// Number of clusters; 1 <= k <= number of points.
  int32_t k = 8;
  KMeansInit init = KMeansInit::kKMeansPlusPlus;
  /// Hard iteration cap.
  int32_t max_iterations = 100;
  /// Converged when no assignment changes in an iteration.
  uint64_t seed = 1;
};

/// Result of a clustering run.
struct Clustering {
  int32_t k = 0;
  /// Cluster index per data row, in [0, k).
  std::vector<int32_t> assignments;
  /// k x dims centroid matrix.
  transform::Matrix centroids;
  /// Sum of squared errors (total squared distance to closest centroid).
  double sse = 0.0;
  /// Lloyd iterations executed.
  int32_t iterations = 0;
  /// True if the run converged before max_iterations.
  bool converged = false;
};

/// Runs Lloyd's K-means on the rows of `data`.
/// Fails if k is out of range or data is empty. Deterministic in
/// (data, options).
[[nodiscard]] common::StatusOr<Clustering> RunKMeans(const transform::Matrix& data,
                                       const KMeansOptions& options);

// --- Building blocks shared with the accelerated variants ---------------

/// Chooses initial centroids from the rows of `data`.
transform::Matrix InitializeCentroids(const transform::Matrix& data,
                                      int32_t k, KMeansInit init,
                                      common::Rng& rng);

/// Assigns each row to its closest centroid; returns the SSE.
/// `assignments` is resized to data.rows().
double AssignToCentroids(const transform::Matrix& data,
                         const transform::Matrix& centroids,
                         std::vector<int32_t>& assignments);

/// Recomputes centroids as assignment means. Empty clusters are
/// re-seeded with the point farthest from its current centroid, which
/// guarantees k non-empty clusters when data.rows() >= k.
void RecomputeCentroids(const transform::Matrix& data,
                        const std::vector<int32_t>& assignments,
                        transform::Matrix& centroids);

/// Sizes of each cluster given `assignments` (values < k).
std::vector<int64_t> ClusterSizes(const std::vector<int32_t>& assignments,
                                  int32_t k);

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_KMEANS_H_
