#include "core/ranking.h"

#include <algorithm>

namespace adahealth {
namespace core {

using common::Status;
using common::StatusOr;

Status KnowledgeRanker::AddItems(const std::vector<KnowledgeItem>& items) {
  for (const KnowledgeItem& item : items) {
    if (item.id.empty()) {
      return common::InvalidArgumentError("knowledge item with empty id");
    }
    if (items_.contains(item.id)) {
      return common::AlreadyExistsError("duplicate knowledge item id: " +
                                        item.id);
    }
  }
  for (const KnowledgeItem& item : items) {
    Entry entry;
    entry.item = item;
    items_.emplace(item.id, std::move(entry));
  }
  return common::OkStatus();
}

Status KnowledgeRanker::RecordFeedback(const std::string& item_id,
                                       Interest interest) {
  auto it = items_.find(item_id);
  if (it == items_.end()) {
    return common::NotFoundError("unknown knowledge item: " + item_id);
  }
  Entry& entry = it->second;
  double value = InterestValue(interest);
  entry.feedback_value =
      (entry.feedback_value * static_cast<double>(entry.feedback_count) +
       value) /
      static_cast<double>(entry.feedback_count + 1);
  ++entry.feedback_count;
  entry.has_feedback = true;
  entry.item.interest = interest;

  auto& kind = kind_feedback_[entry.item.kind];
  kind.first += value;
  ++kind.second;
  auto& goal = goal_feedback_[static_cast<int32_t>(entry.item.goal)];
  goal.first += value;
  ++goal.second;
  return common::OkStatus();
}

double KnowledgeRanker::Score(const Entry& entry) const {
  double score = entry.item.quality;
  if (entry.has_feedback) {
    score = (1.0 - options_.feedback_weight) * score +
            options_.feedback_weight * entry.feedback_value;
  }
  // Kind/goal biases center on 0.5 (the neutral "medium" value) so
  // that feedback below medium demotes whole families of items.
  auto kind_it = kind_feedback_.find(entry.item.kind);
  if (kind_it != kind_feedback_.end() && kind_it->second.second > 0) {
    double mean =
        kind_it->second.first / static_cast<double>(kind_it->second.second);
    score += options_.kind_bias_weight * (mean - 0.5);
  }
  auto goal_it =
      goal_feedback_.find(static_cast<int32_t>(entry.item.goal));
  if (goal_it != goal_feedback_.end() && goal_it->second.second > 0) {
    double mean =
        goal_it->second.first / static_cast<double>(goal_it->second.second);
    score += options_.goal_bias_weight * (mean - 0.5);
  }
  return score;
}

StatusOr<double> KnowledgeRanker::ScoreOf(const std::string& item_id) const {
  auto it = items_.find(item_id);
  if (it == items_.end()) {
    return common::NotFoundError("unknown knowledge item: " + item_id);
  }
  return Score(it->second);
}

std::vector<KnowledgeItem> KnowledgeRanker::Ranked() const {
  std::vector<std::pair<double, const Entry*>> scored;
  scored.reserve(items_.size());
  for (const auto& [id, entry] : items_) {
    scored.emplace_back(Score(entry), &entry);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second->item.id < b.second->item.id;
            });
  std::vector<KnowledgeItem> ranked;
  ranked.reserve(scored.size());
  for (const auto& [score, entry] : scored) ranked.push_back(entry->item);
  return ranked;
}

}  // namespace core
}  // namespace adahealth
