# Empty dependencies file for elbow_correlations_test.
# This may be replaced when dependencies are built.
