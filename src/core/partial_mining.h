// Adaptive partial mining (paper §III "Data analytics optimization" and
// §IV "preliminary implementation of an adaptative partial mining
// strategy"): mine incrementally larger portions of the dataset and
// stop as soon as knowledge quality on the portion is within a
// tolerance of the quality on the full data.
//
// Terminology note. The paper's preliminary experiment incrementally
// adds *exam types* in decreasing frequency order, "reducing the
// cardinality of the feature space while retaining the total number of
// patients"; because each dropped exam type removes rows of the raw
// record table, the paper calls this *horizontal* (record-level)
// mining even though it is vertical with respect to the VSM. Here:
//  * RunExamSubsetPartialMining — the paper's experiment (exam-type
//    schedule, full patient set);
//  * RunPatientSubsetPartialMining — growing patient samples.
#ifndef ADAHEALTH_CORE_PARTIAL_MINING_H_
#define ADAHEALTH_CORE_PARTIAL_MINING_H_

#include <vector>

#include "cluster/kmeans.h"
#include "common/status.h"
#include "dataset/exam_log.h"
#include "transform/vsm.h"

namespace adahealth {
namespace core {

struct PartialMiningOptions {
  /// Incremental exam-type (or patient) fractions; ascending, last may
  /// be < 1.0 for the exam-subset strategy (1.0 is appended
  /// automatically as the comparison baseline).
  std::vector<double> fractions = {0.2, 0.4, 1.0};
  /// K values over which quality is compared ("regardless of the
  /// number of clusters", §IV-B).
  std::vector<int32_t> ks = {6, 8, 10, 12};
  /// Acceptance threshold on the relative overall-similarity
  /// difference (paper: "percentage difference less than 5%").
  double tolerance = 0.05;
  /// VSM used for every run.
  transform::VsmOptions vsm;
  /// Base K-means options (k is overridden per run).
  cluster::KMeansOptions kmeans;
  /// K-means restarts per (step, K); the best-SSE run is scored. More
  /// restarts reduce local-optimum noise in the quality comparison.
  int32_t restarts = 3;
};

/// One schedule step's measurements.
struct PartialMiningStep {
  /// Fraction of exam types (or patients) included.
  double fraction = 0.0;
  /// Fraction of raw records covered by this step.
  double record_coverage = 0.0;
  /// Overall similarity per candidate K (parallel to options.ks).
  std::vector<double> overall_similarity;
  /// Mean over K of |sim_step - sim_reference| / sim_reference, where
  /// the reference is the full dataset (exam-subset strategy) or the
  /// previous step (patient-subset strategy; 1.0 for the first step).
  double mean_relative_diff = 0.0;
};

struct PartialMiningResult {
  std::vector<int32_t> ks;
  std::vector<PartialMiningStep> steps;
  /// Index of the selected step: the smallest one within tolerance
  /// (falls back to the last step when none qualifies).
  size_t selected_step = 0;
};

/// The paper's §IV-B experiment: exam types are added in decreasing
/// frequency order; each subset is clustered for every K and compared
/// against the full dataset by overall similarity. Quality is always
/// evaluated on the full original VSM (subset clusterings assign the
/// same patients), so scores are comparable across subsets — this
/// yields the paper's observation that similarity decreases as exams
/// are removed.
[[nodiscard]] common::StatusOr<PartialMiningResult> RunExamSubsetPartialMining(
    const dataset::ExamLog& log, const PartialMiningOptions& options);

/// Patient-sample partial mining: nested samples of growing size; a
/// step is accepted when its quality is within tolerance of the
/// previous step's (quality has stabilized).
[[nodiscard]] common::StatusOr<PartialMiningResult> RunPatientSubsetPartialMining(
    const dataset::ExamLog& log, const PartialMiningOptions& options);

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_PARTIAL_MINING_H_
