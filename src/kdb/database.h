// The K-DB: a named set of collections plus the six-collection
// ADA-HEALTH schema from the paper (§IV-A): "(1) the original dataset,
// (2) the transformed dataset after preprocessing and data
// transformation, (3) statistical descriptors to model the data
// distribution, (4-5) interesting and selected knowledge items
// discovered through different data mining algorithms, and (6) user
// interaction feedbacks."
#ifndef ADAHEALTH_KDB_DATABASE_H_
#define ADAHEALTH_KDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "kdb/collection.h"
#include "kdb/storage.h"

namespace adahealth {
namespace kdb {

/// Canonical names of the six ADA-HEALTH collections.
struct Schema {
  static constexpr const char* kRawDatasets = "raw_datasets";
  static constexpr const char* kTransformedDatasets =
      "transformed_datasets";
  static constexpr const char* kDescriptors = "descriptors";
  static constexpr const char* kKnowledgeItems = "knowledge_items";
  static constexpr const char* kSelectedKnowledge = "selected_knowledge";
  static constexpr const char* kFeedback = "feedback";

  /// All six names in schema order.
  static std::vector<std::string> CollectionNames();
};

/// An in-process database of named collections with directory
/// persistence. Collection pointers remain valid for the lifetime of
/// the Database.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the collection, creating it if absent.
  Collection& GetOrCreate(const std::string& name);

  /// Returns the collection or NOT_FOUND.
  [[nodiscard]] common::StatusOr<Collection*> Get(const std::string& name);

  bool Has(const std::string& name) const {
    return collections_.contains(name);
  }

  std::vector<std::string> CollectionNames() const;

  /// Creates all six ADA-HEALTH collections (idempotent) and the
  /// default indexes (dataset_id on every derived collection).
  void EnsureAdaHealthSchema();

  /// Knobs for SaveTo/LoadFrom.
  struct PersistOptions {
    /// Per-collection I/O retry (transient UNAVAILABLE/DEADLINE_EXCEEDED
    /// failures are re-attempted with deterministic backoff).
    common::RetryPolicy retry;
    /// LoadFrom only: recover the valid prefix of a torn collection
    /// file (counted in "storage_salvaged_lines") instead of failing.
    bool salvage = false;
  };

  /// Persists every collection to `<directory>/<name>.jsonl`
  /// atomically (see kdb/storage.h). Verifies up front that the
  /// directory exists and is writable, returning UNAVAILABLE naming
  /// the path, so a bad target cannot fail midway through the
  /// collection set.
  [[nodiscard]] common::Status SaveTo(const std::string& directory) const {
    return SaveTo(directory, PersistOptions());
  }
  [[nodiscard]] common::Status SaveTo(const std::string& directory,
                                      const PersistOptions& options) const;

  /// Loads every `names` collection from the directory, replacing any
  /// in-memory collections of the same name. The directory is checked
  /// up front (UNAVAILABLE with the path when missing).
  [[nodiscard]] common::Status LoadFrom(const std::string& directory,
                          const std::vector<std::string>& names) {
    return LoadFrom(directory, names, PersistOptions());
  }
  [[nodiscard]] common::Status LoadFrom(const std::string& directory,
                                        const std::vector<std::string>& names,
                                        const PersistOptions& options);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_DATABASE_H_
