#include "kdb/storage.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace adahealth {
namespace kdb {

using common::Status;
using common::StatusOr;

std::string SerializeCollection(const Collection& collection) {
  std::string out;
  for (const Document& document : collection.documents()) {
    out += document.Dump();
    out.push_back('\n');
  }
  return out;
}

StatusOr<Collection> DeserializeCollection(const std::string& name,
                                           const std::string& text) {
  Collection collection(name);
  size_t line_number = 0;
  for (const std::string& line : common::Split(text, '\n')) {
    ++line_number;
    std::string_view trimmed = common::Trim(line);
    if (trimmed.empty()) continue;
    auto document = Document::Parse(trimmed);
    if (!document.ok()) {
      return common::DataLossError(
          "collection '" + name + "' line " + std::to_string(line_number) +
          ": " + document.status().message());
    }
    Status restored = collection.Restore(std::move(document).value());
    if (!restored.ok()) return restored;
  }
  return collection;
}

Status SaveCollection(const Collection& collection,
                      const std::string& directory) {
  return common::WriteStringToFile(
      directory + "/" + collection.name() + ".jsonl",
      SerializeCollection(collection));
}

StatusOr<Collection> LoadCollection(const std::string& name,
                                    const std::string& directory) {
  auto text = common::ReadFileToString(directory + "/" + name + ".jsonl");
  if (!text.ok()) return text.status();
  return DeserializeCollection(name, text.value());
}

}  // namespace kdb
}  // namespace adahealth
