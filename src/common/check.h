// Invariant-checking macros. ADA_CHECK* fire in all build modes; they
// guard programmer errors (violated preconditions), not recoverable
// runtime failures, which use common/status.h instead.
#ifndef ADAHEALTH_COMMON_CHECK_H_
#define ADAHEALTH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic if `condition` is false.
#define ADA_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "%s:%d: ADA_CHECK failed: %s\n", __FILE__,     \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Aborts with a diagnostic and a printf-style message if false.
#define ADA_CHECK_MSG(condition, ...)                                     \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "%s:%d: ADA_CHECK failed: %s: ", __FILE__,     \
                   __LINE__, #condition);                                 \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define ADA_CHECK_EQ(a, b) ADA_CHECK((a) == (b))
#define ADA_CHECK_NE(a, b) ADA_CHECK((a) != (b))
#define ADA_CHECK_LT(a, b) ADA_CHECK((a) < (b))
#define ADA_CHECK_LE(a, b) ADA_CHECK((a) <= (b))
#define ADA_CHECK_GT(a, b) ADA_CHECK((a) > (b))
#define ADA_CHECK_GE(a, b) ADA_CHECK((a) >= (b))

/// Checks that a Status/StatusOr expression is OK.
#define ADA_CHECK_OK(expr) ADA_CHECK((expr).ok())

#endif  // ADAHEALTH_COMMON_CHECK_H_
