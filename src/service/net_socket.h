// RAII POSIX socket wrappers for the NDJSON protocol server.
//
// This is the only layer of the tree allowed to call the raw fd
// syscalls (socket/accept/close — enforced by the ada_lint `raw-socket`
// rule): everything above holds fds through the move-only
// FileDescriptor owner, so no error path can leak or double-close one.
//
// The server binds the IPv4 loopback only: the analysis service is an
// in-host component (an analyst tool or a sidecar), not an
// internet-facing endpoint.
//
// Failpoints: "service.net.accept", "service.net.read",
// "service.net.write" — injected at every socket I/O boundary.
#ifndef ADAHEALTH_SERVICE_NET_SOCKET_H_
#define ADAHEALTH_SERVICE_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace adahealth {
namespace service {

/// Move-only owner of one POSIX file descriptor; closes on
/// destruction.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor();

  FileDescriptor(FileDescriptor&& other) noexcept;
  FileDescriptor& operator=(FileDescriptor&& other) noexcept;
  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int get() const { return fd_; }

  /// Closes now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.
class ServerSocket {
 public:
  ServerSocket() = default;

  /// Binds and listens on loopback `port` (0 = kernel-assigned
  /// ephemeral port, reported by port()). UNAVAILABLE on any syscall
  /// failure (e.g. the port is taken).
  [[nodiscard]] static common::StatusOr<ServerSocket> Listen(
      uint16_t port, int backlog = 16);

  /// Blocks for one connection. UNAVAILABLE once the socket has been
  /// shut down (the accept loop's exit signal) or on accept failure.
  [[nodiscard]] common::StatusOr<FileDescriptor> Accept() const;

  /// Unblocks any in-flight Accept() from another thread without
  /// releasing the fd (close happens at destruction, so the fd number
  /// cannot be reused while a racing accept still references it).
  void Shutdown() const;

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }

 private:
  FileDescriptor fd_;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`. UNAVAILABLE when nothing listens.
[[nodiscard]] common::StatusOr<FileDescriptor> ConnectLoopback(uint16_t port);

/// Half-closes both directions of a connected socket from another
/// thread: a peer blocked in recv on `fd` wakes with end-of-stream.
/// Like ServerSocket::Shutdown, the fd itself stays owned and open.
void ShutdownConnection(const FileDescriptor& fd);

/// Writes all of `data`, resuming partial writes. UNAVAILABLE on a
/// closed peer or I/O error.
[[nodiscard]] common::Status SendAll(const FileDescriptor& fd,
                                     std::string_view data);

/// Buffered newline-delimited reader over one connection.
class LineReader {
 public:
  explicit LineReader(const FileDescriptor& fd) : fd_(&fd) {}

  /// Returns the next line without its trailing '\n'. OUT_OF_RANGE on
  /// clean end-of-stream, UNAVAILABLE on I/O errors.
  [[nodiscard]] common::StatusOr<std::string> ReadLine();

 private:
  const FileDescriptor* fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_NET_SOCKET_H_
