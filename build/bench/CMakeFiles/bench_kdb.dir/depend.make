# Empty dependencies file for bench_kdb.
# This may be replaced when dependencies are built.
