file(REMOVE_RECURSE
  "CMakeFiles/endgoal_test.dir/endgoal_test.cc.o"
  "CMakeFiles/endgoal_test.dir/endgoal_test.cc.o.d"
  "endgoal_test"
  "endgoal_test.pdb"
  "endgoal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endgoal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
