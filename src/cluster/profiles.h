// Cluster profiling: turns a clustering of the patient VSM into
// human-readable group descriptions — size, cohesion, and the exams
// that characterize each group both in absolute weight and in *lift*
// over the cohort mean (the latter surfaces the specialized exams that
// distinguish a group even when routine panels dominate everywhere).
#ifndef ADAHEALTH_CLUSTER_PROFILES_H_
#define ADAHEALTH_CLUSTER_PROFILES_H_

#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "common/status.h"
#include "dataset/exam_log.h"
#include "transform/matrix.h"

namespace adahealth {
namespace cluster {

/// One characterizing exam of a cluster.
struct SignatureExam {
  dataset::ExamTypeId exam = 0;
  /// Mean VSM weight of the exam within the cluster.
  double cluster_mean = 0.0;
  /// Mean VSM weight over the whole cohort.
  double global_mean = 0.0;
  /// cluster_mean / global_mean; > 1 marks over-represented exams.
  /// 0 when the exam is globally absent.
  double lift = 0.0;
};

/// Profile of one cluster.
struct ClusterProfile {
  int32_t cluster = 0;
  int64_t size = 0;
  /// Cosine cohesion of the cluster (||mean of normalized members||^2).
  double cohesion = 0.0;
  /// Exams sorted by descending cluster mean weight (top `top_k`).
  std::vector<SignatureExam> top_by_weight;
  /// Exams sorted by descending lift, among exams with non-trivial
  /// cluster presence (top `top_k`).
  std::vector<SignatureExam> top_by_lift;
};

/// Builds per-cluster profiles from a clustering of `vsm` rows.
/// Requires vsm row/col dims to match the clustering and `log`.
[[nodiscard]] common::StatusOr<std::vector<ClusterProfile>> BuildClusterProfiles(
    const dataset::ExamLog& log, const transform::Matrix& vsm,
    const Clustering& clustering, size_t top_k = 5);

/// One-line rendering, e.g.
/// "group 2: 456 patients, cohesion 0.31, distinctive: fundus_exam
///  (x4.1), retina_scan (x3.2)".
std::string FormatClusterProfile(const ClusterProfile& profile,
                                 const dataset::ExamLog& log);

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_PROFILES_H_
