// In-process cluster coverage for the sharding router: consistent-hash
// placement, global↔local job-id rewriting, cross-shard stats
// aggregation, and the failover invariant — when a shard primary dies
// mid-conversation the follower is promoted, jobs are re-driven, every
// job completes exactly once, and reports stay byte-identical to a
// direct AnalysisSession run.
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "common/check.h"
#include "common/json.h"
#include "common/status.h"
#include "core/report.h"
#include "core/session.h"
#include "kdb/database.h"
#include "service/client.h"
#include "service/router.h"
#include "service/server.h"

namespace adahealth {
namespace {

using common::Json;
using common::StatusCode;

/// The same small fast synthetic submit body the server tests use.
Json::Object SubmitBody(int64_t seed, const std::string& dataset_id) {
  Json::Object synthetic;
  synthetic["patients"] = static_cast<int64_t>(100);
  synthetic["exam_types"] = static_cast<int64_t>(20);
  synthetic["profiles"] = static_cast<int64_t>(3);
  synthetic["seed"] = seed;
  Json::Object options;
  options["sample_fraction"] = 0.4;
  options["candidate_ks"] = Json(Json::Array{Json(3), Json(4)});
  options["cv_folds"] = static_cast<int64_t>(4);
  options["restarts"] = static_cast<int64_t>(1);
  Json::Object body;
  body["verb"] = "submit";
  body["synthetic"] = Json(std::move(synthetic));
  body["dataset_id"] = dataset_id;
  body["options"] = Json(std::move(options));
  return body;
}

Json::Object ResultRequest(int64_t job_id) {
  Json::Object request;
  request["verb"] = "result";
  request["job_id"] = job_id;
  request["wait_millis"] = 60000.0;
  return request;
}

std::unique_ptr<service::AnalysisServer> StartShardServer(
    service::ServerRole role, uint16_t replicate_to_port = 0) {
  service::ServerOptions options;
  options.role = role;
  options.replicate_to_port = replicate_to_port;
  options.scheduler.max_workers = 2;
  auto server = std::make_unique<service::AnalysisServer>(std::move(options));
  ADA_CHECK(server->Start().ok());
  return server;
}

/// Router options with the prober effectively disabled so tests drive
/// failover deterministically through forwarding failures.
service::RouterOptions QuietRouterOptions() {
  service::RouterOptions options;
  options.probe_interval_millis = 60000.0;
  return options;
}

service::AnalysisClient Connect(uint16_t port) {
  auto client = service::AnalysisClient::Connect(port);
  ADA_CHECK(client.ok());
  return std::move(client).value();
}

TEST(RouterTest, StartRequiresAtLeastOneShard) {
  service::Router router(service::RouterOptions{});
  EXPECT_EQ(router.Start().code(), StatusCode::kInvalidArgument);
}

TEST(RouterTest, ShardPlacementIsDeterministicAndSpreads) {
  // Placement consults only the ring, never the shards, so the
  // configured ports do not need live servers behind them.
  service::RouterOptions options = QuietRouterOptions();
  for (uint16_t port : {9901, 9902, 9903, 9904}) {
    options.shards.push_back(service::ShardEndpoints{port, 0});
  }
  service::Router router(std::move(options));
  ASSERT_TRUE(router.Start().ok());

  std::set<size_t> used;
  for (int i = 0; i < 32; ++i) {
    std::string fingerprint = "fingerprint-" + std::to_string(i);
    size_t shard = router.ShardFor(fingerprint);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(router.ShardFor(fingerprint), shard);  // Stable.
    used.insert(shard);
  }
  // 32 distinct keys across 4 shards × 64 vnodes: a single-shard
  // pile-up would mean the ring is broken, not unlucky.
  EXPECT_GT(used.size(), 1u);
  router.Stop();
}

TEST(RouterTest, RoutesJobsRewritesIdsAndAggregatesStats) {
  auto shard0 = StartShardServer(service::ServerRole::kPrimary);
  auto shard1 = StartShardServer(service::ServerRole::kPrimary);
  service::RouterOptions options = QuietRouterOptions();
  options.shards.push_back(service::ShardEndpoints{shard0->port(), 0});
  options.shards.push_back(service::ShardEndpoints{shard1->port(), 0});
  service::Router router(std::move(options));
  ASSERT_TRUE(router.Start().ok());

  auto client = Connect(router.port());
  auto ping = client.Call("ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->Find("service")->AsString(), "ada-health-router");

  // Two distinct jobs: global ids are allocated by the router in
  // submission order regardless of which shard ran them.
  auto first = client.Call(SubmitBody(21, "routed"));
  ASSERT_TRUE(first.ok());
  auto second = client.Call(SubmitBody(22, "routed"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Find("job_id")->AsInt(), 1);
  EXPECT_EQ(second->Find("job_id")->AsInt(), 2);

  auto first_result = client.Call(ResultRequest(1));
  ASSERT_TRUE(first_result.ok());
  EXPECT_EQ(first_result->Find("state")->AsString(), "done");
  auto second_result = client.Call(ResultRequest(2));
  ASSERT_TRUE(second_result.ok());
  EXPECT_EQ(second_result->Find("state")->AsString(), "done");
  EXPECT_NE(first_result->Find("report")->AsString(),
            second_result->Find("report")->AsString());

  // The repeat of job 1 hashes to the same shard and hits its cache.
  auto repeat = client.Call(SubmitBody(21, "routed"));
  ASSERT_TRUE(repeat.ok());
  auto repeat_result = client.Call(ResultRequest(repeat->Find("job_id")->AsInt()));
  ASSERT_TRUE(repeat_result.ok());
  EXPECT_TRUE(repeat_result->Find("cache_hit")->AsBool());
  EXPECT_EQ(repeat_result->Find("report")->AsString(),
            first_result->Find("report")->AsString());

  // Cross-shard aggregation: the totals roll-up must agree with the
  // cluster-wide ground truth (2 unique sessions, 1 cache hit).
  auto stats = client.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("totals")->Find("sessions_executed")->AsInt(), 2);
  EXPECT_EQ(stats->Find("totals")->Find("cache")->Find("hits")->AsInt(), 1);
  EXPECT_EQ(stats->Find("router")->Find("submitted")->AsInt(), 3);
  EXPECT_EQ(stats->Find("router")->Find("completed")->AsInt(), 3);
  EXPECT_EQ(stats->Find("shards")->AsArray().size(), 2u);

  service::RouterStats router_stats = router.stats();
  EXPECT_EQ(router_stats.submitted, 3);
  EXPECT_EQ(router_stats.failovers, 0);
  router.Stop();
  shard0->Stop();
  shard1->Stop();
}

TEST(RouterTest, FailoverServesReplicatedResultExactlyOnce) {
  auto follower = StartShardServer(service::ServerRole::kFollower);
  auto primary =
      StartShardServer(service::ServerRole::kPrimary, follower->port());
  service::RouterOptions options = QuietRouterOptions();
  options.shards.push_back(
      service::ShardEndpoints{primary->port(), follower->port()});
  service::Router router(std::move(options));
  ASSERT_TRUE(router.Start().ok());

  auto client = Connect(router.port());
  auto submitted = client.Call(SubmitBody(23, "failover"));
  ASSERT_TRUE(submitted.ok());
  int64_t job_id = submitted->Find("job_id")->AsInt();
  auto before = client.Call(ResultRequest(job_id));
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->Find("state")->AsString(), "done");
  EXPECT_FALSE(before->Find("cache_hit")->AsBool());

  // Make sure the committed result reached the follower, then kill
  // the primary. The next forward hits a refused connect, which runs
  // the verified-failover path inline.
  ASSERT_NE(primary->shipper(), nullptr);
  ASSERT_TRUE(primary->shipper()->WaitUntilDrained(10000.0));
  primary->Stop();

  auto after = client.Call(ResultRequest(job_id));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Find("state")->AsString(), "done");
  // Exactly-once: the re-driven job is answered from the replicated
  // cache, not a second session run...
  EXPECT_TRUE(after->Find("cache_hit")->AsBool());
  EXPECT_EQ(follower->scheduler().stats().sessions_executed, 0);
  // ...and the report is byte-identical to the pre-failover one.
  EXPECT_EQ(after->Find("report")->AsString(),
            before->Find("report")->AsString());

  service::RouterStats stats = router.stats();
  EXPECT_EQ(stats.failovers, 1);
  EXPECT_EQ(stats.redriven, 1);
  EXPECT_EQ(stats.completed, 1);

  // The promoted follower accepts fresh work under the same shard.
  auto fresh = client.Call(SubmitBody(24, "failover"));
  ASSERT_TRUE(fresh.ok());
  auto fresh_result =
      client.Call(ResultRequest(fresh->Find("job_id")->AsInt()));
  ASSERT_TRUE(fresh_result.ok());
  EXPECT_EQ(fresh_result->Find("state")->AsString(), "done");

  auto health = client.Call("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->Find("role")->AsString(), "router");
  EXPECT_EQ(health->Find("failovers")->AsInt(), 1);
  const Json& shard_entry = health->Find("shards")->AsArray().at(0);
  EXPECT_TRUE(shard_entry.Find("using_follower")->AsBool());
  EXPECT_TRUE(shard_entry.Find("alive")->AsBool());
  EXPECT_EQ(shard_entry.Find("active_port")->AsInt(),
            static_cast<int64_t>(follower->port()));

  router.Stop();
  follower->Stop();
}

TEST(RouterTest, FailoverReportMatchesDirectSessionRun) {
  // The acceptance bar: a report served through submit → replicate →
  // promote → re-drive must be byte-identical to running the session
  // directly on the same request.
  auto follower = StartShardServer(service::ServerRole::kFollower);
  auto primary =
      StartShardServer(service::ServerRole::kPrimary, follower->port());
  service::RouterOptions options = QuietRouterOptions();
  options.shards.push_back(
      service::ShardEndpoints{primary->port(), follower->port()});
  service::Router router(std::move(options));
  ASSERT_TRUE(router.Start().ok());

  Json::Object body = SubmitBody(25, "ground-truth");
  auto direct_request = service::BuildJobRequest(Json(Json::Object(body)));
  ASSERT_TRUE(direct_request.ok());
  kdb::Database db;
  core::AnalysisSession session(&db);
  const dataset::Taxonomy* taxonomy = direct_request->taxonomy.has_value()
                                          ? &*direct_request->taxonomy
                                          : nullptr;
  auto direct = session.Run(direct_request->log, taxonomy,
                            direct_request->options);
  ASSERT_TRUE(direct.ok());
  std::string direct_report = core::RenderSessionReport(
      direct.value(), direct_request->options.dataset_id);

  auto client = Connect(router.port());
  auto submitted = client.Call(body);
  ASSERT_TRUE(submitted.ok());
  int64_t job_id = submitted->Find("job_id")->AsInt();
  auto before = client.Call(ResultRequest(job_id));
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->Find("state")->AsString(), "done");
  EXPECT_EQ(before->Find("report")->AsString(), direct_report);

  ASSERT_TRUE(primary->shipper()->WaitUntilDrained(10000.0));
  primary->Stop();
  auto after = client.Call(ResultRequest(job_id));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Find("report")->AsString(), direct_report);

  router.Stop();
  follower->Stop();
}

TEST(RouterTest, ShardWithoutFollowerDiesAndRingAbsorbsNewWork) {
  auto shard0 = StartShardServer(service::ServerRole::kPrimary);
  auto shard1 = StartShardServer(service::ServerRole::kPrimary);
  service::RouterOptions options = QuietRouterOptions();
  options.shards.push_back(service::ShardEndpoints{shard0->port(), 0});
  options.shards.push_back(service::ShardEndpoints{shard1->port(), 0});
  service::Router router(std::move(options));
  ASSERT_TRUE(router.Start().ok());

  auto client = Connect(router.port());
  auto submitted = client.Call(SubmitBody(26, "no-replica"));
  ASSERT_TRUE(submitted.ok());
  int64_t job_id = submitted->Find("job_id")->AsInt();
  ASSERT_TRUE(client.Call(ResultRequest(job_id)).ok());

  // Kill the shard that owns the job. It has no follower, so the
  // failure path marks the shard dead instead of promoting.
  size_t owner = router.ShardFor(submitted->Find("fingerprint")->AsString());
  (owner == 0 ? shard0 : shard1)->Stop();

  auto status_request = ResultRequest(job_id);
  status_request["verb"] = "status";
  status_request.erase("wait_millis");
  auto lost = client.Call(status_request);
  EXPECT_EQ(lost.status().code(), StatusCode::kUnavailable);

  // New submits ride the ring past the dead shard to the survivor.
  auto fresh = client.Call(SubmitBody(27, "no-replica"));
  ASSERT_TRUE(fresh.ok());
  auto fresh_result =
      client.Call(ResultRequest(fresh->Find("job_id")->AsInt()));
  ASSERT_TRUE(fresh_result.ok());
  EXPECT_EQ(fresh_result->Find("state")->AsString(), "done");

  EXPECT_EQ(router.stats().dead_shards, 1);
  router.Stop();
  shard0->Stop();
  shard1->Stop();
}

TEST(RouterTest, CohortIngestAndSubmitPinToTheOwningShard) {
  // Streaming cohorts route on the cohort *name* ("cohort/<name>"), not
  // the dataset fingerprint: every ingest batch and every delta submit
  // must land on the one shard that holds the accumulated records.
  auto shard0 = StartShardServer(service::ServerRole::kPrimary);
  auto shard1 = StartShardServer(service::ServerRole::kPrimary);
  service::RouterOptions options = QuietRouterOptions();
  options.shards.push_back(service::ShardEndpoints{shard0->port(), 0});
  options.shards.push_back(service::ShardEndpoints{shard1->port(), 0});
  service::Router router(std::move(options));
  ASSERT_TRUE(router.Start().ok());

  // The routing key is the cohort name on the same ring fingerprints
  // use, so placement is deterministic before any traffic flows.
  const size_t owner = router.ShardFor("cohort/pinned");
  ASSERT_LT(owner, 2u);
  EXPECT_EQ(router.ShardFor("cohort/pinned"), owner);

  auto make_batch = [](int first_patient, int count) {
    Json::Array records;
    for (int i = 0; i < count; ++i) {
      Json::Object record;
      record["patient"] = static_cast<int64_t>(first_patient + i);
      record["exam_type"] = "exam-" + std::to_string(i % 4);
      record["day"] = static_cast<int64_t>(i % 30);
      records.push_back(Json(std::move(record)));
    }
    Json::Object body;
    body["verb"] = "ingest";
    body["cohort"] = "pinned";
    body["records"] = Json(std::move(records));
    return body;
  };

  auto client = Connect(router.port());
  auto first = client.Call(make_batch(0, 40));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Find("generation")->AsInt(), 1);
  auto second = client.Call(make_batch(40, 40));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->Find("generation")->AsInt(), 2);
  EXPECT_EQ(second->Find("total_records")->AsInt(), 80);

  // Both batches accumulated on the owning shard; the other shard
  // never heard of the cohort.
  service::AnalysisServer& owning = owner == 0 ? *shard0 : *shard1;
  service::AnalysisServer& other = owner == 0 ? *shard1 : *shard0;
  EXPECT_EQ(owning.cohort_store().num_cohorts(), 1u);
  EXPECT_EQ(other.cohort_store().num_cohorts(), 0u);

  // The delta submit follows the same key to where the data lives, and
  // its fingerprint is versioned with the snapshot generation.
  Json::Object submit;
  submit["verb"] = "submit";
  submit["cohort"] = "pinned";
  Json::Object job_options;
  job_options["candidate_ks"] = Json(Json::Array{Json(3), Json(4)});
  job_options["cv_folds"] = static_cast<int64_t>(4);
  job_options["restarts"] = static_cast<int64_t>(1);
  submit["options"] = Json(std::move(job_options));
  auto submitted = client.Call(submit);
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(
      submitted->Find("fingerprint")->AsString().rfind("pinned@2/", 0), 0u);

  auto result = client.Call(ResultRequest(submitted->Find("job_id")->AsInt()));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("state")->AsString(), "done");
  EXPECT_EQ(owning.scheduler().stats().sessions_executed, 1);
  EXPECT_EQ(other.scheduler().stats().sessions_executed, 0);

  router.Stop();
  shard0->Stop();
  shard1->Stop();
}

TEST(RouterTest, ClusterInternalVerbsRejectedAtTheFrontDoor) {
  auto shard = StartShardServer(service::ServerRole::kPrimary);
  service::RouterOptions options = QuietRouterOptions();
  options.shards.push_back(service::ShardEndpoints{shard->port(), 0});
  service::Router router(std::move(options));
  ASSERT_TRUE(router.Start().ok());

  auto client = Connect(router.port());
  EXPECT_EQ(client.Call("promote").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Call("replicate").status().code(),
            StatusCode::kInvalidArgument);
  router.Stop();
  shard->Stop();
}

}  // namespace
}  // namespace adahealth
