# Empty dependencies file for example_diabetes_clustering.
# This may be replaced when dependencies are built.
