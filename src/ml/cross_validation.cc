#include "ml/cross_validation.h"

#include <algorithm>

#include "common/metrics.h"

namespace adahealth {
namespace ml {

using common::StatusOr;
using transform::Matrix;

StatusOr<std::vector<Fold>> StratifiedKFold(
    const std::vector<int32_t>& labels, int32_t num_classes,
    int32_t num_folds, uint64_t seed) {
  if (num_folds < 2) {
    return common::InvalidArgumentError("num_folds must be >= 2");
  }
  if (static_cast<size_t>(num_folds) > labels.size()) {
    return common::InvalidArgumentError("num_folds exceeds sample count");
  }
  if (num_classes < 1) {
    return common::InvalidArgumentError("num_classes must be >= 1");
  }

  // Bucket sample ids per class, shuffle each bucket, deal round-robin.
  std::vector<std::vector<size_t>> by_class(
      static_cast<size_t>(num_classes));
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes) {
      return common::InvalidArgumentError("label outside [0, num_classes)");
    }
    by_class[static_cast<size_t>(labels[i])].push_back(i);
  }
  // Stratification is degenerate when a present class has fewer members
  // than folds: it cannot appear in every fold's test set, so the
  // per-fold class proportions the estimate relies on are unattainable.
  for (const auto& bucket : by_class) {
    if (!bucket.empty() && bucket.size() < static_cast<size_t>(num_folds)) {
      return common::InvalidArgumentError(
          "degenerate fold (class with " + std::to_string(bucket.size()) +
          " members cannot be stratified into " +
          std::to_string(num_folds) + " folds)");
    }
  }
  common::Rng rng(seed);
  std::vector<std::vector<size_t>> fold_members(
      static_cast<size_t>(num_folds));
  size_t deal = 0;
  for (auto& bucket : by_class) {
    rng.Shuffle(bucket);
    for (size_t id : bucket) {
      fold_members[deal % static_cast<size_t>(num_folds)].push_back(id);
      ++deal;
    }
  }

  std::vector<Fold> folds(static_cast<size_t>(num_folds));
  for (size_t f = 0; f < folds.size(); ++f) {
    folds[f].test_ids = fold_members[f];
    std::sort(folds[f].test_ids.begin(), folds[f].test_ids.end());
    for (size_t other = 0; other < folds.size(); ++other) {
      if (other == f) continue;
      folds[f].train_ids.insert(folds[f].train_ids.end(),
                                fold_members[other].begin(),
                                fold_members[other].end());
    }
    std::sort(folds[f].train_ids.begin(), folds[f].train_ids.end());
    if (folds[f].test_ids.empty() || folds[f].train_ids.empty()) {
      return common::InvalidArgumentError(
          "degenerate fold (too many folds for the sample size)");
    }
  }
  return folds;
}

StatusOr<ClassificationReport> CrossValidate(
    const Matrix& features, const std::vector<int32_t>& labels,
    int32_t num_classes, int32_t num_folds, uint64_t seed,
    const ClassifierFactory& factory) {
  if (labels.size() != features.rows()) {
    return common::InvalidArgumentError("label count != sample count");
  }
  auto folds_or = StratifiedKFold(labels, num_classes, num_folds, seed);
  if (!folds_or.ok()) return folds_or.status();

  std::vector<int32_t> pooled_truth;
  std::vector<int32_t> pooled_predicted;
  pooled_truth.reserve(labels.size());
  pooled_predicted.reserve(labels.size());

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  for (const Fold& fold : folds_or.value()) {
    Matrix train = features.SelectRows(fold.train_ids);
    std::vector<int32_t> train_labels(fold.train_ids.size());
    for (size_t i = 0; i < fold.train_ids.size(); ++i) {
      train_labels[i] = labels[fold.train_ids[i]];
    }
    std::unique_ptr<Classifier> model = factory();
    common::Status fit_status;
    {
      common::ScopedTimer fit_timer(metrics, "cv/fold_fit_seconds");
      fit_status = model->Fit(train, train_labels, num_classes);
    }
    if (!fit_status.ok()) return fit_status;
    common::ScopedTimer predict_timer(metrics, "cv/fold_predict_seconds");
    for (size_t id : fold.test_ids) {
      pooled_truth.push_back(labels[id]);
      pooled_predicted.push_back(model->Predict(features.Row(id)));
    }
    predict_timer.Stop();
    metrics.GetCounter("cv/folds").Increment();
  }
  return EvaluateClassification(pooled_truth, pooled_predicted, num_classes);
}

}  // namespace ml
}  // namespace adahealth
