#include "service/result_cache.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "kdb/database.h"

namespace adahealth {
namespace service {

using common::Json;
using common::Status;
using common::StatusOr;

namespace {
constexpr const char* kCacheCollection = "result_cache";
}  // namespace

size_t CachedAnalysis::ByteSize() const {
  return sizeof(CachedAnalysis) + fingerprint.size() + dataset_id.size() +
         summary.size() + report.size() + cohort.size();
}

Json CachedAnalysis::ToJson() const {
  Json::Object object;
  object["fingerprint"] = Json(fingerprint);
  object["dataset_id"] = Json(dataset_id);
  object["summary"] = Json(summary);
  object["report"] = Json(report);
  object["knowledge_items"] = Json(knowledge_items);
  if (!cohort.empty()) {
    object["cohort"] = Json(cohort);
    object["generation"] = Json(generation);
  }
  return Json(std::move(object));
}

StatusOr<CachedAnalysis> CachedAnalysis::FromJson(const Json& json) {
  if (!json.is_object()) {
    return common::InvalidArgumentError(
        "cached analysis must be a JSON object");
  }
  CachedAnalysis entry;
  const Json* fingerprint = json.Find("fingerprint");
  if (fingerprint == nullptr || !fingerprint->is_string() ||
      fingerprint->AsString().empty()) {
    return common::InvalidArgumentError(
        "cached analysis is missing its fingerprint");
  }
  entry.fingerprint = fingerprint->AsString();
  if (const Json* field = json.Find("dataset_id");
      field != nullptr && field->is_string()) {
    entry.dataset_id = field->AsString();
  }
  if (const Json* field = json.Find("summary");
      field != nullptr && field->is_string()) {
    entry.summary = field->AsString();
  }
  if (const Json* field = json.Find("report");
      field != nullptr && field->is_string()) {
    entry.report = field->AsString();
  }
  if (const Json* field = json.Find("knowledge_items");
      field != nullptr && field->is_int()) {
    entry.knowledge_items = field->AsInt();
  }
  // Tolerant: entries persisted before cohort versioning have neither
  // field and restore as unversioned.
  if (const Json* field = json.Find("cohort");
      field != nullptr && field->is_string()) {
    entry.cohort = field->AsString();
  }
  if (const Json* field = json.Find("generation");
      field != nullptr && field->is_int()) {
    entry.generation = field->AsInt();
  }
  return entry;
}

ResultCache::ResultCache(size_t max_bytes) : max_bytes_(max_bytes) {}

std::optional<CachedAnalysis> ResultCache::Lookup(
    const std::string& fingerprint) {
  common::MutexLock lock(&mutex_);
  auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++misses_;
    common::MetricsRegistry::Default()
        .GetCounter("service/cache_misses")
        .Increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  common::MetricsRegistry::Default()
      .GetCounter("service/cache_hits")
      .Increment();
  return *it->second;
}

void ResultCache::Insert(CachedAnalysis entry) {
  if (entry.fingerprint.empty()) return;
  common::MutexLock lock(&mutex_);
  auto it = index_.find(entry.fingerprint);
  if (it != index_.end()) {
    bytes_ -= it->second->ByteSize();
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (!entry.cohort.empty()) {
    // One consistent snapshot per cohort: drop every older cached
    // generation, and drop the entry itself when a newer one already
    // arrived (replication replay may deliver generations out of
    // order). Same-generation re-inserts refresh normally.
    bool stale = false;
    for (auto victim = lru_.begin(); victim != lru_.end();) {
      if (victim->cohort != entry.cohort) {
        ++victim;
        continue;
      }
      if (victim->generation > entry.generation) {
        stale = true;
        ++victim;
        continue;
      }
      if (victim->generation == entry.generation) {
        ++victim;
        continue;
      }
      bytes_ -= victim->ByteSize();
      index_.erase(victim->fingerprint);
      victim = lru_.erase(victim);
      ++superseded_;
      common::MetricsRegistry::Default()
          .GetCounter("service/cache_superseded")
          .Increment();
    }
    if (stale) {
      ++superseded_;
      common::MetricsRegistry::Default()
          .GetCounter("service/cache_superseded")
          .Increment();
      TouchMetricsLocked();
      return;
    }
  }
  size_t entry_bytes = entry.ByteSize();
  if (entry_bytes > max_bytes_) {
    TouchMetricsLocked();
    return;  // Larger than the whole budget: never cacheable.
  }
  lru_.push_front(std::move(entry));
  index_[lru_.front().fingerprint] = lru_.begin();
  bytes_ += entry_bytes;
  ++dirty_;
  EvictLocked();
  TouchMetricsLocked();
}

void ResultCache::Clear() {
  common::MutexLock lock(&mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  TouchMetricsLocked();
}

size_t ResultCache::entries() const {
  common::MutexLock lock(&mutex_);
  return lru_.size();
}

size_t ResultCache::bytes() const {
  common::MutexLock lock(&mutex_);
  return bytes_;
}

int64_t ResultCache::hits() const {
  common::MutexLock lock(&mutex_);
  return hits_;
}

int64_t ResultCache::misses() const {
  common::MutexLock lock(&mutex_);
  return misses_;
}

int64_t ResultCache::evictions() const {
  common::MutexLock lock(&mutex_);
  return evictions_;
}

int64_t ResultCache::superseded() const {
  common::MutexLock lock(&mutex_);
  return superseded_;
}

size_t ResultCache::dirty_entries() const {
  common::MutexLock lock(&mutex_);
  return dirty_;
}

std::vector<CachedAnalysis> ResultCache::Entries() const {
  common::MutexLock lock(&mutex_);
  return std::vector<CachedAnalysis>(lru_.begin(), lru_.end());
}

void ResultCache::EvictLocked() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const CachedAnalysis& victim = lru_.back();
    bytes_ -= victim.ByteSize();
    index_.erase(victim.fingerprint);
    lru_.pop_back();
    ++evictions_;
    common::MetricsRegistry::Default()
        .GetCounter("service/cache_evictions")
        .Increment();
  }
}

void ResultCache::TouchMetricsLocked() {
  common::MetricsRegistry::Default()
      .GetGauge("service/cache_bytes")
      .Set(static_cast<double>(bytes_));
}

Status ResultCache::Persist(const std::string& directory) const {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.cache.store"));
  kdb::Database db;
  kdb::Collection& collection = db.GetOrCreate(kCacheCollection);
  size_t snapshot_dirty = 0;
  {
    common::MutexLock lock(&mutex_);
    snapshot_dirty = dirty_;
    // Least-recently-used first: Restore() inserts in file order, so
    // the most recent entries end up at the front of the rebuilt LRU
    // and survive any budget trimming.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      kdb::Document document;
      document.Set("entry", it->ToJson());
      collection.Insert(std::move(document));
    }
  }
  ADA_RETURN_IF_ERROR(db.SaveTo(directory));
  // Only the debt captured in the snapshot is paid off; inserts that
  // raced past the copy loop stay dirty for the next persist.
  common::MutexLock lock(&mutex_);
  dirty_ -= std::min(dirty_, snapshot_dirty);
  return common::OkStatus();
}

Status ResultCache::Restore(const std::string& directory) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.cache.load"));
  kdb::Database db;
  kdb::Database::PersistOptions options;
  options.salvage = true;  // A torn cache file costs entries, not boot.
  ADA_RETURN_IF_ERROR(db.LoadFrom(directory, {kCacheCollection}, options));
  auto collection = db.Get(kCacheCollection);
  if (!collection.ok()) return collection.status();
  common::MutexLock lock(&mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  for (const kdb::Document& document : collection.value()->documents()) {
    const Json* payload = document.Get("entry");
    if (payload == nullptr) continue;
    auto entry = CachedAnalysis::FromJson(*payload);
    if (!entry.ok()) continue;  // Skip malformed survivors of salvage.
    size_t entry_bytes = entry.value().ByteSize();
    if (entry_bytes > max_bytes_) continue;
    if (index_.contains(entry.value().fingerprint)) continue;
    lru_.push_front(std::move(entry).value());
    index_[lru_.front().fingerprint] = lru_.begin();
    bytes_ += entry_bytes;
    EvictLocked();
  }
  dirty_ = 0;  // The restored contents are exactly what is on disk.
  TouchMetricsLocked();
  return common::OkStatus();
}

}  // namespace service
}  // namespace adahealth
