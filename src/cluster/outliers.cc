#include "cluster/outliers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace adahealth {
namespace cluster {

using common::StatusOr;
using transform::Matrix;
using transform::SquaredDistance;

StatusOr<std::vector<double>> CentroidOutlierScores(
    const Matrix& data, const Clustering& clustering) {
  if (data.rows() != clustering.assignments.size()) {
    return common::InvalidArgumentError(
        "data rows and clustering assignments disagree");
  }
  if (clustering.centroids.cols() != data.cols()) {
    return common::InvalidArgumentError(
        "data and centroid dimensionality disagree");
  }
  const size_t k = clustering.centroids.rows();
  std::vector<double> distances(data.rows());
  std::vector<double> cluster_total(k, 0.0);
  std::vector<int64_t> sizes(k, 0);
  for (size_t i = 0; i < data.rows(); ++i) {
    size_t c = static_cast<size_t>(clustering.assignments[i]);
    if (c >= k) {
      return common::InvalidArgumentError("assignment out of range");
    }
    distances[i] =
        std::sqrt(SquaredDistance(data.Row(i), clustering.centroids.Row(c)));
    cluster_total[c] += distances[i];
    ++sizes[c];
  }
  std::vector<double> scores(data.rows(), 1.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    size_t c = static_cast<size_t>(clustering.assignments[i]);
    double mean = sizes[c] > 0
                      ? cluster_total[c] / static_cast<double>(sizes[c])
                      : 0.0;
    scores[i] = mean > 0.0 ? distances[i] / mean : 1.0;
  }
  return scores;
}

StatusOr<std::vector<double>> KnnOutlierScores(const Matrix& data,
                                               int32_t k) {
  if (data.rows() < 2) {
    return common::InvalidArgumentError(
        "k-NN outlier scoring needs at least two rows");
  }
  if (k < 1 || static_cast<size_t>(k) >= data.rows()) {
    return common::InvalidArgumentError("k must be in [1, rows)");
  }
  const size_t n = data.rows();
  std::vector<double> scores(n, 0.0);
  std::vector<double> distances(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      distances[j] = j == i
                         ? std::numeric_limits<double>::max()
                         : std::sqrt(SquaredDistance(data.Row(i),
                                                     data.Row(j)));
    }
    std::nth_element(distances.begin(),
                     distances.begin() + (k - 1), distances.end());
    double sum = std::accumulate(distances.begin(),
                                 distances.begin() + k, 0.0);
    scores[i] = sum / static_cast<double>(k);
  }
  return scores;
}

std::vector<size_t> TopOutliers(const std::vector<double>& scores,
                                size_t count) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  order.resize(std::min(count, order.size()));
  return order;
}

}  // namespace cluster
}  // namespace adahealth
