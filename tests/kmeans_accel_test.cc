// Bit-identity and concurrency tests for the accelerated k-means
// engine: the accelerated result must equal the naive result exactly
// (assignments, centroids, SSE, iteration counts) for every
// configuration, serial or parallel.
#include "cluster/kmeans_accel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "test_util.h"
#include "transform/sparse_matrix.h"

namespace adahealth {
namespace cluster {
namespace {

using test::MakeBlobs;
using transform::Matrix;

// Exact comparison: the accelerated engine promises bit-identical
// output, so no tolerance anywhere.
void ExpectIdentical(const Clustering& naive, const Clustering& accel) {
  EXPECT_EQ(naive.assignments, accel.assignments);
  EXPECT_EQ(naive.sse, accel.sse);
  EXPECT_EQ(naive.iterations, accel.iterations);
  EXPECT_EQ(naive.converged, accel.converged);
  ASSERT_EQ(naive.centroids.rows(), accel.centroids.rows());
  ASSERT_EQ(naive.centroids.cols(), accel.centroids.cols());
  for (size_t c = 0; c < naive.centroids.rows(); ++c) {
    for (size_t d = 0; d < naive.centroids.cols(); ++d) {
      EXPECT_EQ(naive.centroids.At(c, d), accel.centroids.At(c, d))
          << "centroid " << c << " dim " << d;
    }
  }
}

void RunBothAndCompare(const Matrix& data, KMeansOptions options) {
  options.engine = KMeansEngine::kNaive;
  auto naive = RunKMeans(data, options);
  options.engine = KMeansEngine::kAccelerated;
  auto accel = RunKMeans(data, options);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(accel.ok());
  ExpectIdentical(*naive, *accel);
}

TEST(KMeansAccelTest, MatchesNaiveOnRandomizedShapes) {
  common::Rng shape_rng(20260807);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 2 + shape_rng.UniformUint64(300);
    const size_t dims = 1 + shape_rng.UniformUint64(24);
    const int32_t k =
        1 + static_cast<int32_t>(shape_rng.UniformUint64(
                std::min<size_t>(n, 12)));
    Matrix data(n, dims);
    for (size_t i = 0; i < n; ++i) {
      for (size_t d = 0; d < dims; ++d) {
        data.At(i, d) = shape_rng.Normal(0.0, 5.0);
      }
    }
    // A third of the trials duplicate a block of rows, stressing ties
    // (naive breaks ties toward the lower centroid index) and the
    // zero-distance branches of k-means++.
    if (trial % 3 == 0) {
      for (size_t i = n / 2; i < n; ++i) {
        std::span<const double> src = data.Row(i % (n / 2 + 1));
        std::span<double> dst = data.Row(i);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    KMeansOptions options;
    options.k = k;
    options.seed = 1000 + static_cast<uint64_t>(trial);
    options.init = trial % 2 == 0 ? KMeansInit::kKMeansPlusPlus
                                  : KMeansInit::kRandom;
    // Some trials cut iterations short to exercise the non-converged
    // extra assignment pass.
    options.max_iterations = trial % 5 == 0 ? 2 : 100;
    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" +
                 std::to_string(n) + " dims=" + std::to_string(dims) +
                 " k=" + std::to_string(k));
    RunBothAndCompare(data, options);
  }
}

TEST(KMeansAccelTest, MatchesNaiveThroughEmptyClusterReseeds) {
  // k close to n with heavy duplication forces clusters to empty out
  // and the farthest-point reseed to run, on both engines.
  Matrix data(12, 2);
  for (size_t i = 0; i < 12; ++i) {
    data.At(i, 0) = i < 9 ? 1.0 : static_cast<double>(i) * 50.0;
    data.At(i, 1) = i < 9 ? 1.0 : -static_cast<double>(i);
  }
  for (uint64_t seed = 0; seed < 20; ++seed) {
    KMeansOptions options;
    options.k = 6;
    options.seed = seed;
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunBothAndCompare(data, options);
  }
}

TEST(KMeansAccelTest, MatchesNaiveWithWarmStartCentroids) {
  test::Blobs blobs =
      MakeBlobs({{0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}}, 40, 1.0, 31);
  Matrix warm(3, 2);
  warm.At(0, 0) = 1.0;
  warm.At(1, 0) = 5.0;
  warm.At(2, 1) = 5.0;
  KMeansOptions options;
  options.k = 3;
  options.initial_centroids = warm;
  RunBothAndCompare(blobs.points, options);
}

TEST(KMeansAccelTest, KEqualsOneMatchesNaive) {
  test::Blobs blobs = MakeBlobs({{2.0, -1.0}}, 50, 1.0, 37);
  KMeansOptions options;
  options.k = 1;
  RunBothAndCompare(blobs.points, options);
}

TEST(KMeansAccelTest, ParallelPathIsBitIdenticalToNaive) {
  // Big enough that n*k*dims crosses the work budget and the centroid
  // reduction spans multiple chunks; a 4-thread private pool forces
  // the parallel path even on single-core machines.
  test::Blobs blobs = MakeBlobs({{0.0, 0.0, 0.0, 0.0},
                                 {8.0, 0.0, 0.0, 0.0},
                                 {0.0, 8.0, 0.0, 0.0},
                                 {0.0, 0.0, 8.0, 0.0}},
                                1250, 2.0, 41);
  Matrix wide(blobs.points.rows(), 16);
  for (size_t i = 0; i < wide.rows(); ++i) {
    for (size_t d = 0; d < 16; ++d) {
      wide.At(i, d) = blobs.points.At(i, d % 4) + 0.01 * static_cast<double>(d);
    }
  }
  KMeansOptions options;
  options.k = 16;
  options.seed = 43;
  options.engine = KMeansEngine::kNaive;
  auto naive = RunKMeans(wide, options);
  ASSERT_TRUE(naive.ok());

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  common::ThreadPool pool(4);
  auto accel = internal::RunAcceleratedKMeansOnPool(wide, options, pool);
  ASSERT_TRUE(accel.ok());
  ExpectIdentical(*naive, *accel);
  // The run must actually have used the pool.
  EXPECT_GT(metrics.GetCounter("kmeans/parallel_chunks").value(), 0);
}

TEST(KMeansAccelTest, PruningMetricsRecorded) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  test::Blobs blobs = MakeBlobs(
      {{0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}, {20.0, 20.0}}, 100, 0.5, 47);
  KMeansOptions options;
  options.k = 4;
  auto clustering = RunKMeans(blobs.points, options);
  ASSERT_TRUE(clustering.ok());
  // Well-separated blobs converge with most points never re-scanned
  // after the first pass.
  EXPECT_GT(metrics.GetCounter("kmeans/skipped_distance_checks").value(), 0);
  EXPECT_GE(metrics.GetCounter("kmeans/bound_recomputes").value(), 0);
}

// --- Sparse axis --------------------------------------------------------
//
// The CSR path must reproduce the dense naive engine bit for bit, for
// any density (0%..100%), with duplicate rows, all-zero rows, small
// and large k, serial or forced-parallel. The test data contains no
// negative zeros, so even the centroids compare with EXPECT_EQ.

Matrix RandomSparseData(common::Rng& rng, size_t n, size_t dims,
                        double density) {
  Matrix data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      if (rng.UniformDouble() < density) {
        data.At(i, d) = rng.Normal(0.0, 4.0);
      }
    }
  }
  return data;
}

TEST(KMeansSparseTest, FourWayIdentityAcrossRandomizedDensities) {
  common::Rng shape_rng(20260809);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 4 + shape_rng.UniformUint64(200);
    const size_t dims = 2 + shape_rng.UniformUint64(60);
    const double density = shape_rng.UniformDouble();  // 0%..100%.
    const int32_t k =
        1 + static_cast<int32_t>(
                shape_rng.UniformUint64(std::min<size_t>(n, 10)));
    Matrix data = RandomSparseData(shape_rng, n, dims, density);
    // A third of the trials duplicate a block of rows (ties); every
    // fourth zeroes a few rows entirely (empty CSR rows).
    if (trial % 3 == 0) {
      for (size_t i = n / 2; i < n; ++i) {
        std::span<const double> src = data.Row(i % (n / 2 + 1));
        std::span<double> dst = data.Row(i);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    if (trial % 4 == 0) {
      for (size_t i = 0; i < n; i += 7) {
        std::span<double> row = data.Row(i);
        std::fill(row.begin(), row.end(), 0.0);
      }
    }
    transform::CsrMatrix sparse = transform::CsrMatrix::FromDense(data);

    KMeansOptions options;
    options.k = k;
    options.seed = 20000 + static_cast<uint64_t>(trial);
    options.init = trial % 2 == 0 ? KMeansInit::kKMeansPlusPlus
                                  : KMeansInit::kRandom;
    options.max_iterations = trial % 5 == 0 ? 2 : 100;
    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" +
                 std::to_string(n) + " dims=" + std::to_string(dims) +
                 " k=" + std::to_string(k) + " density=" +
                 std::to_string(density));

    options.engine = KMeansEngine::kNaive;
    options.representation = KMeansRepresentation::kDense;
    auto dense_naive = RunKMeans(data, options);
    ASSERT_TRUE(dense_naive.ok());

    options.engine = KMeansEngine::kAccelerated;
    auto dense_accel = RunKMeans(data, options);
    ASSERT_TRUE(dense_accel.ok());
    ExpectIdentical(*dense_naive, *dense_accel);

    options.engine = KMeansEngine::kNaive;
    options.representation = KMeansRepresentation::kAuto;
    auto sparse_naive = RunKMeans(sparse, options);
    ASSERT_TRUE(sparse_naive.ok());
    ExpectIdentical(*dense_naive, *sparse_naive);

    options.engine = KMeansEngine::kAccelerated;
    auto sparse_accel = RunKMeans(sparse, options);
    ASSERT_TRUE(sparse_accel.ok());
    ExpectIdentical(*dense_naive, *sparse_accel);
  }
}

TEST(KMeansSparseTest, AutoRepresentationDispatchesAndStaysIdentical) {
  // 400 x 48 at ~10% density, which sits right at the default
  // threshold's boundary — so both assertions pin the threshold
  // explicitly (this test is about the dispatch mechanics, not the
  // default value): kAuto on the dense overload must take the CSR
  // path below the cutoff (visible via the metric) and still return
  // the dense naive result exactly.
  common::Rng rng(20260810);
  Matrix data = RandomSparseData(rng, 400, 48, 0.10);

  KMeansOptions options;
  options.k = 6;
  options.seed = 77;
  options.sparse_density_threshold = 0.5;
  options.engine = KMeansEngine::kNaive;
  options.representation = KMeansRepresentation::kDense;
  auto reference = RunKMeans(data, options);
  ASSERT_TRUE(reference.ok());

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  options.engine = KMeansEngine::kAccelerated;
  options.representation = KMeansRepresentation::kAuto;
  auto auto_run = RunKMeans(data, options);
  ASSERT_TRUE(auto_run.ok());
  ExpectIdentical(*reference, *auto_run);
  EXPECT_EQ(metrics.GetCounter("kmeans/sparse_runs").value(), 1);

  // Above the threshold the dense kernels must be chosen instead.
  metrics.Reset();
  options.sparse_density_threshold = 0.01;
  auto dense_run = RunKMeans(data, options);
  ASSERT_TRUE(dense_run.ok());
  ExpectIdentical(*reference, *dense_run);
  EXPECT_EQ(metrics.GetCounter("kmeans/sparse_runs").value(), 0);
}

TEST(KMeansSparseTest, ForcedParallelSparsePathIsBitIdentical) {
  // Enough non-zeros that nnz*k crosses the 2^20 work budget: the
  // sparse engine fans out over a 4-thread private pool and must still
  // match the serial dense naive engine bit for bit.
  common::Rng rng(20260811);
  Matrix data = RandomSparseData(rng, 4000, 160, 0.15);
  transform::CsrMatrix sparse = transform::CsrMatrix::FromDense(data);

  KMeansOptions options;
  options.k = 16;
  options.seed = 131;
  options.engine = KMeansEngine::kNaive;
  auto naive = RunKMeans(data, options);
  ASSERT_TRUE(naive.ok());

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  common::ThreadPool pool(4);
  auto accel = internal::RunAcceleratedKMeansOnPool(sparse, options, pool);
  ASSERT_TRUE(accel.ok());
  ExpectIdentical(*naive, *accel);
  EXPECT_GT(metrics.GetCounter("kmeans/parallel_chunks").value(), 0);
}

TEST(KMeansSparseTest, SmallKSkipsBoundsAndStaysIdentical) {
  // k below kMinClustersForBounds: the engine must skip the Hamerly
  // bookkeeping (visible via the metric) and still match naive exactly.
  common::Rng rng(20260812);
  Matrix data = RandomSparseData(rng, 600, 64, 0.15);
  for (int32_t k : {1, 2, 3}) {
    KMeansOptions options;
    options.k = k;
    options.seed = 137 + static_cast<uint64_t>(k);
    SCOPED_TRACE("k=" + std::to_string(k));
    common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
    metrics.Reset();
    RunBothAndCompare(data, options);
    EXPECT_GT(metrics.GetCounter("kmeans/smallk_unbounded_runs").value(), 0);
  }
}

TEST(KMeansSparseTest, CsrValidationMatchesDense) {
  transform::CsrMatrix::Builder builder(3);
  ASSERT_TRUE(builder.AddRow({{0, 1.0}}).ok());
  ASSERT_TRUE(builder.AddRow({{1, 2.0}}).ok());
  transform::CsrMatrix sparse = std::move(builder).Build();
  KMeansOptions options;
  options.k = 5;  // k > rows.
  auto run = RunKMeans(sparse, options);
  EXPECT_FALSE(run.ok());
}

TEST(KMeansAccelTest, ConcurrentRunsOnOnePoolAreSafeAndDeterministic) {
  // Several threads run the parallel engine against the same pool at
  // once — the TSan job turns any data race in the chunk claiming or
  // bound bookkeeping into a failure. Nested parallelism (engine
  // passes scheduling onto a pool whose workers are already running
  // engine passes) must not deadlock either.
  test::Blobs blobs = MakeBlobs({{0.0, 0.0}, {10.0, 10.0}}, 1200, 1.0, 53);
  Matrix wide(blobs.points.rows(), 24);
  for (size_t i = 0; i < wide.rows(); ++i) {
    for (size_t d = 0; d < 24; ++d) {
      wide.At(i, d) = blobs.points.At(i, d % 2) + static_cast<double>(d);
    }
  }
  KMeansOptions options;
  options.k = 24;
  options.seed = 59;

  common::ThreadPool pool(4);
  constexpr int kRunners = 4;
  std::vector<Clustering> results(kRunners);
  std::vector<std::thread> runners;
  runners.reserve(kRunners);
  for (int r = 0; r < kRunners; ++r) {
    runners.emplace_back([&, r] {
      auto run = internal::RunAcceleratedKMeansOnPool(wide, options, pool);
      ASSERT_TRUE(run.ok());
      results[static_cast<size_t>(r)] = *std::move(run);
    });
  }
  for (std::thread& t : runners) t.join();
  for (int r = 1; r < kRunners; ++r) {
    ExpectIdentical(results[0], results[static_cast<size_t>(r)]);
  }
}

}  // namespace
}  // namespace cluster
}  // namespace adahealth
