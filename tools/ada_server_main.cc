// ada_server — the ADA-HEALTH analysis service.
//
// Binds the NDJSON protocol server on the IPv4 loopback and serves
// analysis jobs until a client sends the `shutdown` verb (or the
// process receives SIGINT/SIGTERM, which the default handlers turn
// into a plain exit; the result cache is persisted crash-safely on a
// dirty-entry threshold and flushed at shutdown).
//
// Usage:
//   ada_server [--port N] [--workers N] [--queue-depth N]
//              [--cache-bytes N] [--cache-dir DIR] [--cohort-dir DIR]
//              [--cache-persist-threshold N]
//              [--max-connections N] [--idle-timeout-millis D]
//              [--max-result-wait-ms D] [--max-line-bytes N]
//              [--role primary|follower] [--replicate-to PORT]
//
// --cohort-dir makes the streaming cohort store (the `ingest` verb)
// durable: each cohort persists as a records CSV plus an atomically
// rewritten manifest, and survives crashes batch-atomically.
//
// Sharded clusters (tools/ada_router): start each shard's follower
// with `--role follower`, its primary with `--replicate-to` pointing
// at the follower's port, and give the router both ports. A follower
// rejects submits until the router promotes it.
//
// Prints "listening on port N" once ready (scripts parse this line to
// learn an ephemeral port requested with --port 0).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "service/server.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: ada_server [--port N] [--workers N] [--queue-depth N]\n"
      "                  [--cache-bytes N] [--cache-dir DIR]\n"
      "                  [--cohort-dir DIR]\n"
      "                  [--cache-persist-threshold N]\n"
      "                  [--max-connections N] [--idle-timeout-millis D]\n"
      "                  [--max-result-wait-ms D] [--max-line-bytes N]\n"
      "                  [--role primary|follower] [--replicate-to PORT]\n"
      "\n"
      "Serves the ADA-HEALTH NDJSON analysis protocol on 127.0.0.1.\n"
      "--port 0 (the default) picks an ephemeral port, printed on the\n"
      "\"listening on port N\" line. Stop the server with the `shutdown`\n"
      "verb (ada_client shutdown).\n"
      "\n"
      "Sharded clusters: --role follower starts a warm replica that\n"
      "rejects submits until promoted; --replicate-to PORT makes a\n"
      "primary stream every committed result to that follower.\n");
}

bool ParseIntFlag(const char* text, int64_t* out) {
  auto parsed = adahealth::common::ParseInt64(text);
  if (!parsed.ok()) return false;
  *out = parsed.value();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adahealth;

  service::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    int64_t value = 0;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (std::strcmp(arg, "--port") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 0 ||
          value > 65535) {
        std::fprintf(stderr, "ada_server: --port expects 0..65535\n");
        return 2;
      }
      options.port = static_cast<uint16_t>(value);
    } else if (std::strcmp(arg, "--workers") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 1) {
        std::fprintf(stderr, "ada_server: --workers expects >= 1\n");
        return 2;
      }
      options.scheduler.max_workers = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 1) {
        std::fprintf(stderr, "ada_server: --queue-depth expects >= 1\n");
        return 2;
      }
      options.scheduler.max_queue_depth = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--cache-bytes") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 0) {
        std::fprintf(stderr, "ada_server: --cache-bytes expects >= 0\n");
        return 2;
      }
      options.scheduler.cache_bytes = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--max-connections") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 1) {
        std::fprintf(stderr, "ada_server: --max-connections expects >= 1\n");
        return 2;
      }
      options.max_connections = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--idle-timeout-millis") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value)) {
        std::fprintf(stderr,
                     "ada_server: --idle-timeout-millis expects a number"
                     " (<= 0 disables idle eviction)\n");
        return 2;
      }
      options.idle_timeout_millis = static_cast<double>(value);
    } else if (std::strcmp(arg, "--max-result-wait-ms") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 1) {
        std::fprintf(stderr, "ada_server: --max-result-wait-ms expects >= 1\n");
        return 2;
      }
      options.max_result_wait_millis = static_cast<double>(value);
    } else if (std::strcmp(arg, "--max-line-bytes") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 1) {
        std::fprintf(stderr, "ada_server: --max-line-bytes expects >= 1\n");
        return 2;
      }
      options.max_line_bytes = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* text = next();
      if (text == nullptr) {
        std::fprintf(stderr, "ada_server: --cache-dir expects a path\n");
        return 2;
      }
      options.scheduler.cache_directory = text;
    } else if (std::strcmp(arg, "--cohort-dir") == 0) {
      const char* text = next();
      if (text == nullptr) {
        std::fprintf(stderr, "ada_server: --cohort-dir expects a path\n");
        return 2;
      }
      options.cohort_directory = text;
    } else if (std::strcmp(arg, "--cache-persist-threshold") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 1) {
        std::fprintf(stderr,
                     "ada_server: --cache-persist-threshold expects >= 1\n");
        return 2;
      }
      options.scheduler.cache_persist_threshold = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--role") == 0) {
      const char* text = next();
      if (text != nullptr && std::strcmp(text, "primary") == 0) {
        options.role = service::ServerRole::kPrimary;
      } else if (text != nullptr && std::strcmp(text, "follower") == 0) {
        options.role = service::ServerRole::kFollower;
      } else {
        std::fprintf(stderr,
                     "ada_server: --role expects 'primary' or 'follower'\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--replicate-to") == 0) {
      const char* text = next();
      if (text == nullptr || !ParseIntFlag(text, &value) || value < 1 ||
          value > 65535) {
        std::fprintf(stderr, "ada_server: --replicate-to expects 1..65535\n");
        return 2;
      }
      options.replicate_to_port = static_cast<uint16_t>(value);
    } else {
      std::fprintf(stderr, "ada_server: unknown flag '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }

  service::AnalysisServer server(std::move(options));
  if (common::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "ada_server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);  // Scripts wait for this line.
  server.Wait();
  std::printf("server stopped\n");
  return 0;
}
