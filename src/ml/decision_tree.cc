#include "ml/decision_tree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "ml/metrics.h"

namespace adahealth {
namespace ml {

using common::Status;
using transform::Matrix;

Status DecisionTreeClassifier::Fit(const Matrix& features,
                                   const std::vector<int32_t>& labels,
                                   int32_t num_classes) {
  if (features.rows() == 0 || features.cols() == 0) {
    return common::InvalidArgumentError("empty training data");
  }
  if (labels.size() != features.rows()) {
    return common::InvalidArgumentError("label count != sample count");
  }
  if (num_classes < 1) {
    return common::InvalidArgumentError("num_classes must be >= 1");
  }
  for (int32_t label : labels) {
    if (label < 0 || label >= num_classes) {
      return common::InvalidArgumentError("label outside [0, num_classes)");
    }
  }
  if (options_.max_depth < 0 || options_.min_samples_split < 2 ||
      options_.min_samples_leaf < 1) {
    return common::InvalidArgumentError("invalid decision-tree options");
  }

  nodes_.clear();
  depth_ = 0;
  num_classes_ = num_classes;
  num_features_ = features.cols();

  std::vector<size_t> sample_ids(features.rows());
  std::iota(sample_ids.begin(), sample_ids.end(), 0u);
  BuildNode(features, labels, sample_ids, 0, sample_ids.size(), 0);
  return common::OkStatus();
}

int32_t DecisionTreeClassifier::BuildNode(
    const Matrix& features, const std::vector<int32_t>& labels,
    std::vector<size_t>& sample_ids, size_t begin, size_t end,
    int32_t depth) {
  ADA_CHECK_LT(begin, end);
  depth_ = std::max(depth_, depth);
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  // Class histogram and majority label of this node.
  std::vector<int64_t> counts(static_cast<size_t>(num_classes_), 0);
  for (size_t i = begin; i < end; ++i) {
    ++counts[static_cast<size_t>(labels[sample_ids[i]])];
  }
  int32_t majority = 0;
  for (int32_t c = 1; c < num_classes_; ++c) {
    if (counts[static_cast<size_t>(c)] >
        counts[static_cast<size_t>(majority)]) {
      majority = c;
    }
  }
  nodes_[static_cast<size_t>(node_id)].label = majority;

  const int64_t n = static_cast<int64_t>(end - begin);
  const double node_impurity = GiniImpurity(counts);
  if (depth >= options_.max_depth || n < options_.min_samples_split ||
      node_impurity == 0.0) {
    return node_id;
  }

  // Best split search: for every feature, sort this node's samples by
  // the feature value and sweep candidate thresholds between distinct
  // consecutive values, tracking class counts on the left.
  double best_gain = options_.min_impurity_decrease;
  int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> order(end - begin);
  std::vector<int64_t> left_counts(static_cast<size_t>(num_classes_));
  for (size_t f = 0; f < num_features_; ++f) {
    for (size_t i = 0; i < order.size(); ++i) order[i] = sample_ids[begin + i];
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return features.At(a, f) < features.At(b, f);
    });
    if (features.At(order.front(), f) == features.At(order.back(), f)) {
      continue;  // Constant feature in this node.
    }
    std::fill(left_counts.begin(), left_counts.end(), 0);
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      ++left_counts[static_cast<size_t>(labels[order[i]])];
      double value = features.At(order[i], f);
      double next_value = features.At(order[i + 1], f);
      if (value == next_value) continue;
      const int64_t left_n = static_cast<int64_t>(i + 1);
      const int64_t right_n = n - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      // Weighted impurity of the split.
      double left_impurity = GiniImpurity(left_counts);
      std::vector<int64_t> right_counts(counts);
      for (int32_t c = 0; c < num_classes_; ++c) {
        right_counts[static_cast<size_t>(c)] -=
            left_counts[static_cast<size_t>(c)];
      }
      double right_impurity = GiniImpurity(right_counts);
      double weighted =
          (static_cast<double>(left_n) * left_impurity +
           static_cast<double>(right_n) * right_impurity) /
          static_cast<double>(n);
      double gain = node_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(f);
        best_threshold = 0.5 * (value + next_value);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition [begin, end) of sample_ids by the chosen split.
  auto middle = std::stable_partition(
      sample_ids.begin() + static_cast<ptrdiff_t>(begin),
      sample_ids.begin() + static_cast<ptrdiff_t>(end), [&](size_t id) {
        return features.At(id, static_cast<size_t>(best_feature)) <=
               best_threshold;
      });
  size_t split = static_cast<size_t>(middle - sample_ids.begin());
  ADA_CHECK_GT(split, begin);
  ADA_CHECK_LT(split, end);

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
  int32_t left = BuildNode(features, labels, sample_ids, begin, split,
                           depth + 1);
  int32_t right =
      BuildNode(features, labels, sample_ids, split, end, depth + 1);
  nodes_[static_cast<size_t>(node_id)].left = left;
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

int32_t DecisionTreeClassifier::Predict(
    std::span<const double> features) const {
  ADA_CHECK(!nodes_.empty());
  ADA_CHECK_EQ(features.size(), num_features_);
  size_t current = 0;
  while (!nodes_[current].is_leaf()) {
    const Node& node = nodes_[current];
    current = static_cast<size_t>(
        features[static_cast<size_t>(node.feature)] <= node.threshold
            ? node.left
            : node.right);
  }
  return nodes_[current].label;
}

}  // namespace ml
}  // namespace adahealth
