// Wall-clock timing helper for benchmarks and progress logging.
#ifndef ADAHEALTH_COMMON_TIMER_H_
#define ADAHEALTH_COMMON_TIMER_H_

#include <chrono>

namespace adahealth {
namespace common {

/// Measures elapsed wall time since construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds as a double.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed whole milliseconds.
  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_TIMER_H_
