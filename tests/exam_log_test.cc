#include "dataset/exam_log.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace adahealth {
namespace dataset {
namespace {

ExamLog MakeSmallLog() {
  std::vector<Patient> patients;
  for (int32_t i = 0; i < 3; ++i) {
    patients.push_back({i, 50 + i, Patient::kUnknownProfile});
  }
  ExamDictionary dictionary;
  ExamTypeId hba1c = dictionary.Intern("hba1c");
  ExamTypeId fundus = dictionary.Intern("fundus_exam");
  ExamTypeId lipids = dictionary.Intern("lipid_panel");
  std::vector<ExamRecord> records{
      {0, hba1c, 10}, {0, hba1c, 100}, {0, fundus, 30},
      {1, hba1c, 5},  {1, lipids, 60}, {2, lipids, 90},
  };
  return ExamLog(std::move(patients), std::move(dictionary),
                 std::move(records));
}

TEST(ExamDictionaryTest, InternIsIdempotent) {
  ExamDictionary dictionary;
  EXPECT_EQ(dictionary.Intern("a"), 0);
  EXPECT_EQ(dictionary.Intern("b"), 1);
  EXPECT_EQ(dictionary.Intern("a"), 0);
  EXPECT_EQ(dictionary.size(), 2u);
  EXPECT_EQ(dictionary.Name(1), "b");
}

TEST(ExamDictionaryTest, LookupMissingIsNotFound) {
  ExamDictionary dictionary;
  dictionary.Intern("x");
  EXPECT_TRUE(dictionary.Lookup("x").ok());
  EXPECT_FALSE(dictionary.Lookup("y").ok());
}

TEST(ExamLogTest, BasicCounts) {
  ExamLog log = MakeSmallLog();
  EXPECT_EQ(log.num_patients(), 3u);
  EXPECT_EQ(log.num_exam_types(), 3u);
  EXPECT_EQ(log.num_records(), 6u);
}

TEST(ExamLogTest, ExamFrequencies) {
  ExamLog log = MakeSmallLog();
  EXPECT_EQ(log.ExamFrequencies(), (std::vector<int64_t>{3, 1, 2}));
}

TEST(ExamLogTest, RecordsPerPatient) {
  ExamLog log = MakeSmallLog();
  EXPECT_EQ(log.RecordsPerPatient(), (std::vector<int64_t>{3, 2, 1}));
}

TEST(ExamLogTest, PatientsPerExamCountsDistinct) {
  ExamLog log = MakeSmallLog();
  // hba1c: patients 0 and 1; fundus: 0; lipids: 1 and 2.
  EXPECT_EQ(log.PatientsPerExam(), (std::vector<int64_t>{2, 1, 2}));
}

TEST(ExamLogTest, CsvRoundTrip) {
  ExamLog log = MakeSmallLog();
  auto reloaded = ExamLog::FromCsv(log.ToCsv());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_patients(), log.num_patients());
  EXPECT_EQ(reloaded->num_exam_types(), log.num_exam_types());
  EXPECT_EQ(reloaded->num_records(), log.num_records());
  EXPECT_EQ(reloaded->ExamFrequencies(), log.ExamFrequencies());
  EXPECT_EQ(reloaded->records(), log.records());
}

TEST(ExamLogTest, FromCsvRejectsBadHeader) {
  EXPECT_FALSE(ExamLog::FromCsv("id,exam,day\n1,x,2\n").ok());
  EXPECT_FALSE(ExamLog::FromCsv("").ok());
}

TEST(ExamLogTest, FromCsvRejectsMalformedRows) {
  EXPECT_FALSE(ExamLog::FromCsv("patient_id,exam_type,day\n1,x\n").ok());
  EXPECT_FALSE(
      ExamLog::FromCsv("patient_id,exam_type,day\nfoo,x,1\n").ok());
  EXPECT_FALSE(
      ExamLog::FromCsv("patient_id,exam_type,day\n-2,x,1\n").ok());
  EXPECT_FALSE(
      ExamLog::FromCsv("patient_id,exam_type,day\n1,x,notaday\n").ok());
}

TEST(ExamLogTest, SaveAndLoad) {
  ExamLog log = MakeSmallLog();
  std::string path = testing::TempDir() + "/exam_log_test.csv";
  ASSERT_TRUE(log.Save(path).ok());
  auto loaded = ExamLog::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_records(), log.num_records());
  std::remove(path.c_str());
}

TEST(ExamLogTest, FilterExamTypesKeepsPatients) {
  ExamLog log = MakeSmallLog();
  // Keep only hba1c.
  std::vector<bool> keep{true, false, false};
  ExamLog filtered = log.FilterExamTypes(keep);
  EXPECT_EQ(filtered.num_patients(), 3u);  // Patients retained.
  EXPECT_EQ(filtered.num_exam_types(), 1u);
  EXPECT_EQ(filtered.num_records(), 3u);
  EXPECT_EQ(filtered.dictionary().Name(0), "hba1c");
  // Patient 2 now has zero records but still exists.
  EXPECT_EQ(filtered.RecordsPerPatient(), (std::vector<int64_t>{2, 1, 0}));
}

TEST(ExamLogTest, FilterExamTypesRemapsIds) {
  ExamLog log = MakeSmallLog();
  std::vector<bool> keep{false, true, true};
  ExamLog filtered = log.FilterExamTypes(keep);
  EXPECT_EQ(filtered.num_exam_types(), 2u);
  for (const auto& record : filtered.records()) {
    EXPECT_GE(record.exam_type, 0);
    EXPECT_LT(record.exam_type, 2);
  }
  EXPECT_TRUE(filtered.dictionary().Lookup("fundus_exam").ok());
  EXPECT_TRUE(filtered.dictionary().Lookup("lipid_panel").ok());
  EXPECT_FALSE(filtered.dictionary().Lookup("hba1c").ok());
}

TEST(ExamLogTest, FilterPatientsReindexes) {
  ExamLog log = MakeSmallLog();
  ExamLog filtered = log.FilterPatients({2, 0});
  EXPECT_EQ(filtered.num_patients(), 2u);
  // Order follows the argument: new id 0 = old 2, new id 1 = old 0.
  EXPECT_EQ(filtered.patients()[0].age, 52);
  EXPECT_EQ(filtered.patients()[1].age, 50);
  EXPECT_EQ(filtered.num_records(), 4u);  // 1 (old 2) + 3 (old 0).
  for (const auto& record : filtered.records()) {
    EXPECT_LT(record.patient, 2);
  }
}

TEST(ExamLogTest, ProfileLabels) {
  std::vector<Patient> patients{{0, 40, 2}, {1, 41, 0}};
  ExamDictionary dictionary;
  dictionary.Intern("x");
  ExamLog log(std::move(patients), std::move(dictionary), {});
  EXPECT_EQ(log.ProfileLabels(), (std::vector<int32_t>{2, 0}));
}

}  // namespace
}  // namespace dataset
}  // namespace adahealth
