// Knowledge-item model: the unit of "actionable knowledge" ADA-HEALTH
// extracts, stores in the K-DB, ranks, and presents to the user.
//
// End-goals mirror the analyses motivating the paper's introduction:
// (i) groups of patients with similar clinical history, (ii) exams
// commonly prescribed together, (iii) compliance/outcome assessment,
// (iv) unknown interactions, (v) resource planning.
#ifndef ADAHEALTH_CORE_KNOWLEDGE_H_
#define ADAHEALTH_CORE_KNOWLEDGE_H_

#include <string>

#include "common/json.h"

namespace adahealth {
namespace core {

/// Analysis end-goal taxonomy (paper §I).
enum class EndGoal : int32_t {
  kPatientGrouping = 0,      // (i)  clustering-based.
  kCommonExamPatterns = 1,   // (ii) frequent-pattern-based.
  kComplianceOutcome = 2,    // (iii).
  kInteractionDiscovery = 3, // (iv) association rules.
  kResourcePlanning = 4,     // (v).
};
inline constexpr int32_t kNumEndGoals = 5;

/// Degree of interestingness a physician assigns to a knowledge item
/// (paper §IV-A: "{high, medium, low}").
enum class Interest : int32_t {
  kLow = 0,
  kMedium = 1,
  kHigh = 2,
};
inline constexpr int32_t kNumInterestLevels = 3;

const char* EndGoalName(EndGoal goal);
const char* InterestName(Interest interest);

/// Parses names produced by the *Name functions; INVALID_ARGUMENT on
/// unknown strings.
[[nodiscard]] common::StatusOr<EndGoal> EndGoalFromName(const std::string& name);
[[nodiscard]] common::StatusOr<Interest> InterestFromName(const std::string& name);

/// One extracted knowledge item.
struct KnowledgeItem {
  /// Stable identifier within a session, e.g. "cluster:3".
  std::string id;
  /// End-goal this item serves.
  EndGoal goal = EndGoal::kPatientGrouping;
  /// Item kind: "cluster", "itemset", "rule", ...
  std::string kind;
  /// One-line human-readable description.
  std::string description;
  /// Algorithm-specific quality in [0, 1] (e.g. cohesion, confidence).
  double quality = 0.0;
  /// Structured details (centroid profile, rule parts, ...).
  common::Json payload;
  /// Predicted or physician-assigned interest.
  Interest interest = Interest::kMedium;

  common::Json ToJson() const;
  [[nodiscard]] static common::StatusOr<KnowledgeItem> FromJson(const common::Json& json);
};

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_KNOWLEDGE_H_
