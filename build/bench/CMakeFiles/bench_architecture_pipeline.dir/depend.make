# Empty dependencies file for bench_architecture_pipeline.
# This may be replaced when dependencies are built.
