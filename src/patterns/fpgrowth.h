// FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD'00): the
// production miner of the pattern-discovery component. Produces exactly
// the same itemsets as Apriori, typically orders of magnitude faster on
// dense transaction databases.
#ifndef ADAHEALTH_PATTERNS_FPGROWTH_H_
#define ADAHEALTH_PATTERNS_FPGROWTH_H_

#include "common/status.h"
#include "patterns/apriori.h"
#include "patterns/transactions.h"

namespace adahealth {
namespace patterns {

/// Mines all frequent itemsets of `db` with FP-growth. Output is in
/// canonical order (SortCanonical) and identical to MineApriori.
[[nodiscard]] common::StatusOr<std::vector<FrequentItemset>> MineFpGrowth(
    const TransactionDb& db, const MiningOptions& options);

/// Filters `itemsets` down to the closed ones (no proper superset with
/// the same support). Input may be in any order.
std::vector<FrequentItemset> ClosedItemsets(
    std::vector<FrequentItemset> itemsets);

/// Filters `itemsets` down to the maximal ones (no frequent proper
/// superset at all). Maximal sets are the most compact summary of a
/// pattern collection; every frequent itemset is a subset of some
/// maximal one. Input may be in any order.
std::vector<FrequentItemset> MaximalItemsets(
    std::vector<FrequentItemset> itemsets);

}  // namespace patterns
}  // namespace adahealth

#endif  // ADAHEALTH_PATTERNS_FPGROWTH_H_
