// Association-rule generation from frequent itemsets. Supports the
// paper's motivating analyses ("identify medical examinations commonly
// prescribed ... to patients with a given disease", "discover
// previously unknown interaction between drugs or medical conditions").
#ifndef ADAHEALTH_PATTERNS_RULES_H_
#define ADAHEALTH_PATTERNS_RULES_H_

#include "common/status.h"
#include "patterns/transactions.h"

namespace adahealth {
namespace patterns {

/// Association rule antecedent => consequent, both non-empty and
/// disjoint, with standard quality measures.
struct AssociationRule {
  std::vector<ItemId> antecedent;
  std::vector<ItemId> consequent;
  /// Support of antecedent ∪ consequent over the transaction count.
  double support = 0.0;
  /// support(A ∪ C) / support(A).
  double confidence = 0.0;
  /// confidence / support(C); > 1 indicates positive correlation.
  double lift = 0.0;

  friend bool operator==(const AssociationRule& a,
                         const AssociationRule& b) = default;
};

struct RuleOptions {
  /// Minimum confidence in (0, 1].
  double min_confidence = 0.5;
  /// Minimum lift; 0 disables the filter.
  double min_lift = 0.0;
};

/// Derives association rules from `itemsets` (all frequent itemsets of
/// one mining run, so every required subset support is present) over a
/// database of `num_transactions` transactions. Rules are sorted by
/// descending confidence, then lift.
[[nodiscard]] common::StatusOr<std::vector<AssociationRule>> GenerateRules(
    const std::vector<FrequentItemset>& itemsets, size_t num_transactions,
    const RuleOptions& options);

}  // namespace patterns
}  // namespace adahealth

#endif  // ADAHEALTH_PATTERNS_RULES_H_
