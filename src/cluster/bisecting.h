// Bisecting K-means: repeatedly 2-means-split the cluster with the
// largest SSE until k clusters exist. Included as an alternative
// center-based algorithm for the ADA-HEALTH optimizer to compare.
#ifndef ADAHEALTH_CLUSTER_BISECTING_H_
#define ADAHEALTH_CLUSTER_BISECTING_H_

#include "cluster/kmeans.h"

namespace adahealth {
namespace cluster {

struct BisectingOptions {
  int32_t k = 8;
  /// 2-means restarts per split; the best-SSE split wins.
  int32_t trials_per_split = 4;
  /// Iteration cap of each inner 2-means run.
  int32_t max_iterations = 50;
  uint64_t seed = 1;
};

/// Runs bisecting K-means on the rows of `data`. Same result contract
/// as RunKMeans. Requires 1 <= k <= data.rows().
[[nodiscard]] common::StatusOr<Clustering> RunBisectingKMeans(
    const transform::Matrix& data, const BisectingOptions& options);

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_BISECTING_H_
