// Cross-module integration tests: the full ADA-HEALTH loop including
// K-DB persistence, feedback-driven end-goal learning, and the
// Table-I-shaped optimizer behaviour on a paper-like (reduced) cohort.
#include <cstdio>
#include <set>

#include <gtest/gtest.h>
#include "common/string_util.h"
#include "core/endgoal.h"
#include "core/feedback_sim.h"
#include "core/session.h"
#include "kdb/query.h"

namespace adahealth {
namespace {

using core::AnalysisSession;
using core::EndGoal;
using core::Interest;
using core::SessionOptions;

SessionOptions FastSessionOptions() {
  SessionOptions options;
  options.dataset_id = "integration-cohort";
  options.transform.sample_fraction = 0.4;
  options.partial.fractions = {0.3, 0.6, 1.0};
  options.partial.ks = {3, 4};
  options.optimizer.candidate_ks = {3, 4, 6};
  options.optimizer.cv_folds = 4;
  options.optimizer.num_threads = 2;
  options.pattern_mining.min_support_level0 = 0.4;
  options.pattern_mining.min_support_level1 = 0.5;
  options.pattern_mining.min_support_level2 = 0.6;
  return options;
}

TEST(IntegrationTest, SessionKdbPersistenceRoundTrip) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());

  std::string directory = testing::TempDir();
  {
    kdb::Database db;
    AnalysisSession session(&db);
    auto result =
        session.Run(cohort->log, &cohort->taxonomy, FastSessionOptions());
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(db.SaveTo(directory).ok());
  }
  // Reload in a fresh database and verify the artifacts survive.
  kdb::Database reloaded;
  ASSERT_TRUE(
      reloaded.LoadFrom(directory, kdb::Schema::CollectionNames()).ok());
  EXPECT_EQ(reloaded.GetOrCreate(kdb::Schema::kDescriptors).size(), 1u);
  EXPECT_GT(reloaded.GetOrCreate(kdb::Schema::kKnowledgeItems).size(), 0u);
  auto selected = reloaded.GetOrCreate(kdb::Schema::kSelectedKnowledge)
                      .Find(kdb::Query().Eq(
                          "dataset_id", common::Json("integration-cohort")));
  EXPECT_FALSE(selected.empty());
  for (const std::string& name : kdb::Schema::CollectionNames()) {
    std::remove((directory + "/" + name + ".jsonl").c_str());
  }
}

TEST(IntegrationTest, FeedbackLoopImprovesInterestModel) {
  // The paper's claim C1: "The larger the number of previous user
  // interactions, the more accurate the classification model will be."
  core::PersonaConfig persona = core::ClinicalResearcherPersona();
  persona.noise_stddev = 0.15;
  core::FeedbackSimulator oracle(persona, 41);
  common::Rng rng(43);

  // A pool of varied datasets and their oracle labels.
  struct Example {
    stats::MetaFeatures features;
    EndGoal goal;
    Interest label;
  };
  std::vector<Example> pool;
  for (int d = 0; d < 60; ++d) {
    dataset::CohortConfig config = dataset::TestScaleConfig();
    config.num_patients = 120 + static_cast<int32_t>(rng.UniformInt(0, 300));
    config.mean_records_per_patient = rng.UniformDouble(3.0, 18.0);
    config.zipf_exponent = rng.UniformDouble(0.2, 1.5);
    config.seed = rng.NextUint64();
    auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
    ASSERT_TRUE(cohort.ok());
    stats::MetaFeatures features = stats::ComputeMetaFeatures(cohort->log);
    for (int32_t g = 0; g < core::kNumEndGoals; ++g) {
      EndGoal goal = static_cast<EndGoal>(g);
      pool.push_back({features, goal, oracle.LabelGoal(features, goal)});
    }
  }
  // Hold out the last 20% for evaluation.
  size_t split = pool.size() * 4 / 5;

  auto accuracy_with = [&](size_t train_count) {
    kdb::Collection feedback("feedback");
    for (size_t i = 0; i < train_count && i < split; ++i) {
      feedback.Insert(core::MakeGoalFeedbackDocument(
          common::StrFormat("d%zu", i), persona.name, pool[i].features,
          pool[i].goal, pool[i].label));
    }
    core::EndGoalEngine engine;
    if (!engine.TrainFromFeedback(feedback).ok()) return 0.0;
    int correct = 0;
    for (size_t i = split; i < pool.size(); ++i) {
      auto predicted =
          engine.PredictInterest(pool[i].features, pool[i].goal);
      if (predicted.ok() && predicted.value() == pool[i].label) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(pool.size() - split);
  };

  double small = accuracy_with(10);
  double large = accuracy_with(split);
  EXPECT_GT(large, small);
  EXPECT_GT(large, 0.55);
}

TEST(IntegrationTest, OptimizerTableShapeOnReducedPaperWorkload) {
  // A reduced version of Table I: on a cohort with 4 latent profiles,
  // SSE decreases monotonically in K while the classification
  // composite peaks at the true K and degrades under heavy
  // over-segmentation — the exact trade-off the paper's optimizer
  // exploits.
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  transform::Matrix vsm = transform::BuildVsm(cohort->log);
  core::OptimizerOptions options;
  options.candidate_ks = {2, 3, 4, 6, 10, 16};
  options.cv_folds = 5;
  options.num_threads = 4;
  auto result = core::OptimizeClustering(vsm, options);
  ASSERT_TRUE(result.ok());

  // SSE strictly ordered (allowing tiny numeric slack).
  for (size_t i = 1; i < result->candidates.size(); ++i) {
    EXPECT_LE(result->candidates[i].sse,
              result->candidates[i - 1].sse * 1.01);
  }
  // Composite at the true K beats the extremes.
  double composite_at_4 = result->candidates[2].composite;
  double composite_at_16 = result->candidates.back().composite;
  EXPECT_GT(composite_at_4, composite_at_16);
  // The selected K is in the plausible neighborhood of the truth.
  EXPECT_GE(result->best_k(), 2);
  EXPECT_LE(result->best_k(), 6);
}

TEST(IntegrationTest, ExamSubsetMiningMatchesPaperStoryline) {
  // End-to-end §IV-B storyline: the reduced exam subsets yield quality
  // within tolerance of the full data, so ADA-HEALTH selects a proper
  // subset (non-final step) under the paper's 5% rule — on the
  // test-scale cohort we accept selecting any step strictly cheaper
  // than (or equal to) the full run and verify diffs are small.
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  core::PartialMiningOptions options;
  options.fractions = {0.2, 0.4, 1.0};
  options.ks = {3, 4, 5};
  options.tolerance = 0.05;
  auto result = core::RunExamSubsetPartialMining(cohort->log, options);
  ASSERT_TRUE(result.ok());
  // The 40%-of-exams step must already be close to the full data.
  EXPECT_LT(result->steps[1].mean_relative_diff, 0.15);
  // And the selected step is never worse than the full run.
  EXPECT_LE(result->steps[result->selected_step].mean_relative_diff,
            options.tolerance + 1e-12);
}

}  // namespace
}  // namespace adahealth
