file(REMOVE_RECURSE
  "CMakeFiles/filtering_kmeans_test.dir/filtering_kmeans_test.cc.o"
  "CMakeFiles/filtering_kmeans_test.dir/filtering_kmeans_test.cc.o.d"
  "filtering_kmeans_test"
  "filtering_kmeans_test.pdb"
  "filtering_kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filtering_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
