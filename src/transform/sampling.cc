#include "transform/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace adahealth {
namespace transform {

using common::InvalidArgumentError;
using common::Rng;
using common::StatusOr;
using dataset::ExamLog;
using dataset::PatientId;

namespace {

size_t TargetCount(size_t total, double fraction) {
  size_t count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(total)));
  count = std::min(count, total);
  if (total > 0 && count == 0) count = 1;
  return count;
}

}  // namespace

StatusOr<std::vector<PatientId>> SamplePatients(const ExamLog& log,
                                                double fraction, Rng& rng) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return InvalidArgumentError("sample fraction must be in (0, 1]");
  }
  size_t count = TargetCount(log.num_patients(), fraction);
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(log.num_patients(), count);
  std::vector<PatientId> patients(picks.size());
  for (size_t i = 0; i < picks.size(); ++i) {
    patients[i] = static_cast<PatientId>(picks[i]);
  }
  std::sort(patients.begin(), patients.end());
  return patients;
}

StatusOr<std::vector<PatientId>> SamplePatientsStratifiedByActivity(
    const ExamLog& log, double fraction, Rng& rng) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return InvalidArgumentError("sample fraction must be in (0, 1]");
  }
  if (log.num_patients() == 0) return std::vector<PatientId>{};

  // Assign patients to record-count quartiles.
  std::vector<int64_t> counts = log.RecordsPerPatient();
  std::vector<PatientId> by_count(log.num_patients());
  for (size_t i = 0; i < by_count.size(); ++i) {
    by_count[i] = static_cast<PatientId>(i);
  }
  std::stable_sort(by_count.begin(), by_count.end(),
                   [&](PatientId a, PatientId b) {
                     return counts[static_cast<size_t>(a)] <
                            counts[static_cast<size_t>(b)];
                   });
  std::vector<PatientId> sampled;
  const size_t num_strata = 4;
  for (size_t s = 0; s < num_strata; ++s) {
    size_t begin = s * by_count.size() / num_strata;
    size_t end = (s + 1) * by_count.size() / num_strata;
    if (begin >= end) continue;
    size_t take = TargetCount(end - begin, fraction);
    std::vector<size_t> picks = rng.SampleWithoutReplacement(end - begin, take);
    for (size_t p : picks) sampled.push_back(by_count[begin + p]);
  }
  std::sort(sampled.begin(), sampled.end());
  return sampled;
}

StatusOr<std::vector<std::vector<PatientId>>> BuildHorizontalSchedule(
    const ExamLog& log, const std::vector<double>& fractions, Rng& rng) {
  if (fractions.empty()) {
    return InvalidArgumentError("empty horizontal schedule");
  }
  for (size_t i = 0; i < fractions.size(); ++i) {
    if (fractions[i] <= 0.0 || fractions[i] > 1.0) {
      return InvalidArgumentError("horizontal fractions must be in (0, 1]");
    }
    if (i > 0 && fractions[i] <= fractions[i - 1]) {
      return InvalidArgumentError(
          "horizontal fractions must be strictly increasing");
    }
  }
  // Draw one random permutation; each step takes a growing prefix, so
  // the subsets are nested.
  std::vector<PatientId> permutation(log.num_patients());
  for (size_t i = 0; i < permutation.size(); ++i) {
    permutation[i] = static_cast<PatientId>(i);
  }
  rng.Shuffle(permutation);

  std::vector<std::vector<PatientId>> schedule;
  schedule.reserve(fractions.size());
  for (double fraction : fractions) {
    size_t count = TargetCount(log.num_patients(), fraction);
    std::vector<PatientId> subset(permutation.begin(),
                                  permutation.begin() +
                                      static_cast<ptrdiff_t>(count));
    std::sort(subset.begin(), subset.end());
    schedule.push_back(std::move(subset));
  }
  return schedule;
}

}  // namespace transform
}  // namespace adahealth
