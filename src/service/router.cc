#include "service/router.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "service/fingerprint.h"
#include "service/protocol.h"

namespace adahealth {
namespace service {

using common::Json;
using common::MutexLock;
using common::Status;
using common::StatusOr;

namespace {

constexpr const char* kPingLine = "{\"verb\":\"ping\"}\n";
constexpr const char* kPromoteLine = "{\"verb\":\"promote\"}\n";
constexpr const char* kShutdownLine = "{\"verb\":\"shutdown\"}\n";

bool IsTerminalStateName(const std::string& name) {
  return name == JobStateName(JobState::kDone) ||
         name == JobStateName(JobState::kFailed) ||
         name == JobStateName(JobState::kExpired) ||
         name == JobStateName(JobState::kCancelled);
}

/// Recursive integer roll-up for the `stats` verb's "totals" object:
/// int fields add up, object fields recurse, everything else (role
/// strings, booleans, doubles) is skipped.
void SumIntFields(Json::Object& totals, const Json::Object& source) {
  for (const auto& [key, value] : source) {
    if (value.is_int()) {
      int64_t current = 0;
      if (auto it = totals.find(key);
          it != totals.end() && it->second.is_int()) {
        current = it->second.AsInt();
      }
      totals[key] = Json(current + value.AsInt());
    } else if (value.is_object()) {
      Json::Object nested;
      if (auto it = totals.find(key);
          it != totals.end() && it->second.is_object()) {
        nested = it->second.AsObject();
      }
      SumIntFields(nested, value.AsObject());
      totals[key] = Json(std::move(nested));
    }
  }
}

Json::Object JobIdExtra(JobId global_id) {
  Json::Object extra;
  extra["job_id"] = Json(static_cast<int64_t>(global_id));
  return extra;
}

/// Ring key for cohort-affine verbs (ingest, cohort submits): every
/// request naming the same cohort must land on the same shard, since
/// that shard holds the cohort's accumulated records.
std::string CohortRoutingKey(const std::string& cohort) {
  return "cohort/" + cohort;
}

/// The "cohort" field of an ingest/cohort-submit body, or an error.
StatusOr<std::string> ReadCohortField(const Json& body) {
  const Json* field = body.Find("cohort");
  if (field == nullptr || !field->is_string() || field->AsString().empty()) {
    return common::InvalidArgumentError(
        "request must carry a non-empty string 'cohort'");
  }
  return field->AsString();
}

}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {}

Router::~Router() { Stop(); }

Status Router::Start() {
  if (options_.shards.empty()) {
    return common::InvalidArgumentError(
        "router needs at least one --shard endpoint");
  }
  {
    MutexLock lock(&lifecycle_mutex_);
    if (started_) {
      return common::FailedPreconditionError("router already started");
    }
  }
  ADA_ASSIGN_OR_RETURN(listener_, ServerSocket::Listen(options_.port));
  port_ = listener_.port();
  shards_.clear();
  for (const ShardEndpoints& endpoints : options_.shards) {
    auto state = std::make_unique<ShardState>();
    state->endpoints = endpoints;
    state->active_port = endpoints.primary_port;
    shards_.push_back(std::move(state));
  }
  // The ring is immutable after this point: dead shards are skipped at
  // lookup time rather than removed, so placements of the surviving
  // shards never move when one dies.
  ring_.clear();
  const size_t vnodes = std::max<size_t>(1, options_.vnodes_per_shard);
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    for (size_t vnode = 0; vnode < vnodes; ++vnode) {
      Fnv1a hash;
      hash.MixString("shard");
      hash.MixInt(static_cast<int64_t>(shard));
      hash.MixString("vnode");
      hash.MixInt(static_cast<int64_t>(vnode));
      ring_.emplace_back(hash.digest(), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  start_time_ = std::chrono::steady_clock::now();
  stopping_.store(false);
  {
    MutexLock lock(&lifecycle_mutex_);
    started_ = true;
    stop_signalled_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  prober_thread_ = std::thread([this] { ProbeLoop(); });
  ADA_LOG(kInfo) << "router: listening on 127.0.0.1:" << port_ << " with "
                 << shards_.size() << " shard(s)";
  return common::OkStatus();
}

void Router::SignalStop() {
  stopping_.store(true);
  {
    MutexLock lock(&lifecycle_mutex_);
    stop_signalled_ = true;
    stopped_cv_.NotifyAll();
  }
  listener_.Shutdown();  // Unblocks the accept thread.
}

void Router::Wait() {
  MutexLock lock(&lifecycle_mutex_);
  stopped_cv_.Wait(lifecycle_mutex_, [this]() ADA_REQUIRES(lifecycle_mutex_) {
    return stop_signalled_ || !started_;
  });
}

void Router::Stop() {
  {
    MutexLock lock(&lifecycle_mutex_);
    if (!started_) return;
  }
  SignalStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (prober_thread_.joinable()) prober_thread_.join();
  {
    MutexLock lock(&conn_mutex_);
    for (auto& conn : conns_) {
      MutexLock conn_lock(&conn->mutex);
      conn->shutdown = true;
      // Wake the thread wherever it is parked: reading the client or
      // waiting on a forwarded upstream response.
      ShutdownConnection(conn->fd);
      if (conn->upstream != nullptr) ShutdownConnection(*conn->upstream);
    }
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  MutexLock lock(&lifecycle_mutex_);
  started_ = false;
  stopped_cv_.NotifyAll();
}

RouterStats Router::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

size_t Router::ShardFor(const std::string& fingerprint) const {
  MutexLock lock(&mutex_);
  return ShardForLocked(fingerprint);
}

size_t Router::ShardForLocked(const std::string& fingerprint) const {
  Fnv1a hash;
  hash.MixString(fingerprint);
  const std::pair<uint64_t, size_t> point(hash.digest(), 0);
  const size_t begin = static_cast<size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), point) - ring_.begin());
  for (size_t step = 0; step < ring_.size(); ++step) {
    const auto& [vnode_hash, shard] = ring_[(begin + step) % ring_.size()];
    (void)vnode_hash;
    if (shards_[shard]->alive) return shard;
  }
  return shards_.size();  // Every shard is dead.
}

void Router::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (stopping_.load()) return;
    if (!accepted.ok()) {
      ADA_LOG(kWarning) << "router: accept failed: "
                        << accepted.status().message();
      // Pace a persistently failing accept (EMFILE-style) instead of
      // spinning; the wait doubles as a stop check.
      MutexLock lock(&lifecycle_mutex_);
      if (stopped_cv_.WaitFor(
              lifecycle_mutex_, 50.0,
              [this]() ADA_REQUIRES(lifecycle_mutex_) {
                return stop_signalled_;
              })) {
        return;
      }
      continue;
    }
    ReapConnections();
    auto conn = std::make_unique<ClientConn>();
    conn->fd = std::move(accepted).value();
    ClientConn* raw = conn.get();
    MutexLock lock(&conn_mutex_);
    if (stopping_.load()) return;  // conn closes on scope exit.
    conns_.push_back(std::move(conn));
    // Registered before started, under the lock: Stop() either sees a
    // joinable thread or no thread at all — never a half-moved handle.
    raw->thread = std::thread([this, raw] { ServeClient(raw); });
  }
}

void Router::ReapConnections() {
  MutexLock lock(&conn_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Router::ServeClient(ClientConn* conn) {
  LineReader reader(conn->fd, options_.max_line_bytes);
  for (;;) {
    auto line = reader.ReadLine();
    if (!line.ok()) break;
    if (line.value().empty()) continue;
    const std::string response = HandleLine(conn, line.value());
    // An empty response means the handler already answered inline
    // (shutdown does, to beat Stop()'s connection teardown).
    if (!response.empty() && !SendAll(conn->fd, response).ok()) break;
    if (stopping_.load()) break;
  }
  conn->done.store(true);
}

std::string Router::HandleLine(ClientConn* conn, const std::string& line) {
  common::MetricsRegistry::Default()
      .GetCounter("service/router_requests")
      .Increment();
  auto request = ParseRequest(line);
  if (!request.ok()) return ErrorResponse(request.status());
  const std::string& verb = request.value().verb;
  if (verb == "submit") return HandleSubmit(conn, request.value().body, line);
  if (verb == "ingest") return HandleIngest(conn, request.value().body, line);
  if (verb == "status" || verb == "result" || verb == "cancel") {
    return HandleJobVerb(conn, request.value().body);
  }
  if (verb == "stats") return HandleStats(conn);
  if (verb == "health") return HandleHealth();
  if (verb == "shutdown") return HandleShutdown(conn);
  if (verb == "ping") {
    Json::Object fields;
    fields["service"] = "ada-health-router";
    return OkResponse(std::move(fields));
  }
  if (verb == "promote" || verb == "replicate") {
    return ErrorResponse(common::InvalidArgumentError(common::StrFormat(
        "verb '%s' is cluster-internal; it is not accepted at the router",
        verb.c_str())));
  }
  return ErrorResponse(common::InvalidArgumentError(
      common::StrFormat("unknown verb '%s'", verb.c_str())));
}

StatusOr<std::string> Router::ForwardRaw(ClientConn* conn, uint16_t port,
                                         const std::string& line,
                                         double recv_timeout_millis) {
  {
    MutexLock lock(&mutex_);
    ++stats_.forwarded;
  }
  ADA_ASSIGN_OR_RETURN(FileDescriptor upstream, ConnectLoopback(port));
  ADA_RETURN_IF_ERROR(SetRecvTimeout(upstream, recv_timeout_millis));
  if (conn != nullptr) {
    MutexLock lock(&conn->mutex);
    if (conn->shutdown) {
      return common::UnavailableError("router is stopping");
    }
    conn->upstream = &upstream;
  }
  StatusOr<std::string> response =
      common::UnavailableError("request not sent");
  if (Status sent = SendAll(upstream, line); !sent.ok()) {
    response = sent;
  } else {
    LineReader reader(upstream, options_.max_line_bytes);
    response = reader.ReadLine();
  }
  if (conn != nullptr) {
    MutexLock lock(&conn->mutex);
    conn->upstream = nullptr;
  }
  return response;
}

std::string Router::HandleSubmit(ClientConn* conn, const Json& body,
                                 const std::string& line) {
  std::string fingerprint;
  if (body.Find("cohort") != nullptr) {
    // Cohort submits route on the cohort name: the routing key must
    // match the one the cohort's ingest batches used, and only the
    // owning shard can materialize the dataset anyway. The shard
    // validates the rest of the body.
    auto cohort = ReadCohortField(body);
    if (!cohort.ok()) return ErrorResponse(cohort.status());
    fingerprint = CohortRoutingKey(cohort.value());
  } else {
    // Validate and fingerprint with the exact code the shard will run
    // on the forwarded line, so router and shard agree on the key byte
    // for byte (the invariant the whole routing scheme rests on).
    auto job_request = BuildJobRequest(body);
    if (!job_request.ok()) return ErrorResponse(job_request.status());
    fingerprint = DatasetFingerprint(job_request.value().log,
                                     job_request.value().options);
  }
  const std::string forward_line = line + "\n";
  Status last_failure = common::UnavailableError("no forward attempted");
  const int attempts = std::max(1, options_.max_forward_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    size_t shard = 0;
    uint16_t port = 0;
    uint64_t generation = 0;
    {
      MutexLock lock(&mutex_);
      shard = ShardForLocked(fingerprint);
      if (shard >= shards_.size()) {
        return ErrorResponse(
            common::UnavailableError("every shard is down"));
      }
      port = shards_[shard]->active_port;
      generation = shards_[shard]->generation;
    }
    auto response = ForwardRaw(conn, port, forward_line,
                               options_.upstream_recv_timeout_millis);
    if (!response.ok()) {
      last_failure = response.status();
      if (stopping_.load()) break;
      HandleShardFailure(shard, generation);
      continue;
    }
    auto parsed = Json::Parse(response.value());
    if (!parsed.ok() || !parsed.value().is_object()) {
      return ErrorResponse(common::InternalError(common::StrFormat(
          "shard %zu returned a malformed response", shard)));
    }
    const Json* ok_field = parsed.value().Find("ok");
    if (ok_field == nullptr || !ok_field->is_bool() || !ok_field->AsBool()) {
      // Server-side rejection (bad request, full queue): pass the
      // shard's error through verbatim, extra fields included.
      return response.value() + "\n";
    }
    const Json* local_id = parsed.value().Find("job_id");
    if (local_id == nullptr || !local_id->is_int()) {
      return ErrorResponse(common::InternalError(common::StrFormat(
          "shard %zu accepted the job without a job_id", shard)));
    }
    JobId global_id = 0;
    {
      MutexLock lock(&mutex_);
      global_id = next_job_id_++;
      JobRoute route;
      route.shard = shard;
      route.local_id = local_id->AsInt();
      route.submit_line = forward_line;
      route.fingerprint = fingerprint;
      routes_[global_id] = std::move(route);
      ++stats_.submitted;
    }
    parsed.value().MutableObject()["job_id"] =
        Json(static_cast<int64_t>(global_id));
    return parsed.value().Dump() + "\n";
  }
  return ErrorResponse(common::UnavailableError(common::StrFormat(
      "shard unavailable after %d attempts: %s", attempts,
      last_failure.ToString().c_str())));
}

std::string Router::HandleIngest(ClientConn* conn, const Json& body,
                                 const std::string& line) {
  auto cohort = ReadCohortField(body);
  if (!cohort.ok()) return ErrorResponse(cohort.status());
  const std::string key = CohortRoutingKey(cohort.value());
  const std::string forward_line = line + "\n";
  // Exactly one forward attempt — ingest, unlike submit, is a
  // non-idempotent write. A recv timeout does not prove the owning
  // shard failed to commit, so a blind resend could double-apply the
  // batch, and re-routing along the ring would append onto a shard
  // that does not hold the cohort's accumulated records (a fresh,
  // silently-forked cohort at generation 1). The failure still feeds
  // failover bookkeeping; the client retries with the `ingest` verb's
  // `expected_generation` replay guard, which the owning shard uses to
  // reject a batch that already committed.
  size_t shard = 0;
  uint16_t port = 0;
  uint64_t generation = 0;
  {
    MutexLock lock(&mutex_);
    shard = ShardForLocked(key);
    if (shard >= shards_.size()) {
      return ErrorResponse(common::UnavailableError("every shard is down"));
    }
    port = shards_[shard]->active_port;
    generation = shards_[shard]->generation;
  }
  auto response = ForwardRaw(conn, port, forward_line,
                             options_.upstream_recv_timeout_millis);
  if (!response.ok()) {
    if (!stopping_.load()) HandleShardFailure(shard, generation);
    return ErrorResponse(common::UnavailableError(common::StrFormat(
        "cohort '%s' owner (shard %zu) did not answer; the batch may or "
        "may not have committed — retry with expected_generation to "
        "guard against a double append: %s",
        cohort.value().c_str(), shard, response.status().ToString().c_str())));
  }
  // Pass through verbatim: ingest responses carry no job id to
  // rewrite, and validation errors come straight from the owner.
  return response.value() + "\n";
}

std::string Router::HandleJobVerb(ClientConn* conn, const Json& body) {
  const Json* id_field = body.Find("job_id");
  if (id_field == nullptr || !id_field->is_int()) {
    return ErrorResponse(common::InvalidArgumentError(
        "request must carry an integer 'job_id'"));
  }
  const JobId global_id = id_field->AsInt();
  Status last_failure = common::UnavailableError("no forward attempted");
  const int attempts = std::max(1, options_.max_forward_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    size_t shard = 0;
    JobId local_id = 0;
    uint16_t port = 0;
    uint64_t generation = 0;
    {
      MutexLock lock(&mutex_);
      auto it = routes_.find(global_id);
      if (it == routes_.end()) {
        return ErrorResponse(
            common::NotFoundError(common::StrFormat(
                "no job with id %lld",
                static_cast<long long>(global_id))),
            JobIdExtra(global_id));
      }
      if (!it->second.redrive_failure.ok()) {
        return ErrorResponse(it->second.redrive_failure,
                             JobIdExtra(global_id));
      }
      shard = it->second.shard;
      local_id = it->second.local_id;
      const ShardState& state = *shards_[shard];
      if (!state.alive) {
        return ErrorResponse(
            common::UnavailableError(common::StrFormat(
                "shard %zu is down and has no follower", shard)),
            JobIdExtra(global_id));
      }
      port = state.active_port;
      generation = state.generation;
    }
    // The forwarded body is the client's, job id rewritten to the
    // shard-local one (which may change between attempts — a failover
    // re-drive assigns fresh local ids).
    Json::Object forward = body.AsObject();
    forward["job_id"] = Json(static_cast<int64_t>(local_id));
    auto response = ForwardRaw(conn, port, Json(std::move(forward)).Dump() + "\n",
                               options_.upstream_recv_timeout_millis);
    if (!response.ok()) {
      last_failure = response.status();
      if (stopping_.load()) break;
      HandleShardFailure(shard, generation);
      continue;
    }
    return RewriteShardResponse(response.value(), global_id);
  }
  return ErrorResponse(
      common::UnavailableError(common::StrFormat(
          "shard unavailable after %d attempts: %s", attempts,
          last_failure.ToString().c_str())),
      JobIdExtra(global_id));
}

std::string Router::RewriteShardResponse(const std::string& response_line,
                                         JobId global_id) {
  auto parsed = Json::Parse(response_line);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return response_line + "\n";  // Unparseable: pass through untouched.
  }
  Json::Object& object = parsed.value().MutableObject();
  if (object.count("job_id") != 0) {
    object["job_id"] = Json(static_cast<int64_t>(global_id));
  }
  const Json* ok_field = parsed.value().Find("ok");
  const Json* state_field = parsed.value().Find("state");
  if (ok_field != nullptr && ok_field->is_bool() && ok_field->AsBool() &&
      state_field != nullptr && state_field->is_string() &&
      IsTerminalStateName(state_field->AsString())) {
    MutexLock lock(&mutex_);
    auto it = routes_.find(global_id);
    if (it != routes_.end() && !it->second.terminal) {
      // First terminal sighting only: a re-driven job that finishes
      // again on the follower must not double-count.
      it->second.terminal = true;
      ++stats_.completed;
    }
  }
  return parsed.value().Dump() + "\n";
}

std::string Router::HandleStats(ClientConn* conn) {
  Json::Array shard_entries;
  Json::Object totals;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    bool alive = false;
    uint16_t port = 0;
    bool using_follower = false;
    {
      MutexLock lock(&mutex_);
      alive = shards_[shard]->alive;
      port = shards_[shard]->active_port;
      using_follower = shards_[shard]->using_follower;
    }
    Json::Object entry;
    entry["shard"] = Json(static_cast<int64_t>(shard));
    entry["port"] = Json(static_cast<int64_t>(port));
    entry["alive"] = Json(alive);
    entry["using_follower"] = Json(using_follower);
    if (alive) {
      auto response = ForwardRaw(conn, port, "{\"verb\":\"stats\"}\n",
                                 options_.probe_timeout_millis);
      StatusOr<Json> stats_json =
          response.ok() ? ParseResponse(response.value())
                        : StatusOr<Json>(response.status());
      if (stats_json.ok()) {
        SumIntFields(totals, stats_json.value().AsObject());
        entry["stats"] = stats_json.value();
      } else {
        entry["error"] = Json(stats_json.status().ToString());
      }
    }
    shard_entries.push_back(Json(std::move(entry)));
  }
  Json::Object router;
  {
    MutexLock lock(&mutex_);
    router["submitted"] = Json(stats_.submitted);
    router["completed"] = Json(stats_.completed);
    router["forwarded"] = Json(stats_.forwarded);
    router["failovers"] = Json(stats_.failovers);
    router["redriven"] = Json(stats_.redriven);
    router["dead_shards"] = Json(stats_.dead_shards);
    router["routes"] = Json(static_cast<int64_t>(routes_.size()));
  }
  Json::Object fields;
  fields["router"] = Json(std::move(router));
  fields["shards"] = Json(std::move(shard_entries));
  fields["totals"] = Json(std::move(totals));
  return OkResponse(std::move(fields));
}

std::string Router::HandleHealth() {
  Json::Object fields;
  fields["service"] = "ada-health-router";
  fields["role"] = "router";
  fields["uptime_seconds"] =
      Json(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time_)
               .count());
  Json::Array shard_entries;
  MutexLock lock(&mutex_);
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    const ShardState& state = *shards_[shard];
    Json::Object entry;
    entry["shard"] = Json(static_cast<int64_t>(shard));
    entry["primary_port"] =
        Json(static_cast<int64_t>(state.endpoints.primary_port));
    entry["follower_port"] =
        Json(static_cast<int64_t>(state.endpoints.follower_port));
    entry["active_port"] = Json(static_cast<int64_t>(state.active_port));
    entry["alive"] = Json(state.alive);
    entry["using_follower"] = Json(state.using_follower);
    entry["generation"] = Json(static_cast<int64_t>(state.generation));
    entry["consecutive_probe_failures"] =
        Json(static_cast<int64_t>(state.consecutive_probe_failures));
    shard_entries.push_back(Json(std::move(entry)));
  }
  fields["shards"] = Json(std::move(shard_entries));
  fields["failovers"] = Json(stats_.failovers);
  fields["redriven"] = Json(stats_.redriven);
  fields["routes"] = Json(static_cast<int64_t>(routes_.size()));
  return OkResponse(std::move(fields));
}

std::string Router::HandleShutdown(ClientConn* conn) {
  // Cascade before stopping: every live endpoint — the active port and
  // a not-yet-promoted follower — gets a graceful shutdown, so
  // `ada_client --router shutdown` tears the whole cluster down.
  std::vector<uint16_t> ports;
  {
    MutexLock lock(&mutex_);
    for (const auto& shard : shards_) {
      if (shard->alive) ports.push_back(shard->active_port);
      if (!shard->using_follower && shard->endpoints.follower_port != 0) {
        ports.push_back(shard->endpoints.follower_port);
      }
    }
  }
  for (uint16_t port : ports) {
    if (auto response = ForwardRaw(conn, port, kShutdownLine,
                                   options_.probe_timeout_millis);
        !response.ok()) {
      ADA_LOG(kWarning) << "router: shutdown cascade to port " << port
                        << " failed: " << response.status().message();
    }
  }
  // Answer the client *before* signalling stop: the moment Wait()
  // returns, the main thread's Stop() closes every client connection,
  // and it must not win the race against this response.
  Json::Object fields;
  fields["stopping"] = true;
  if (common::Status sent = SendAll(conn->fd, OkResponse(std::move(fields)));
      !sent.ok()) {
    ADA_LOG(kWarning) << "router: shutdown response lost: "
                      << sent.message();
  }
  SignalStop();
  return std::string();
}

bool Router::ProbePort(uint16_t port) {
  auto response =
      ForwardRaw(nullptr, port, kPingLine, options_.probe_timeout_millis);
  if (!response.ok()) return false;
  return ParseResponse(response.value()).ok();
}

void Router::ProbeLoop() {
  for (;;) {
    {
      MutexLock lock(&lifecycle_mutex_);
      if (stopped_cv_.WaitFor(lifecycle_mutex_,
                              options_.probe_interval_millis,
                              [this]() ADA_REQUIRES(lifecycle_mutex_) {
                                return stop_signalled_;
                              })) {
        return;
      }
    }
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      bool alive = false;
      uint16_t port = 0;
      uint64_t generation = 0;
      {
        MutexLock lock(&mutex_);
        alive = shards_[shard]->alive;
        port = shards_[shard]->active_port;
        generation = shards_[shard]->generation;
      }
      if (!alive) continue;
      if (stopping_.load()) return;
      if (ProbePort(port)) {
        MutexLock lock(&mutex_);
        if (shards_[shard]->generation == generation) {
          shards_[shard]->consecutive_probe_failures = 0;
        }
        continue;
      }
      int failures = 0;
      {
        MutexLock lock(&mutex_);
        ShardState& state = *shards_[shard];
        if (state.generation != generation || !state.alive) continue;
        failures = ++state.consecutive_probe_failures;
      }
      if (failures >= options_.probe_failures_before_failover) {
        HandleShardFailure(shard, generation);
      }
    }
  }
}

void Router::HandleShardFailure(size_t shard, uint64_t observed_generation) {
  ShardState& state = *shards_[shard];
  // One failover at a time per shard: concurrent forwarding threads
  // reporting the same dead primary queue up here; all but the first
  // see the bumped generation and leave.
  MutexLock failover_lock(&state.failover_mutex);
  uint16_t active_port = 0;
  {
    MutexLock lock(&mutex_);
    if (!state.alive || state.generation != observed_generation) return;
    active_port = state.active_port;
  }
  // Verify the death with one fresh round-trip: a single torn
  // connection or dropped response must not promote a follower while
  // the primary still serves — that is the spurious-failover path that
  // double-runs jobs.
  if (ProbePort(active_port)) {
    MutexLock lock(&mutex_);
    if (state.generation == observed_generation) {
      state.consecutive_probe_failures = 0;
    }
    return;
  }
  const bool has_follower =
      !state.using_follower && state.endpoints.follower_port != 0;
  ADA_LOG(kWarning) << "router: shard " << shard << " (port " << active_port
                    << ") is dead; "
                    << (has_follower ? "promoting follower"
                                     : "no follower left");
  const bool promoted = has_follower && PromoteAndRedrive(state, shard);
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  MutexLock lock(&mutex_);
  if (promoted) {
    state.active_port = state.endpoints.follower_port;
    state.using_follower = true;
    state.consecutive_probe_failures = 0;
    ++state.generation;
    ++stats_.failovers;
    metrics.GetCounter("service/router_failovers").Increment();
    ADA_LOG(kInfo) << "router: shard " << shard << " now served by port "
                   << state.active_port;
  } else {
    state.alive = false;
    ++state.generation;
    ++stats_.dead_shards;
    metrics.GetCounter("service/router_dead_shards").Increment();
    for (auto& [id, route] : routes_) {
      if (route.shard == shard && route.redrive_failure.ok() &&
          !route.terminal) {
        route.redrive_failure = common::UnavailableError(common::StrFormat(
            "shard %zu died with no follower to fail over to", shard));
      }
    }
  }
}

bool Router::PromoteAndRedrive(ShardState& state, size_t shard) {
  const uint16_t follower = state.endpoints.follower_port;
  common::RetryPolicy policy;
  policy.max_attempts = std::max(1, options_.promote_connect_retries + 1);
  policy.initial_backoff_millis = 25.0;
  policy.max_backoff_millis = 500.0;
  policy.retryable_codes = {common::StatusCode::kUnavailable};
  Status promoted = common::RetryWithPolicy(
      policy, "service.router.promote", [this, follower] {
        auto response = ForwardRaw(nullptr, follower, kPromoteLine,
                                   options_.probe_timeout_millis);
        if (!response.ok()) return response.status();
        return ParseResponse(response.value()).status();
      });
  if (!promoted.ok()) {
    ADA_LOG(kError) << "router: shard " << shard
                    << " follower promotion failed: " << promoted.ToString();
    return false;
  }
  // Re-drive every routed job — terminal ones included, so their
  // status/result queries keep working against the follower (the
  // replicated cache answers them without a second session run).
  std::vector<std::pair<JobId, std::string>> to_redrive;
  {
    MutexLock lock(&mutex_);
    for (const auto& [id, route] : routes_) {
      if (route.shard == shard && route.redrive_failure.ok()) {
        to_redrive.emplace_back(id, route.submit_line);
      }
    }
  }
  for (const auto& [id, submit_line] : to_redrive) {
    auto response = ForwardRaw(nullptr, follower, submit_line,
                               options_.upstream_recv_timeout_millis);
    StatusOr<Json> parsed = response.ok()
                                ? ParseResponse(response.value())
                                : StatusOr<Json>(response.status());
    MutexLock lock(&mutex_);
    auto it = routes_.find(id);
    if (it == routes_.end()) continue;
    if (!parsed.ok()) {
      it->second.redrive_failure = common::UnavailableError(
          common::StrFormat("failover re-drive failed: %s",
                            parsed.status().ToString().c_str()));
      continue;
    }
    const Json* local_id = parsed.value().Find("job_id");
    if (local_id == nullptr || !local_id->is_int()) {
      it->second.redrive_failure = common::InternalError(
          "failover re-drive got no job_id from the follower");
      continue;
    }
    it->second.local_id = local_id->AsInt();
    ++stats_.redriven;
    common::MetricsRegistry::Default()
        .GetCounter("service/router_redriven")
        .Increment();
  }
  return true;
}

}  // namespace service
}  // namespace adahealth
