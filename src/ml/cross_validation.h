// Stratified k-fold cross-validation. The paper evaluates the cluster
// robustness classifier with "10-fold cross validation" (§IV-B); this
// module provides the fold construction and the pooled evaluation.
#ifndef ADAHEALTH_ML_CROSS_VALIDATION_H_
#define ADAHEALTH_ML_CROSS_VALIDATION_H_

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/metrics.h"

namespace adahealth {
namespace ml {

/// One train/test partition.
struct Fold {
  std::vector<size_t> train_ids;
  std::vector<size_t> test_ids;
};

/// Builds `num_folds` stratified folds: each class's samples are
/// shuffled (seeded) and dealt round-robin, so per-fold class
/// proportions track the global ones. Requires 2 <= num_folds <=
/// labels.size() and labels in [0, num_classes).
[[nodiscard]] common::StatusOr<std::vector<Fold>> StratifiedKFold(
    const std::vector<int32_t>& labels, int32_t num_classes,
    int32_t num_folds, uint64_t seed);

/// Runs k-fold cross-validation: for each fold, trains a fresh
/// classifier from `factory` on the training split and predicts the
/// test split; all test predictions are pooled into one
/// ClassificationReport (each sample is tested exactly once).
[[nodiscard]] common::StatusOr<ClassificationReport> CrossValidate(
    const transform::Matrix& features, const std::vector<int32_t>& labels,
    int32_t num_classes, int32_t num_folds, uint64_t seed,
    const ClassifierFactory& factory);

}  // namespace ml
}  // namespace adahealth

#endif  // ADAHEALTH_ML_CROSS_VALIDATION_H_
