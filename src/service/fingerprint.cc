#include "service/fingerprint.h"

#include <cstring>

#include "common/string_util.h"
#include "stats/meta_features.h"
#include "transform/vsm.h"

namespace adahealth {
namespace service {

namespace {

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void AppendKMeans(std::string& out, const cluster::KMeansOptions& kmeans) {
  out += common::StrFormat(
      "k=%d init=%d max_iter=%d seed=%llu engine=%d warm_rows=%zu;",
      kmeans.k, static_cast<int>(kmeans.init), kmeans.max_iterations,
      static_cast<unsigned long long>(kmeans.seed),
      static_cast<int>(kmeans.engine), kmeans.initial_centroids.rows());
}

void AppendVsm(std::string& out, const transform::VsmOptions& vsm) {
  out += common::StrFormat("%s/%s;", transform::VsmWeightingName(vsm.weighting),
                           transform::VsmNormalizationName(vsm.normalization));
}

}  // namespace

Fnv1a& Fnv1a::Mix(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= kFnvPrime;
  }
  return *this;
}

Fnv1a& Fnv1a::MixString(std::string_view text) {
  MixInt(static_cast<int64_t>(text.size()));  // Length-prefix: "ab","c"
  return Mix(text.data(), text.size());       // never equals "a","bc".
}

Fnv1a& Fnv1a::MixInt(int64_t value) { return Mix(&value, sizeof(value)); }

Fnv1a& Fnv1a::MixDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return Mix(&bits, sizeof(bits));
}

std::string SessionOptionsSignature(const core::SessionOptions& options) {
  // SessionOptions::warm is deliberately NOT part of the signature:
  // the session's identity gate guarantees a warm hint can only change
  // which (equivalent-or-better) solution the sweep converges to, and
  // the delta-vs-cold tests pin report byte-identity on the scenarios
  // the cohort store serves — so a delta job and a cold job over the
  // same accumulated data must share one fingerprint, letting the
  // result cache dedup them.
  std::string out;
  out += "dataset_id=" + options.dataset_id + ";";

  out += "transform:";
  for (const transform::VsmOptions& candidate :
       options.transform.candidates) {
    AppendVsm(out, candidate);
  }
  out += common::StrFormat(
      "sample=%.17g proxy_k=%d seed=%llu;", options.transform.sample_fraction,
      options.transform.proxy_k,
      static_cast<unsigned long long>(options.transform.seed));

  out += "partial:";
  for (double fraction : options.partial.fractions) {
    out += common::StrFormat("%.17g,", fraction);
  }
  out += "ks=";
  for (int32_t k : options.partial.ks) out += common::StrFormat("%d,", k);
  out += common::StrFormat("tol=%.17g restarts=%d ", options.partial.tolerance,
                           options.partial.restarts);
  AppendVsm(out, options.partial.vsm);
  AppendKMeans(out, options.partial.kmeans);

  out += "optimizer:ks=";
  for (int32_t k : options.optimizer.candidate_ks) {
    out += common::StrFormat("%d,", k);
  }
  out += common::StrFormat(
      "cv=%d restarts=%d model=%d threads=%zu seed=%llu ",
      options.optimizer.cv_folds, options.optimizer.restarts,
      static_cast<int>(options.optimizer.model), options.optimizer.num_threads,
      static_cast<unsigned long long>(options.optimizer.seed));
  AppendKMeans(out, options.optimizer.kmeans);

  out += common::StrFormat(
      "patterns:s0=%.17g s1=%.17g s2=%.17g max=%zu;",
      options.pattern_mining.min_support_level0,
      options.pattern_mining.min_support_level1,
      options.pattern_mining.min_support_level2,
      options.pattern_mining.max_itemset_size);
  out += common::StrFormat("rules:conf=%.17g lift=%.17g;",
                           options.rules.min_confidence,
                           options.rules.min_lift);
  out += common::StrFormat("select=%zu raw=%d", options.max_selected_items,
                           options.store_raw_dataset ? 1 : 0);
  return out;
}

std::string DatasetFingerprint(const dataset::ExamLog& log,
                               const core::SessionOptions& options) {
  Fnv1a hasher;

  // (a) The §2.1 statistical descriptors.
  stats::MetaFeatures features = stats::ComputeMetaFeatures(log);
  for (double value : features.ToVector()) hasher.MixDouble(value);

  // (b) Dataset content: the record stream plus the dictionary names
  // (which surface verbatim in knowledge-item descriptions).
  hasher.MixInt(static_cast<int64_t>(log.num_patients()));
  for (const dataset::ExamRecord& record : log.records()) {
    hasher.MixInt(record.patient);
    hasher.MixInt(record.exam_type);
    hasher.MixInt(record.day);
  }
  for (size_t exam = 0; exam < log.num_exam_types(); ++exam) {
    hasher.MixString(log.dictionary().Name(static_cast<int32_t>(exam)));
  }

  // (c) Every report-affecting option.
  hasher.MixString(SessionOptionsSignature(options));

  return common::StrFormat("%016llx",
                           static_cast<unsigned long long>(hasher.digest()));
}

}  // namespace service
}  // namespace adahealth
