// Random forest classifier: bagged CART trees over bootstrap samples
// and per-tree random feature subspaces, majority-vote prediction.
// The strongest of the cluster-robustness assessors; also exercises
// the paper's idea of combining "different ... machine learning
// criteria" (§III) to evaluate extracted knowledge.
#ifndef ADAHEALTH_ML_RANDOM_FOREST_H_
#define ADAHEALTH_ML_RANDOM_FOREST_H_

#include <memory>

#include "ml/decision_tree.h"

namespace adahealth {
namespace ml {

struct RandomForestOptions {
  /// Number of trees (>= 1).
  int32_t num_trees = 20;
  /// Fraction of features drawn (without replacement) per tree, in
  /// (0, 1]; at least one feature is always used.
  double feature_fraction = 0.7;
  /// Options of every member tree.
  DecisionTreeOptions tree;
  uint64_t seed = 1;
};

/// Bagging ensemble of DecisionTreeClassifier. Deterministic in
/// (data, options).
class RandomForestClassifier final : public Classifier {
 public:
  explicit RandomForestClassifier(
      RandomForestOptions options = RandomForestOptions())
      : options_(options) {}

  [[nodiscard]] common::Status Fit(const transform::Matrix& features,
                     const std::vector<int32_t>& labels,
                     int32_t num_classes) override;

  int32_t Predict(std::span<const double> features) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  struct Member {
    DecisionTreeClassifier tree;
    /// Columns of the original feature space this tree sees.
    std::vector<size_t> feature_ids;
  };

  RandomForestOptions options_;
  int32_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<Member> trees_;
};

}  // namespace ml
}  // namespace adahealth

#endif  // ADAHEALTH_ML_RANDOM_FOREST_H_
