// k-nearest-neighbours classifier (brute force). A third, bias-free
// cluster-robustness assessor for the optimizer ablation: it measures
// boundary stability directly, without the axis-aligned bias of the
// decision tree or the independence assumption of naive Bayes.
#ifndef ADAHEALTH_ML_KNN_H_
#define ADAHEALTH_ML_KNN_H_

#include "ml/classifier.h"

namespace adahealth {
namespace ml {

struct KnnOptions {
  /// Number of neighbours voting; clamped to the training-set size.
  int32_t k = 5;
};

/// Majority-vote k-NN with Euclidean distance. Fit stores a copy of
/// the training data. Ties break toward the smaller class label.
class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnOptions options = KnnOptions())
      : options_(options) {}

  [[nodiscard]] common::Status Fit(const transform::Matrix& features,
                     const std::vector<int32_t>& labels,
                     int32_t num_classes) override;

  int32_t Predict(std::span<const double> features) const override;

 private:
  KnnOptions options_;
  int32_t num_classes_ = 0;
  transform::Matrix train_features_;
  std::vector<int32_t> train_labels_;
};

}  // namespace ml
}  // namespace adahealth

#endif  // ADAHEALTH_ML_KNN_H_
