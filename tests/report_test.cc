#include "core/report.h"

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace core {
namespace {

const SessionResult& RunOnce() {
  static const SessionResult* kResult = [] {
    auto cohort = dataset::SyntheticCohortGenerator(
                      dataset::TestScaleConfig())
                      .Generate();
    EXPECT_TRUE(cohort.ok());
    static kdb::Database db;
    AnalysisSession session(&db);
    SessionOptions options;
    options.dataset_id = "report-cohort";
    options.optimizer.candidate_ks = {3, 4};
    options.optimizer.cv_folds = 4;
    auto result = session.Run(cohort->log, &cohort->taxonomy, options);
    EXPECT_TRUE(result.ok());
    return new SessionResult(std::move(result).value());
  }();
  return *kResult;
}

TEST(ReportTest, ContainsAllSections) {
  std::string md = RenderSessionReport(RunOnce(), "report-cohort");
  EXPECT_NE(md.find("# ADA-HEALTH analysis report: report-cohort"),
            std::string::npos);
  EXPECT_NE(md.find("## Dataset characterization"), std::string::npos);
  EXPECT_NE(md.find("## Selected transformation"), std::string::npos);
  EXPECT_NE(md.find("## Adaptive partial mining"), std::string::npos);
  EXPECT_NE(md.find("## Algorithm optimization"), std::string::npos);
  EXPECT_NE(md.find("## Knowledge items"), std::string::npos);
  EXPECT_NE(md.find("**selected**"), std::string::npos);
}

TEST(ReportTest, OptionalSectionsCanBeDisabled) {
  ReportOptions options;
  options.include_optimizer_table = false;
  options.include_partial_mining = false;
  std::string md = RenderSessionReport(RunOnce(), "x", options);
  EXPECT_EQ(md.find("## Algorithm optimization"), std::string::npos);
  EXPECT_EQ(md.find("## Adaptive partial mining"), std::string::npos);
  EXPECT_NE(md.find("## Knowledge items"), std::string::npos);
}

TEST(ReportTest, MaxItemsTruncatesWithFootnote) {
  const SessionResult& result = RunOnce();
  ReportOptions options;
  options.max_items = 1;
  std::string md = RenderSessionReport(result, "x", options);
  EXPECT_NE(md.find("1. **["), std::string::npos);
  EXPECT_EQ(md.find("2. **["), std::string::npos);
  if (result.knowledge.size() > 1) {
    EXPECT_NE(md.find("further items in the K-DB"), std::string::npos);
  }
}

TEST(ReportTest, ListsTopKnowledgeItemDescriptions) {
  const SessionResult& result = RunOnce();
  std::string md = RenderSessionReport(result, "x");
  ASSERT_FALSE(result.knowledge.empty());
  EXPECT_NE(md.find(result.knowledge.front().description),
            std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace adahealth
