// End-to-end ADA-HEALTH analysis session — the orchestration of every
// architecture block of the paper's Figure 1:
//
//   characterize -> select transformation -> adaptive partial mining
//   -> algorithm optimization -> knowledge extraction (clusters,
//   generalized itemsets, association rules) -> K-DB storage ->
//   feedback-adaptive ranking.
#ifndef ADAHEALTH_CORE_SESSION_H_
#define ADAHEALTH_CORE_SESSION_H_

#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/knowledge.h"
#include "core/optimizer.h"
#include "core/partial_mining.h"
#include "core/ranking.h"
#include "core/transform_selector.h"
#include "dataset/synthetic_cohort.h"
#include "kdb/database.h"
#include "patterns/generalized.h"
#include "patterns/rules.h"

namespace adahealth {
namespace core {

struct SessionOptions {
  /// Identifier under which artifacts are stored in the K-DB.
  std::string dataset_id = "dataset";
  TransformSelectorOptions transform;
  PartialMiningOptions partial;
  OptimizerOptions optimizer;
  /// Pattern mining (requires a taxonomy; skipped when absent).
  patterns::GeneralizedMiningOptions pattern_mining;
  patterns::RuleOptions rules;
  /// Cap on stored "selected knowledge" items (K-DB collection 5);
  /// the paper's goal is "a manageable set of knowledge".
  size_t max_selected_items = 12;
  /// Skip the raw-dataset upload to the K-DB (it is large).
  bool store_raw_dataset = false;
};

struct SessionResult {
  CharacterizationReport characterization;
  TransformSelection transform;
  PartialMiningResult partial;
  OptimizerResult optimizer;
  /// All extracted knowledge items, ranked.
  std::vector<KnowledgeItem> knowledge;
  /// Multi-line human-readable run summary.
  std::string summary;
};

/// One analysis session against a K-DB instance.
class AnalysisSession {
 public:
  /// `db` must outlive the session; the schema is created on demand.
  explicit AnalysisSession(kdb::Database* db);

  /// Runs the full pipeline on `log`. `taxonomy` may be null (pattern
  /// mining is then skipped).
  [[nodiscard]] common::StatusOr<SessionResult> Run(const dataset::ExamLog& log,
                                      const dataset::Taxonomy* taxonomy,
                                      const SessionOptions& options);

 private:
  kdb::Database* db_;
};

/// Builds one knowledge item per cluster of `clustering`, profiled by
/// lift-distinctive exams. Exposed for reuse by examples. Returns
/// INVALID_ARGUMENT when `vsm` and `clustering` shapes disagree
/// (previously such errors were silently swallowed into an empty list).
[[nodiscard]] common::StatusOr<std::vector<KnowledgeItem>>
ClusterKnowledgeItems(const dataset::ExamLog& log,
                      const transform::Matrix& vsm,
                      const cluster::Clustering& clustering);

/// Builds a knowledge item listing the `top_n` most atypical patients
/// (centroid-relative outlier scores). An empty result (no outliers) is
/// OK; shape mismatches are INVALID_ARGUMENT.
[[nodiscard]] common::StatusOr<std::vector<KnowledgeItem>>
OutlierKnowledgeItems(const transform::Matrix& vsm,
                      const cluster::Clustering& clustering,
                      size_t top_n = 10);

}  // namespace core
}  // namespace adahealth

#endif  // ADAHEALTH_CORE_SESSION_H_
