#include "stats/meta_features.h"

#include <set>
#include <utility>

#include "stats/descriptors.h"

namespace adahealth {
namespace stats {

using common::Json;

Json MetaFeatures::ToJson() const {
  Json::Object object;
  object["num_patients"] = Json(num_patients);
  object["num_exam_types"] = Json(num_exam_types);
  object["num_records"] = Json(num_records);
  object["density"] = Json(density);
  object["mean_records_per_patient"] = Json(mean_records_per_patient);
  object["stddev_records_per_patient"] = Json(stddev_records_per_patient);
  object["exam_frequency_entropy"] = Json(exam_frequency_entropy);
  object["exam_frequency_gini"] = Json(exam_frequency_gini);
  object["top20_coverage"] = Json(top20_coverage);
  object["top40_coverage"] = Json(top40_coverage);
  object["mean_patient_coverage"] = Json(mean_patient_coverage);
  return Json(std::move(object));
}

common::StatusOr<MetaFeatures> MetaFeatures::FromJson(const Json& json) {
  if (!json.is_object()) {
    return common::InvalidArgumentError("meta-features JSON must be object");
  }
  MetaFeatures out;
  auto read_int = [&](const char* key, int64_t& target) {
    const Json* field = json.Find(key);
    if (field != nullptr && field->is_number()) {
      target = static_cast<int64_t>(field->AsDouble());
    }
  };
  auto read_double = [&](const char* key, double& target) {
    const Json* field = json.Find(key);
    if (field != nullptr && field->is_number()) target = field->AsDouble();
  };
  read_int("num_patients", out.num_patients);
  read_int("num_exam_types", out.num_exam_types);
  read_int("num_records", out.num_records);
  read_double("density", out.density);
  read_double("mean_records_per_patient", out.mean_records_per_patient);
  read_double("stddev_records_per_patient", out.stddev_records_per_patient);
  read_double("exam_frequency_entropy", out.exam_frequency_entropy);
  read_double("exam_frequency_gini", out.exam_frequency_gini);
  read_double("top20_coverage", out.top20_coverage);
  read_double("top40_coverage", out.top40_coverage);
  read_double("mean_patient_coverage", out.mean_patient_coverage);
  return out;
}

std::vector<double> MetaFeatures::ToVector() const {
  return {static_cast<double>(num_patients),
          static_cast<double>(num_exam_types),
          static_cast<double>(num_records),
          density,
          mean_records_per_patient,
          stddev_records_per_patient,
          exam_frequency_entropy,
          exam_frequency_gini,
          top20_coverage,
          top40_coverage,
          mean_patient_coverage};
}

std::vector<std::string> MetaFeatures::FeatureNames() {
  return {"num_patients",
          "num_exam_types",
          "num_records",
          "density",
          "mean_records_per_patient",
          "stddev_records_per_patient",
          "exam_frequency_entropy",
          "exam_frequency_gini",
          "top20_coverage",
          "top40_coverage",
          "mean_patient_coverage"};
}

MetaFeatures ComputeMetaFeatures(const dataset::ExamLog& log) {
  MetaFeatures features;
  features.num_patients = static_cast<int64_t>(log.num_patients());
  features.num_exam_types = static_cast<int64_t>(log.num_exam_types());
  features.num_records = static_cast<int64_t>(log.num_records());

  // Density of the patient x exam count matrix.
  std::set<std::pair<int32_t, int32_t>> cells;
  for (const auto& record : log.records()) {
    cells.emplace(record.patient, record.exam_type);
  }
  const double total_cells = static_cast<double>(log.num_patients()) *
                             static_cast<double>(log.num_exam_types());
  features.density =
      total_cells > 0.0 ? static_cast<double>(cells.size()) / total_cells
                        : 0.0;

  Summary per_patient = Summarize(log.RecordsPerPatient());
  features.mean_records_per_patient = per_patient.mean;
  features.stddev_records_per_patient = per_patient.stddev;

  std::vector<int64_t> frequencies = log.ExamFrequencies();
  features.exam_frequency_entropy = NormalizedEntropy(frequencies);
  features.exam_frequency_gini = GiniCoefficient(frequencies);
  features.top20_coverage = TopFractionCoverage(frequencies, 0.20);
  features.top40_coverage = TopFractionCoverage(frequencies, 0.40);

  std::vector<int64_t> patients_per_exam = log.PatientsPerExam();
  double coverage_sum = 0.0;
  for (int64_t c : patients_per_exam) {
    coverage_sum += log.num_patients() > 0
                        ? static_cast<double>(c) /
                              static_cast<double>(log.num_patients())
                        : 0.0;
  }
  features.mean_patient_coverage =
      patients_per_exam.empty()
          ? 0.0
          : coverage_sum / static_cast<double>(patients_per_exam.size());
  return features;
}

}  // namespace stats
}  // namespace adahealth
