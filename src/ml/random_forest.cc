#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace adahealth {
namespace ml {

using common::Status;
using transform::Matrix;

Status RandomForestClassifier::Fit(const Matrix& features,
                                   const std::vector<int32_t>& labels,
                                   int32_t num_classes) {
  if (features.rows() == 0 || features.cols() == 0) {
    return common::InvalidArgumentError("empty training data");
  }
  if (labels.size() != features.rows()) {
    return common::InvalidArgumentError("label count != sample count");
  }
  if (num_classes < 1) {
    return common::InvalidArgumentError("num_classes must be >= 1");
  }
  if (options_.num_trees < 1) {
    return common::InvalidArgumentError("num_trees must be >= 1");
  }
  if (options_.feature_fraction <= 0.0 || options_.feature_fraction > 1.0) {
    return common::InvalidArgumentError(
        "feature_fraction must be in (0, 1]");
  }

  num_classes_ = num_classes;
  num_features_ = features.cols();
  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_trees));

  common::Rng rng(options_.seed);
  const size_t n = features.rows();
  size_t features_per_tree = std::max<size_t>(
      1, static_cast<size_t>(
             std::llround(options_.feature_fraction *
                          static_cast<double>(num_features_))));

  for (int32_t t = 0; t < options_.num_trees; ++t) {
    Member member;
    member.feature_ids =
        rng.SampleWithoutReplacement(num_features_, features_per_tree);
    std::sort(member.feature_ids.begin(), member.feature_ids.end());

    // Bootstrap sample of the rows (with replacement).
    std::vector<size_t> row_ids(n);
    std::vector<int32_t> boot_labels(n);
    for (size_t i = 0; i < n; ++i) {
      row_ids[i] = static_cast<size_t>(rng.UniformUint64(n));
      boot_labels[i] = labels[row_ids[i]];
    }
    Matrix boot =
        features.SelectRows(row_ids).SelectColumns(member.feature_ids);

    member.tree = DecisionTreeClassifier(options_.tree);
    Status fit = member.tree.Fit(boot, boot_labels, num_classes);
    if (!fit.ok()) return fit;
    trees_.push_back(std::move(member));
  }
  return common::OkStatus();
}

int32_t RandomForestClassifier::Predict(
    std::span<const double> features) const {
  ADA_CHECK(!trees_.empty());
  ADA_CHECK_EQ(features.size(), num_features_);
  std::vector<int64_t> votes(static_cast<size_t>(num_classes_), 0);
  std::vector<double> projected;
  for (const Member& member : trees_) {
    projected.resize(member.feature_ids.size());
    for (size_t i = 0; i < member.feature_ids.size(); ++i) {
      projected[i] = features[member.feature_ids[i]];
    }
    ++votes[static_cast<size_t>(member.tree.Predict(projected))];
  }
  int32_t best = 0;
  for (int32_t c = 1; c < num_classes_; ++c) {
    if (votes[static_cast<size_t>(c)] > votes[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

}  // namespace ml
}  // namespace adahealth
