// Race-stress tests for the concurrency claims in common/: ThreadPool
// (enqueue during shutdown, exception propagation, concurrent
// ParallelFor) and MetricsRegistry (concurrent instrument creation,
// updates, Reset, and JSON export). The assertions matter in every
// build mode, but the tests earn their keep under
// -DADA_SANITIZE=thread, where TSAN checks the interleavings
// themselves; keep iteration counts modest so the TSAN build stays
// fast.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace adahealth {
namespace common {
namespace {

TEST(ThreadPoolStressTest, EnqueueDuringShutdownNeverLosesAcceptedTasks) {
  // Producers race TrySchedule against Shutdown. The invariant: every
  // task TrySchedule accepted is executed (Shutdown drains the queue);
  // rejected tasks are dropped cleanly. The pool object outlives the
  // producers — only the *shutdown* may race, not the destructor.
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 200;
  for (int round = 0; round < 5; ++round) {
    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> executed{0};
    std::atomic<bool> start{false};
    ThreadPool pool(3);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        while (!start.load()) std::this_thread::yield();
        for (int i = 0; i < kTasksPerProducer; ++i) {
          if (pool.TrySchedule([&executed] { executed.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    start.store(true);
    pool.Shutdown();  // Races the producers' TrySchedule calls.
    for (auto& producer : producers) producer.join();
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

TEST(ThreadPoolStressTest, ExceptionsFromConcurrentTasksAreAllCounted) {
  ThreadPool pool(4);
  constexpr int kTasks = 400;
  std::atomic<int64_t> completed{0};
  for (int i = 0; i < kTasks; ++i) {
    if (i % 4 == 0) {
      pool.Schedule([] { throw std::runtime_error("stress failure"); });
    } else {
      pool.Schedule([&completed] { completed.fetch_add(1); });
    }
  }
  pool.Wait();
  EXPECT_EQ(completed.load(), kTasks - kTasks / 4);
  EXPECT_EQ(pool.failed_tasks(), static_cast<size_t>(kTasks / 4));
  EXPECT_EQ(pool.first_failure_message(), "stress failure");
}

TEST(ThreadPoolStressTest, ConcurrentParallelForsShareOnePool) {
  ThreadPool pool(4);
  constexpr size_t kRange = 512;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(3);
  for (int d = 0; d < 3; ++d) {
    drivers.emplace_back([&] {
      ParallelFor(pool, 0, kRange, [&](size_t) { total.fetch_add(1); });
    });
  }
  for (auto& driver : drivers) driver.join();
  EXPECT_EQ(total.load(), static_cast<int64_t>(3 * kRange));
}

TEST(MetricsStressTest, ConcurrentCounterGaugeHistogramUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      // Mix hits on shared instruments (contended atomics) with
      // first-use creation of per-thread ones (contended map insert).
      Counter& shared = registry.GetCounter("stress/shared");
      for (int i = 0; i < kIterations; ++i) {
        shared.Increment();
        registry.GetCounter("stress/thread_" + std::to_string(t))
            .Increment();
        registry.GetGauge("stress/gauge").Set(static_cast<double>(i));
        registry.GetHistogram("stress/latency")
            .Record(1e-6 * static_cast<double>(i % 100));
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(registry.GetCounter("stress/shared").value(),
            static_cast<int64_t>(kThreads) * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        registry.GetCounter("stress/thread_" + std::to_string(t)).value(),
        kIterations);
  }
  EXPECT_EQ(registry.GetHistogram("stress/latency").count(),
            static_cast<int64_t>(kThreads) * kIterations);
}

TEST(MetricsStressTest, JsonExportRacesUpdatesAndReset) {
  // Writers update instruments while one thread repeatedly exports the
  // registry to JSON and another Reset()s it; the exported snapshots
  // must always be structurally valid, whatever the interleaving.
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> workers;
  workers.reserve(kWriters + 2);
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&registry, &stop] {
      while (!stop.load()) {
        registry.GetCounter("export/counter").Increment();
        registry.GetGauge("export/gauge").Set(1.0);
        registry.GetHistogram("export/latency").Record(1e-5);
      }
    });
  }
  std::atomic<int> exports{0};
  workers.emplace_back([&registry, &stop, &exports] {
    while (!stop.load()) {
      Json snapshot = registry.ToJson();
      ASSERT_TRUE(snapshot.is_object());
      ASSERT_NE(snapshot.Find("counters"), nullptr);
      ASSERT_NE(snapshot.Find("histograms"), nullptr);
      exports.fetch_add(1);
    }
  });
  workers.emplace_back([&registry, &stop] {
    while (!stop.load()) {
      registry.Reset();
      std::this_thread::yield();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& worker : workers) worker.join();
  EXPECT_GT(exports.load(), 0);
}

TEST(MetricsStressTest, PipelineMetricsUnderThreadPoolLoad) {
  // The realistic composition: pool workers record into the default
  // registry the way optimizer/k-means stages do (ScopedTimer +
  // counters), while the driver thread polls ToJson.
  MetricsRegistry registry;
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Schedule([&registry] {
      ScopedTimer timer(registry, "stress/task_seconds");
      registry.GetCounter("stress/tasks").Increment();
    });
    if (i % 16 == 0) {
      Json snapshot = registry.ToJson();
      ASSERT_TRUE(snapshot.is_object());
    }
  }
  pool.Wait();
  EXPECT_EQ(registry.GetCounter("stress/tasks").value(), kTasks);
  EXPECT_EQ(registry.GetHistogram("stress/task_seconds").count(), kTasks);
}

}  // namespace
}  // namespace common
}  // namespace adahealth
