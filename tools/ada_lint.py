#!/usr/bin/env python3
"""Repo-specific lint rules for ADA-HEALTH that clang-tidy cannot express.

Usage:
    tools/ada_lint.py [--list-rules] [paths...]

With no paths, lints src/, tests/, bench/, tools/, and examples/
relative to the repo root
(the parent of this script's directory). Paths may be files or
directories; only .h/.cc/.cpp files are considered. Exit status is 0
when the tree is clean and 1 when any finding is reported.

Rules
-----
  include-guard     Headers use #ifndef/#define guards named
                    ADAHEALTH_<PATH>_H_, where <PATH> is the file path
                    uppercased with separators and dots as underscores.
                    Library headers drop the leading src/ (the include
                    root): src/kdb/query.h -> ADAHEALTH_KDB_QUERY_H_,
                    tests/test_util.h -> ADAHEALTH_TESTS_TEST_UTIL_H_.
  naked-new         No naked `new` / `malloc` family outside src/common/.
                    Library code owns memory through containers and
                    std::make_unique; the two sanctioned leaky singletons
                    live in common/.
  stdout-in-lib     No std::cout / std::cerr / printf in library code
                    (src/ outside src/common/): libraries must log
                    through common/logging (ADA_LOG) so severity and
                    filtering stay uniform. Tests, benches, examples and
                    tools may print.
  check-in-dataset  ADA_CHECK* in src/dataset/ must carry an "invariant"
                    justification (a comment containing the word
                    `invariant` on the same line or within the five
                    lines above). dataset/ is the input-parsing layer:
                    conditions derived from user input must return
                    Status, and every remaining CHECK must document why
                    it is a programmer invariant instead.
  direct-random     No #include <random> or std:: random engines outside
                    src/common/rng: all randomness flows through
                    common/rng so runs stay seed-reproducible.
  catch-swallow     A bare `catch (...)` must log (ADA_LOG) or rethrow
                    inside its body. Silently swallowing unknown
                    exceptions hides real failures from the resilience
                    layer, which relies on failures being observable to
                    degrade gracefully.
  raw-socket        Raw fd syscalls — socket()/accept()/close()/
                    connect()/bind()/listen()/send()/recv()/
                    setsockopt()/shutdown() — are allowed only in the
                    src/service/net_* wrappers. Everything else
                    (router and replication included) must hold
                    descriptors through service::FileDescriptor /
                    ServerSocket / LineReader and move bytes through
                    SendAll / ConnectLoopback / SetRecvTimeout, so no
                    error path can leak or double-close an fd.
  simd-intrinsics   x86 vector intrinsics — the <immintrin.h> include
                    family, _mm*/_mm256*/_mm512* calls and __m128/__m256/
                    __m512 vector types — are allowed only in
                    src/transform/simd_kernels.h/.cc. Everything else
                    calls the runtime-dispatched simd:: wrappers, so the
                    scalar fallback always exists, ADA_SIMD=OFF builds
                    stay complete, and one grep audits the entire
                    unsafe-ISA surface.
  service-file-io   Direct file I/O — the fopen/fwrite/fread/fflush/
                    fsync/ftruncate/truncate/rename/unlink call family
                    and the <fstream>/<filesystem> includes — is allowed
                    in src/service/ only inside cohort_store.cc, the
                    streaming cohort store's crash-safe persistence
                    module. Every other service-layer component persists
                    through the K-DB storage layer (as the result cache
                    does), so the atomic-rename discipline and its
                    failpoints live in exactly two audited places.
  raw-mutex         std::mutex / std::lock_guard / std::unique_lock /
                    std::condition_variable (and their scoped/shared/
                    timed variants, plus the <mutex>,
                    <condition_variable> and <shared_mutex> includes)
                    are allowed only inside src/common/sync.h/.cc.
                    Everything else locks through common::Mutex /
                    MutexLock / CondVar so Clang's thread-safety
                    analysis (the ADA_THREAD_SAFETY build gate) sees
                    every critical section; one raw lock is a silent
                    hole in the compile-time race check.

An individual finding can be waived with a trailing comment
`// ada-lint: allow(<rule>)` on the offending line; use sparingly and
say why next to it.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")

ALLOW_RE = re.compile(r"ada-lint:\s*allow\(([a-z-]+)\)")

NAKED_NEW_RE = re.compile(r"\bnew\b\s*(\(|[A-Za-z_:<])")
MALLOC_RE = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")
STDOUT_RE = re.compile(r"std::cout|std::cerr|\bstd::printf\s*\(|(?<![\w:])printf\s*\(")
CHECK_RE = re.compile(r"\bADA_CHECK(_MSG|_EQ|_NE|_LT|_LE|_GT|_GE|_OK)?\s*\(")
RANDOM_INCLUDE_RE = re.compile(r"#\s*include\s*<random>")
RANDOM_ENGINE_RE = re.compile(
    r"std::(mt19937(_64)?|minstd_rand0?|random_device|"
    r"(uniform_(int|real)|normal|bernoulli|poisson)_distribution)\b")
INVARIANT_RE = re.compile(r"invariant", re.IGNORECASE)
CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
CATCH_HANDLED_RE = re.compile(r"\bthrow\b|ADA_LOG")
# A call to socket/accept/close that is not a member access
# (`fd.close(`), a longer identifier (`fclose(`), or a pointer call
# (`->close(`). `::close(` deliberately matches: the global-namespace
# qualifier is exactly the raw-syscall spelling this rule polices.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w.>])(socket|accept|close|connect|bind|listen"
    r"|send|recv|setsockopt|shutdown)\s*\(")
FILE_IO_CALL_RE = re.compile(
    r"(?<![\w.>])(fopen|fwrite|fread|fflush|fsync|ftruncate|truncate"
    r"|rename|unlink|mkdir|rmdir)\s*\(")
FILE_IO_INCLUDE_RE = re.compile(r"#\s*include\s*<(fstream|filesystem)>")
RAW_MUTEX_RE = re.compile(
    r"std::(recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|mutex|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock|condition_variable_any|condition_variable)\b")
MUTEX_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>")
SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<((imm|x86|xmm|emm|pmm|tmm|smm|nmm|wmm|avx[\w]*)intrin"
    r"\.h)>")
SIMD_TOKEN_RE = re.compile(r"\b(_mm(256|512)?_\w+|__m(128|256|512)[di]?)\b")

BLOCK_COMMENT_OPEN_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_strings_and_comments(line, in_block_comment):
    """Returns (code-only text, still_in_block_comment).

    Good enough for lint purposes: removes string/char literals, //
    comments and /* */ comments from one line, tracking multi-line block
    comments via `in_block_comment`.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # Keep an empty literal as a token.
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def expected_guard(rel_path):
    parts = rel_path.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]  # src/ is the include root.
    token = "_".join(parts)
    token = re.sub(r"[^A-Za-z0-9]", "_", token)
    return "ADAHEALTH_" + token.upper() + "_"


def catch_body_handles(code_lines, catch_index):
    """True when the `catch (...)` starting at code_lines[catch_index]
    has a body containing a throw or an ADA_LOG call.

    The body is delimited by brace counting from the first `{` at or
    after the catch; an unclosed block (EOF) is treated as handled to
    avoid false positives on pathological input.
    """
    depth = 0
    opened = False
    for line in code_lines[catch_index:]:
        for c in line:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}" and opened:
                depth -= 1
        if opened and CATCH_HANDLED_RE.search(line):
            return True
        if opened and depth <= 0:
            return False
    return True


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def lint_file(path, rel_path):
    findings = []
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as error:
        findings.append(Finding(rel_path, 0, "io", f"cannot read: {error}"))
        return findings

    in_src = rel_path.startswith("src" + os.sep)
    in_common = rel_path.startswith(os.path.join("src", "common") + os.sep)
    in_dataset = rel_path.startswith(os.path.join("src", "dataset") + os.sep)
    is_rng = rel_path in (os.path.join("src", "common", "rng.h"),
                          os.path.join("src", "common", "rng.cc"))
    is_net_wrapper = rel_path.startswith(
        os.path.join("src", "service", "net_"))
    is_sync = rel_path in (os.path.join("src", "common", "sync.h"),
                           os.path.join("src", "common", "sync.cc"))
    in_service = rel_path.startswith(
        os.path.join("src", "service") + os.sep)
    is_cohort_store = rel_path == os.path.join(
        "src", "service", "cohort_store.cc")
    is_simd_kernel = rel_path in (
        os.path.join("src", "transform", "simd_kernels.h"),
        os.path.join("src", "transform", "simd_kernels.cc"))

    code_lines = []
    in_block = False
    for raw in raw_lines:
        code, in_block = strip_strings_and_comments(raw, in_block)
        code_lines.append(code)

    def allowed(lineno, rule):
        m = ALLOW_RE.search(raw_lines[lineno - 1])
        return m is not None and m.group(1) == rule

    # --- include-guard ---------------------------------------------------
    if rel_path.endswith(".h"):
        guard = expected_guard(rel_path)
        ifndef = f"#ifndef {guard}"
        define = f"#define {guard}"
        stripped = [ln.strip() for ln in raw_lines]
        if ifndef not in stripped:
            findings.append(Finding(rel_path, 1, "include-guard",
                                    f"missing or misnamed guard; expected "
                                    f"`{ifndef}`"))
        elif define not in stripped:
            findings.append(Finding(rel_path, 1, "include-guard",
                                    f"`{ifndef}` without matching "
                                    f"`{define}`"))

    for lineno, code in enumerate(code_lines, start=1):
        if not code.strip():
            continue

        # --- naked-new ---------------------------------------------------
        if in_src and not in_common:
            if NAKED_NEW_RE.search(code) and not allowed(lineno, "naked-new"):
                findings.append(Finding(
                    rel_path, lineno, "naked-new",
                    "naked `new` outside src/common/; use containers or "
                    "std::make_unique"))
            m = MALLOC_RE.search(code)
            if m and not allowed(lineno, "naked-new"):
                findings.append(Finding(
                    rel_path, lineno, "naked-new",
                    f"`{m.group(1)}` outside src/common/; use C++ "
                    "ownership types"))

        # --- stdout-in-lib ----------------------------------------------
        if in_src and not in_common:
            if STDOUT_RE.search(code) and not allowed(lineno, "stdout-in-lib"):
                findings.append(Finding(
                    rel_path, lineno, "stdout-in-lib",
                    "stdout/stderr printing in library code; use ADA_LOG "
                    "from common/logging.h"))

        # --- check-in-dataset -------------------------------------------
        if in_dataset and CHECK_RE.search(code):
            window = raw_lines[max(0, lineno - 6):lineno]
            if (not any(INVARIANT_RE.search(w) for w in window)
                    and not allowed(lineno, "check-in-dataset")):
                findings.append(Finding(
                    rel_path, lineno, "check-in-dataset",
                    "ADA_CHECK in dataset/ without an `invariant` "
                    "justification comment; user-input-derived conditions "
                    "must return Status instead of aborting"))

        # --- catch-swallow ----------------------------------------------
        if CATCH_ALL_RE.search(code) and not allowed(lineno, "catch-swallow"):
            if not catch_body_handles(code_lines, lineno - 1):
                findings.append(Finding(
                    rel_path, lineno, "catch-swallow",
                    "`catch (...)` without ADA_LOG or rethrow in its "
                    "body; swallowed exceptions are invisible to the "
                    "resilience layer"))

        # --- raw-socket -------------------------------------------------
        if not is_net_wrapper:
            m = RAW_SOCKET_RE.search(code)
            if m and not allowed(lineno, "raw-socket"):
                findings.append(Finding(
                    rel_path, lineno, "raw-socket",
                    f"raw `{m.group(1)}()` outside src/service/net_*; "
                    "hold fds through service::FileDescriptor and the "
                    "socket wrappers"))

        # --- service-file-io --------------------------------------------
        if in_service and not is_cohort_store:
            m = FILE_IO_CALL_RE.search(code)
            if m and not allowed(lineno, "service-file-io"):
                findings.append(Finding(
                    rel_path, lineno, "service-file-io",
                    f"direct `{m.group(1)}()` in src/service/ outside "
                    "cohort_store.cc; service-layer persistence goes "
                    "through the K-DB storage layer or the cohort store"))
            m = FILE_IO_INCLUDE_RE.search(code)
            if m and not allowed(lineno, "service-file-io"):
                findings.append(Finding(
                    rel_path, lineno, "service-file-io",
                    f"#include <{m.group(1)}> in src/service/ outside "
                    "cohort_store.cc; service-layer persistence goes "
                    "through the K-DB storage layer or the cohort store"))

        # --- raw-mutex ---------------------------------------------------
        if not is_sync:
            m = RAW_MUTEX_RE.search(code)
            if m and not allowed(lineno, "raw-mutex"):
                findings.append(Finding(
                    rel_path, lineno, "raw-mutex",
                    f"raw `std::{m.group(1)}` outside common/sync; use "
                    "common::Mutex / MutexLock / CondVar so the "
                    "thread-safety analysis sees the lock"))
            m = MUTEX_INCLUDE_RE.search(code)
            if m and not allowed(lineno, "raw-mutex"):
                findings.append(Finding(
                    rel_path, lineno, "raw-mutex",
                    f"#include <{m.group(1)}> outside common/sync; "
                    "include common/sync.h instead"))

        # --- simd-intrinsics --------------------------------------------
        if not is_simd_kernel:
            m = SIMD_INCLUDE_RE.search(code)
            if m and not allowed(lineno, "simd-intrinsics"):
                findings.append(Finding(
                    rel_path, lineno, "simd-intrinsics",
                    f"#include <{m.group(1)}> outside "
                    "transform/simd_kernels; call the dispatched simd:: "
                    "wrappers instead"))
            m = SIMD_TOKEN_RE.search(code)
            if m and not allowed(lineno, "simd-intrinsics"):
                findings.append(Finding(
                    rel_path, lineno, "simd-intrinsics",
                    f"intrinsic `{m.group(1)}` outside "
                    "transform/simd_kernels; keep raw ISA code behind the "
                    "runtime-dispatched simd:: wrappers"))

        # --- direct-random ----------------------------------------------
        if not is_rng:
            if (RANDOM_INCLUDE_RE.search(code)
                    and not allowed(lineno, "direct-random")):
                findings.append(Finding(
                    rel_path, lineno, "direct-random",
                    "#include <random> outside common/rng; use "
                    "common::Rng for seed-reproducible randomness"))
            m = RANDOM_ENGINE_RE.search(code)
            if m and not allowed(lineno, "direct-random"):
                findings.append(Finding(
                    rel_path, lineno, "direct-random",
                    f"direct use of `std::{m.group(1)}`; use common::Rng"))

    return findings


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(SOURCE_EXTENSIONS):
                files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames
                               if d not in ("build", ".git")
                               and not d.startswith("build-")]
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"ada_lint: no such path: {path}", file=sys.stderr)
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        description="ADA-HEALTH repo lint (see module docstring)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tests "
                             "bench under the repo root)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule documentation and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(__doc__)
        return 0

    paths = args.paths or [os.path.join(REPO_ROOT, d)
                           for d in ("src", "tests", "bench", "tools",
                                     "examples")]
    findings = []
    for path in collect_files(paths):
        rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
        findings.extend(lint_file(path, rel))

    for finding in findings:
        print(finding)
    if findings:
        print(f"ada_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
