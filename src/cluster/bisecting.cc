#include "cluster/bisecting.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace adahealth {
namespace cluster {

namespace {

using transform::Matrix;
using transform::SquaredDistance;

/// SSE of one cluster (rows `members` of `data`) around its mean.
double ClusterSse(const Matrix& data, const std::vector<size_t>& members) {
  if (members.empty()) return 0.0;
  std::vector<double> mean(data.cols(), 0.0);
  for (size_t row : members) {
    std::span<const double> point = data.Row(row);
    for (size_t d = 0; d < data.cols(); ++d) mean[d] += point[d];
  }
  for (double& m : mean) m /= static_cast<double>(members.size());
  double sse = 0.0;
  for (size_t row : members) {
    sse += SquaredDistance(data.Row(row), mean);
  }
  return sse;
}

}  // namespace

common::StatusOr<Clustering> RunBisectingKMeans(
    const Matrix& data, const BisectingOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return common::InvalidArgumentError(
        "bisecting k-means requires non-empty data");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > data.rows()) {
    return common::InvalidArgumentError("k must be in [1, number of points]");
  }
  if (options.trials_per_split < 1 || options.max_iterations < 1) {
    return common::InvalidArgumentError(
        "trials_per_split and max_iterations must be >= 1");
  }

  common::Rng rng(options.seed);
  // Clusters as member-row lists, with cached SSE for split selection.
  std::vector<std::vector<size_t>> clusters;
  std::vector<double> sses;
  {
    std::vector<size_t> all(data.rows());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    sses.push_back(ClusterSse(data, all));
    clusters.push_back(std::move(all));
  }

  while (clusters.size() < static_cast<size_t>(options.k)) {
    // Split the cluster with the largest SSE that has >= 2 points.
    size_t victim = clusters.size();
    double worst = -1.0;
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].size() >= 2 && sses[c] > worst) {
        worst = sses[c];
        victim = c;
      }
    }
    ADA_CHECK_LT(victim, clusters.size());

    Matrix sub = data.SelectRows(clusters[victim]);
    common::StatusOr<Clustering> best_split =
        common::InternalError("no split attempted");
    for (int32_t trial = 0; trial < options.trials_per_split; ++trial) {
      KMeansOptions inner;
      inner.k = 2;
      inner.init = KMeansInit::kKMeansPlusPlus;
      inner.max_iterations = options.max_iterations;
      inner.seed = rng.NextUint64();
      common::StatusOr<Clustering> split = RunKMeans(sub, inner);
      if (!split.ok()) return split.status();
      if (!best_split.ok() || split->sse < best_split->sse) {
        best_split = std::move(split);
      }
    }

    std::vector<size_t> left;
    std::vector<size_t> right;
    for (size_t i = 0; i < clusters[victim].size(); ++i) {
      if (best_split->assignments[i] == 0) {
        left.push_back(clusters[victim][i]);
      } else {
        right.push_back(clusters[victim][i]);
      }
    }
    ADA_CHECK(!left.empty());
    ADA_CHECK(!right.empty());
    clusters[victim] = std::move(left);
    sses[victim] = ClusterSse(data, clusters[victim]);
    sses.push_back(ClusterSse(data, right));
    clusters.push_back(std::move(right));
  }

  // Materialize the Clustering: assignments, centroids, SSE.
  Clustering result;
  result.k = options.k;
  result.assignments.assign(data.rows(), 0);
  result.centroids = Matrix(static_cast<size_t>(options.k), data.cols());
  for (size_t c = 0; c < clusters.size(); ++c) {
    std::span<double> centroid = result.centroids.Row(c);
    for (size_t row : clusters[c]) {
      result.assignments[row] = static_cast<int32_t>(c);
      std::span<const double> point = data.Row(row);
      for (size_t d = 0; d < data.cols(); ++d) centroid[d] += point[d];
    }
    for (size_t d = 0; d < data.cols(); ++d) {
      centroid[d] /= static_cast<double>(clusters[c].size());
    }
  }
  for (size_t i = 0; i < data.rows(); ++i) {
    result.sse += SquaredDistance(
        data.Row(i),
        result.centroids.Row(static_cast<size_t>(result.assignments[i])));
  }
  result.iterations = static_cast<int32_t>(clusters.size()) - 1;
  result.converged = true;
  return result;
}

}  // namespace cluster
}  // namespace adahealth
