# Empty compiler generated dependencies file for bisecting_test.
# This may be replaced when dependencies are built.
