# Empty dependencies file for filtering_kmeans_test.
# This may be replaced when dependencies are built.
