#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans_accel.h"
#include "common/check.h"
#include "common/metrics.h"

namespace adahealth {
namespace cluster {

using common::Rng;
using common::StatusOr;
using transform::CsrMatrix;
using transform::Matrix;
using transform::SquaredDistance;

namespace {

using internal::CopyRowInto;
using internal::ExactRowDistance;

// Representation-generic row-sum step of the centroid reduction.
inline void AddRowTo(const Matrix& data, size_t i, std::span<double> sum) {
  std::span<const double> point = data.Row(i);
  for (size_t d = 0; d < sum.size(); ++d) sum[d] += point[d];
}
inline void AddRowTo(const CsrMatrix& data, size_t i,
                     std::span<double> sum) {
  // Adding only the non-zeros matches the dense loop bit for bit: the
  // skipped `+= 0.0` terms cannot change any finite partial sum.
  transform::AccumulateRow(data.Row(i), sum);
}

template <typename Data>
Matrix InitializeCentroidsImpl(const Data& data, int32_t k, KMeansInit init,
                               Rng& rng) {
  const size_t n = data.rows();
  ADA_CHECK_GE(k, 1);
  ADA_CHECK_LE(static_cast<size_t>(k), n);
  Matrix centroids(static_cast<size_t>(k), data.cols());

  if (init == KMeansInit::kRandom) {
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(n, static_cast<size_t>(k));
    for (size_t c = 0; c < picks.size(); ++c) {
      CopyRowInto(data, picks[c], centroids.Row(c));
    }
    return centroids;
  }

  // k-means++ (Arthur & Vassilvitskii): first centroid uniform, each
  // further centroid sampled proportionally to its squared distance to
  // the closest chosen centroid. The D^2 weights are materialized as a
  // prefix sum once per centroid so the draw is a binary search instead
  // of a linear cumulative scan.
  std::vector<double> min_distance(n, std::numeric_limits<double>::max());
  std::vector<double> prefix(n);
  size_t first = static_cast<size_t>(rng.UniformUint64(n));
  CopyRowInto(data, first, centroids.Row(0));
  for (int32_t c = 1; c < k; ++c) {
    std::span<const double> last = centroids.Row(static_cast<size_t>(c - 1));
    double cumulative = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = ExactRowDistance(data, i, last);
      min_distance[i] = std::min(min_distance[i], d);
      cumulative += min_distance[i];
      prefix[i] = cumulative;
    }
    const double total = prefix[n - 1];
    size_t chosen;
    if (total > 0.0) {
      double target = rng.UniformDouble() * total;
      // First index whose cumulative weight exceeds target; clamp to
      // the last point when rounding pushes target past the total.
      auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
      chosen = it == prefix.end()
                   ? n - 1
                   : static_cast<size_t>(it - prefix.begin());
    } else {
      // All remaining distances zero (duplicated points): pick uniformly.
      chosen = static_cast<size_t>(rng.UniformUint64(n));
    }
    CopyRowInto(data, chosen, centroids.Row(static_cast<size_t>(c)));
  }
  return centroids;
}

template <typename Data>
double AssignToCentroidsImpl(const Data& data, const Matrix& centroids,
                             std::vector<int32_t>& assignments) {
  const size_t n = data.rows();
  const size_t k = centroids.rows();
  ADA_CHECK_GE(k, 1u);
  assignments.resize(n);
  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::max();
    int32_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      double d = ExactRowDistance(data, i, centroids.Row(c));
      if (d < best) {
        best = d;
        best_c = static_cast<int32_t>(c);
      }
    }
    assignments[i] = best_c;
    sse += best;
  }
  return sse;
}

template <typename Data>
void AccumulateRowsImpl(const Data& data,
                        const std::vector<int32_t>& assignments,
                        size_t begin, size_t end,
                        internal::CentroidAccumulator& acc) {
  const size_t k = acc.sums.rows();
  for (size_t i = begin; i < end; ++i) {
    int32_t c = assignments[i];
    ADA_CHECK_GE(c, 0);
    ADA_CHECK_LT(static_cast<size_t>(c), k);
    ++acc.counts[static_cast<size_t>(c)];
    AddRowTo(data, i, acc.sums.Row(static_cast<size_t>(c)));
  }
}

template <typename Data>
void FinalizeCentroidsImpl(const Data& data,
                           const std::vector<int32_t>& assignments,
                           internal::CentroidAccumulator& acc,
                           Matrix& centroids) {
  const size_t k = centroids.rows();
  const size_t dims = centroids.cols();
  std::vector<int64_t>& counts = acc.counts;
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    std::span<const double> sum = acc.sums.Row(c);
    std::span<double> centroid = centroids.Row(c);
    for (size_t d = 0; d < dims; ++d) {
      centroid[d] = sum[d] / static_cast<double>(counts[c]);
    }
  }
  // Re-seed empty clusters with the point farthest from its centroid so
  // that every cluster stays non-empty. Each donor point may seed only
  // one cluster, and donating decrements its cluster's count, so two
  // clusters emptied in the same iteration get distinct seeds.
  std::vector<bool> consumed;
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] != 0) continue;
    if (consumed.empty()) consumed.assign(data.rows(), false);
    double worst = -1.0;
    size_t worst_point = 0;
    for (size_t i = 0; i < data.rows(); ++i) {
      if (consumed[i]) continue;
      size_t assigned = static_cast<size_t>(assignments[i]);
      if (counts[assigned] <= 1) continue;  // Don't empty another cluster.
      double d = ExactRowDistance(data, i, centroids.Row(assigned));
      if (d > worst) {
        worst = d;
        worst_point = i;
      }
    }
    if (worst >= 0.0) {
      CopyRowInto(data, worst_point, centroids.Row(c));
      consumed[worst_point] = true;
      --counts[static_cast<size_t>(assignments[worst_point])];
      counts[c] = 1;
      common::MetricsRegistry::Default()
          .GetCounter("kmeans/reseeded_clusters")
          .Increment();
    }
  }
}

template <typename Data>
common::Status ValidateKMeansArgsImpl(const Data& data,
                                      const KMeansOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return common::InvalidArgumentError("k-means requires non-empty data");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > data.rows()) {
    return common::InvalidArgumentError(
        "k must be in [1, number of points]");
  }
  if (options.max_iterations < 1) {
    return common::InvalidArgumentError("max_iterations must be >= 1");
  }
  if (!options.initial_centroids.empty() &&
      (options.initial_centroids.rows() !=
           static_cast<size_t>(options.k) ||
       options.initial_centroids.cols() != data.cols())) {
    return common::InvalidArgumentError(
        "initial_centroids must be a k x data.cols() matrix");
  }
  return common::OkStatus();
}

template <typename Data>
Matrix StartingCentroidsImpl(const Data& data, const KMeansOptions& options,
                             Rng& rng) {
  if (!options.initial_centroids.empty()) return options.initial_centroids;
  return InitializeCentroids(data, options.k, options.init, rng);
}

template <typename Data>
void RecomputeCentroidsImpl(const Data& data,
                            const std::vector<int32_t>& assignments,
                            Matrix& centroids) {
  const size_t k = centroids.rows();
  const size_t dims = centroids.cols();
  ADA_CHECK_EQ(assignments.size(), data.rows());
  // Fixed-grid chunked reduction: per-chunk partials merged in chunk
  // order. The accelerated engine computes the same partials in
  // parallel and merges them in the same order, so both engines arrive
  // at bit-identical centroids.
  internal::CentroidAccumulator total(k, dims);
  if (data.rows() <= internal::kCentroidChunkRows) {
    internal::AccumulateRows(data, assignments, 0, data.rows(), total);
  } else {
    internal::CentroidAccumulator part(k, dims);
    for (size_t begin = 0; begin < data.rows();
         begin += internal::kCentroidChunkRows) {
      const size_t end =
          std::min(data.rows(), begin + internal::kCentroidChunkRows);
      part.sums = Matrix(k, dims, 0.0);
      std::fill(part.counts.begin(), part.counts.end(), 0);
      internal::AccumulateRows(data, assignments, begin, end, part);
      internal::MergeAccumulator(part, total);
    }
  }
  internal::FinalizeCentroids(data, assignments, total, centroids);
}

template <typename Data>
StatusOr<Clustering> RunNaiveKMeansImpl(const Data& data,
                                        const KMeansOptions& options) {
  Rng rng(options.seed);
  Clustering result;
  result.k = options.k;
  result.centroids = internal::StartingCentroids(data, options, rng);

  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::WallTimer assign_timer;
  double assign_seconds = 0.0;
  int64_t assign_passes = 0;

  std::vector<int32_t> previous;
  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    assign_timer.Restart();
    result.sse = AssignToCentroids(data, result.centroids,
                                   result.assignments);
    assign_seconds += assign_timer.ElapsedSeconds();
    ++assign_passes;
    result.iterations = iter + 1;
    if (result.assignments == previous) {
      result.converged = true;
      break;
    }
    previous = result.assignments;
    RecomputeCentroids(data, result.assignments, result.centroids);
  }
  if (!result.converged) {
    // The loop exited after a RecomputeCentroids, so assignments/sse are
    // stale; re-assign against the final centroids. On a converged exit
    // the assignment is already consistent and re-running it would just
    // repeat an identical full-data pass.
    assign_timer.Restart();
    result.sse = AssignToCentroids(data, result.centroids,
                                   result.assignments);
    assign_seconds += assign_timer.ElapsedSeconds();
    ++assign_passes;
  }

  metrics.GetCounter("kmeans/runs").Increment();
  metrics.GetCounter("kmeans/iterations").Increment(result.iterations);
  metrics.GetCounter("kmeans/assign_passes").Increment(assign_passes);
  metrics.GetHistogram("kmeans/assign_seconds").Record(assign_seconds);
  return result;
}

}  // namespace

Matrix InitializeCentroids(const Matrix& data, int32_t k, KMeansInit init,
                           Rng& rng) {
  return InitializeCentroidsImpl(data, k, init, rng);
}

Matrix InitializeCentroids(const CsrMatrix& data, int32_t k, KMeansInit init,
                           Rng& rng) {
  return InitializeCentroidsImpl(data, k, init, rng);
}

double AssignToCentroids(const Matrix& data, const Matrix& centroids,
                         std::vector<int32_t>& assignments) {
  return AssignToCentroidsImpl(data, centroids, assignments);
}

double AssignToCentroids(const CsrMatrix& data, const Matrix& centroids,
                         std::vector<int32_t>& assignments) {
  return AssignToCentroidsImpl(data, centroids, assignments);
}

namespace internal {

void AccumulateRows(const Matrix& data,
                    const std::vector<int32_t>& assignments, size_t begin,
                    size_t end, CentroidAccumulator& acc) {
  AccumulateRowsImpl(data, assignments, begin, end, acc);
}

void AccumulateRows(const CsrMatrix& data,
                    const std::vector<int32_t>& assignments, size_t begin,
                    size_t end, CentroidAccumulator& acc) {
  AccumulateRowsImpl(data, assignments, begin, end, acc);
}

void MergeAccumulator(const CentroidAccumulator& part,
                      CentroidAccumulator& total) {
  const size_t k = total.sums.rows();
  const size_t dims = total.sums.cols();
  for (size_t c = 0; c < k; ++c) {
    total.counts[c] += part.counts[c];
    std::span<const double> src = part.sums.Row(c);
    std::span<double> dst = total.sums.Row(c);
    for (size_t d = 0; d < dims; ++d) dst[d] += src[d];
  }
}

void FinalizeCentroids(const Matrix& data,
                       const std::vector<int32_t>& assignments,
                       CentroidAccumulator& acc, Matrix& centroids) {
  FinalizeCentroidsImpl(data, assignments, acc, centroids);
}

void FinalizeCentroids(const CsrMatrix& data,
                       const std::vector<int32_t>& assignments,
                       CentroidAccumulator& acc, Matrix& centroids) {
  FinalizeCentroidsImpl(data, assignments, acc, centroids);
}

common::Status ValidateKMeansArgs(const Matrix& data,
                                  const KMeansOptions& options) {
  return ValidateKMeansArgsImpl(data, options);
}

common::Status ValidateKMeansArgs(const CsrMatrix& data,
                                  const KMeansOptions& options) {
  return ValidateKMeansArgsImpl(data, options);
}

Matrix StartingCentroids(const Matrix& data, const KMeansOptions& options,
                         Rng& rng) {
  return StartingCentroidsImpl(data, options, rng);
}

Matrix StartingCentroids(const CsrMatrix& data, const KMeansOptions& options,
                         Rng& rng) {
  return StartingCentroidsImpl(data, options, rng);
}

namespace {

bool ContainsNaN(const Matrix& data) {
  for (size_t r = 0; r < data.rows(); ++r) {
    for (double v : data.Row(r)) {
      if (std::isnan(v)) return true;
    }
  }
  return false;
}

}  // namespace

double MeasuredDensity(const Matrix& data) {
  const size_t cells = data.rows() * data.cols();
  if (cells == 0) return 1.0;
  size_t nonzeros = 0;
  for (size_t r = 0; r < data.rows(); ++r) {
    for (double v : data.Row(r)) {
      if (std::isnan(v)) return 1.0;  // NaN data stays on the dense path.
      if (v != 0.0) ++nonzeros;
    }
  }
  return static_cast<double>(nonzeros) / static_cast<double>(cells);
}

bool ShouldUseSparse(const Matrix& data, const KMeansOptions& options) {
  switch (options.representation) {
    case KMeansRepresentation::kDense:
      return false;
    case KMeansRepresentation::kSparse:
      // Honor the request unless conversion would trip FromDense's NaN
      // check; garbage inputs keep the legacy dense behavior.
      return !ContainsNaN(data);
    case KMeansRepresentation::kAuto:
      break;
  }
  // The naive engine's exact distance is O(dims) either way (the
  // zero-run terms must still fold in order), so auto-selection only
  // pays off where the fused O(nnz) screen runs: the accelerated engine.
  if (options.engine != KMeansEngine::kAccelerated) return false;
  if (options.k < kMinSparseClusters) return false;
  if (data.cols() < kMinSparseDims) return false;
  return MeasuredDensity(data) <= options.sparse_density_threshold;
}

}  // namespace internal

void RecomputeCentroids(const Matrix& data,
                        const std::vector<int32_t>& assignments,
                        Matrix& centroids) {
  RecomputeCentroidsImpl(data, assignments, centroids);
}

void RecomputeCentroids(const CsrMatrix& data,
                        const std::vector<int32_t>& assignments,
                        Matrix& centroids) {
  RecomputeCentroidsImpl(data, assignments, centroids);
}

std::vector<int64_t> ClusterSizes(const std::vector<int32_t>& assignments,
                                  int32_t k) {
  ADA_CHECK_GE(k, 1);
  std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
  for (int32_t a : assignments) {
    ADA_CHECK_GE(a, 0);
    ADA_CHECK_LT(a, k);
    ++sizes[static_cast<size_t>(a)];
  }
  return sizes;
}

Matrix AdaptCentroids(const Matrix& data, const Clustering& source,
                      int32_t target_k) {
  ADA_CHECK_GE(target_k, 1);
  ADA_CHECK_LE(static_cast<size_t>(target_k), data.rows());
  ADA_CHECK_EQ(source.centroids.cols(), data.cols());
  ADA_CHECK_EQ(source.assignments.size(), data.rows());
  const size_t k_prev = source.centroids.rows();
  const size_t k = static_cast<size_t>(target_k);
  const size_t dims = data.cols();
  if (k == k_prev) return source.centroids;

  Matrix out(k, dims);
  if (k < k_prev) {
    // Keep the centroids of the k largest clusters (relative order
    // preserved); the smallest clusters are the likeliest artifacts of
    // over-segmentation.
    std::vector<int64_t> sizes = ClusterSizes(source.assignments, source.k);
    std::vector<size_t> order(k_prev);
    for (size_t c = 0; c < k_prev; ++c) order[c] = c;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return sizes[a] > sizes[b];
    });
    order.resize(k);
    std::sort(order.begin(), order.end());
    for (size_t c = 0; c < k; ++c) {
      std::span<const double> src = source.centroids.Row(order[c]);
      std::span<double> dst = out.Row(c);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
  }

  // Growing: keep every centroid and add data points by farthest-point
  // selection — deterministic (no rng), so warm-started runs stay
  // reproducible.
  for (size_t c = 0; c < k_prev; ++c) {
    std::span<const double> src = source.centroids.Row(c);
    std::span<double> dst = out.Row(c);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  std::vector<double> min_distance(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    double nearest = std::numeric_limits<double>::max();
    for (size_t c = 0; c < k_prev; ++c) {
      nearest = std::min(nearest, SquaredDistance(data.Row(i), out.Row(c)));
    }
    min_distance[i] = nearest;
  }
  for (size_t c = k_prev; c < k; ++c) {
    size_t farthest = 0;
    double worst = -1.0;
    for (size_t i = 0; i < data.rows(); ++i) {
      if (min_distance[i] > worst) {
        worst = min_distance[i];
        farthest = i;
      }
    }
    std::span<const double> src = data.Row(farthest);
    std::span<double> dst = out.Row(c);
    std::copy(src.begin(), src.end(), dst.begin());
    for (size_t i = 0; i < data.rows(); ++i) {
      min_distance[i] =
          std::min(min_distance[i], SquaredDistance(data.Row(i), dst));
    }
  }
  return out;
}

StatusOr<Clustering> RunKMeans(const Matrix& data,
                               const KMeansOptions& options) {
  common::Status valid = internal::ValidateKMeansArgs(data, options);
  if (!valid.ok()) return valid;
  if (internal::ShouldUseSparse(data, options)) {
    // Convert once up front; every pass of either engine then runs the
    // O(nnz) kernels. Results are identical to the dense path.
    CsrMatrix sparse = CsrMatrix::FromDense(data);
    KMeansOptions pinned = options;
    pinned.representation = KMeansRepresentation::kSparse;
    return RunKMeans(sparse, pinned);
  }
  if (options.engine == KMeansEngine::kAccelerated) {
    return RunAcceleratedKMeans(data, options);
  }
  return RunNaiveKMeansImpl(data, options);
}

StatusOr<Clustering> RunKMeans(const CsrMatrix& data,
                               const KMeansOptions& options) {
  common::Status valid = internal::ValidateKMeansArgs(data, options);
  if (!valid.ok()) return valid;
  if (options.representation == KMeansRepresentation::kDense) {
    KMeansOptions pinned = options;
    pinned.representation = KMeansRepresentation::kDense;
    return RunKMeans(data.ToDense(), pinned);
  }
  common::MetricsRegistry::Default()
      .GetCounter("kmeans/sparse_runs")
      .Increment();
  if (options.engine == KMeansEngine::kAccelerated) {
    return RunAcceleratedKMeans(data, options);
  }
  return RunNaiveKMeansImpl(data, options);
}

}  // namespace cluster
}  // namespace adahealth
