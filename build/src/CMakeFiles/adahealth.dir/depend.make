# Empty dependencies file for adahealth.
# This may be replaced when dependencies are built.
