#include "common/csv.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace adahealth {
namespace common {

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  size_t i = 0;
  const size_t n = text.size();

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty() || field_was_quoted) {
        return InvalidArgumentError(
            "unexpected quote inside unquoted CSV field");
      }
      in_quotes = true;
      field_was_quoted = true;
      ++i;
    } else if (c == delimiter) {
      end_field();
      ++i;
    } else if (c == '\n') {
      end_row();
      ++i;
    } else if (c == '\r') {
      // Accept both \r\n and bare \r as row terminators.
      end_row();
      if (i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("unterminated quoted CSV field");
  }
  // Flush a trailing row without a final newline.
  if (!field.empty() || field_was_quoted || !row.empty()) end_row();
  return rows;
}

namespace {

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char delimiter) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      const std::string& field = row[i];
      if (NeedsQuoting(field, delimiter)) {
        out.push_back('"');
        for (char c : field) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out.append(field);
      }
    }
    out.push_back('\n');
  }
  return out;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return NotFoundError("cannot open file: " + path);
  std::string contents;
  char buffer[1 << 16];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  bool had_error = std::ferror(file) != 0;
  std::fclose(file);
  if (had_error) return DataLossError("read error on file: " + path);
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InvalidArgumentError("cannot open file for writing: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool ok = written == contents.size();
  ok = std::fclose(file) == 0 && ok;
  if (!ok) return DataLossError("write error on file: " + path);
  return OkStatus();
}

Status CheckDirectoryWritable(const std::string& path) {
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) {
    return UnavailableError("directory does not exist: " + path);
  }
  if (!S_ISDIR(info.st_mode)) {
    return UnavailableError("not a directory: " + path);
  }
  if (::access(path.c_str(), W_OK | X_OK) != 0) {
    return UnavailableError("directory is not writable: " + path);
  }
  return OkStatus();
}

Status CheckDirectoryReadable(const std::string& path) {
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) {
    return UnavailableError("directory does not exist: " + path);
  }
  if (!S_ISDIR(info.st_mode)) {
    return UnavailableError("not a directory: " + path);
  }
  if (::access(path.c_str(), R_OK | X_OK) != 0) {
    return UnavailableError("directory is not readable: " + path);
  }
  return OkStatus();
}

}  // namespace common
}  // namespace adahealth
