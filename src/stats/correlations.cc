#include "stats/correlations.h"

#include <algorithm>
#include <cmath>

namespace adahealth {
namespace stats {

common::StatusOr<std::vector<ExamCorrelation>> TopExamCorrelations(
    const dataset::ExamLog& log, size_t top_n, int64_t min_patients) {
  if (top_n == 0) {
    return common::InvalidArgumentError("top_n must be positive");
  }
  if (log.num_patients() < 2) {
    return common::InvalidArgumentError(
        "correlation needs at least two patients");
  }

  const size_t patients = log.num_patients();
  const size_t exams = log.num_exam_types();

  // Per-exam per-patient counts, plus sufficient statistics.
  std::vector<std::vector<double>> counts(
      exams, std::vector<double>(patients, 0.0));
  for (const auto& record : log.records()) {
    counts[static_cast<size_t>(record.exam_type)]
          [static_cast<size_t>(record.patient)] += 1.0;
  }
  std::vector<int64_t> patients_per_exam = log.PatientsPerExam();

  // Precompute means and stddevs; exams failing the patient floor or
  // with zero variance are excluded.
  const double n = static_cast<double>(patients);
  std::vector<double> mean(exams, 0.0);
  std::vector<double> stddev(exams, 0.0);
  std::vector<bool> eligible(exams, false);
  for (size_t e = 0; e < exams; ++e) {
    if (patients_per_exam[e] < min_patients) continue;
    double sum = 0.0;
    for (double c : counts[e]) sum += c;
    mean[e] = sum / n;
    double variance = 0.0;
    for (double c : counts[e]) {
      double d = c - mean[e];
      variance += d * d;
    }
    variance /= n;
    if (variance <= 0.0) continue;
    stddev[e] = std::sqrt(variance);
    eligible[e] = true;
  }

  std::vector<ExamCorrelation> pairs;
  for (size_t a = 0; a < exams; ++a) {
    if (!eligible[a]) continue;
    for (size_t b = a + 1; b < exams; ++b) {
      if (!eligible[b]) continue;
      double covariance = 0.0;
      for (size_t p = 0; p < patients; ++p) {
        covariance += (counts[a][p] - mean[a]) * (counts[b][p] - mean[b]);
      }
      covariance /= n;
      ExamCorrelation pair;
      pair.exam_a = static_cast<dataset::ExamTypeId>(a);
      pair.exam_b = static_cast<dataset::ExamTypeId>(b);
      pair.correlation = covariance / (stddev[a] * stddev[b]);
      pairs.push_back(pair);
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const ExamCorrelation& x, const ExamCorrelation& y) {
              if (x.correlation != y.correlation) {
                return x.correlation > y.correlation;
              }
              if (x.exam_a != y.exam_a) return x.exam_a < y.exam_a;
              return x.exam_b < y.exam_b;
            });
  if (pairs.size() > top_n) pairs.resize(top_n);
  return pairs;
}

}  // namespace stats
}  // namespace adahealth
