# Empty compiler generated dependencies file for example_endgoal_recommendation.
# This may be replaced when dependencies are built.
