// A K-DB collection: an ordered set of documents with auto-assigned
// ids, conjunction-filter queries, field updates and optional
// hash-based secondary indexes.
#ifndef ADAHEALTH_KDB_COLLECTION_H_
#define ADAHEALTH_KDB_COLLECTION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kdb/document.h"
#include "kdb/query.h"

namespace adahealth {
namespace kdb {

/// Not thread-safe; the Database layer serializes access per
/// collection when needed.
class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return documents_.size(); }
  bool empty() const { return documents_.empty(); }

  /// Inserts a document, assigning a fresh "_id" (any existing "_id"
  /// value is overwritten). Returns the id.
  DocumentId Insert(Document document);

  /// Looks a document up by id; NOT_FOUND when absent.
  [[nodiscard]] common::StatusOr<Document> FindById(DocumentId id) const;

  /// Returns documents matching `query`, in insertion order, up to
  /// `limit` (0 = unlimited). Uses a secondary index when the query has
  /// an equality condition on an indexed path.
  std::vector<Document> Find(const Query& query, size_t limit = 0) const;

  /// First match or NOT_FOUND.
  [[nodiscard]] common::StatusOr<Document> FindOne(const Query& query) const;

  /// Number of matching documents.
  size_t Count(const Query& query) const;

  /// Merges `fields` (a JSON object) into the document with the given
  /// id; NOT_FOUND when absent, INVALID_ARGUMENT when not an object.
  [[nodiscard]] common::Status UpdateById(DocumentId id, const common::Json& fields);

  /// Removes a document; NOT_FOUND when absent.
  [[nodiscard]] common::Status DeleteById(DocumentId id);

  /// Builds (or rebuilds) an equality index on a dotted path. Queries
  /// with an Eq condition on `path` then resolve via the index.
  void CreateIndex(const std::string& path);

  /// All documents in insertion order.
  const std::vector<Document>& documents() const { return documents_; }

  /// Highest id ever assigned (for persistence round-trips).
  DocumentId last_id() const { return next_id_ - 1; }

  /// Restores a document with a pre-assigned id (used by storage
  /// loading). Fails on duplicate or non-positive ids.
  [[nodiscard]] common::Status Restore(Document document);

 private:
  void IndexDocument(const Document& document, size_t position);
  void ReindexAll();

  std::string name_;
  DocumentId next_id_ = 1;
  std::vector<Document> documents_;
  std::unordered_map<DocumentId, size_t> id_to_position_;
  // path -> (serialized field value -> positions).
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<size_t>>>
      indexes_;
};

}  // namespace kdb
}  // namespace adahealth

#endif  // ADAHEALTH_KDB_COLLECTION_H_
