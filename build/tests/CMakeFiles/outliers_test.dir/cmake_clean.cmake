file(REMOVE_RECURSE
  "CMakeFiles/outliers_test.dir/outliers_test.cc.o"
  "CMakeFiles/outliers_test.dir/outliers_test.cc.o.d"
  "outliers_test"
  "outliers_test.pdb"
  "outliers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outliers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
