#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace adahealth {
namespace core {

using common::StrFormat;

std::string RenderSessionReport(const SessionResult& result,
                                const std::string& dataset_id,
                                const ReportOptions& options) {
  std::string md;
  md += "# ADA-HEALTH analysis report: " + dataset_id + "\n\n";

  const stats::MetaFeatures& f = result.characterization.features;
  md += "## Dataset characterization\n\n";
  md += StrFormat(
      "| patients | exam types | records | density | records/patient |\n"
      "|---|---|---|---|---|\n"
      "| %lld | %lld | %lld | %.4f | %.2f ± %.2f |\n\n",
      static_cast<long long>(f.num_patients),
      static_cast<long long>(f.num_exam_types),
      static_cast<long long>(f.num_records), f.density,
      f.mean_records_per_patient, f.stddev_records_per_patient);
  md += StrFormat(
      "Exam-frequency profile: normalized entropy %.3f, Gini %.3f; the "
      "top 20%% of exam types cover %.1f%% of the records.\n\n",
      f.exam_frequency_entropy, f.exam_frequency_gini,
      100.0 * f.top20_coverage);

  md += "## Selected transformation\n\n";
  const TransformCandidateScore& best =
      result.transform.scores[result.transform.best_index];
  md += StrFormat(
      "`%s` weighting with `%s` normalization (similarity lift %.2fx "
      "over a random grouping).\n\n",
      transform::VsmWeightingName(best.options.weighting),
      transform::VsmNormalizationName(best.options.normalization),
      best.lift);

  if (options.include_partial_mining) {
    md += "## Adaptive partial mining\n\n";
    md += "| exam types | record coverage | quality diff vs full |  |\n";
    md += "|---|---|---|---|\n";
    for (size_t s = 0; s < result.partial.steps.size(); ++s) {
      const PartialMiningStep& step = result.partial.steps[s];
      md += StrFormat("| %.0f%% | %.1f%% | %.2f%% | %s |\n",
                      100.0 * step.fraction, 100.0 * step.record_coverage,
                      100.0 * step.mean_relative_diff,
                      s == result.partial.selected_step ? "**selected**"
                                                        : "");
    }
    md += "\n";
  }

  if (options.include_optimizer_table) {
    md += "## Algorithm optimization\n\n";
    md += "| K | SSE | accuracy | avg precision | avg recall |  |\n";
    md += "|---|---|---|---|---|---|\n";
    for (const CandidateEvaluation& candidate :
         result.optimizer.candidates) {
      md += StrFormat("| %d | %.1f | %.2f | %.2f | %.2f | %s |\n",
                      candidate.k, candidate.sse, 100.0 * candidate.accuracy,
                      100.0 * candidate.avg_precision,
                      100.0 * candidate.avg_recall,
                      candidate.k == result.optimizer.best_k()
                          ? "**selected**"
                          : "");
    }
    md += "\n";
  }

  md += "## Knowledge items\n\n";
  size_t shown = std::min(options.max_items, result.knowledge.size());
  for (size_t i = 0; i < shown; ++i) {
    const KnowledgeItem& item = result.knowledge[i];
    md += StrFormat("%zu. **[%s]** %s _(goal: %s, quality %.2f)_\n",
                    i + 1, item.kind.c_str(), item.description.c_str(),
                    EndGoalName(item.goal), item.quality);
  }
  if (shown < result.knowledge.size()) {
    md += StrFormat("\n_(%zu further items in the K-DB)_\n",
                    result.knowledge.size() - shown);
  }
  md += "\n";
  return md;
}

}  // namespace core
}  // namespace adahealth
