#include "kdb/storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace adahealth {
namespace kdb {

using common::Status;
using common::StatusOr;

namespace {

/// Truncated single-line payload preview for storage error messages,
/// so a torn write can be triaged without opening the file.
std::string PayloadPreview(std::string_view line) {
  constexpr size_t kMaxPreview = 48;
  std::string preview(line.substr(0, kMaxPreview));
  if (line.size() > kMaxPreview) preview += "...";
  return preview;
}

Status AnnotateLine(const Status& status, const std::string& name,
                    size_t line_number, std::string_view line) {
  return Status(status.code(),
                "collection '" + name + "' line " +
                    std::to_string(line_number) + " (payload '" +
                    PayloadPreview(line) + "'): " + status.message());
}

/// Parses and restores one JSONL line into `collection`; OK for blank
/// lines. Errors carry the line number and payload preview.
Status RestoreLine(Collection& collection, const std::string& name,
                   size_t line_number, const std::string& line) {
  std::string_view trimmed = common::Trim(line);
  if (trimmed.empty()) return common::OkStatus();
  auto document = Document::Parse(trimmed);
  if (!document.ok()) {
    return AnnotateLine(
        common::DataLossError(document.status().message()), name,
        line_number, trimmed);
  }
  Status restored = collection.Restore(std::move(document).value());
  if (!restored.ok()) {
    return AnnotateLine(restored, name, line_number, trimmed);
  }
  return common::OkStatus();
}

/// Writes `contents` to `path` atomically: `<path>.tmp` + fsync +
/// rename. Any failure removes the temporary file and leaves a
/// previous `path` untouched.
Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";
  auto fail = [&tmp_path](Status status) {
    std::remove(tmp_path.c_str());
    return status;
  };

  Status injected = ADA_FAILPOINT("kdb.storage.write");
  if (!injected.ok()) return fail(injected);

  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return common::UnavailableError("cannot open temp file for writing: " +
                                    tmp_path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  if (written != contents.size() || std::fflush(file) != 0) {
    std::fclose(file);
    return fail(common::DataLossError("write error on file: " + tmp_path));
  }

  injected = ADA_FAILPOINT("kdb.storage.fsync");
  if (!injected.ok()) {
    std::fclose(file);
    return fail(injected);
  }
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    return fail(common::DataLossError("fsync failed on file: " + tmp_path));
  }
  if (std::fclose(file) != 0) {
    return fail(common::DataLossError("close failed on file: " + tmp_path));
  }

  injected = ADA_FAILPOINT("kdb.storage.rename");
  if (!injected.ok()) return fail(injected);
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return fail(common::UnavailableError("rename failed: " + tmp_path +
                                         " -> " + path));
  }

  // Make the rename itself durable. Best-effort: a directory that
  // cannot be fsynced (some filesystems) only weakens durability, it
  // does not corrupt either file version.
  std::string directory = path;
  size_t slash = directory.find_last_of('/');
  directory = slash == std::string::npos ? "." : directory.substr(0, slash);
  int dir_fd = ::open(directory.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    if (::fsync(dir_fd) != 0) {
      ADA_LOG(kWarning) << "directory fsync failed for " << directory;
    }
    // Scoped open/fsync/close of a directory fd, not a socket.
    ::close(dir_fd);  // ada-lint: allow(raw-socket)
  }
  return common::OkStatus();
}

}  // namespace

std::string SerializeCollection(const Collection& collection) {
  std::string out;
  for (const Document& document : collection.documents()) {
    out += document.Dump();
    out.push_back('\n');
  }
  return out;
}

StatusOr<Collection> DeserializeCollection(const std::string& name,
                                           const std::string& text) {
  Collection collection(name);
  size_t line_number = 0;
  for (const std::string& line : common::Split(text, '\n')) {
    ++line_number;
    Status restored = RestoreLine(collection, name, line_number, line);
    if (!restored.ok()) return restored;
  }
  return collection;
}

SalvagedCollection DeserializeCollectionSalvage(const std::string& name,
                                                const std::string& text) {
  SalvagedCollection salvaged{Collection(name)};
  std::vector<std::string> lines = common::Split(text, '\n');
  size_t line_number = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    ++line_number;
    Status restored =
        RestoreLine(salvaged.collection, name, line_number, lines[i]);
    if (!restored.ok()) {
      // The valid prefix ends here: drop this line and every non-empty
      // line after it (the torn tail).
      salvaged.detail = restored;
      for (size_t j = i; j < lines.size(); ++j) {
        if (!common::Trim(lines[j]).empty()) ++salvaged.dropped_lines;
      }
      break;
    }
    if (!common::Trim(lines[i]).empty()) ++salvaged.recovered_lines;
  }
  if (salvaged.dropped_lines > 0) {
    common::MetricsRegistry::Default()
        .GetCounter("storage_salvaged_lines")
        .Increment(static_cast<int64_t>(salvaged.recovered_lines));
    ADA_LOG(kWarning) << "salvaged collection '" << name << "': recovered "
                      << salvaged.recovered_lines << " line(s), dropped "
                      << salvaged.dropped_lines << " ("
                      << salvaged.detail.ToString() << ")";
  }
  return salvaged;
}

Status SaveCollection(const Collection& collection,
                      const std::string& directory) {
  return AtomicWriteFile(directory + "/" + collection.name() + ".jsonl",
                         SerializeCollection(collection));
}

StatusOr<Collection> LoadCollection(const std::string& name,
                                    const std::string& directory) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("kdb.storage.read"));
  auto text = common::ReadFileToString(directory + "/" + name + ".jsonl");
  if (!text.ok()) return text.status();
  return DeserializeCollection(name, text.value());
}

StatusOr<SalvagedCollection> LoadCollectionSalvage(
    const std::string& name, const std::string& directory) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("kdb.storage.read"));
  auto text = common::ReadFileToString(directory + "/" + name + ".jsonl");
  if (!text.ok()) return text.status();
  return DeserializeCollectionSalvage(name, text.value());
}

}  // namespace kdb
}  // namespace adahealth
