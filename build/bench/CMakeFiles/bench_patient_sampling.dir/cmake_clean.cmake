file(REMOVE_RECURSE
  "CMakeFiles/bench_patient_sampling.dir/bench_patient_sampling.cc.o"
  "CMakeFiles/bench_patient_sampling.dir/bench_patient_sampling.cc.o.d"
  "bench_patient_sampling"
  "bench_patient_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patient_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
