#include "stats/descriptors.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace adahealth {
namespace stats {

Summary Summarize(const std::vector<double>& values) {
  Summary summary;
  summary.count = values.size();
  if (values.empty()) return summary;

  double sum = 0.0;
  summary.min = values[0];
  summary.max = values[0];
  for (double v : values) {
    sum += v;
    summary.min = std::min(summary.min, v);
    summary.max = std::max(summary.max, v);
  }
  summary.mean = sum / static_cast<double>(values.size());

  double m2 = 0.0;
  double m3 = 0.0;
  for (double v : values) {
    double d = v - summary.mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  const double n = static_cast<double>(values.size());
  summary.variance = m2 / n;
  summary.stddev = std::sqrt(summary.variance);
  if (values.size() >= 2 && summary.stddev > 0.0) {
    summary.skewness = (m3 / n) / (summary.stddev * summary.stddev *
                                   summary.stddev);
  }
  summary.median = Quantile(values, 0.5);
  return summary;
}

Summary Summarize(const std::vector<int64_t>& values) {
  std::vector<double> doubles(values.begin(), values.end());
  return Summarize(doubles);
}

double Quantile(std::vector<double> values, double q) {
  ADA_CHECK(!values.empty());
  ADA_CHECK_GE(q, 0.0);
  ADA_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double position = q * static_cast<double>(values.size() - 1);
  size_t lower = static_cast<size_t>(std::floor(position));
  size_t upper = std::min(lower + 1, values.size() - 1);
  double weight = position - static_cast<double>(lower);
  return values[lower] * (1.0 - weight) + values[upper] * weight;
}

double Entropy(const std::vector<int64_t>& counts) {
  int64_t total = 0;
  for (int64_t c : counts) {
    ADA_CHECK_GE(c, 0);
    total += c;
  }
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (int64_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double NormalizedEntropy(const std::vector<int64_t>& counts) {
  size_t nonzero = 0;
  for (int64_t c : counts) {
    if (c > 0) ++nonzero;
  }
  if (nonzero < 2) return 1.0;
  return Entropy(counts) / std::log2(static_cast<double>(nonzero));
}

double GiniCoefficient(const std::vector<int64_t>& counts) {
  if (counts.empty()) return 0.0;
  std::vector<double> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  double weighted = 0.0;
  const double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double TopFractionCoverage(const std::vector<int64_t>& counts,
                           double top_fraction) {
  ADA_CHECK_GE(top_fraction, 0.0);
  ADA_CHECK_LE(top_fraction, 1.0);
  if (counts.empty()) return 0.0;
  std::vector<int64_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<int64_t>());
  int64_t total = 0;
  for (int64_t c : sorted) total += c;
  if (total == 0) return 0.0;
  size_t take = static_cast<size_t>(
      std::llround(top_fraction * static_cast<double>(sorted.size())));
  take = std::min(take, sorted.size());
  int64_t covered = 0;
  for (size_t i = 0; i < take; ++i) covered += sorted[i];
  return static_cast<double>(covered) / static_cast<double>(total);
}

size_t BucketsForCoverage(const std::vector<int64_t>& counts,
                          double coverage) {
  ADA_CHECK_GE(coverage, 0.0);
  ADA_CHECK_LE(coverage, 1.0);
  std::vector<int64_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<int64_t>());
  int64_t total = 0;
  for (int64_t c : sorted) total += c;
  if (total == 0) return coverage > 0.0 ? counts.size() : 0;
  int64_t needed = static_cast<int64_t>(
      std::ceil(coverage * static_cast<double>(total)));
  if (needed <= 0) return 0;
  int64_t covered = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    covered += sorted[i];
    if (covered >= needed) return i + 1;
  }
  return sorted.size();
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  ADA_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= n;
  mean_y /= n;
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mean_x;
    double dy = y[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

}  // namespace stats
}  // namespace adahealth
