#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace adahealth {
namespace ml {
namespace {

TEST(EvaluateClassificationTest, PerfectPrediction) {
  std::vector<int32_t> truth{0, 1, 2, 0, 1};
  auto report = EvaluateClassification(truth, truth, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report->macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(report->macro_recall, 1.0);
  EXPECT_DOUBLE_EQ(report->macro_f1, 1.0);
}

TEST(EvaluateClassificationTest, KnownConfusion) {
  // truth:    0 0 0 1 1
  // predicted 0 0 1 1 0
  std::vector<int32_t> truth{0, 0, 0, 1, 1};
  std::vector<int32_t> predicted{0, 0, 1, 1, 0};
  auto report = EvaluateClassification(truth, predicted, 2);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->accuracy, 0.6);
  EXPECT_EQ(report->confusion[0][0], 2);
  EXPECT_EQ(report->confusion[0][1], 1);
  EXPECT_EQ(report->confusion[1][0], 1);
  EXPECT_EQ(report->confusion[1][1], 1);
  // precision(0) = 2/3, recall(0) = 2/3; precision(1) = 1/2,
  // recall(1) = 1/2.
  EXPECT_NEAR(report->precision[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report->recall[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report->precision[1], 0.5, 1e-12);
  EXPECT_NEAR(report->recall[1], 0.5, 1e-12);
  EXPECT_NEAR(report->macro_precision, (2.0 / 3.0 + 0.5) / 2.0, 1e-12);
}

TEST(EvaluateClassificationTest, AbsentClassGetsZeroMetrics) {
  std::vector<int32_t> truth{0, 0, 1};
  std::vector<int32_t> predicted{0, 0, 0};
  auto report = EvaluateClassification(truth, predicted, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->precision[2], 0.0);
  EXPECT_DOUBLE_EQ(report->recall[2], 0.0);
  EXPECT_DOUBLE_EQ(report->f1[2], 0.0);
  EXPECT_DOUBLE_EQ(report->recall[1], 0.0);  // Never predicted.
}

TEST(EvaluateClassificationTest, F1IsHarmonicMean) {
  std::vector<int32_t> truth{0, 0, 0, 0, 1, 1};
  std::vector<int32_t> predicted{0, 0, 1, 1, 1, 1};
  auto report = EvaluateClassification(truth, predicted, 2);
  ASSERT_TRUE(report.ok());
  double p = report->precision[1];  // 2/4.
  double r = report->recall[1];     // 2/2.
  EXPECT_NEAR(report->f1[1], 2.0 * p * r / (p + r), 1e-12);
}

TEST(EvaluateClassificationTest, RejectsBadInput) {
  EXPECT_FALSE(EvaluateClassification({0, 1}, {0}, 2).ok());
  EXPECT_FALSE(EvaluateClassification({}, {}, 2).ok());
  EXPECT_FALSE(EvaluateClassification({0}, {0}, 0).ok());
  EXPECT_FALSE(EvaluateClassification({0, 5}, {0, 0}, 2).ok());
  EXPECT_FALSE(EvaluateClassification({0, 0}, {0, -1}, 2).ok());
}

TEST(GiniImpurityTest, KnownValues) {
  EXPECT_DOUBLE_EQ(GiniImpurity({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({5, 5}), 0.5);
  EXPECT_DOUBLE_EQ(GiniImpurity({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0, 0}), 0.0);
  EXPECT_NEAR(GiniImpurity({1, 1, 1}), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace ml
}  // namespace adahealth
