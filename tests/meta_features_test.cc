#include "stats/meta_features.h"

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace stats {
namespace {

dataset::ExamLog MakeTinyLog() {
  std::vector<dataset::Patient> patients{{0, 50, -1}, {1, 60, -1}};
  dataset::ExamDictionary dictionary;
  auto a = dictionary.Intern("a");
  auto b = dictionary.Intern("b");
  std::vector<dataset::ExamRecord> records{
      {0, a, 1}, {0, a, 2}, {0, b, 3}, {1, a, 4}};
  return dataset::ExamLog(std::move(patients), std::move(dictionary),
                          std::move(records));
}

TEST(MetaFeaturesTest, BasicCounts) {
  MetaFeatures features = ComputeMetaFeatures(MakeTinyLog());
  EXPECT_EQ(features.num_patients, 2);
  EXPECT_EQ(features.num_exam_types, 2);
  EXPECT_EQ(features.num_records, 4);
}

TEST(MetaFeaturesTest, Density) {
  // Non-zero cells: (0,a), (0,b), (1,a) -> 3 of 4.
  MetaFeatures features = ComputeMetaFeatures(MakeTinyLog());
  EXPECT_DOUBLE_EQ(features.density, 0.75);
}

TEST(MetaFeaturesTest, RecordsPerPatientStats) {
  MetaFeatures features = ComputeMetaFeatures(MakeTinyLog());
  EXPECT_DOUBLE_EQ(features.mean_records_per_patient, 2.0);
  EXPECT_DOUBLE_EQ(features.stddev_records_per_patient, 1.0);
}

TEST(MetaFeaturesTest, PatientCoverage) {
  // Exam a reaches 2/2 patients, exam b 1/2 -> mean 0.75.
  MetaFeatures features = ComputeMetaFeatures(MakeTinyLog());
  EXPECT_DOUBLE_EQ(features.mean_patient_coverage, 0.75);
}

TEST(MetaFeaturesTest, JsonRoundTrip) {
  MetaFeatures features = ComputeMetaFeatures(MakeTinyLog());
  auto restored = MetaFeatures::FromJson(features.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_patients, features.num_patients);
  EXPECT_EQ(restored->num_records, features.num_records);
  EXPECT_DOUBLE_EQ(restored->density, features.density);
  EXPECT_DOUBLE_EQ(restored->exam_frequency_gini,
                   features.exam_frequency_gini);
  EXPECT_DOUBLE_EQ(restored->top20_coverage, features.top20_coverage);
}

TEST(MetaFeaturesTest, FromJsonRejectsNonObject) {
  EXPECT_FALSE(MetaFeatures::FromJson(common::Json(int64_t{1})).ok());
}

TEST(MetaFeaturesTest, FromJsonToleratesMissingFields) {
  auto restored = MetaFeatures::FromJson(common::Json(common::Json::Object{}));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_patients, 0);
}

TEST(MetaFeaturesTest, VectorMatchesNames) {
  MetaFeatures features = ComputeMetaFeatures(MakeTinyLog());
  EXPECT_EQ(features.ToVector().size(), MetaFeatures::FeatureNames().size());
}

TEST(MetaFeaturesTest, SyntheticCohortIsSparse) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  MetaFeatures features = ComputeMetaFeatures(cohort->log);
  // The paper stresses inherent sparseness; the synthetic cohort must
  // reproduce it.
  EXPECT_LT(features.density, 0.35);
  EXPECT_GT(features.exam_frequency_gini, 0.3);
  EXPECT_GT(features.top20_coverage, features.density);
}

TEST(MetaFeaturesTest, EmptyLogIsAllZero) {
  dataset::ExamDictionary dictionary;
  dictionary.Intern("x");
  dataset::ExamLog log({}, std::move(dictionary), {});
  MetaFeatures features = ComputeMetaFeatures(log);
  EXPECT_EQ(features.num_patients, 0);
  EXPECT_DOUBLE_EQ(features.density, 0.0);
  EXPECT_DOUBLE_EQ(features.mean_records_per_patient, 0.0);
}

}  // namespace
}  // namespace stats
}  // namespace adahealth
