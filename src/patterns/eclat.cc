#include "patterns/eclat.h"

#include <bit>
#include <map>

#include "common/metrics.h"

namespace adahealth {
namespace patterns {

namespace {

/// Transaction-id set as a fixed-width bitset over the database.
using TidSet = std::vector<uint64_t>;

int64_t Popcount(const TidSet& tids) {
  int64_t count = 0;
  for (uint64_t word : tids) count += std::popcount(word);
  return count;
}

TidSet Intersect(const TidSet& a, const TidSet& b) {
  TidSet out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] & b[i];
  return out;
}

/// One (item, tidset, support) column of the vertical layout.
struct Column {
  ItemId item;
  TidSet tids;
  int64_t support;
};

/// Depth-first Eclat: extends `prefix` with every column, recursing on
/// the pairwise-intersected conditional columns. `columns` items are
/// strictly increasing, so each itemset is enumerated exactly once in
/// ascending-item order.
void Search(const std::vector<Column>& columns,
            std::vector<ItemId>& prefix, int64_t min_support,
            size_t max_size, std::vector<FrequentItemset>& out,
            int64_t& intersections) {
  for (size_t i = 0; i < columns.size(); ++i) {
    prefix.push_back(columns[i].item);
    out.push_back({prefix, columns[i].support});
    if (max_size == 0 || prefix.size() < max_size) {
      std::vector<Column> conditional;
      for (size_t j = i + 1; j < columns.size(); ++j) {
        TidSet joint = Intersect(columns[i].tids, columns[j].tids);
        ++intersections;
        int64_t support = Popcount(joint);
        if (support >= min_support) {
          conditional.push_back(
              {columns[j].item, std::move(joint), support});
        }
      }
      if (!conditional.empty()) {
        Search(conditional, prefix, min_support, max_size, out,
               intersections);
      }
    }
    prefix.pop_back();
  }
}

}  // namespace

common::StatusOr<std::vector<FrequentItemset>> MineEclat(
    const TransactionDb& db, const MiningOptions& options) {
  if (options.min_support_count < 1) {
    return common::InvalidArgumentError("min_support_count must be >= 1");
  }

  // Build the vertical layout: one bitset per item.
  const size_t words = (db.transactions.size() + 63) / 64;
  std::map<ItemId, TidSet> vertical;
  for (size_t t = 0; t < db.transactions.size(); ++t) {
    for (ItemId item : db.transactions[t]) {
      TidSet& tids = vertical.try_emplace(item, words, 0).first->second;
      tids[t / 64] |= uint64_t{1} << (t % 64);
    }
  }

  std::vector<Column> columns;
  for (auto& [item, tids] : vertical) {
    int64_t support = Popcount(tids);
    if (support >= options.min_support_count) {
      columns.push_back({item, std::move(tids), support});
    }
  }

  std::vector<FrequentItemset> result;
  std::vector<ItemId> prefix;
  int64_t intersections = 0;
  Search(columns, prefix, options.min_support_count,
         options.max_itemset_size, result, intersections);
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.GetCounter("patterns/eclat/intersections")
      .Increment(intersections);
  metrics.GetCounter("patterns/eclat/frequent_itemsets")
      .Increment(static_cast<int64_t>(result.size()));
  SortCanonical(result);
  return result;
}

}  // namespace patterns
}  // namespace adahealth
