// Streaming-cohort coverage: batch-atomic ingestion, incremental §2.1
// descriptors cross-checked against a full recompute, crash-safe
// persistence with torn-append salvage, the warm-start drift gate, the
// scheduler's versioned fingerprints with stale-generation supersede,
// cache supersede-exactly-once, the server's `ingest` verb — and the
// subsystem's central invariant: a delta (warm-started) re-analysis
// renders a byte-identical report to a cold run on the same data.
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "common/check.h"
#include "common/json.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/report.h"
#include "core/session.h"
#include "dataset/exam_log.h"
#include "dataset/synthetic_cohort.h"
#include "kdb/database.h"
#include "service/client.h"
#include "service/cohort_store.h"
#include "service/fingerprint.h"
#include "service/result_cache.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "stats/meta_features.h"
#include "transform/matrix.h"

namespace adahealth {
namespace {

using common::Json;
using common::StatusCode;

std::string MakeScratchDir(const std::string& name) {
  std::string path = testing::TempDir() + "/cohort_" + name;
  std::error_code ignored;
  std::filesystem::remove_all(path, ignored);
  ::mkdir(path.c_str(), 0755);
  return path;
}

dataset::RawExamRecord Raw(int32_t patient, std::string exam_type,
                           int32_t day) {
  dataset::RawExamRecord row;
  row.patient = patient;
  row.exam_type = std::move(exam_type);
  row.day = day;
  return row;
}

/// The synthetic cohort's record table as an arrival-order raw batch.
std::vector<dataset::RawExamRecord> ToRaw(const dataset::ExamLog& log) {
  std::vector<dataset::RawExamRecord> rows;
  rows.reserve(log.num_records());
  for (const dataset::ExamRecord& record : log.records()) {
    rows.push_back(
        Raw(record.patient, log.dictionary().Name(record.exam_type),
            record.day));
  }
  return rows;
}

dataset::ExamLog MakeSyntheticLog(uint64_t seed, int32_t patients = 120) {
  dataset::CohortConfig config = dataset::TestScaleConfig();
  config.num_patients = patients;
  config.num_exam_types = 24;
  config.num_profiles = 3;
  config.seed = seed;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  ADA_CHECK(cohort.ok());
  return std::move(cohort).value().log;
}

core::SessionOptions FastOptions(const std::string& dataset_id) {
  core::SessionOptions options;
  options.dataset_id = dataset_id;
  options.transform.sample_fraction = 0.4;
  options.transform.proxy_k = 4;
  options.partial.fractions = {0.5, 1.0};
  options.partial.ks = {3};
  options.partial.kmeans.max_iterations = 20;
  options.optimizer.candidate_ks = {3, 4};
  options.optimizer.cv_folds = 4;
  options.optimizer.restarts = 1;
  return options;
}

/// A successful analysis outcome with just the fields
/// OnAnalysisCommitted persists: one winning candidate of `k`
/// centroids over `dims` VSM columns.
core::SessionResult FakeSuccess(int32_t k, size_t dims, double fill) {
  core::SessionResult result;
  core::CandidateEvaluation candidate;
  candidate.k = k;
  candidate.clustering.k = k;
  candidate.clustering.centroids = transform::Matrix(
      static_cast<size_t>(k), dims, fill);
  result.optimizer.candidates.push_back(std::move(candidate));
  result.optimizer.best_index = 0;
  for (size_t i = 0; i < dims; ++i) {
    result.mining_exam_types.push_back(static_cast<int32_t>(i));
  }
  result.summary = "fake run";
  return result;
}

// ---------------------------------------------------------------------
// Ingestion semantics.

TEST(CohortStoreTest, IngestAccumulatesLikeDirectAppend) {
  service::CohortStore store(service::CohortStoreOptions{});

  std::vector<dataset::RawExamRecord> batch1 = {
      Raw(0, "blood_panel", 1), Raw(1, "xray_chest", 2),
      Raw(0, "blood_panel", 6)};
  std::vector<dataset::RawExamRecord> batch2 = {Raw(2, "mri_head", 9),
                                                Raw(1, "blood_panel", 11)};

  auto first = store.Ingest("ward", batch1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().generation, 1);
  EXPECT_EQ(first.value().batch_records, 3);
  EXPECT_EQ(first.value().total_records, 3);
  EXPECT_EQ(first.value().patients, 2);

  auto second = store.Ingest("ward", batch2);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().generation, 2);
  EXPECT_EQ(second.value().batch_records, 2);
  EXPECT_EQ(second.value().total_records, 5);
  EXPECT_EQ(second.value().patients, 3);

  // The streaming-ingestion invariant: the accumulated snapshot equals
  // one direct ExamLog::Append over the concatenated batches.
  dataset::ExamLog direct;
  ASSERT_TRUE(direct.Append(batch1).ok());
  ASSERT_TRUE(direct.Append(batch2).ok());
  auto snapshot = store.Snapshot("ward");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().ToCsv(), direct.ToCsv());

  EXPECT_EQ(store.num_cohorts(), 1u);
  service::CohortStoreStats stats = store.stats();
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.records, 5);
  EXPECT_EQ(stats.cohorts, 1);
  EXPECT_EQ(stats.generations, 2);
}

TEST(CohortStoreTest, RejectsInvalidNamesBatchesAndRecords) {
  service::CohortStore store(service::CohortStoreOptions{});
  std::vector<dataset::RawExamRecord> good = {Raw(0, "ecg", 1)};

  for (const std::string& name :
       {std::string(""), std::string("a/b"), std::string("ward 3"),
        std::string("dot.dot"), std::string(65, 'a')}) {
    EXPECT_EQ(store.Ingest(name, good).status().code(),
              StatusCode::kInvalidArgument)
        << "name: '" << name << "'";
  }

  EXPECT_EQ(store.Ingest("ward", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Ingest("ward", {Raw(-1, "ecg", 1)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Ingest("ward", {Raw(0, "", 1)}).status().code(),
            StatusCode::kInvalidArgument);

  // A rejected batch never materializes the cohort.
  EXPECT_EQ(store.num_cohorts(), 0u);
  EXPECT_EQ(store.Snapshot("ward").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Descriptors("ward").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.BuildCohortJob("ward").status().code(),
            StatusCode::kNotFound);
}

TEST(CohortStoreTest, CohortNameValidation) {
  EXPECT_TRUE(service::IsValidCohortName("ward-3_B"));
  EXPECT_TRUE(service::IsValidCohortName(std::string(64, 'x')));
  EXPECT_FALSE(service::IsValidCohortName(""));
  EXPECT_FALSE(service::IsValidCohortName(std::string(65, 'x')));
  EXPECT_FALSE(service::IsValidCohortName("../escape"));
  EXPECT_FALSE(service::IsValidCohortName("white space"));
}

// ---------------------------------------------------------------------
// Incremental descriptors.

TEST(CohortStoreTest, IncrementalDescriptorsMatchFullRecompute) {
  service::CohortStore store(service::CohortStoreOptions{});
  std::vector<dataset::RawExamRecord> rows = ToRaw(MakeSyntheticLog(17, 80));
  ASSERT_GT(rows.size(), 8u);

  // Four uneven batches; after each the incrementally maintained
  // descriptors must match stats::ComputeMetaFeatures run from scratch
  // on the accumulated snapshot.
  const size_t cuts[] = {rows.size() / 7, rows.size() / 3,
                         (rows.size() * 3) / 4, rows.size()};
  size_t start = 0;
  int64_t generation = 0;
  for (size_t cut : cuts) {
    std::vector<dataset::RawExamRecord> batch(rows.begin() + start,
                                              rows.begin() + cut);
    start = cut;
    ASSERT_TRUE(store.Ingest("icu", batch).ok());
    ++generation;

    auto descriptors = store.Descriptors("icu");
    ASSERT_TRUE(descriptors.ok());
    auto snapshot = store.Snapshot("icu");
    ASSERT_TRUE(snapshot.ok());
    stats::MetaFeatures full = stats::ComputeMetaFeatures(snapshot.value());

    EXPECT_EQ(descriptors.value().generation, generation);
    EXPECT_EQ(descriptors.value().records, full.num_records);
    EXPECT_EQ(descriptors.value().patients, full.num_patients);
    EXPECT_EQ(descriptors.value().exam_types, full.num_exam_types);
    EXPECT_DOUBLE_EQ(descriptors.value().density, full.density);
    EXPECT_DOUBLE_EQ(descriptors.value().mean_records_per_patient,
                     full.mean_records_per_patient);

    // The marginals partition the record count.
    int64_t marginal_sum = 0;
    for (const auto& [exam, count] : descriptors.value().exam_marginals) {
      EXPECT_GT(count, 0) << exam;
      marginal_sum += count;
    }
    EXPECT_EQ(marginal_sum, full.num_records);
    EXPECT_EQ(static_cast<int64_t>(descriptors.value().exam_marginals.size()),
              full.num_exam_types);
  }
}

// ---------------------------------------------------------------------
// Persistence.

TEST(CohortStoreTest, PersistsAndReloadsAcrossStores) {
  std::string dir = MakeScratchDir("reload");
  service::CohortStoreOptions options;
  options.directory = dir;

  std::string csv;
  service::CohortDescriptors before;
  {
    service::CohortStore store(options);
    ASSERT_TRUE(
        store.Ingest("ward", {Raw(0, "ecg", 1), Raw(1, "xray", 2)}).ok());
    ASSERT_TRUE(store.Ingest("ward", {Raw(2, "ecg", 3)}).ok());
    // A committed analysis at the current generation becomes durable
    // warm state.
    store.OnAnalysisCommitted("ward", 2, 3, FakeSuccess(3, 5, 0.25));
    csv = store.Snapshot("ward").value().ToCsv();
    before = store.Descriptors("ward").value();
  }

  service::CohortStore reloaded(options);
  EXPECT_EQ(reloaded.num_cohorts(), 1u);
  auto snapshot = reloaded.Snapshot("ward");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().ToCsv(), csv);

  auto after = reloaded.Descriptors("ward");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().generation, before.generation);
  EXPECT_EQ(after.value().records, before.records);
  EXPECT_EQ(after.value().patients, before.patients);
  EXPECT_DOUBLE_EQ(after.value().density, before.density);
  EXPECT_EQ(after.value().exam_marginals, before.exam_marginals);

  // The warm-start state survived the reload.
  auto job = reloaded.BuildCohortJob("ward");
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job.value().cohort, "ward");
  EXPECT_EQ(job.value().cohort_generation, 2);
  EXPECT_EQ(job.value().options.warm.centroids,
            transform::Matrix(3, 5, 0.25));
  EXPECT_EQ(job.value().options.warm.best_k, 3);
  EXPECT_EQ(job.value().options.warm.exam_types.size(), 5u);
}

TEST(CohortStoreTest, TornAppendResidueIsInvisibleAndTruncated) {
  std::string dir = MakeScratchDir("torn");
  service::CohortStoreOptions options;
  options.directory = dir;

  std::vector<dataset::RawExamRecord> batch1 = {Raw(0, "ecg", 1),
                                                Raw(1, "xray", 4)};
  std::vector<dataset::RawExamRecord> batch2 = {Raw(2, "mri", 7)};
  std::string committed_csv;
  {
    service::CohortStore store(options);
    ASSERT_TRUE(store.Ingest("ward", batch1).ok());
    committed_csv = store.Snapshot("ward").value().ToCsv();
  }

  // Simulate a crash mid-append: bytes hit the records file but the
  // manifest rename never happened.
  {
    std::FILE* file = std::fopen((dir + "/ward.records").c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const std::string garbage = "999,torn-half-a-reco";
    ASSERT_EQ(std::fwrite(garbage.data(), 1, garbage.size(), file),
              garbage.size());
    std::fclose(file);
  }

  // The loader reads only the committed prefix: generation 1 stays
  // fully readable, the residue is never parsed.
  service::CohortStore salvaged(options);
  EXPECT_EQ(salvaged.num_cohorts(), 1u);
  auto snapshot = salvaged.Snapshot("ward");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().ToCsv(), committed_csv);
  EXPECT_EQ(salvaged.Descriptors("ward").value().generation, 1);

  // The next append truncates the residue before writing, so the file
  // stays parseable end to end.
  ASSERT_TRUE(salvaged.Ingest("ward", batch2).ok());

  dataset::ExamLog direct;
  ASSERT_TRUE(direct.Append(batch1).ok());
  ASSERT_TRUE(direct.Append(batch2).ok());
  service::CohortStore reloaded(options);
  auto final_snapshot = reloaded.Snapshot("ward");
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_EQ(final_snapshot.value().ToCsv(), direct.ToCsv());
  EXPECT_EQ(reloaded.Descriptors("ward").value().generation, 2);
}

TEST(CohortStoreTest, FirstBatchCrashResidueIsClearedNotAppendedAfter) {
  // The first-batch crash window: a records file hit disk but the
  // cohort's FIRST manifest never did. The loader discovers nothing
  // (no manifest), so a fresh store starts the cohort over — and the
  // first append must CLEAR the residue, not extend it, or the new
  // manifest's committed_bytes would cover stale bytes and a reload
  // would parse the wrong records.
  std::string dir = MakeScratchDir("first_batch_crash");
  service::CohortStoreOptions options;
  options.directory = dir;
  {
    std::FILE* file = std::fopen((dir + "/ward.records").c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const std::string residue =
        "patient_id,exam_type,day\n7,ghost_exam,3\n11,torn-half";
    ASSERT_EQ(std::fwrite(residue.data(), 1, residue.size(), file),
              residue.size());
    std::fclose(file);
  }

  service::CohortStore store(options);
  EXPECT_EQ(store.num_cohorts(), 0u);  // No manifest, no cohort.

  std::vector<dataset::RawExamRecord> batch = {Raw(0, "ecg", 1),
                                               Raw(1, "xray", 2)};
  ASSERT_TRUE(store.Ingest("ward", batch).ok());

  // In memory and across a reload, the cohort holds exactly the
  // committed batch: no ghost records, no parse failure.
  dataset::ExamLog direct;
  ASSERT_TRUE(direct.Append(batch).ok());
  EXPECT_EQ(store.Snapshot("ward").value().ToCsv(), direct.ToCsv());
  service::CohortStore reloaded(options);
  ASSERT_EQ(reloaded.num_cohorts(), 1u);
  EXPECT_EQ(reloaded.Snapshot("ward").value().ToCsv(), direct.ToCsv());
  EXPECT_EQ(reloaded.Descriptors("ward").value().records, 2);
}

TEST(CohortStoreTest, ExpectedGenerationGuardsAgainstReplay) {
  service::CohortStore store(service::CohortStoreOptions{});
  std::vector<dataset::RawExamRecord> batch = {Raw(0, "ecg", 1)};

  // Conditional first append: a cohort that does not exist yet is at
  // generation 0.
  ASSERT_TRUE(store.Ingest("ward", batch, /*expected_generation=*/0).ok());

  // The lost-ack replay: the client resends with the generation it
  // observed before the commit. The guard rejects it — nothing is
  // double-applied — and the mismatch tells the client the original
  // batch landed.
  auto replay = store.Ingest("ward", batch, /*expected_generation=*/0);
  EXPECT_EQ(replay.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Descriptors("ward").value().generation, 1);
  EXPECT_EQ(store.Descriptors("ward").value().records, 1);

  // The guard also refuses a fork: a fresh (empty) cohort cannot
  // absorb a guarded batch meant for generation 1 of the original.
  auto forked = store.Ingest("fork", batch, /*expected_generation=*/1);
  EXPECT_EQ(forked.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.num_cohorts(), 1u);

  // Matching generation commits; unconditional appends stay unchanged.
  ASSERT_TRUE(
      store.Ingest("ward", {Raw(1, "mri", 2)}, /*expected_generation=*/1)
          .ok());
  ASSERT_TRUE(store.Ingest("ward", {Raw(2, "ecg", 3)}).ok());
  EXPECT_EQ(store.Descriptors("ward").value().generation, 3);
  EXPECT_EQ(store.Descriptors("ward").value().records, 3);
}

// ---------------------------------------------------------------------
// Warm-start state machine.

TEST(CohortStoreTest, WarmStartAppliesUntilDriftGateTrips) {
  service::CohortStore store(service::CohortStoreOptions{});

  std::vector<dataset::RawExamRecord> base;
  for (int i = 0; i < 8; ++i) {
    base.push_back(Raw(i % 4, "exam_" + std::to_string(i % 3), i));
  }
  ASSERT_TRUE(store.Ingest("ward", base).ok());

  // No analysis yet: the first job runs cold.
  auto cold = store.BuildCohortJob("ward");
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold.value().options.warm.centroids.empty());
  EXPECT_EQ(cold.value().cohort_generation, 1);
  EXPECT_EQ(cold.value().options.dataset_id, "ward");

  store.OnAnalysisCommitted("ward", 1, 8, FakeSuccess(7, 6, 1.0));

  // Two fresh records over ten total: well under the drift gate, so
  // the next job carries the warm hint. candidate_ks stays in its
  // canonical order — it is hashed in order by the options signature,
  // so the warm and cold jobs over the same snapshot must produce the
  // same fingerprint (the optimizer reorders evaluation internally,
  // keyed off the hint).
  ASSERT_TRUE(
      store.Ingest("ward", {Raw(0, "exam_0", 20), Raw(1, "exam_1", 21)}).ok());
  auto warm = store.BuildCohortJob("ward");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().options.warm.centroids, transform::Matrix(7, 6, 1.0));
  EXPECT_EQ(warm.value().options.warm.best_k, 7);
  EXPECT_EQ(warm.value().options.optimizer.candidate_ks,
            core::SessionOptions().optimizer.candidate_ks);
  EXPECT_EQ(service::SessionOptionsSignature(warm.value().options),
            service::SessionOptionsSignature(cold.value().options));
  EXPECT_EQ(store.stats().warm_starts, 1);
  EXPECT_EQ(store.stats().cold_fallbacks, 0);

  // A flood of new records (32 of 40 arrived since the analysis)
  // exceeds drift_threshold: the stale centroids are dropped and the
  // job degrades to a cold run.
  std::vector<dataset::RawExamRecord> flood;
  for (int i = 0; i < 30; ++i) {
    flood.push_back(Raw(i % 6, "exam_" + std::to_string(i % 4), 30 + i));
  }
  ASSERT_TRUE(store.Ingest("ward", flood).ok());
  auto drifted = store.BuildCohortJob("ward");
  ASSERT_TRUE(drifted.ok());
  EXPECT_TRUE(drifted.value().options.warm.centroids.empty());
  EXPECT_EQ(store.stats().cold_fallbacks, 1);
}

TEST(CohortStoreTest, StaleAnalysisNotificationIsIgnored) {
  service::CohortStore store(service::CohortStoreOptions{});
  ASSERT_TRUE(store.Ingest("ward", {Raw(0, "ecg", 1)}).ok());
  ASSERT_TRUE(store.Ingest("ward", {Raw(1, "mri", 2)}).ok());

  store.OnAnalysisCommitted("ward", 2, 2, FakeSuccess(4, 3, 2.0));
  // A straggler worker reporting an older generation must not clobber
  // the newer warm state.
  store.OnAnalysisCommitted("ward", 1, 1, FakeSuccess(3, 3, 9.0));

  auto job = store.BuildCohortJob("ward");
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job.value().options.warm.best_k, 4);
  EXPECT_EQ(job.value().options.warm.centroids, transform::Matrix(4, 3, 2.0));
}

TEST(CohortStoreTest, DriftGateMeasuresAgainstTheAnalyzedSnapshot) {
  // Batches can land between a job's snapshot and its analysis
  // committing. The drift gate must count them as fresh — its baseline
  // is the ANALYZED snapshot's record count, not the live log's at
  // notification time (which would under-count fresh records and warm
  // a cohort that has actually drifted past the threshold).
  service::CohortStore store(service::CohortStoreOptions{});
  std::vector<dataset::RawExamRecord> base;
  for (int i = 0; i < 4; ++i) {
    base.push_back(Raw(i, "exam_" + std::to_string(i % 2), i));
  }
  ASSERT_TRUE(store.Ingest("ward", base).ok());  // Generation 1: 4 records.

  // 16 more records arrive while generation 1 is still being analyzed.
  std::vector<dataset::RawExamRecord> meanwhile;
  for (int i = 0; i < 16; ++i) {
    meanwhile.push_back(Raw(i % 5, "exam_" + std::to_string(i % 3), 10 + i));
  }
  ASSERT_TRUE(store.Ingest("ward", meanwhile).ok());

  // The generation-1 analysis commits now, over its 4-record snapshot.
  store.OnAnalysisCommitted("ward", 1, 4, FakeSuccess(3, 2, 1.0));

  // 16 of the 20 live records are fresh relative to the analyzed
  // snapshot — far past drift_threshold, so the job must run cold.
  auto job = store.BuildCohortJob("ward");
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(job.value().options.warm.centroids.empty());
  EXPECT_EQ(store.stats().cold_fallbacks, 1);
  EXPECT_EQ(store.stats().warm_starts, 0);
}

TEST(CohortStoreTest, IncompleteResultsNeverBecomeWarmState) {
  service::CohortStore store(service::CohortStoreOptions{});
  ASSERT_TRUE(store.Ingest("ward", {Raw(0, "ecg", 1)}).ok());

  core::SessionResult no_candidates;
  no_candidates.mining_exam_types = {0, 1};
  store.OnAnalysisCommitted("ward", 1, 1, no_candidates);

  core::SessionResult no_exam_types = FakeSuccess(3, 4, 1.0);
  no_exam_types.mining_exam_types.clear();
  store.OnAnalysisCommitted("ward", 1, 1, no_exam_types);

  auto job = store.BuildCohortJob("ward");
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(job.value().options.warm.centroids.empty());
}

// ---------------------------------------------------------------------
// The delta-vs-cold invariant (end to end, real sessions).
//
// Two gates, per the warm-start contract (core/session.h): when the
// cold sweep already converges to the optimum, the hint attempt ties
// and the delta report is BYTE-IDENTICAL to the cold run (gate 1,
// asserted below); in regimes where the hint genuinely redirects the
// k-means trajectory, the delta run may only *improve* the selected
// configuration, and must itself stay deterministic (gate 2, the
// following test).

/// Session options strong enough that the cold sweep converges: the
/// warm hint can then only tie, never redirect.
core::SessionOptions ConvergedOptions(const std::string& dataset_id) {
  core::SessionOptions options = FastOptions(dataset_id);
  options.optimizer.restarts = 6;
  options.optimizer.kmeans.max_iterations = 100;
  options.partial.kmeans.max_iterations = 100;
  return options;
}

TEST(CohortStoreTest, DeltaJobReportIsByteIdenticalToColdRun) {
  // Gate 1: report byte-identity.
  service::CohortStore store(service::CohortStoreOptions{});
  std::vector<dataset::RawExamRecord> rows = ToRaw(MakeSyntheticLog(23));
  const size_t split = (rows.size() * 9) / 10;

  // Generation 1: the bulk of the cohort, analyzed cold.
  ASSERT_TRUE(store
                  .Ingest("icu", std::vector<dataset::RawExamRecord>(
                                     rows.begin(), rows.begin() + split))
                  .ok());
  auto job1 = store.BuildCohortJob("icu");
  ASSERT_TRUE(job1.ok());
  kdb::Database db1;
  auto run1 = core::AnalysisSession(&db1).Run(job1.value().log, nullptr,
                                              ConvergedOptions("icu"));
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  store.OnAnalysisCommitted(
      "icu", 1, static_cast<int64_t>(job1.value().log.num_records()),
      run1.value());

  // Generation 2: a 10% tail lands — under the drift gate, so the
  // next job carries the prior centroids as a warm hint.
  ASSERT_TRUE(store
                  .Ingest("icu", std::vector<dataset::RawExamRecord>(
                                     rows.begin() + split, rows.end()))
                  .ok());
  auto job2 = store.BuildCohortJob("icu");
  ASSERT_TRUE(job2.ok());
  ASSERT_FALSE(job2.value().options.warm.centroids.empty());
  EXPECT_EQ(store.stats().warm_starts, 1);

  // The invariant: with the cold restarts unchanged (warm.restarts
  // matching the cold sweep), the warm (delta) run and a cold run over
  // the same accumulated snapshot render byte-identical reports.
  core::SessionOptions warm_options = ConvergedOptions("icu");
  warm_options.warm = job2.value().options.warm;
  warm_options.warm.restarts = warm_options.optimizer.restarts;
  kdb::Database db2;
  auto warm_run = core::AnalysisSession(&db2).Run(job2.value().log, nullptr,
                                                  warm_options);
  ASSERT_TRUE(warm_run.ok()) << warm_run.status().ToString();

  kdb::Database db3;
  auto cold_run = core::AnalysisSession(&db3).Run(job2.value().log, nullptr,
                                                  ConvergedOptions("icu"));
  ASSERT_TRUE(cold_run.ok()) << cold_run.status().ToString();

  EXPECT_EQ(core::RenderSessionReport(warm_run.value(), "icu"),
            core::RenderSessionReport(cold_run.value(), "icu"));
  EXPECT_EQ(warm_run.value().summary, cold_run.value().summary);
}

TEST(CohortStoreTest, DeltaJobIsDeterministicAndNeverWorseThanCold) {
  // Gate 2: in the fast regime (one restart, few iterations) the hint
  // genuinely redirects the sweep. The delta run must then (a) select
  // a configuration at least as good as the cold run's and (b) be
  // byte-deterministic itself — the same hint always renders the same
  // report, which is what the versioned result cache serves.
  service::CohortStore store(service::CohortStoreOptions{});
  std::vector<dataset::RawExamRecord> rows = ToRaw(MakeSyntheticLog(23));
  const size_t split = (rows.size() * 9) / 10;
  ASSERT_TRUE(store
                  .Ingest("icu", std::vector<dataset::RawExamRecord>(
                                     rows.begin(), rows.begin() + split))
                  .ok());
  auto job1 = store.BuildCohortJob("icu");
  ASSERT_TRUE(job1.ok());
  kdb::Database db1;
  auto run1 = core::AnalysisSession(&db1).Run(job1.value().log, nullptr,
                                              FastOptions("icu"));
  ASSERT_TRUE(run1.ok());
  store.OnAnalysisCommitted(
      "icu", 1, static_cast<int64_t>(job1.value().log.num_records()),
      run1.value());
  ASSERT_TRUE(store
                  .Ingest("icu", std::vector<dataset::RawExamRecord>(
                                     rows.begin() + split, rows.end()))
                  .ok());
  auto job2 = store.BuildCohortJob("icu");
  ASSERT_TRUE(job2.ok());
  ASSERT_FALSE(job2.value().options.warm.centroids.empty());

  core::SessionOptions warm_options = FastOptions("icu");
  warm_options.warm = job2.value().options.warm;
  kdb::Database db2;
  auto warm_run = core::AnalysisSession(&db2).Run(job2.value().log, nullptr,
                                                  warm_options);
  ASSERT_TRUE(warm_run.ok());
  kdb::Database db3;
  auto warm_again = core::AnalysisSession(&db3).Run(job2.value().log, nullptr,
                                                    warm_options);
  ASSERT_TRUE(warm_again.ok());
  kdb::Database db4;
  auto cold_run = core::AnalysisSession(&db4).Run(job2.value().log, nullptr,
                                                  FastOptions("icu"));
  ASSERT_TRUE(cold_run.ok());

  // (a) Monotone: the hint can only improve the selected configuration.
  EXPECT_GE(warm_run.value().optimizer.best().composite,
            cold_run.value().optimizer.best().composite);
  // (b) Deterministic: delta-vs-delta byte-identity.
  EXPECT_EQ(core::RenderSessionReport(warm_run.value(), "icu"),
            core::RenderSessionReport(warm_again.value(), "icu"));
}

// ---------------------------------------------------------------------
// Scheduler integration: versioned fingerprints and supersede.

TEST(CohortStoreTest, SchedulerSupersedesStaleQueuedGenerations) {
  service::SchedulerOptions options;
  options.max_workers = 2;
  options.start_paused = true;
  int64_t hook_fired = 0;
  int64_t hook_generation = 0;
  common::Mutex hook_mutex;
  options.on_session_success = [&](const service::JobRequest& request,
                                   const core::SessionResult& result) {
    common::MutexLock lock(&hook_mutex);
    ++hook_fired;
    hook_generation = request.cohort_generation;
    EXPECT_FALSE(result.optimizer.candidates.empty());
  };
  service::Scheduler scheduler(options);

  dataset::ExamLog log = MakeSyntheticLog(31);
  service::JobRequest stale;
  stale.log = log;
  stale.options = FastOptions("wave");
  stale.cohort = "wave";
  stale.cohort_generation = 1;
  auto stale_id = scheduler.Submit(std::move(stale));
  ASSERT_TRUE(stale_id.ok());

  service::JobRequest fresh;
  fresh.log = std::move(log);
  fresh.options = FastOptions("wave");
  fresh.cohort = "wave";
  fresh.cohort_generation = 2;
  auto fresh_id = scheduler.Submit(std::move(fresh));
  ASSERT_TRUE(fresh_id.ok());

  // Admitting generation 2 cancelled the queued generation-1 job.
  auto stale_snapshot = scheduler.Status(stale_id.value());
  ASSERT_TRUE(stale_snapshot.ok());
  EXPECT_EQ(stale_snapshot.value().state, service::JobState::kCancelled);
  EXPECT_EQ(stale_snapshot.value().status.code(),
            StatusCode::kFailedPrecondition);
  EXPECT_NE(stale_snapshot.value().status.message().find("superseded"),
            std::string::npos);
  EXPECT_EQ(scheduler.stats().superseded, 1);

  // Waiting on the superseded job resolves immediately — no hang.
  auto awaited = scheduler.AwaitResult(stale_id.value(), 5000.0);
  ASSERT_TRUE(awaited.ok());
  EXPECT_EQ(awaited.value().state, service::JobState::kCancelled);

  scheduler.Resume();
  auto done = scheduler.AwaitResult(fresh_id.value(), 120000.0);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, service::JobState::kDone)
      << done.value().status.ToString();
  // The fingerprint is versioned by cohort and generation.
  EXPECT_EQ(done.value().fingerprint.rfind("wave@2/", 0), 0u)
      << done.value().fingerprint;

  // The committed cache entry carries the versioning fields and the
  // success hook fired exactly once, for generation 2.
  std::vector<service::CachedAnalysis> entries = scheduler.cache().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].cohort, "wave");
  EXPECT_EQ(entries[0].generation, 2);
  common::MutexLock lock(&hook_mutex);
  EXPECT_EQ(hook_fired, 1);
  EXPECT_EQ(hook_generation, 2);
}

// ---------------------------------------------------------------------
// Result-cache supersede.

service::CachedAnalysis CohortEntry(const std::string& cohort,
                                    int64_t generation) {
  service::CachedAnalysis entry;
  entry.fingerprint =
      cohort + "@" + std::to_string(generation) + "/deadbeef00";
  entry.dataset_id = cohort;
  entry.cohort = cohort;
  entry.generation = generation;
  entry.summary = "summary g" + std::to_string(generation);
  entry.report = "report g" + std::to_string(generation);
  return entry;
}

TEST(CohortStoreTest, CacheSupersedesOlderGenerationsExactlyOnce) {
  service::ResultCache cache(1 << 20);
  cache.Insert(CohortEntry("c", 1));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.superseded(), 0);

  // A newer generation evicts the older one exactly once.
  cache.Insert(CohortEntry("c", 2));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.superseded(), 1);
  EXPECT_FALSE(cache.Lookup(CohortEntry("c", 1).fingerprint).has_value());
  ASSERT_TRUE(cache.Lookup(CohortEntry("c", 2).fingerprint).has_value());

  // Re-inserting the current generation refreshes without counting.
  cache.Insert(CohortEntry("c", 2));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.superseded(), 1);

  // Replication replay can deliver an old generation late: the stale
  // entry is dropped, the newer snapshot stays.
  cache.Insert(CohortEntry("c", 1));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.superseded(), 2);
  EXPECT_FALSE(cache.Lookup(CohortEntry("c", 1).fingerprint).has_value());
  ASSERT_TRUE(cache.Lookup(CohortEntry("c", 2).fingerprint).has_value());

  // Other cohorts and plain entries are untouched bystanders.
  cache.Insert(CohortEntry("other", 1));
  service::CachedAnalysis plain;
  plain.fingerprint = "plainfingerprint";
  plain.dataset_id = "plain";
  plain.report = "r";
  cache.Insert(plain);
  cache.Insert(CohortEntry("c", 3));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.superseded(), 3);
  EXPECT_TRUE(cache.Lookup("plainfingerprint").has_value());
  EXPECT_TRUE(cache.Lookup(CohortEntry("other", 1).fingerprint).has_value());
}

// ---------------------------------------------------------------------
// The server's ingest verb, over the wire.

TEST(CohortStoreTest, ServerIngestVerbRoundTrip) {
  service::ServerOptions options;
  options.scheduler.max_workers = 1;
  service::AnalysisServer server(std::move(options));
  ASSERT_TRUE(server.Start().ok());

  auto client = service::AnalysisClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  Json::Object record;
  record["patient"] = static_cast<int64_t>(0);
  record["exam_type"] = std::string("ecg");
  record["day"] = static_cast<int64_t>(3);
  Json::Object body;
  body["verb"] = "ingest";
  body["cohort"] = std::string("ward");
  body["records"] = Json(Json::Array{Json(std::move(record))});

  auto response = client.value().Call(Json::Object(body));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().Find("ok")->AsBool());
  EXPECT_EQ(response.value().Find("cohort")->AsString(), "ward");
  EXPECT_EQ(response.value().Find("generation")->AsInt(), 1);
  EXPECT_EQ(response.value().Find("total_records")->AsInt(), 1);

  auto again = client.value().Call(std::move(body));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().Find("generation")->AsInt(), 2);

  // stats and health surface the ingest counters.
  for (const std::string& verb : {std::string("stats"), std::string("health")}) {
    auto info = client.value().Call(verb);
    ASSERT_TRUE(info.ok()) << verb;
    const Json* ingest = info.value().Find("ingest");
    ASSERT_NE(ingest, nullptr) << verb;
    EXPECT_EQ(ingest->Find("batches")->AsInt(), 2) << verb;
    EXPECT_EQ(ingest->Find("records")->AsInt(), 2) << verb;
    EXPECT_EQ(ingest->Find("cohorts")->AsInt(), 1) << verb;
  }

  // Malformed ingests are rejected with INVALID_ARGUMENT (the client
  // reconstructs server-side error responses as their Status).
  Json::Object bad;
  bad["verb"] = "ingest";
  bad["cohort"] = std::string("ward");
  auto rejected = client.value().Call(std::move(bad));
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  server.Stop();
}

TEST(CohortStoreTest, FollowerRejectsIngest) {
  service::ServerOptions options;
  options.role = service::ServerRole::kFollower;
  options.scheduler.max_workers = 1;
  service::AnalysisServer follower(std::move(options));
  ASSERT_TRUE(follower.Start().ok());

  auto client = service::AnalysisClient::Connect(follower.port());
  ASSERT_TRUE(client.ok());

  Json::Object record;
  record["patient"] = static_cast<int64_t>(0);
  record["exam_type"] = std::string("ecg");
  Json::Object body;
  body["verb"] = "ingest";
  body["cohort"] = std::string("ward");
  body["records"] = Json(Json::Array{Json(std::move(record))});
  auto response = client.value().Call(std::move(body));
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);

  follower.Stop();
}

}  // namespace
}  // namespace adahealth
