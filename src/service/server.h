// The NDJSON protocol front-end: one TCP server that exposes a
// Scheduler over the loopback interface.
//
// Connection model: a single epoll event-loop thread multiplexes every
// connection (service/event_loop.h, service/connection.h) — no client
// can starve another by being slow, holding its socket open, or
// parking inside a long `result` wait. Requests pipelined on one
// connection are answered strictly in order. All heavy work runs on
// the scheduler's workers; the loop thread only parses, dispatches,
// and shuttles buffers. The `result` verb never blocks the loop: it
// registers a Scheduler::Subscribe completion callback (plus a
// timeout timer) and the response is delivered when either fires.
//
// Resource policy: at most `max_connections` concurrent clients
// (excess accepts are answered RESOURCE_EXHAUSTED and dropped),
// connections idle beyond `idle_timeout_millis` are evicted, request
// lines are capped at `max_line_bytes`, and `result` waits are capped
// server-side at `max_result_wait_millis`. Shutdown (the `shutdown`
// verb or Stop()) drains gracefully: the listener stops accepting,
// pending responses are flushed, parked waits are resolved with
// UNAVAILABLE, and a failsafe timer bounds the drain.
//
// Metrics: "service/server_connections", "service/server_requests",
// "service/server_errors", "service/connections_shed",
// "service/idle_disconnects" counters; "service/open_connections"
// gauge.
#ifndef ADAHEALTH_SERVICE_SERVER_H_
#define ADAHEALTH_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/sync.h"
#include "service/cohort_store.h"
#include "service/connection.h"
#include "service/event_loop.h"
#include "service/net_socket.h"
#include "service/protocol.h"
#include "service/replication.h"
#include "service/scheduler.h"

namespace adahealth {
namespace service {

/// A shard process is either the primary (accepts submits, replicates
/// committed results) or a warm follower (applies `replicate` records,
/// rejects submits until the router `promote`s it).
enum class ServerRole { kPrimary, kFollower };

[[nodiscard]] const char* ServerRoleName(ServerRole role);

struct ServerOptions {
  /// 0 = kernel-assigned ephemeral port (see AnalysisServer::port()).
  uint16_t port = 0;
  /// Concurrent-connection budget; accepts beyond it are shed with a
  /// best-effort RESOURCE_EXHAUSTED response (clamped to >= 1).
  size_t max_connections = 1024;
  /// Connections with no traffic for this long are evicted; <= 0
  /// disables idle eviction. Connections parked in a `result` wait are
  /// exempt (the wait cap bounds them instead).
  double idle_timeout_millis = 300000.0;
  /// Server-side ceiling on one `result` wait — a client asking for an
  /// unbounded wait (wait_millis <= 0 or > this) gets this instead,
  /// and the timeout error carries the job's current state so the
  /// client can poll again (clamped to >= 1 ms).
  double max_result_wait_millis = 60000.0;
  /// Longest accepted NDJSON request line.
  size_t max_line_bytes = kMaxLineBytes;
  /// Failsafe on graceful drain: connections that have not flushed and
  /// gone away by then are force-dropped (clamped to >= 1 ms).
  double drain_timeout_millis = 5000.0;
  /// Starting role. A follower rejects `submit` with UNAVAILABLE until
  /// it receives the `promote` verb (from the router, on primary
  /// death) — clients must not land jobs on a replica that the primary
  /// would also run.
  ServerRole role = ServerRole::kPrimary;
  /// When non-zero, this server is a shard primary replicating every
  /// committed result to the follower NDJSON server on that loopback
  /// port (see service/replication.h).
  uint16_t replicate_to_port = 0;
  /// Directory for the streaming cohort store's per-cohort files
  /// (service/cohort_store.h). Empty = in-memory cohorts only: the
  /// `ingest` verb works but nothing survives the process.
  std::string cohort_directory;
  SchedulerOptions scheduler;
};

/// The analysis service: scheduler + NDJSON protocol endpoint.
class AnalysisServer {
 public:
  explicit AnalysisServer(ServerOptions options);
  /// Stops the server (as Stop()) before tearing down the scheduler.
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Binds the listening socket and starts the event-loop thread.
  /// UNAVAILABLE when the port cannot be bound; FAILED_PRECONDITION
  /// when already started.
  [[nodiscard]] common::Status Start() ADA_EXCLUDES(join_mutex_);

  /// Triggers a graceful drain and joins the loop thread. Idempotent;
  /// callable from any thread except the loop thread itself.
  void Stop() ADA_EXCLUDES(join_mutex_);

  /// Blocks until the event loop exits (a `shutdown` verb or Stop()).
  void Wait() ADA_EXCLUDES(join_mutex_);

  /// The bound port (valid after Start()).
  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Current role; flips kFollower → kPrimary on the `promote` verb.
  [[nodiscard]] ServerRole role() const { return role_.load(); }

  Scheduler& scheduler() { return scheduler_; }

  /// The replication shipper, or nullptr when replicate_to_port is 0.
  [[nodiscard]] LogShipper* shipper() { return shipper_.get(); }

  /// The streaming cohort store backing the `ingest` verb and cohort
  /// submissions (always constructed; in-memory when
  /// ServerOptions::cohort_directory is empty).
  [[nodiscard]] CohortStore& cohort_store() { return *cohort_store_; }

  /// Handles one already-parsed request and returns the serialized
  /// response line. Exposed so tests can drive the dispatch table
  /// without sockets; on this path the `result` verb blocks the
  /// calling thread (capped at max_result_wait_millis) and `shutdown`
  /// only builds its response — the wire path is what triggers the
  /// drain.
  [[nodiscard]] std::string Dispatch(const Request& request);

 private:
  /// Per-connection record: the connection itself plus the state of
  /// its parked `result` wait, if any. Loop thread only.
  struct ConnectionEntry {
    std::unique_ptr<Connection> conn;
    bool waiting = false;
    JobId wait_job = 0;
    Scheduler::SubscriptionId wait_subscription = 0;
    EventLoop::TimerId wait_timer = 0;
    bool has_wait_timer = false;
    /// Bumped every time a wait starts or ends; stale timer/completion
    /// callbacks for an earlier wait compare and bail.
    uint64_t wait_epoch = 0;
  };

  /// Builds the replication shipper (nullptr when replicate_to_port is
  /// 0) and wires the scheduler's on_result_committed hook to it; runs
  /// first in the constructor's init list, before scheduler_ exists.
  [[nodiscard]] std::unique_ptr<LogShipper> MakeShipper(
      ServerOptions& options);

  /// Builds the cohort store and wires the scheduler's
  /// on_session_success hook to its OnAnalysisCommitted; runs in the
  /// constructor's init list before scheduler_ exists (same pattern as
  /// MakeShipper).
  [[nodiscard]] std::unique_ptr<CohortStore> MakeCohortStore(
      ServerOptions& options);

  /// Dispatch helpers for the cohort verbs (see Dispatch).
  [[nodiscard]] std::string DispatchIngest(const common::Json& body);
  [[nodiscard]] std::string DispatchCohortSubmit(const common::Json& body);

  void LoopMain();
  void OnAcceptable();
  void OnConnectionEvent(int64_t id, uint32_t events);
  void OnRequestLine(int64_t id, Connection& conn, std::string line);
  void HandleResultVerb(int64_t id, Connection& conn,
                        const common::Json& body);
  void OnResultTimeout(int64_t id, uint64_t epoch);
  void OnResultComplete(int64_t id, uint64_t epoch,
                        const JobSnapshot& snapshot);
  /// Ends a parked wait's bookkeeping (timer + subscription).
  void ClearWait(ConnectionEntry& entry);
  void BeginDrain(double failsafe_millis);
  void ForceCloseAll();
  void RemoveConnection(int64_t id);
  void ReapIfClosed(int64_t id);
  void SweepIdleConnections();
  double EffectiveResultWait(const common::Json& body) const;
  [[nodiscard]] std::string ResultTimeoutResponse(JobId job) const;
  /// The replication-counters object shared by `stats` and `health`
  /// responses; requires shipper_ != nullptr.
  [[nodiscard]] common::Json ReplicationFields() const;

  // Destruction order (reverse of declaration) is load-bearing:
  // connections_ before loop_ (Connection::~Connection unwatches);
  // scheduler_ first of all — its destructor waits out the workers, so
  // no completion callback can Post into the loop after the loop is
  // gone; shipper_ and cohort_store_ last of all — workers the
  // scheduler is waiting out may still Enqueue into the shipper via
  // on_result_committed and call into the cohort store via
  // on_session_success. (~AnalysisServer additionally Stop()s the
  // shipper before the scheduler dies: the ship thread's snapshot
  // callback reads the scheduler's cache.)
  std::unique_ptr<LogShipper> shipper_;
  std::unique_ptr<CohortStore> cohort_store_;
  EventLoop loop_;
  std::map<int64_t, ConnectionEntry> connections_;  // Loop thread only.
  Scheduler scheduler_;

  ServerSocket listener_;
  /// Guards the thread handle itself: Start()'s assignment and the
  /// joinable()/join() pair in Wait() race without it (Start used to
  /// assign unlocked, so a concurrent Wait could join a handle being
  /// moved into). Also serializes concurrent Stop()/Wait() joins.
  common::Mutex join_mutex_;
  std::thread loop_thread_ ADA_GUARDED_BY(join_mutex_);
  std::atomic<bool> running_{false};
  std::atomic<ServerRole> role_{ServerRole::kPrimary};
  /// Set by Start(); the `health` verb reports uptime against it.
  std::chrono::steady_clock::time_point start_time_{};
  bool draining_ = false;  // Loop thread only.
  int64_t next_connection_id_ = 1;  // Loop thread only.
  uint16_t port_ = 0;

  // Server-level stats (the `stats` verb), readable off-loop.
  std::atomic<int64_t> open_connections_{0};
  std::atomic<int64_t> total_connections_{0};
  std::atomic<int64_t> shed_connections_{0};
  std::atomic<int64_t> idle_disconnects_{0};

  const uint16_t requested_port_;
  const size_t max_connections_;
  const double idle_timeout_millis_;
  const double max_result_wait_millis_;
  const size_t max_line_bytes_;
  const double drain_timeout_millis_;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_SERVER_H_
