#include "core/optimizer.h"

#include <gtest/gtest.h>
#include "common/metrics.h"
#include "dataset/synthetic_cohort.h"
#include "test_util.h"
#include "transform/vsm.h"

namespace adahealth {
namespace core {
namespace {

using transform::Matrix;

OptimizerOptions FastOptions() {
  OptimizerOptions options;
  options.candidate_ks = {2, 3, 4, 6};
  options.cv_folds = 5;
  options.kmeans.max_iterations = 40;
  options.seed = 3;
  options.num_threads = 2;
  return options;
}

TEST(OptimizerTest, EvaluatesEveryCandidate) {
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}}, 40, 0.6, 71);
  auto result = OptimizeClustering(blobs.points, FastOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 4u);
  for (size_t i = 0; i < result->candidates.size(); ++i) {
    const CandidateEvaluation& candidate = result->candidates[i];
    EXPECT_EQ(candidate.k, FastOptions().candidate_ks[i]);
    EXPECT_GT(candidate.sse, 0.0);
    EXPECT_GT(candidate.accuracy, 0.0);
    EXPECT_GE(candidate.avg_precision, 0.0);
    EXPECT_GE(candidate.avg_recall, 0.0);
    EXPECT_EQ(candidate.clustering.k, candidate.k);
    EXPECT_EQ(candidate.clustering.assignments.size(), 120u);
  }
}

TEST(OptimizerTest, SseDecreasesInK) {
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}}, 40, 1.0, 73);
  auto result = OptimizeClustering(blobs.points, FastOptions());
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->candidates.size(); ++i) {
    EXPECT_LE(result->candidates[i].sse,
              result->candidates[i - 1].sse * 1.001);
  }
}

TEST(OptimizerTest, PrefersLowKOverOverSegmentationOnBlobs) {
  // Three well-separated blobs. Under-segmentation (K = 2) merges
  // blobs but keeps boundaries in empty space, so its robustness ties
  // with K = 3 — both legitimately beat over-segmentation, whose
  // k-means cuts split dense regions and are unstable to re-learn.
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {12.0, 0.0}, {0.0, 12.0}}, 50, 0.5, 75);
  OptimizerOptions options = FastOptions();
  options.candidate_ks = {2, 3, 6, 10};
  auto result = OptimizeClustering(blobs.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->best_k(), 3);
  double composite3 = result->candidates[1].composite;
  double composite10 = result->candidates[3].composite;
  EXPECT_GT(composite3, composite10);
}

TEST(OptimizerTest, BestIndexMatchesComposite) {
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {9.0, 0.0}}, 40, 0.8, 77);
  auto result = OptimizeClustering(blobs.points, FastOptions());
  ASSERT_TRUE(result.ok());
  double best = result->best().composite;
  for (const auto& candidate : result->candidates) {
    EXPECT_LE(candidate.composite, best + 1e-12);
  }
}

TEST(OptimizerTest, SingleThreadAndParallelAgree) {
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {7.0, 7.0}}, 30, 0.7, 79);
  OptimizerOptions sequential = FastOptions();
  sequential.num_threads = 1;
  OptimizerOptions parallel = FastOptions();
  parallel.num_threads = 4;
  auto a = OptimizeClustering(blobs.points, sequential);
  auto b = OptimizeClustering(blobs.points, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->candidates.size(), b->candidates.size());
  for (size_t i = 0; i < a->candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->candidates[i].sse, b->candidates[i].sse);
    EXPECT_DOUBLE_EQ(a->candidates[i].accuracy, b->candidates[i].accuracy);
  }
  EXPECT_EQ(a->best_index, b->best_index);
}

TEST(OptimizerTest, WarmStartsEveryCandidateAfterTheFirst) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  metrics.Reset();
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}}, 40, 0.6, 87);
  OptimizerOptions options = FastOptions();
  auto result = OptimizeClustering(blobs.points, options);
  ASSERT_TRUE(result.ok());
  // One warm start per candidate after the first, regardless of the
  // restart count.
  EXPECT_EQ(metrics.GetCounter("optimizer/warm_starts").value(),
            static_cast<int64_t>(options.candidate_ks.size()) - 1);
  EXPECT_EQ(metrics.GetCounter("optimizer/restarts").value(),
            static_cast<int64_t>(options.candidate_ks.size()) *
                options.restarts);
}

TEST(OptimizerTest, NaiveBayesAssessorAlsoWorks) {
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {10.0, 10.0}}, 40, 0.6, 81);
  OptimizerOptions options = FastOptions();
  options.model = RobustnessModel::kNaiveBayes;
  options.candidate_ks = {2, 4};
  auto result = OptimizeClustering(blobs.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 2u);
  EXPECT_GT(result->candidates[0].accuracy, 0.9);
}

TEST(OptimizerTest, RecoversProfileCountOnSyntheticCohort) {
  // The paper's story in miniature: the cohort has 4 latent profiles;
  // the optimizer's composite metric should peak at K near 4.
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  Matrix vsm = transform::BuildVsm(cohort->log);
  OptimizerOptions options = FastOptions();
  options.candidate_ks = {2, 4, 8, 12};
  auto result = OptimizeClustering(vsm, options);
  ASSERT_TRUE(result.ok());
  // Composite at K=4 must beat heavy over-segmentation at K=12.
  double composite4 = result->candidates[1].composite;
  double composite12 = result->candidates[3].composite;
  EXPECT_GT(composite4, composite12);
}

// Two tight far-apart blobs plus a pair of points midway between
// them. At K = 2 the pair is absorbed by a blob and both clusters are
// CV-sized; at K = 3 the pair becomes its own 2-member cluster, which
// cannot be stratified into 5 CV folds.
test::Blobs BlobsWithTinyMiddleCluster() {
  test::Blobs blobs = test::MakeBlobs(
      {{0.0, 0.0}, {20.0, 0.0}}, 15, 0.3, 85);
  transform::Matrix points(blobs.points.rows() + 2, 2);
  for (size_t i = 0; i < blobs.points.rows(); ++i) {
    points.At(i, 0) = blobs.points.At(i, 0);
    points.At(i, 1) = blobs.points.At(i, 1);
  }
  points.At(blobs.points.rows(), 0) = 10.0;
  points.At(blobs.points.rows() + 1, 0) = 10.1;
  blobs.points = std::move(points);
  blobs.labels.push_back(2);
  blobs.labels.push_back(2);
  return blobs;
}

TEST(OptimizerTest, DegenerateCandidateIsSkippedNotFatal) {
  test::Blobs blobs = BlobsWithTinyMiddleCluster();
  OptimizerOptions options = FastOptions();
  options.candidate_ks = {2, 3};
  options.cv_folds = 5;
  auto result = OptimizeClustering(blobs.points, options);
  // Pre-fix, the K = 3 failure aborted the whole sweep.
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 2u);
  EXPECT_FALSE(result->candidates[0].skipped());
  EXPECT_TRUE(result->candidates[1].skipped());
  EXPECT_EQ(result->candidates[1].k, 3);
  EXPECT_FALSE(result->candidates[1].status.message().empty());
  EXPECT_EQ(result->num_skipped(), 1u);
  // The best candidate is the surviving one.
  EXPECT_EQ(result->best_k(), 2);
  EXPECT_GT(result->best().accuracy, 0.9);
}

TEST(OptimizerTest, ErrorsOnlyWhenEveryCandidateFails) {
  test::Blobs blobs = BlobsWithTinyMiddleCluster();
  OptimizerOptions options = FastOptions();
  options.candidate_ks = {3};
  options.cv_folds = 5;
  auto result = OptimizeClustering(blobs.points, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(OptimizerTest, RejectsBadOptions) {
  test::Blobs blobs = test::MakeBlobs({{0.0}}, 10, 0.5, 83);
  OptimizerOptions options = FastOptions();
  options.candidate_ks = {};
  EXPECT_FALSE(OptimizeClustering(blobs.points, options).ok());
  options = FastOptions();
  options.candidate_ks = {1};
  EXPECT_FALSE(OptimizeClustering(blobs.points, options).ok());
  options = FastOptions();
  options.candidate_ks = {50};  // More than the points.
  EXPECT_FALSE(OptimizeClustering(blobs.points, options).ok());
  options = FastOptions();
  options.cv_folds = 1;
  EXPECT_FALSE(OptimizeClustering(blobs.points, options).ok());
  EXPECT_FALSE(OptimizeClustering(Matrix(), FastOptions()).ok());
}

}  // namespace
}  // namespace core
}  // namespace adahealth
