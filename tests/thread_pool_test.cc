#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/sync.h"

namespace adahealth {
namespace common {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsSlowTasks) {
  // Tasks that are still queued when the destructor runs must execute,
  // even when every worker is busy at destruction time.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Schedule([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorkerOrDeadlockWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.failed_tasks(), 1u);
  EXPECT_EQ(pool.first_failure_message(), "boom");
}

TEST(ThreadPoolTest, NonStdExceptionIsRecordedAsUnknown) {
  ThreadPool pool(1);
  pool.Schedule([] { throw 42; });
  pool.Wait();
  EXPECT_EQ(pool.failed_tasks(), 1u);
  EXPECT_EQ(pool.first_failure_message(), "unknown exception");
}

TEST(ThreadPoolTest, FirstFailureMessageIsKept) {
  ThreadPool pool(1);  // Single worker makes failure order deterministic.
  pool.Schedule([] { throw std::runtime_error("first"); });
  pool.Schedule([] { throw std::runtime_error("second"); });
  pool.Wait();
  EXPECT_EQ(pool.failed_tasks(), 2u);
  EXPECT_EQ(pool.first_failure_message(), "first");
}

TEST(ThreadPoolTest, TryScheduleRunsOnLivePool) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pool.TrySchedule([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ShutdownDrainsAcceptedWorkThenRejectsNewWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(pool.TrySchedule([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_FALSE(pool.TrySchedule([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();  // Idempotent; the destructor will call it again.
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 5, 5, [](size_t) { FAIL(); });
  ParallelFor(pool, 7, 3, [](size_t) { FAIL(); });
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  ParallelFor(pool, 10, 20,
              [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19.
}

TEST(ParallelForTest, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  ParallelFor(pool, 0, 3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelForTest, NestedCallsOnSamePoolDoNotDeadlock) {
  // The caller participates in chunk execution, so an inner
  // ParallelFor issued from inside a pool task must complete even when
  // every worker is already busy running outer iterations.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  ParallelFor(pool, 0, 8, [&](size_t) {
    ParallelFor(pool, 0, 16, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelForChunksTest, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  size_t chunks = ParallelForChunks(
      pool, 0, hits.size(), [&](size_t begin, size_t end) {
        ASSERT_LT(begin, end);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  EXPECT_GE(chunks, 1u);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForChunksTest, ExplicitMaxChunkGivesExactGrid) {
  // An explicit max_chunk is a determinism contract: chunk boundaries
  // land exactly on multiples of it, which the k-means engines rely on
  // for bit-identical parallel reductions.
  ThreadPool pool(4);
  Mutex mutex;
  std::vector<std::pair<size_t, size_t>> seen;
  size_t chunks = ParallelForChunks(
      pool, 0, 1000,
      [&](size_t begin, size_t end) {
        MutexLock lock(&mutex);
        seen.emplace_back(begin, end);
      },
      256);
  EXPECT_EQ(chunks, 4u);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 4u);
  for (size_t c = 0; c < seen.size(); ++c) {
    EXPECT_EQ(seen[c].first, c * 256);
    EXPECT_EQ(seen[c].second, std::min<size_t>(1000, (c + 1) * 256));
  }
}

TEST(ParallelForChunksTest, ExceptionPropagatesWithoutDeadlock) {
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelForChunks(pool, 0, 100,
                        [&](size_t begin, size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        },
                        10),
      std::runtime_error);
  pool.Wait();  // Remaining helpers must still drain cleanly.
}

TEST(SharedPoolTest, IsProcessWideSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> counter{0};
  ParallelFor(a, 0, 50, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace common
}  // namespace adahealth
