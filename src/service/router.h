// The cluster front door: one router process that consistent-hashes
// jobs across N shard AnalysisServer processes and survives the death
// of any shard primary.
//
// Topology (tools/ada_router wires it from flags):
//
//     client ──NDJSON──▶ router ──NDJSON──▶ shard 0 primary ──replicate──▶ shard 0 follower
//                          │
//                          └────NDJSON──▶ shard 1 primary ──replicate──▶ shard 1 follower
//
// Routing: `submit` bodies are parsed with the same BuildJobRequest /
// DatasetFingerprint code the shards run, so the router and the shard
// compute the identical fingerprint; the fingerprint picks a shard on
// a consistent-hash ring (vnodes_per_shard virtual nodes per shard),
// which keeps near-identical repeat cohorts — the workload the result
// cache exists for — landing on the same shard's cache slice.
// Streaming-cohort traffic (the `ingest` verb and cohort submits)
// routes on the cohort *name* instead ("cohort/<name>" on the same
// ring): a cohort's accumulated records live on exactly one shard, so
// every ingest batch and every delta job lands where the data is.
// Cohort records are not replicated across shards — a shard death
// loses its cohorts' in-flight generations unless the shard persisted
// them to its cohort directory (an explicit non-goal here; see
// DESIGN.md). The
// router speaks the same NDJSON protocol to clients as a single shard
// does: job ids are rewritten (global ↔ shard-local) in both
// directions and everything else passes through verbatim, so
// `ada_client` works unchanged against a router or a bare shard.
//
// Failure handling: a background prober health-checks every shard;
// `probe_failures_before_failover` consecutive probe failures — or a
// connection error while forwarding — trigger failover. Failover is
// verified (one fresh connect+ping must also fail, so a single dropped
// packet cannot double-run jobs), serialized per shard, and
// generation-stamped for idempotence. The shard's follower is sent the
// `promote` verb, every job routed to the shard is re-driven against
// it (re-submitting the original request line), and the shard's active
// port flips. Jobs whose results were already replicated complete as
// cache hits on the follower (no second session run); unreplicated
// in-flight jobs re-run — execution is at-least-once, client-visible
// completion per job id is exactly-once, and reports stay
// byte-identical either way because sessions are deterministic.
// A shard with no follower left is marked dead: its jobs fail with
// UNAVAILABLE and new submits ride the ring to the next live shard —
// the cluster keeps serving with N-1 partitions.
//
// Verbs handled locally: ping, health (router + per-shard liveness),
// stats (cross-shard aggregation with a "totals" roll-up), shutdown
// (cascades to every live shard endpoint). promote/replicate are
// cluster-internal and rejected at the front door.
//
// Failpoints: "service.shard.promote" (shard side) makes promotion
// fail, exercising the shard-death path. The router itself uses only
// the net_socket wrappers — the raw-syscall ban (ada_lint raw-socket)
// applies here exactly as in the rest of the service layer.
#ifndef ADAHEALTH_SERVICE_ROUTER_H_
#define ADAHEALTH_SERVICE_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/sync.h"
#include "service/net_socket.h"
#include "service/scheduler.h"

namespace adahealth {
namespace service {

/// One shard's process endpoints (loopback ports).
struct ShardEndpoints {
  uint16_t primary_port = 0;
  /// 0 = the shard runs without a replica (a primary death kills the
  /// partition instead of failing over).
  uint16_t follower_port = 0;
};

struct RouterOptions {
  /// Router listen port; 0 = kernel-assigned (see Router::port()).
  uint16_t port = 0;
  std::vector<ShardEndpoints> shards;
  /// Liveness probe cadence per shard.
  double probe_interval_millis = 250.0;
  /// Consecutive probe failures before the prober triggers failover.
  int probe_failures_before_failover = 3;
  /// Forwarding attempts per client request; each transport failure
  /// between attempts runs the failover path for the routed shard.
  int max_forward_attempts = 3;
  /// Recv ceiling on forwarded requests — must exceed the shards'
  /// max_result_wait_millis or long `result` waits get cut short.
  double upstream_recv_timeout_millis = 120000.0;
  /// Recv ceiling on probe and failover-verification round-trips.
  double probe_timeout_millis = 1000.0;
  /// Connect retries against the follower during promotion.
  int promote_connect_retries = 10;
  /// Virtual nodes per shard on the consistent-hash ring.
  size_t vnodes_per_shard = 64;
  size_t max_line_bytes = kMaxLineBytes;
};

/// Point-in-time router counters.
struct RouterStats {
  int64_t submitted = 0;   // Routes created (global job ids handed out).
  int64_t completed = 0;   // Routes first seen in a terminal state.
  int64_t forwarded = 0;   // Upstream round-trips attempted.
  int64_t failovers = 0;   // Successful follower promotions.
  int64_t redriven = 0;    // Jobs re-submitted during failovers.
  int64_t dead_shards = 0; // Shards with no endpoint left.
};

/// The sharding router. Start() binds the port and spawns the accept
/// and prober threads; each client connection gets a forwarding
/// thread (the router holds no job state beyond the routing table, so
/// a blocking thread-per-connection design is proportionate here —
/// the epoll machinery stays in the shards, which hold the real work).
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();  // Stop()s.

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the listener, builds the hash ring, starts the threads.
  /// INVALID_ARGUMENT when no shards are configured; UNAVAILABLE when
  /// the port cannot be bound; FAILED_PRECONDITION when already
  /// started.
  [[nodiscard]] common::Status Start();

  /// Blocks until a `shutdown` verb (or Stop()) stops the router.
  void Wait();

  /// Signals every thread, joins them, closes every connection.
  /// Idempotent; not callable from a router-owned thread.
  void Stop();

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] RouterStats stats() const;

  /// Shard a fingerprint routes to right now (dead shards skipped);
  /// exposed for tests asserting ring placement.
  [[nodiscard]] size_t ShardFor(const std::string& fingerprint) const
      ADA_EXCLUDES(mutex_);

 private:
  /// Mutable per-shard state. Fields are guarded by the router-wide
  /// data mutex_; failover_mutex (always acquired *before* mutex_)
  /// serializes whole failovers per shard so concurrent transport
  /// failures promote once.
  struct ShardState {
    ShardEndpoints endpoints;
    uint16_t active_port = 0;
    bool using_follower = false;
    bool alive = true;
    /// Bumped on every failover / death; forwarding threads pass the
    /// generation they routed against so a failure report that was
    /// already handled becomes a no-op.
    uint64_t generation = 0;
    int consecutive_probe_failures = 0;
    common::Mutex failover_mutex;
  };

  /// Routing-table entry for one client-visible (global) job id.
  struct JobRoute {
    size_t shard = 0;
    JobId local_id = 0;
    /// The original submit request line, replayed verbatim on
    /// failover re-drive.
    std::string submit_line;
    std::string fingerprint;
    bool terminal = false;
    /// Non-OK once a failover could not re-drive this job; job verbs
    /// answer it directly instead of forwarding.
    common::Status redrive_failure;
  };

  /// One accepted client connection served by its own thread.
  struct ClientConn {
    FileDescriptor fd;
    common::Mutex mutex;
    /// Registered while a forward round-trip is in flight so Stop()
    /// can unblock the upstream read too.
    const FileDescriptor* upstream ADA_GUARDED_BY(mutex) = nullptr;
    bool shutdown ADA_GUARDED_BY(mutex) = false;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ProbeLoop();
  void ServeClient(ClientConn* conn);
  /// Reaps finished connection threads (called from the accept loop).
  void ReapConnections();

  /// Dispatches one request line to a local handler or a shard.
  [[nodiscard]] std::string HandleLine(ClientConn* conn,
                                       const std::string& line);
  [[nodiscard]] std::string HandleSubmit(ClientConn* conn,
                                         const common::Json& body,
                                         const std::string& line);
  /// ingest: forwarded verbatim to the shard that owns the cohort
  /// ("cohort/<name>" on the ring); the shard's response passes
  /// through untouched (ingest responses carry no job id).
  [[nodiscard]] std::string HandleIngest(ClientConn* conn,
                                         const common::Json& body,
                                         const std::string& line);
  /// status/result/cancel: the body (verb included) is forwarded with
  /// only the job id rewritten global → local.
  [[nodiscard]] std::string HandleJobVerb(ClientConn* conn,
                                          const common::Json& body);
  [[nodiscard]] std::string HandleStats(ClientConn* conn);
  [[nodiscard]] std::string HandleHealth();
  [[nodiscard]] std::string HandleShutdown(ClientConn* conn);

  /// One connect + send + read-one-line round-trip to a shard port.
  /// `conn` (nullable) registers the upstream fd for Stop().
  [[nodiscard]] common::StatusOr<std::string> ForwardRaw(
      ClientConn* conn, uint16_t port, const std::string& line,
      double recv_timeout_millis);

  /// Ring lookup starting at the fingerprint's hash, skipping dead
  /// shards.
  [[nodiscard]] size_t ShardForLocked(const std::string& fingerprint) const
      ADA_REQUIRES(mutex_);

  /// Verified, serialized, generation-stamped failover for `shard`.
  void HandleShardFailure(size_t shard, uint64_t observed_generation);
  /// True when a fresh connect+ping round-trip to `port` succeeds.
  [[nodiscard]] bool ProbePort(uint16_t port);
  /// Promotes the follower and re-drives this shard's jobs; returns
  /// false when the follower is unreachable or rejects promotion.
  [[nodiscard]] bool PromoteAndRedrive(ShardState& state, size_t shard)
      ADA_EXCLUDES(mutex_);

  /// Marks terminal responses and rewrites their job id back to
  /// `global_id`; returns the line to send to the client.
  [[nodiscard]] std::string RewriteShardResponse(
      const std::string& response_line, JobId global_id);

  /// Signals stop (idempotent, callable from router threads); joining
  /// stays in Stop().
  void SignalStop();

  const RouterOptions options_;

  ServerSocket listener_;
  uint16_t port_ = 0;
  std::chrono::steady_clock::time_point start_time_{};

  /// Consistent-hash ring: (vnode hash, shard index), sorted by hash.
  /// Built once in Start(); immutable afterwards.
  std::vector<std::pair<uint64_t, size_t>> ring_;

  mutable common::Mutex mutex_;
  std::vector<std::unique_ptr<ShardState>> shards_;  // Vector immutable;
                                                     // fields guarded.
  std::map<JobId, JobRoute> routes_ ADA_GUARDED_BY(mutex_);
  JobId next_job_id_ ADA_GUARDED_BY(mutex_) = 1;
  RouterStats stats_ ADA_GUARDED_BY(mutex_);

  common::Mutex lifecycle_mutex_;
  common::CondVar stopped_cv_;
  bool started_ ADA_GUARDED_BY(lifecycle_mutex_) = false;
  bool stop_signalled_ ADA_GUARDED_BY(lifecycle_mutex_) = false;
  std::atomic<bool> stopping_{false};

  common::Mutex conn_mutex_;
  std::vector<std::unique_ptr<ClientConn>> conns_
      ADA_GUARDED_BY(conn_mutex_);

  std::thread accept_thread_;
  std::thread prober_thread_;
};

}  // namespace service
}  // namespace adahealth

#endif  // ADAHEALTH_SERVICE_ROUTER_H_
