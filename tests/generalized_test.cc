#include "patterns/generalized.h"

#include <map>

#include <gtest/gtest.h>
#include "dataset/synthetic_cohort.h"

namespace adahealth {
namespace patterns {
namespace {

TEST(GeneralizedTest, MinesAllThreeLevels) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  GeneralizedMiningOptions options;
  options.min_support_level0 = 0.30;
  options.min_support_level1 = 0.40;
  options.min_support_level2 = 0.50;
  options.max_itemset_size = 3;
  auto itemsets =
      MineGeneralized(cohort->log, cohort->taxonomy, options);
  ASSERT_TRUE(itemsets.ok());
  bool level_seen[3] = {false, false, false};
  for (const auto& itemset : itemsets.value()) {
    ASSERT_GE(itemset.level, 0);
    ASSERT_LE(itemset.level, 2);
    level_seen[itemset.level] = true;
  }
  EXPECT_TRUE(level_seen[0]);
  EXPECT_TRUE(level_seen[1]);
  EXPECT_TRUE(level_seen[2]);
}

TEST(GeneralizedTest, HigherLevelsAggregateSupport) {
  // The support of a group node is at least the max support of its
  // leaf exams (it aggregates their patients).
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  GeneralizedMiningOptions options;
  options.min_support_level0 = 0.05;
  options.min_support_level1 = 0.05;
  options.min_support_level2 = 0.05;
  options.max_itemset_size = 1;
  auto itemsets =
      MineGeneralized(cohort->log, cohort->taxonomy, options);
  ASSERT_TRUE(itemsets.ok());

  const dataset::Taxonomy& taxonomy = cohort->taxonomy;
  std::map<ItemId, int64_t> support_by_node;
  for (const auto& itemset : itemsets.value()) {
    if (itemset.items.size() == 1) {
      support_by_node[itemset.items[0]] = itemset.support;
    }
  }
  for (const auto& [node, support] : support_by_node) {
    if (taxonomy.LevelOf(node) != 0) continue;
    ItemId group_node = taxonomy.ParentOf(node);
    auto group_it = support_by_node.find(group_node);
    if (group_it != support_by_node.end()) {
      EXPECT_GE(group_it->second, support);
    }
  }
}

TEST(GeneralizedTest, ItemsBelongToTheirLevel) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  GeneralizedMiningOptions options;
  options.max_itemset_size = 2;
  auto itemsets =
      MineGeneralized(cohort->log, cohort->taxonomy, options);
  ASSERT_TRUE(itemsets.ok());
  for (const auto& itemset : itemsets.value()) {
    for (ItemId item : itemset.items) {
      EXPECT_EQ(cohort->taxonomy.LevelOf(item), itemset.level);
    }
  }
}

TEST(GeneralizedTest, RejectsBadThresholds) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  GeneralizedMiningOptions options;
  options.min_support_level1 = 0.0;
  EXPECT_FALSE(
      MineGeneralized(cohort->log, cohort->taxonomy, options).ok());
  options.min_support_level1 = 1.5;
  EXPECT_FALSE(
      MineGeneralized(cohort->log, cohort->taxonomy, options).ok());
}

TEST(GeneralizedTest, FormatUsesHumanNames) {
  auto cohort = dataset::SyntheticCohortGenerator(
                    dataset::TestScaleConfig())
                    .Generate();
  ASSERT_TRUE(cohort.ok());
  const dataset::Taxonomy& taxonomy = cohort->taxonomy;
  GeneralizedItemset leaf_itemset{0, {0}, 42};
  std::string leaf_text =
      FormatGeneralizedItemset(leaf_itemset, cohort->log, taxonomy);
  EXPECT_NE(leaf_text.find(cohort->log.dictionary().Name(0)),
            std::string::npos);
  EXPECT_NE(leaf_text.find("support=42"), std::string::npos);

  GeneralizedItemset group_itemset{1, {taxonomy.GroupNode(0)}, 7};
  std::string group_text =
      FormatGeneralizedItemset(group_itemset, cohort->log, taxonomy);
  EXPECT_NE(group_text.find(taxonomy.GroupName(0)), std::string::npos);

  GeneralizedItemset category_itemset{2, {taxonomy.CategoryNode(0)}, 9};
  std::string category_text = FormatGeneralizedItemset(
      category_itemset, cohort->log, taxonomy);
  EXPECT_NE(category_text.find(taxonomy.CategoryName(0)),
            std::string::npos);
}

}  // namespace
}  // namespace patterns
}  // namespace adahealth
