// Walks the full ADA-HEALTH architecture of the paper's Figure 1.
//
// Figure 1 is a block diagram, not a data series; this bench proves
// every block exists and shows the dataflow between them on a mid-size
// synthetic cohort: characterization -> transformation selection ->
// adaptive partial mining -> algorithm optimization -> knowledge
// extraction -> K-DB (six collections) -> feedback-adaptive ranking ->
// end-goal recommendation.
#include <cstdio>

#include "common/metrics.h"
#include "common/timer.h"
#include "core/endgoal.h"
#include "core/feedback_sim.h"
#include "core/session.h"
#include "kdb/query.h"

namespace {

using namespace adahealth;

int Run() {
  common::WallTimer timer;
  std::printf("=== Figure 1: ADA-HEALTH architecture walk-through ===\n");

  dataset::CohortConfig config = dataset::PaperScaleConfig();
  config.num_patients = 1500;  // Mid-size for a brisk end-to-end run.
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed\n");
    return 1;
  }

  kdb::Database db;
  core::AnalysisSession session(&db);
  core::SessionOptions options;
  options.dataset_id = "figure1-cohort";
  options.partial.ks = {6, 8};
  options.optimizer.candidate_ks = {6, 8, 10, 12};
  options.optimizer.cv_folds = 10;
  auto result = session.Run(cohort->log, &cohort->taxonomy, options);
  if (!result.ok()) {
    std::printf("session failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n[block 1] data characterization\n%s\n",
              result->characterization.text.c_str());

  std::printf("\n[block 2] data transformation selection\n");
  for (const auto& score : result->transform.scores) {
    std::printf("  %-7s/%-5s OS %.4f (baseline %.4f, lift %.2fx)%s\n",
                transform::VsmWeightingName(score.options.weighting),
                transform::VsmNormalizationName(score.options.normalization),
                score.overall_similarity, score.baseline_similarity,
                score.lift,
                &score == &result->transform.scores[result->transform
                                                        .best_index]
                    ? "   <== selected"
                    : "");
  }

  std::printf("\n[block 3] adaptive partial mining\n");
  for (size_t s = 0; s < result->partial.steps.size(); ++s) {
    const auto& step = result->partial.steps[s];
    std::printf("  %.0f%% of exam types -> %.0f%% of records, diff "
                "%.2f%%%s\n",
                100.0 * step.fraction, 100.0 * step.record_coverage,
                100.0 * step.mean_relative_diff,
                s == result->partial.selected_step ? "   <== selected" : "");
  }

  std::printf("\n[block 4] algorithm optimization (K sweep)\n");
  for (const auto& candidate : result->optimizer.candidates) {
    if (candidate.skipped()) {
      std::printf("  K=%-3d skipped: %s\n", candidate.k,
                  candidate.status.message().c_str());
      continue;
    }
    std::printf("  K=%-3d SSE=%-10.1f acc=%-6.2f prec=%-6.2f rec=%-6.2f%s\n",
                candidate.k, candidate.sse, 100.0 * candidate.accuracy,
                100.0 * candidate.avg_precision,
                100.0 * candidate.avg_recall,
                candidate.k == result->optimizer.best_k() ? "  <== selected"
                                                          : "");
  }

  std::printf("\n[block 5] knowledge extraction + ranking (top 8)\n");
  for (size_t i = 0; i < std::min<size_t>(8, result->knowledge.size());
       ++i) {
    std::printf("  %zu. [%s] %s\n", i + 1,
                result->knowledge[i].kind.c_str(),
                result->knowledge[i].description.c_str());
  }

  std::printf("\n[block 6] K-DB state (six collections)\n");
  for (const std::string& name : kdb::Schema::CollectionNames()) {
    std::printf("  %-22s %zu documents\n", name.c_str(),
                db.GetOrCreate(name).size());
  }

  std::printf("\n[block 7] end-goal identification for this dataset\n");
  // Seed the feedback collection from a persona, then recommend.
  core::FeedbackSimulator oracle(core::DiabetologistPersona(), 99);
  kdb::Collection& feedback = db.GetOrCreate(kdb::Schema::kFeedback);
  for (int repeat = 0; repeat < 20; ++repeat) {
    for (int32_t g = 0; g < core::kNumEndGoals; ++g) {
      core::EndGoal goal = static_cast<core::EndGoal>(g);
      feedback.Insert(core::MakeGoalFeedbackDocument(
          "past-dataset-" + std::to_string(repeat), "diabetologist",
          result->characterization.features, goal,
          oracle.LabelGoal(result->characterization.features, goal)));
    }
  }
  core::EndGoalEngine engine;
  if (engine.TrainFromFeedback(feedback).ok()) {
    auto recommendations =
        engine.RecommendGoals(result->characterization.features);
    if (recommendations.ok()) {
      for (const auto& recommendation : recommendations.value()) {
        std::printf("  %-24s predicted interest: %-6s (%s)\n",
                    core::EndGoalName(recommendation.viable.goal),
                    core::InterestName(recommendation.predicted_interest),
                    recommendation.viable.rationale.c_str());
      }
    }
  }

  std::printf("\n%s\n", result->summary.c_str());

  // Per-stage wall-clock timings (session/* histograms) plus every
  // other instrument the stages recorded, as machine-readable JSON.
  const common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  std::printf("\n--- metrics report (JSON) ---\n%s\n",
              metrics.ToJson().Pretty().c_str());
  const std::string metrics_path = "bench_architecture_pipeline_metrics.json";
  if (metrics.WriteJsonFile(metrics_path).ok()) {
    std::printf("[architecture_pipeline] metrics written to %s\n",
                metrics_path.c_str());
  }
  std::printf("[architecture_pipeline] total time: %.1f s\n\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace

int main() { return Run(); }
