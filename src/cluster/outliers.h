// Distance-based outlier detection over the patient VSM.
//
// The paper notes that rarely prescribed exams "could affect other
// types of analyses such as outlier detection" (§IV-B); this module
// provides the two standard unsupervised scorers such an analysis
// would use:
//  * centroid-relative score — distance to the assigned centroid
//    normalized by the cluster's mean distance;
//  * k-NN distance score — mean distance to the k nearest neighbours.
#ifndef ADAHEALTH_CLUSTER_OUTLIERS_H_
#define ADAHEALTH_CLUSTER_OUTLIERS_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "common/status.h"
#include "transform/matrix.h"

namespace adahealth {
namespace cluster {

/// Per-row outlier scores relative to a clustering: distance to the
/// assigned centroid divided by the mean such distance within the
/// cluster (1.0 = typical member; singletons and zero-spread clusters
/// score 1.0). Requires assignments to match `data`.
[[nodiscard]] common::StatusOr<std::vector<double>> CentroidOutlierScores(
    const transform::Matrix& data, const Clustering& clustering);

/// Per-row mean Euclidean distance to the `k` nearest other rows
/// (brute force, O(n^2 d)). Requires 1 <= k < data.rows().
[[nodiscard]] common::StatusOr<std::vector<double>> KnnOutlierScores(
    const transform::Matrix& data, int32_t k);

/// Indices of the `count` largest scores, descending (ties by index).
std::vector<size_t> TopOutliers(const std::vector<double>& scores,
                                size_t count);

}  // namespace cluster
}  // namespace adahealth

#endif  // ADAHEALTH_CLUSTER_OUTLIERS_H_
