#include "core/optimizer.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace adahealth {
namespace core {

using common::Status;
using common::StatusOr;
using transform::Matrix;

namespace {

ml::ClassifierFactory MakeFactory(RobustnessModel model) {
  switch (model) {
    case RobustnessModel::kDecisionTree:
      return [] { return std::make_unique<ml::DecisionTreeClassifier>(); };
    case RobustnessModel::kNaiveBayes:
      return [] { return std::make_unique<ml::GaussianNaiveBayes>(); };
    case RobustnessModel::kNearestNeighbors:
      return [] { return std::make_unique<ml::KnnClassifier>(); };
    case RobustnessModel::kRandomForest:
      return [] { return std::make_unique<ml::RandomForestClassifier>(); };
  }
  return [] { return std::make_unique<ml::DecisionTreeClassifier>(); };
}

/// Evaluates one candidate K: cluster, then cross-validate a classifier
/// that re-predicts the cluster labels from the same features.
StatusOr<CandidateEvaluation> EvaluateCandidate(
    const Matrix& data, int32_t k, const OptimizerOptions& options) {
  // A triggered "optimizer.candidate" failpoint marks this candidate
  // skipped (the sweep's existing degradation path) without aborting
  // the sweep.
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("optimizer.candidate"));
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  common::ScopedTimer eval_timer(metrics, "optimizer/candidate_eval_seconds");
  CandidateEvaluation evaluation;
  evaluation.k = k;

  cluster::KMeansOptions kmeans = options.kmeans;
  kmeans.k = k;
  StatusOr<cluster::Clustering> best =
      common::InternalError("no restart succeeded");
  {
    common::ScopedTimer kmeans_timer(metrics, "optimizer/kmeans_seconds");
    for (int32_t restart = 0; restart < options.restarts; ++restart) {
      kmeans.seed = options.seed + static_cast<uint64_t>(k) * 104729 +
                    static_cast<uint64_t>(restart) * 15485863;
      auto clustering = cluster::RunKMeans(data, kmeans);
      if (!clustering.ok()) return clustering.status();
      if (!best.ok() || clustering->sse < best->sse) {
        best = std::move(clustering);
      }
      metrics.GetCounter("optimizer/restarts").Increment();
    }
  }
  evaluation.sse = best->sse;
  evaluation.clustering = std::move(best).value();

  common::ScopedTimer cv_timer(metrics, "optimizer/cv_seconds");
  auto report = ml::CrossValidate(
      data, evaluation.clustering.assignments, k, options.cv_folds,
      options.seed + static_cast<uint64_t>(k), MakeFactory(options.model));
  if (!report.ok()) return report.status();
  evaluation.accuracy = report->accuracy;
  evaluation.avg_precision = report->macro_precision;
  evaluation.avg_recall = report->macro_recall;
  evaluation.composite = (evaluation.accuracy + evaluation.avg_precision +
                          evaluation.avg_recall) /
                         3.0;
  return evaluation;
}

}  // namespace

StatusOr<OptimizerResult> OptimizeClustering(
    const Matrix& data, const OptimizerOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return common::InvalidArgumentError("optimizer requires non-empty data");
  }
  if (options.candidate_ks.empty()) {
    return common::InvalidArgumentError("no candidate K values");
  }
  for (int32_t k : options.candidate_ks) {
    if (k < 2 || static_cast<size_t>(k) > data.rows()) {
      return common::InvalidArgumentError(
          "candidate K outside [2, number of points]");
    }
  }
  if (options.cv_folds < 2) {
    return common::InvalidArgumentError("cv_folds must be >= 2");
  }
  if (options.restarts < 1) {
    return common::InvalidArgumentError("restarts must be >= 1");
  }

  const size_t num_candidates = options.candidate_ks.size();
  std::vector<StatusOr<CandidateEvaluation>> evaluations(
      num_candidates, common::InternalError("not evaluated"));

  size_t num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, num_candidates);
  if (num_threads <= 1) {
    for (size_t i = 0; i < num_candidates; ++i) {
      evaluations[i] =
          EvaluateCandidate(data, options.candidate_ks[i], options);
    }
  } else {
    common::ThreadPool pool(num_threads);
    common::ParallelFor(pool, 0, num_candidates, [&](size_t i) {
      evaluations[i] =
          EvaluateCandidate(data, options.candidate_ks[i], options);
    });
  }

  // A candidate whose evaluation fails (e.g. a cluster too small for
  // cv_folds-stratified CV) is recorded as skipped instead of failing
  // the whole sweep; the sweep errors only when nothing was evaluated.
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  OptimizerResult result;
  result.candidates.reserve(num_candidates);
  double best_composite = -1.0;
  size_t num_evaluated = 0;
  for (size_t i = 0; i < num_candidates; ++i) {
    CandidateEvaluation candidate;
    if (evaluations[i].ok()) {
      candidate = std::move(evaluations[i]).value();
      ++num_evaluated;
    } else {
      candidate.k = options.candidate_ks[i];
      candidate.status = evaluations[i].status();
      metrics.GetCounter("optimizer/candidates_skipped").Increment();
    }
    metrics.GetCounter("optimizer/candidates").Increment();
    result.candidates.push_back(std::move(candidate));
    if (result.candidates.back().status.ok() &&
        result.candidates.back().composite > best_composite) {
      best_composite = result.candidates.back().composite;
      result.best_index = i;
    }
  }
  if (num_evaluated == 0) {
    return common::FailedPreconditionError(
        "every candidate K failed; first error: " +
        result.candidates.front().status.ToString());
  }
  return result;
}

}  // namespace core
}  // namespace adahealth
