#include "core/endgoal.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "ml/decision_tree.h"
#include "transform/matrix.h"

namespace adahealth {
namespace core {

using common::Json;
using common::Status;
using common::StatusOr;

std::vector<ViableGoal> IdentifyViableEndGoals(
    const stats::MetaFeatures& features) {
  std::vector<ViableGoal> goals;
  // Patient grouping: needs a cohort large enough to cluster.
  if (features.num_patients >= 50 && features.num_exam_types >= 4) {
    goals.push_back({EndGoal::kPatientGrouping,
                     "cohort large enough for clustering (" +
                         std::to_string(features.num_patients) +
                         " patients)"});
  }
  // Common exam patterns: needs co-occurring exams per patient.
  if (features.mean_records_per_patient >= 2.0 &&
      features.num_patients >= 30) {
    goals.push_back({EndGoal::kCommonExamPatterns,
                     common::StrFormat(
                         "enough co-occurrence (%.1f records/patient)",
                         features.mean_records_per_patient)});
  }
  // Compliance/outcome: needs repeated observations per patient.
  if (features.mean_records_per_patient >= 5.0) {
    goals.push_back({EndGoal::kComplianceOutcome,
                     "longitudinal histories support compliance analysis"});
  }
  // Interaction discovery: needs both breadth and depth.
  if (features.mean_records_per_patient >= 5.0 &&
      features.num_exam_types >= 20 && features.num_patients >= 100) {
    goals.push_back({EndGoal::kInteractionDiscovery,
                     "breadth and depth admit cross-exam association "
                     "mining"});
  }
  // Resource planning: needs volume and a skewed demand profile.
  if (features.num_records >= 1000 && features.exam_frequency_gini >= 0.3) {
    goals.push_back({EndGoal::kResourcePlanning,
                     common::StrFormat(
                         "concentrated demand (Gini %.2f) over %lld records",
                         features.exam_frequency_gini,
                         static_cast<long long>(features.num_records))});
  }
  return goals;
}

kdb::Document MakeGoalFeedbackDocument(const std::string& dataset_id,
                                       const std::string& user,
                                       const stats::MetaFeatures& features,
                                       EndGoal goal, Interest interest) {
  kdb::Document document;
  document.Set("dataset_id", Json(dataset_id));
  document.Set("user", Json(user));
  document.Set("features", features.ToJson());
  document.Set("goal", Json(std::string(EndGoalName(goal))));
  document.Set("interest", Json(std::string(InterestName(interest))));
  return document;
}

EndGoalEngine::EndGoalEngine(ml::ClassifierFactory factory)
    : factory_(std::move(factory)) {
  if (!factory_) {
    factory_ = [] {
      ml::DecisionTreeOptions options;
      options.max_depth = 8;
      options.min_samples_leaf = 2;
      return std::make_unique<ml::DecisionTreeClassifier>(options);
    };
  }
}

std::vector<double> EndGoalEngine::EncodeExample(
    const stats::MetaFeatures& features, EndGoal goal) {
  std::vector<double> example = features.ToVector();
  for (int32_t g = 0; g < kNumEndGoals; ++g) {
    example.push_back(g == static_cast<int32_t>(goal) ? 1.0 : 0.0);
  }
  return example;
}

Status EndGoalEngine::TrainFromFeedback(const kdb::Collection& feedback) {
  std::vector<std::vector<double>> rows;
  std::vector<int32_t> labels;
  for (const kdb::Document& document : feedback.documents()) {
    const Json* features_json = document.Get("features");
    const Json* goal_json = document.Get("goal");
    const Json* interest_json = document.Get("interest");
    if (features_json == nullptr || goal_json == nullptr ||
        interest_json == nullptr || !goal_json->is_string() ||
        !interest_json->is_string()) {
      continue;  // Skip foreign documents.
    }
    auto features = stats::MetaFeatures::FromJson(*features_json);
    auto goal = EndGoalFromName(goal_json->AsString());
    auto interest = InterestFromName(interest_json->AsString());
    if (!features.ok() || !goal.ok() || !interest.ok()) continue;
    rows.push_back(EncodeExample(features.value(), goal.value()));
    labels.push_back(static_cast<int32_t>(interest.value()));
  }
  if (rows.size() < 2) {
    return common::FailedPreconditionError(
        "need at least two feedback records to train");
  }
  std::set<int32_t> distinct(labels.begin(), labels.end());
  if (distinct.size() < 2) {
    return common::FailedPreconditionError(
        "feedback contains a single interest label; nothing to learn");
  }

  transform::Matrix features(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::span<double> row = features.Row(i);
    std::copy(rows[i].begin(), rows[i].end(), row.begin());
  }
  model_ = factory_();
  Status fit = model_->Fit(features, labels, kNumInterestLevels);
  if (!fit.ok()) return fit;
  trained_ = true;
  training_samples_ = rows.size();
  return common::OkStatus();
}

StatusOr<Interest> EndGoalEngine::PredictInterest(
    const stats::MetaFeatures& features, EndGoal goal) const {
  if (!trained_) {
    return common::FailedPreconditionError("interest model not trained");
  }
  std::vector<double> example = EncodeExample(features, goal);
  int32_t label = model_->Predict(example);
  return static_cast<Interest>(label);
}

StatusOr<std::vector<GoalRecommendation>> EndGoalEngine::RecommendGoals(
    const stats::MetaFeatures& features) const {
  std::vector<GoalRecommendation> recommendations;
  for (const ViableGoal& viable : IdentifyViableEndGoals(features)) {
    GoalRecommendation recommendation;
    recommendation.viable = viable;
    if (trained_) {
      auto interest = PredictInterest(features, viable.goal);
      if (!interest.ok()) return interest.status();
      recommendation.predicted_interest = interest.value();
    }
    recommendations.push_back(std::move(recommendation));
  }
  std::stable_sort(recommendations.begin(), recommendations.end(),
                   [](const GoalRecommendation& a,
                      const GoalRecommendation& b) {
                     return static_cast<int32_t>(a.predicted_interest) >
                            static_cast<int32_t>(b.predicted_interest);
                   });
  return recommendations;
}

}  // namespace core
}  // namespace adahealth
