#include "service/server.h"

#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace adahealth {
namespace service {

using common::Json;
using common::Status;
using common::StatusOr;

namespace {

// Reads the required "job_id" field of a status/result/cancel request.
StatusOr<JobId> ReadJobId(const Json& body) {
  const Json* field = body.Find("job_id");
  if (field == nullptr || !field->is_int()) {
    return common::InvalidArgumentError(
        "request must carry an integer 'job_id'");
  }
  return field->AsInt();
}

}  // namespace

AnalysisServer::AnalysisServer(ServerOptions options)
    : scheduler_(std::move(options.scheduler)),
      requested_port_(options.port) {}

AnalysisServer::~AnalysisServer() { Stop(); }

Status AnalysisServer::Start() {
  if (running_.load()) {
    return common::FailedPreconditionError("server already started");
  }
  ADA_ASSIGN_OR_RETURN(listener_, ServerSocket::Listen(requested_port_));
  port_ = listener_.port();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ADA_LOG(kInfo) << "service: listening on 127.0.0.1:" << port_;
  return common::OkStatus();
}

void AnalysisServer::Stop() {
  stopping_.store(true);
  listener_.Shutdown();
  {
    // A serving thread parked in recv on a live connection would never
    // observe stopping_; half-close the connection under it.
    std::lock_guard<std::mutex> lock(connection_mutex_);
    if (active_connection_ != nullptr) {
      ShutdownConnection(*active_connection_);
    }
  }
  Wait();
}

void AnalysisServer::Wait() {
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  running_.store(false);
}

void AnalysisServer::AcceptLoop() {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  while (!stopping_.load()) {
    auto connection = listener_.Accept();
    if (!connection.ok()) {
      if (stopping_.load()) break;
      // A transient accept failure (injected or EMFILE-style) should
      // not kill the server; a shut-down listener ends the loop above.
      metrics.GetCounter("service/server_errors").Increment();
      ADA_LOG(kWarning) << "service: accept failed: "
                        << connection.status().message();
      continue;
    }
    metrics.GetCounter("service/server_connections").Increment();
    {
      std::lock_guard<std::mutex> lock(connection_mutex_);
      active_connection_ = &connection.value();
    }
    // Re-check after registering: a Stop() racing the accept either
    // sees this connection (and half-closes it) or flipped stopping_
    // before registration completed — caught here either way.
    if (!stopping_.load()) ServeConnection(connection.value());
    {
      std::lock_guard<std::mutex> lock(connection_mutex_);
      active_connection_ = nullptr;
    }
  }
  running_.store(false);
}

void AnalysisServer::ServeConnection(const FileDescriptor& connection) {
  common::MetricsRegistry& metrics = common::MetricsRegistry::Default();
  LineReader reader(connection);
  for (;;) {
    auto line = reader.ReadLine();
    if (!line.ok()) {
      // OUT_OF_RANGE = the client hung up cleanly; anything else is an
      // I/O error worth counting.
      if (line.status().code() != common::StatusCode::kOutOfRange) {
        metrics.GetCounter("service/server_errors").Increment();
      }
      return;
    }
    if (line.value().empty()) continue;
    metrics.GetCounter("service/server_requests").Increment();
    std::string response;
    auto request = ParseRequest(line.value());
    if (!request.ok()) {
      metrics.GetCounter("service/server_errors").Increment();
      response = ErrorResponse(request.status());
    } else {
      response = Dispatch(request.value());
    }
    if (Status sent = SendAll(connection, response); !sent.ok()) {
      metrics.GetCounter("service/server_errors").Increment();
      return;
    }
    if (stopping_.load()) return;
  }
}

std::string AnalysisServer::Dispatch(const Request& request) {
  if (request.verb == "submit") {
    auto job_request = BuildJobRequest(request.body);
    if (!job_request.ok()) return ErrorResponse(job_request.status());
    auto id = scheduler_.Submit(std::move(job_request).value());
    if (!id.ok()) return ErrorResponse(id.status());
    auto snapshot = scheduler_.Status(id.value());
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    return OkResponse(SnapshotFields(snapshot.value(),
                                     /*include_artifacts=*/false));
  }
  if (request.verb == "status") {
    auto id = ReadJobId(request.body);
    if (!id.ok()) return ErrorResponse(id.status());
    auto snapshot = scheduler_.Status(id.value());
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    return OkResponse(SnapshotFields(snapshot.value(),
                                     /*include_artifacts=*/false));
  }
  if (request.verb == "result") {
    auto id = ReadJobId(request.body);
    if (!id.ok()) return ErrorResponse(id.status());
    double wait_millis = 0.0;
    if (const Json* wait = request.body.Find("wait_millis");
        wait != nullptr && wait->is_number()) {
      wait_millis = wait->AsDouble();
    }
    auto snapshot = scheduler_.AwaitResult(id.value(), wait_millis);
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    return OkResponse(SnapshotFields(snapshot.value(),
                                     /*include_artifacts=*/true));
  }
  if (request.verb == "cancel") {
    auto id = ReadJobId(request.body);
    if (!id.ok()) return ErrorResponse(id.status());
    if (Status cancelled = scheduler_.Cancel(id.value()); !cancelled.ok()) {
      return ErrorResponse(cancelled);
    }
    Json::Object fields;
    fields["job_id"] = id.value();
    fields["state"] = std::string(JobStateName(JobState::kCancelled));
    return OkResponse(std::move(fields));
  }
  if (request.verb == "stats") {
    return OkResponse(scheduler_.StatsJson().AsObject());
  }
  if (request.verb == "ping") {
    Json::Object fields;
    fields["service"] = "ada-health";
    return OkResponse(std::move(fields));
  }
  if (request.verb == "shutdown") {
    stopping_.store(true);
    Json::Object fields;
    fields["stopping"] = true;
    return OkResponse(std::move(fields));
  }
  return ErrorResponse(common::InvalidArgumentError(
      common::StrFormat("unknown verb '%s'", request.verb.c_str())));
}

}  // namespace service
}  // namespace adahealth
