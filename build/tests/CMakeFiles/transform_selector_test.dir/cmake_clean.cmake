file(REMOVE_RECURSE
  "CMakeFiles/transform_selector_test.dir/transform_selector_test.cc.o"
  "CMakeFiles/transform_selector_test.dir/transform_selector_test.cc.o.d"
  "transform_selector_test"
  "transform_selector_test.pdb"
  "transform_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
