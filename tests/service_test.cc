// Service-layer coverage: dataset fingerprints, the LRU result cache
// (byte budget, persistence round-trip), and the job scheduler
// (determinism against direct AnalysisSession runs, cache-served
// repeats, priorities, load shedding, deadlines, cancellation).
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/report.h"
#include "core/session.h"
#include "dataset/synthetic_cohort.h"
#include "kdb/database.h"
#include "service/fingerprint.h"
#include "service/result_cache.h"
#include "service/scheduler.h"

namespace adahealth {
namespace {

using common::StatusCode;

dataset::Cohort MakeCohort(uint64_t seed, int32_t patients = 120) {
  dataset::CohortConfig config = dataset::TestScaleConfig();
  config.num_patients = patients;
  config.num_exam_types = 24;
  config.num_profiles = 3;
  config.seed = seed;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  ADA_CHECK(cohort.ok());
  return std::move(cohort).value();
}

core::SessionOptions FastOptions(const std::string& dataset_id) {
  core::SessionOptions options;
  options.dataset_id = dataset_id;
  options.transform.sample_fraction = 0.4;
  options.transform.proxy_k = 4;
  options.partial.fractions = {0.5, 1.0};
  options.partial.ks = {3};
  options.partial.kmeans.max_iterations = 20;
  options.optimizer.candidate_ks = {3, 4};
  options.optimizer.cv_folds = 4;
  options.optimizer.restarts = 1;
  options.pattern_mining.min_support_level0 = 0.4;
  options.pattern_mining.min_support_level1 = 0.5;
  options.pattern_mining.min_support_level2 = 0.6;
  options.pattern_mining.max_itemset_size = 3;
  return options;
}

service::JobRequest MakeJob(uint64_t seed, const std::string& dataset_id) {
  dataset::Cohort cohort = MakeCohort(seed);
  service::JobRequest request;
  request.log = std::move(cohort.log);
  request.taxonomy = std::move(cohort.taxonomy);
  request.options = FastOptions(dataset_id);
  return request;
}

std::string MakeScratchDir(const std::string& name) {
  std::string path = testing::TempDir() + "/service_" + name;
  // Clear leftovers from a previous run: cache-persistence tests
  // assert on exactly what a new scheduler restores from here.
  std::error_code ignored;
  std::filesystem::remove_all(path, ignored);
  ::mkdir(path.c_str(), 0755);
  return path;
}

// ---------------------------------------------------------------------
// Fingerprints.

TEST(FingerprintTest, StableAcrossCallsAndLogCopies) {
  dataset::Cohort cohort = MakeCohort(11);
  core::SessionOptions options = FastOptions("fp");
  std::string first = service::DatasetFingerprint(cohort.log, options);
  std::string second = service::DatasetFingerprint(cohort.log, options);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 16u);
  dataset::ExamLog copy = cohort.log;
  EXPECT_EQ(service::DatasetFingerprint(copy, options), first);
}

TEST(FingerprintTest, SensitiveToDataset) {
  core::SessionOptions options = FastOptions("fp");
  EXPECT_NE(service::DatasetFingerprint(MakeCohort(11).log, options),
            service::DatasetFingerprint(MakeCohort(12).log, options));
}

TEST(FingerprintTest, SensitiveToReportAffectingOptions) {
  dataset::Cohort cohort = MakeCohort(11);
  core::SessionOptions base = FastOptions("fp");
  std::string fingerprint = service::DatasetFingerprint(cohort.log, base);

  core::SessionOptions changed_id = base;
  changed_id.dataset_id = "fp2";
  EXPECT_NE(service::DatasetFingerprint(cohort.log, changed_id), fingerprint);

  core::SessionOptions changed_ks = base;
  changed_ks.optimizer.candidate_ks = {3, 5};
  EXPECT_NE(service::DatasetFingerprint(cohort.log, changed_ks), fingerprint);

  core::SessionOptions changed_items = base;
  changed_items.max_selected_items = 5;
  EXPECT_NE(service::DatasetFingerprint(cohort.log, changed_items),
            fingerprint);
}

TEST(FingerprintTest, IndifferentToSideEffectOnlyOptions) {
  // persist_directory and resilience change side effects and failure
  // handling, never the success-path report: same cache key.
  dataset::Cohort cohort = MakeCohort(11);
  core::SessionOptions base = FastOptions("fp");
  std::string fingerprint = service::DatasetFingerprint(cohort.log, base);

  core::SessionOptions persisted = base;
  persisted.persist_directory = "/tmp/elsewhere";
  persisted.resilience.enabled = false;
  EXPECT_EQ(service::DatasetFingerprint(cohort.log, persisted), fingerprint);
}

// ---------------------------------------------------------------------
// Result cache.

service::CachedAnalysis MakeEntry(const std::string& fingerprint,
                                  size_t report_bytes) {
  service::CachedAnalysis entry;
  entry.fingerprint = fingerprint;
  entry.dataset_id = "cohort";
  entry.summary = "summary";
  entry.report = std::string(report_bytes, 'r');
  entry.knowledge_items = 3;
  return entry;
}

TEST(ResultCacheTest, MissThenHitAndCounters) {
  service::ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.Lookup("absent").has_value());
  cache.Insert(MakeEntry("a", 100));
  auto hit = cache.Lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->fingerprint, "a");
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  service::ResultCache cache(3000);
  cache.Insert(MakeEntry("a", 800));
  cache.Insert(MakeEntry("b", 800));
  cache.Insert(MakeEntry("c", 800));
  // Touch "a" so "b" is now the least recently used.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  cache.Insert(MakeEntry("d", 800));
  EXPECT_GE(cache.evictions(), 1);
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("d").has_value());
  EXPECT_LE(cache.bytes(), 3000u);
}

TEST(ResultCacheTest, RejectsEntryLargerThanWholeBudget) {
  service::ResultCache cache(500);
  cache.Insert(MakeEntry("huge", 5000));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Lookup("huge").has_value());
}

TEST(ResultCacheTest, InsertRefreshesExistingFingerprint) {
  service::ResultCache cache(1 << 20);
  cache.Insert(MakeEntry("a", 100));
  service::CachedAnalysis updated = MakeEntry("a", 200);
  updated.summary = "updated";
  cache.Insert(std::move(updated));
  EXPECT_EQ(cache.entries(), 1u);
  auto hit = cache.Lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->summary, "updated");
}

TEST(ResultCacheTest, PersistRestoreRoundTripPreservesRecency) {
  std::string dir = MakeScratchDir("cache_roundtrip");
  {
    service::ResultCache cache(1 << 20);
    cache.Insert(MakeEntry("old", 100));
    cache.Insert(MakeEntry("mid", 100));
    cache.Insert(MakeEntry("new", 100));
    ASSERT_TRUE(cache.Persist(dir).ok());
  }
  // A tighter budget on restore keeps the most recently used entries.
  service::ResultCache restored(2 * MakeEntry("old", 100).ByteSize());
  ASSERT_TRUE(restored.Restore(dir).ok());
  EXPECT_EQ(restored.entries(), 2u);
  EXPECT_TRUE(restored.Lookup("new").has_value());
  EXPECT_TRUE(restored.Lookup("mid").has_value());
  EXPECT_FALSE(restored.Lookup("old").has_value());
}

TEST(ResultCacheTest, RestoreFromEmptyDirectoryIsNotFound) {
  service::ResultCache cache(1 << 20);
  EXPECT_EQ(cache.Restore(MakeScratchDir("cache_empty")).code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// Scheduler: determinism and caching.

TEST(SchedulerTest, JobReportMatchesDirectSessionByteForByte) {
  dataset::Cohort cohort = MakeCohort(21);
  core::SessionOptions options = FastOptions("determinism");

  kdb::Database db;
  core::AnalysisSession session(&db);
  auto direct = session.Run(cohort.log, &cohort.taxonomy, options);
  ASSERT_TRUE(direct.ok());
  std::string direct_report =
      core::RenderSessionReport(direct.value(), options.dataset_id);

  service::SchedulerOptions scheduler_options;
  scheduler_options.max_workers = 2;
  service::Scheduler scheduler(scheduler_options);
  service::JobRequest request;
  request.log = cohort.log;
  request.taxonomy = cohort.taxonomy;
  request.options = options;
  auto id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok());
  auto snapshot = scheduler.AwaitResult(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, service::JobState::kDone);
  EXPECT_FALSE(snapshot->cache_hit);
  EXPECT_EQ(snapshot->report, direct_report);
  EXPECT_EQ(snapshot->summary, direct->summary);
}

TEST(SchedulerTest, RepeatSubmissionServedFromCacheWithoutSecondRun) {
  service::SchedulerOptions options;
  options.max_workers = 2;
  service::Scheduler scheduler(options);

  auto first = scheduler.Submit(MakeJob(31, "repeat"));
  ASSERT_TRUE(first.ok());
  auto first_result = scheduler.AwaitResult(first.value());
  ASSERT_TRUE(first_result.ok());
  ASSERT_EQ(first_result->state, service::JobState::kDone);
  EXPECT_FALSE(first_result->cache_hit);

  auto second = scheduler.Submit(MakeJob(31, "repeat"));
  ASSERT_TRUE(second.ok());
  auto second_result = scheduler.AwaitResult(second.value());
  ASSERT_TRUE(second_result.ok());
  EXPECT_EQ(second_result->state, service::JobState::kDone);
  EXPECT_TRUE(second_result->cache_hit);
  EXPECT_EQ(second_result->fingerprint, first_result->fingerprint);
  EXPECT_EQ(second_result->report, first_result->report);

  service::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.sessions_executed, 1);
  EXPECT_EQ(stats.cache_served, 1);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(scheduler.cache().hits(), 1);
}

TEST(SchedulerTest, ConcurrentJobsAllCompleteAndStayDeterministic) {
  service::SchedulerOptions options;
  options.max_workers = 4;
  service::Scheduler scheduler(options);

  std::vector<service::JobId> ids;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto id = scheduler.Submit(MakeJob(40 + seed, "concurrent"));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  std::vector<service::JobSnapshot> snapshots;
  for (service::JobId id : ids) {
    auto snapshot = scheduler.AwaitResult(id);
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->state, service::JobState::kDone)
        << snapshot->status.ToString();
    EXPECT_FALSE(snapshot->report.empty());
    snapshots.push_back(std::move(snapshot).value());
  }
  // Distinct datasets must not collide in the cache.
  for (size_t i = 0; i < snapshots.size(); ++i) {
    for (size_t j = i + 1; j < snapshots.size(); ++j) {
      EXPECT_NE(snapshots[i].fingerprint, snapshots[j].fingerprint);
    }
  }
  EXPECT_EQ(scheduler.stats().sessions_executed, 8);

  // A job that ran amid 7 concurrent peers still renders the exact
  // bytes of a solo direct session run.
  dataset::Cohort cohort = MakeCohort(41);
  kdb::Database db;
  core::AnalysisSession session(&db);
  auto direct =
      session.Run(cohort.log, &cohort.taxonomy, FastOptions("concurrent"));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(snapshots[0].report,
            core::RenderSessionReport(direct.value(), "concurrent"));
}

// ---------------------------------------------------------------------
// Scheduler: admission control and lifecycle.

TEST(SchedulerTest, HigherPriorityJobRunsFirst) {
  service::SchedulerOptions options;
  options.max_workers = 1;
  options.start_paused = true;
  service::Scheduler scheduler(options);

  // `low` and `high` are identical submissions; `mid` is distinct.
  // With priority dispatch the order is high(10), mid(5), low(0), so
  // `low` must be answered by the cache entry `high` created. FIFO
  // dispatch would run `low` cold instead.
  auto low = scheduler.Submit(MakeJob(51, "prio"));
  ASSERT_TRUE(low.ok());
  service::JobRequest mid_request = MakeJob(52, "prio-other");
  mid_request.priority = 5;
  auto mid = scheduler.Submit(std::move(mid_request));
  ASSERT_TRUE(mid.ok());
  service::JobRequest high_request = MakeJob(51, "prio");
  high_request.priority = 10;
  auto high = scheduler.Submit(std::move(high_request));
  ASSERT_TRUE(high.ok());

  scheduler.Resume();
  auto low_result = scheduler.AwaitResult(low.value());
  auto high_result = scheduler.AwaitResult(high.value());
  ASSERT_TRUE(low_result.ok());
  ASSERT_TRUE(high_result.ok());
  EXPECT_FALSE(high_result->cache_hit);
  EXPECT_TRUE(low_result->cache_hit);
}

TEST(SchedulerTest, FullQueueShedsWithResourceExhausted) {
  service::SchedulerOptions options;
  options.max_workers = 1;
  options.max_queue_depth = 2;
  options.start_paused = true;
  service::Scheduler scheduler(options);

  ASSERT_TRUE(scheduler.Submit(MakeJob(61, "shed-a")).ok());
  ASSERT_TRUE(scheduler.Submit(MakeJob(62, "shed-b")).ok());
  auto rejected = scheduler.Submit(MakeJob(63, "shed-c"));
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().shed, 1);
  EXPECT_EQ(scheduler.stats().queue_depth, 2u);
}

TEST(SchedulerTest, QueuedJobPastDeadlineExpires) {
  service::SchedulerOptions options;
  options.max_workers = 1;
  options.start_paused = true;
  service::Scheduler scheduler(options);

  service::JobRequest request = MakeJob(71, "deadline");
  request.deadline_millis = 1.0;
  auto id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.Resume();
  auto snapshot = scheduler.AwaitResult(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, service::JobState::kExpired);
  EXPECT_EQ(snapshot->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(scheduler.stats().expired, 1);
  EXPECT_EQ(scheduler.stats().sessions_executed, 0);
}

TEST(SchedulerTest, CancelQueuedJobAndErrorCases) {
  service::SchedulerOptions options;
  options.start_paused = true;
  service::Scheduler scheduler(options);

  auto id = scheduler.Submit(MakeJob(81, "cancel"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.Cancel(id.value()).ok());
  auto snapshot = scheduler.Status(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, service::JobState::kCancelled);
  // Cancelled jobs cannot be cancelled again; unknown ids are NOT_FOUND.
  EXPECT_EQ(scheduler.Cancel(id.value()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.Cancel(99999).code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.stats().cancelled, 1);
  scheduler.Resume();
}

TEST(SchedulerTest, AwaitResultTimesOutOnStalledJob) {
  service::SchedulerOptions options;
  options.start_paused = true;
  service::Scheduler scheduler(options);
  auto id = scheduler.Submit(MakeJob(91, "stalled"));
  ASSERT_TRUE(id.ok());
  auto snapshot = scheduler.AwaitResult(id.value(), 20.0);
  EXPECT_EQ(snapshot.status().code(), StatusCode::kDeadlineExceeded);
  scheduler.Resume();
}

TEST(SchedulerTest, EmptyDatasetRejectedWithoutShedAccounting) {
  service::Scheduler scheduler(service::SchedulerOptions{});
  service::JobRequest request;
  request.options = FastOptions("empty");
  auto id = scheduler.Submit(std::move(request));
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(scheduler.stats().shed, 0);
  EXPECT_EQ(scheduler.stats().submitted, 0);
}

TEST(SchedulerTest, UnknownJobIdIsNotFound) {
  service::Scheduler scheduler(service::SchedulerOptions{});
  EXPECT_EQ(scheduler.Status(12345).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.AwaitResult(12345, 10.0).status().code(),
            StatusCode::kNotFound);
}

TEST(SchedulerTest, CachePersistsAcrossSchedulerInstances) {
  std::string dir = MakeScratchDir("sched_cache");
  service::SchedulerOptions options;
  options.cache_directory = dir;
  {
    service::Scheduler scheduler(options);
    auto id = scheduler.Submit(MakeJob(95, "persist"));
    ASSERT_TRUE(id.ok());
    auto snapshot = scheduler.AwaitResult(id.value());
    ASSERT_TRUE(snapshot.ok());
    ASSERT_EQ(snapshot->state, service::JobState::kDone);
  }
  service::Scheduler revived(options);
  EXPECT_EQ(revived.cache().entries(), 1u);
  auto id = revived.Submit(MakeJob(95, "persist"));
  ASSERT_TRUE(id.ok());
  auto snapshot = revived.AwaitResult(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, service::JobState::kDone);
  EXPECT_TRUE(snapshot->cache_hit);
  EXPECT_EQ(revived.stats().sessions_executed, 0);
}

TEST(SchedulerTest, CachePersistenceBatchesOnDirtyThreshold) {
  std::string dir = MakeScratchDir("sched_batch");
  service::SchedulerOptions options;
  options.cache_directory = dir;
  options.cache_persist_threshold = 4;
  int64_t skipped_before = common::MetricsRegistry::Default()
                               .GetCounter("service/cache_persist_skipped")
                               .value();
  {
    service::Scheduler scheduler(options);
    auto id = scheduler.Submit(MakeJob(96, "batched"));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(scheduler.AwaitResult(id.value()).ok());
    // One completed job is below the 4-dirty-entry threshold: nothing
    // hit the disk, the skipped persist was counted, and the entry
    // stays marked dirty for the eventual flush.
    EXPECT_TRUE(std::filesystem::is_empty(dir));
    EXPECT_EQ(common::MetricsRegistry::Default()
                  .GetCounter("service/cache_persist_skipped")
                  .value(),
              skipped_before + 1);
    EXPECT_EQ(scheduler.cache().dirty_entries(), 1u);
  }  // The destructor flushes whatever is still dirty.
  EXPECT_FALSE(std::filesystem::is_empty(dir));
  service::Scheduler revived(options);
  EXPECT_EQ(revived.cache().entries(), 1u);
  EXPECT_EQ(revived.cache().dirty_entries(), 0u);
}

TEST(SchedulerTest, CachePersistFiresExactlyAtDirtyThreshold) {
  std::string dir = MakeScratchDir("sched_threshold");
  service::SchedulerOptions options;
  options.cache_directory = dir;
  options.cache_persist_threshold = 3;
  options.max_workers = 1;
  service::Scheduler scheduler(options);
  // Two completed jobs leave the dirty debt one short of the
  // threshold: nothing may reach the disk yet.
  for (int64_t seed = 200; seed < 202; ++seed) {
    auto id = scheduler.Submit(MakeJob(seed, "threshold"));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(scheduler.AwaitResult(id.value()).ok());
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  EXPECT_EQ(scheduler.cache().dirty_entries(), 2u);

  // The third commit lands exactly on the threshold and must persist
  // synchronously (the worker persists before marking the job done,
  // so AwaitResult returning makes this deterministic).
  auto id = scheduler.Submit(MakeJob(202, "threshold"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.AwaitResult(id.value()).ok());
  EXPECT_FALSE(std::filesystem::is_empty(dir));
  EXPECT_EQ(scheduler.cache().dirty_entries(), 0u);

  service::Scheduler revived(options);
  EXPECT_EQ(revived.cache().entries(), 3u);
  EXPECT_EQ(revived.cache().dirty_entries(), 0u);
}

TEST(SchedulerTest, DestructorFlushCoversFailedThresholdPersist) {
  std::string dir = MakeScratchDir("sched_failed_persist");
  service::SchedulerOptions options;
  options.cache_directory = dir;
  options.cache_persist_threshold = 1;
  int64_t failures_before = common::MetricsRegistry::Default()
                                .GetCounter("service/cache_persist_failures")
                                .value();
  {
    service::Scheduler scheduler(options);
    {
      // The at-threshold persist hits the injected store error. A
      // failed persist must degrade to in-memory caching — job still
      // completes — and leave the dirty debt unpaid.
      common::ScopedFailpoint broken_store(
          "service.cache.store",
          common::OneShotError(StatusCode::kUnavailable, "disk full"));
      auto id = scheduler.Submit(MakeJob(210, "flush-after-failure"));
      ASSERT_TRUE(id.ok());
      auto snapshot = scheduler.AwaitResult(id.value());
      ASSERT_TRUE(snapshot.ok());
      EXPECT_EQ(snapshot->state, service::JobState::kDone);
    }
    EXPECT_TRUE(std::filesystem::is_empty(dir));
    EXPECT_EQ(scheduler.cache().dirty_entries(), 1u);
    EXPECT_EQ(common::MetricsRegistry::Default()
                  .GetCounter("service/cache_persist_failures")
                  .value(),
              failures_before + 1);
  }  // Failpoint disarmed: the destructor flush settles the debt.
  EXPECT_FALSE(std::filesystem::is_empty(dir));
  service::Scheduler revived(options);
  EXPECT_EQ(revived.cache().entries(), 1u);
  EXPECT_EQ(revived.cache().dirty_entries(), 0u);
}

TEST(SchedulerTest, SubscribeDeliversTerminalSnapshotOnCompletion) {
  service::SchedulerOptions options;
  options.start_paused = true;
  service::Scheduler scheduler(options);
  auto id = scheduler.Submit(MakeJob(93, "subscribed"));
  ASSERT_TRUE(id.ok());
  std::promise<service::JobSnapshot> delivered;
  auto subscription = scheduler.Subscribe(
      id.value(), [&delivered](const service::JobSnapshot& snapshot) {
        delivered.set_value(snapshot);
      });
  ASSERT_TRUE(subscription.ok());
  EXPECT_GT(subscription.value(), 0);  // Parked, not fired inline.
  scheduler.Resume();
  auto future = delivered.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(120)),
            std::future_status::ready);
  service::JobSnapshot snapshot = future.get();
  EXPECT_EQ(snapshot.state, service::JobState::kDone);
  EXPECT_EQ(snapshot.id, id.value());
  // The subscription was consumed when it fired.
  EXPECT_FALSE(scheduler.Unsubscribe(subscription.value()));
}

TEST(SchedulerTest, SubscribeOnTerminalJobFiresInline) {
  service::Scheduler scheduler(service::SchedulerOptions{});
  auto id = scheduler.Submit(MakeJob(94, "inline-fire"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.AwaitResult(id.value()).ok());
  bool fired = false;
  auto subscription = scheduler.Subscribe(
      id.value(), [&fired](const service::JobSnapshot& snapshot) {
        fired = snapshot.state == service::JobState::kDone;
      });
  ASSERT_TRUE(subscription.ok());
  EXPECT_EQ(subscription.value(), 0);  // Sentinel: fired before returning.
  EXPECT_TRUE(fired);
  EXPECT_EQ(scheduler
                .Subscribe(4242, [](const service::JobSnapshot&) {})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SchedulerTest, SubscribeCallbackMayReenterTheScheduler) {
  // Regression: completion callbacks used to fire with the scheduler's
  // internal lock held, so a callback calling Status()/stats() (or any
  // other scheduler method) self-deadlocked. Callbacks now fire after
  // the lock is released and re-entry is part of Subscribe's contract.
  service::SchedulerOptions options;
  options.start_paused = true;
  service::Scheduler scheduler(options);
  auto id = scheduler.Submit(MakeJob(91, "reentrant"));
  ASSERT_TRUE(id.ok());
  std::promise<service::JobState> reentered;
  auto subscription = scheduler.Subscribe(
      id.value(),
      [&scheduler, &reentered](const service::JobSnapshot& snapshot) {
        auto inner = scheduler.Status(snapshot.id);  // Deadlocked before.
        (void)scheduler.stats();
        reentered.set_value(inner.ok() ? inner->state
                                       : service::JobState::kQueued);
      });
  ASSERT_TRUE(subscription.ok());
  scheduler.Resume();
  auto future = reentered.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(120)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), service::JobState::kDone);
}

TEST(SchedulerTest, UnsubscribePreventsDelivery) {
  service::SchedulerOptions options;
  options.start_paused = true;
  service::Scheduler scheduler(options);
  auto id = scheduler.Submit(MakeJob(92, "unsubscribed"));
  ASSERT_TRUE(id.ok());
  std::atomic<bool> fired{false};
  auto subscription = scheduler.Subscribe(
      id.value(), [&fired](const service::JobSnapshot&) { fired = true; });
  ASSERT_TRUE(subscription.ok());
  EXPECT_TRUE(scheduler.Unsubscribe(subscription.value()));
  scheduler.Resume();
  ASSERT_TRUE(scheduler.AwaitResult(id.value()).ok());
  EXPECT_FALSE(fired.load());
}

TEST(SchedulerTest, StatsJsonCarriesSchedulerAndCacheCounters) {
  service::Scheduler scheduler(service::SchedulerOptions{});
  auto id = scheduler.Submit(MakeJob(97, "stats"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.AwaitResult(id.value()).ok());
  common::Json stats = scheduler.StatsJson();
  ASSERT_TRUE(stats.is_object());
  EXPECT_EQ(stats.Find("jobs_submitted")->AsInt(), 1);
  EXPECT_EQ(stats.Find("jobs_completed")->AsInt(), 1);
  EXPECT_EQ(stats.Find("sessions_executed")->AsInt(), 1);
  const common::Json* cache = stats.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->Find("entries")->AsInt(), 1);
}

}  // namespace
}  // namespace adahealth
