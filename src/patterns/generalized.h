// Generalized (taxonomy-aware) itemset mining in the spirit of MeTA
// (paper reference [2]: "Characterization of Medical Treatments at
// Different Abstraction Levels"): frequent itemsets are mined at each
// taxonomy level, so a pattern too sparse at the leaf level can still
// surface as a frequent group- or category-level pattern.
#ifndef ADAHEALTH_PATTERNS_GENERALIZED_H_
#define ADAHEALTH_PATTERNS_GENERALIZED_H_

#include <string>

#include "common/status.h"
#include "dataset/taxonomy.h"
#include "patterns/apriori.h"
#include "patterns/transactions.h"

namespace adahealth {
namespace patterns {

/// A frequent itemset together with the abstraction level it was mined
/// at. Items are taxonomy node ids.
struct GeneralizedItemset {
  int level = 0;  // 0 = exams, 1 = groups, 2 = categories.
  std::vector<ItemId> items;
  int64_t support = 0;

  friend bool operator==(const GeneralizedItemset& a,
                         const GeneralizedItemset& b) = default;
};

struct GeneralizedMiningOptions {
  /// Per-level relative minimum support in (0, 1]. Higher levels
  /// aggregate more records, so a common choice raises the threshold
  /// with the level.
  double min_support_level0 = 0.10;
  double min_support_level1 = 0.20;
  double min_support_level2 = 0.40;
  size_t max_itemset_size = 4;
};

/// Mines frequent itemsets at all three taxonomy levels with FP-growth.
/// Results are ordered by level, then canonically.
[[nodiscard]] common::StatusOr<std::vector<GeneralizedItemset>> MineGeneralized(
    const dataset::ExamLog& log, const dataset::Taxonomy& taxonomy,
    const GeneralizedMiningOptions& options);

/// Renders a generalized itemset with human-readable node names, e.g.
/// "{cardiology, lipid_panel}@L1 (support=1234)".
std::string FormatGeneralizedItemset(const GeneralizedItemset& itemset,
                                     const dataset::ExamLog& log,
                                     const dataset::Taxonomy& taxonomy);

}  // namespace patterns
}  // namespace adahealth

#endif  // ADAHEALTH_PATTERNS_GENERALIZED_H_
