file(REMOVE_RECURSE
  "CMakeFiles/feature_select_test.dir/feature_select_test.cc.o"
  "CMakeFiles/feature_select_test.dir/feature_select_test.cc.o.d"
  "feature_select_test"
  "feature_select_test.pdb"
  "feature_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
