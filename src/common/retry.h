// Bounded retry with deterministic exponential backoff.
//
// Transient failures (a busy disk, an injected UNAVAILABLE, a stalled
// stage) are retried up to a bounded number of attempts with
// exponential backoff; jitter is drawn from common/rng seeded by the
// policy and the operation name, so a given (policy, op) pair backs
// off identically run-to-run — retries never break experiment
// reproducibility.
//
// Every attempt increments the "retry_attempts" counter; exhausting the
// policy increments "retry_giveups". Both live in
// MetricsRegistry::Default() and therefore show up in the bench JSON
// dumps.
#ifndef ADAHEALTH_COMMON_RETRY_H_
#define ADAHEALTH_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace adahealth {
namespace common {

struct RetryPolicy {
  /// Total attempts including the first (>= 1); 1 disables retries.
  int32_t max_attempts = 3;
  /// Backoff before retry n is
  ///   min(initial * multiplier^(n-1), max) * (1 + jitter * u),
  /// with u uniform in [-1, 1) from the deterministic jitter stream.
  double initial_backoff_millis = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_millis = 50.0;
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 0x5ADA5EED;
  /// An attempt whose wall time exceeds this budget has its result
  /// replaced with DEADLINE_EXCEEDED (which is retryable); <= 0
  /// disables the per-attempt deadline. The attempt itself cannot be
  /// preempted — the deadline is enforced when it returns.
  double per_attempt_deadline_millis = 0.0;
  /// Codes worth retrying; everything else fails fast.
  std::vector<StatusCode> retryable_codes = {StatusCode::kUnavailable,
                                             StatusCode::kDeadlineExceeded};

  [[nodiscard]] bool IsRetryable(StatusCode code) const;
};

/// Runs `operation` under `policy`. Returns the first OK result, or —
/// once attempts are exhausted or a non-retryable code appears — the
/// last status, annotated with the attempt count and `op_name`.
[[nodiscard]] Status RetryWithPolicy(
    const RetryPolicy& policy, std::string_view op_name,
    const std::function<Status()>& operation);

/// As above, also reporting how many attempts were consumed (>= 1)
/// through `attempts_out` (ignored when null). Exposed separately so
/// callers that record StageOutcome can surface the retry count.
[[nodiscard]] Status RetryWithPolicy(
    const RetryPolicy& policy, std::string_view op_name,
    const std::function<Status()>& operation, int32_t* attempts_out);

}  // namespace common
}  // namespace adahealth

#endif  // ADAHEALTH_COMMON_RETRY_H_
