#include "dataset/synthetic_cohort.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace adahealth {
namespace dataset {

namespace {

using common::InvalidArgumentError;
using common::Rng;
using common::StatusOr;

/// Static description of an exam group: name, parent category, and its
/// relative share of the exam-type vocabulary.
struct GroupSpec {
  const char* name;
  int32_t category;
  double vocabulary_share;
};

// Categories: 0 laboratory, 1 specialist, 2 imaging, 3 primary care.
constexpr const char* kCategoryNames[] = {"laboratory", "specialist_visit",
                                          "imaging", "primary_care"};

// Twenty clinically plausible exam groups for a diabetic cohort. Shares
// sum to 1 and control how many of the `num_exam_types` leaves land in
// each group (159 leaves reproduces the counts in DESIGN.md).
constexpr GroupSpec kGroupSpecs[] = {
    {"glycemic_control", 0, 0.050},   {"lipid_panel", 0, 0.050},
    {"renal_function", 0, 0.063},     {"liver_function", 0, 0.050},
    {"ophthalmology", 1, 0.063},      {"cardiology", 1, 0.075},
    {"neurology", 1, 0.050},          {"podiatry", 1, 0.038},
    {"vascular_studies", 2, 0.050},   {"radiology", 2, 0.075},
    {"urinalysis", 0, 0.050},         {"blood_count", 0, 0.050},
    {"endocrinology", 1, 0.050},      {"nutrition_counseling", 3, 0.038},
    {"general_checkup", 3, 0.050},    {"dermatology", 1, 0.038},
    {"infection_screen", 0, 0.044},   {"physiotherapy", 3, 0.038},
    {"dental_care", 3, 0.038},        {"oncology_screening", 1, 0.040},
};
constexpr size_t kNumGroupSpecs = std::size(kGroupSpecs);

/// Static description of a latent clinical profile.
struct ProfileSpec {
  const char* name;
  double mix_weight;       // Relative cohort share.
  double age_mean;         // Years.
  double age_stddev;       // Years.
  double activity_factor;  // Multiplier on records per patient.
  // Indices into kGroupSpecs of the signature (boosted) groups.
  std::vector<int32_t> signature_groups;
};

const std::vector<ProfileSpec>& ProfileSpecs() {
  static const std::vector<ProfileSpec> kSpecs{
      {"well_controlled", 0.22, 58, 13, 0.80, {0, 14}},
      {"cardiovascular", 0.15, 67, 10, 1.15, {5, 8, 1}},
      {"retinopathy", 0.12, 63, 11, 1.05, {4, 9}},
      {"nephropathy", 0.12, 66, 10, 1.10, {2, 10}},
      {"neuropathy", 0.10, 64, 11, 1.05, {6, 17, 7}},
      {"foot_complication", 0.08, 69, 9, 1.10, {7, 15, 8}},
      {"newly_diagnosed", 0.13, 44, 15, 0.85, {13, 12, 14}},
      {"multi_morbid", 0.08, 73, 8, 1.55, {5, 2, 4, 6}},
  };
  return kSpecs;
}

/// Distributes `total` leaves over the group specs proportionally to
/// vocabulary_share using the largest-remainder method; every used
/// group receives at least one leaf.
std::vector<int32_t> AllocateLeaves(int32_t total, size_t num_groups) {
  std::vector<int32_t> counts(num_groups, 1);
  int32_t remaining = total - static_cast<int32_t>(num_groups);
  double share_sum = 0.0;
  for (size_t g = 0; g < num_groups; ++g) share_sum += kGroupSpecs[g].vocabulary_share;
  std::vector<double> remainders(num_groups);
  int32_t assigned = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    double exact = remaining * kGroupSpecs[g].vocabulary_share / share_sum;
    int32_t floor_count = static_cast<int32_t>(std::floor(exact));
    counts[g] += floor_count;
    assigned += floor_count;
    remainders[g] = exact - floor_count;
  }
  // Hand out the leftover leaves to the largest remainders.
  std::vector<size_t> order(num_groups);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return remainders[a] > remainders[b];
  });
  for (int32_t i = 0; i < remaining - assigned; ++i) {
    ++counts[order[static_cast<size_t>(i) % num_groups]];
  }
  return counts;
}

}  // namespace

StatusOr<Cohort> SyntheticCohortGenerator::Generate() const {
  const CohortConfig& cfg = config_;
  if (cfg.num_patients <= 0) {
    return InvalidArgumentError("num_patients must be positive");
  }
  if (cfg.num_exam_types < static_cast<int32_t>(4)) {
    return InvalidArgumentError("num_exam_types must be at least 4");
  }
  if (cfg.num_profiles <= 0 ||
      cfg.num_profiles > static_cast<int32_t>(ProfileSpecs().size())) {
    return InvalidArgumentError("num_profiles must be in [1, 8]");
  }
  if (cfg.mean_records_per_patient <= 0.0) {
    return InvalidArgumentError("mean_records_per_patient must be positive");
  }
  if (cfg.zipf_exponent < 0.0) {
    return InvalidArgumentError("zipf_exponent must be non-negative");
  }
  if (cfg.profile_boost < 1.0) {
    return InvalidArgumentError("profile_boost must be >= 1");
  }
  if (cfg.num_days <= 0) {
    return InvalidArgumentError("num_days must be positive");
  }
  if (cfg.patient_heterogeneity < 0.0) {
    return InvalidArgumentError("patient_heterogeneity must be >= 0");
  }

  const size_t num_groups =
      std::min(kNumGroupSpecs, static_cast<size_t>(cfg.num_exam_types));
  const std::vector<int32_t> leaves_per_group =
      AllocateLeaves(cfg.num_exam_types, num_groups);

  // --- Dictionary and taxonomy -------------------------------------------
  ExamDictionary dictionary;
  std::vector<int32_t> leaf_group;
  std::vector<int32_t> leaf_rank_in_group;  // Popularity rank within group.
  std::vector<std::string> group_names;
  std::vector<int32_t> group_category;
  for (size_t g = 0; g < num_groups; ++g) {
    group_names.emplace_back(kGroupSpecs[g].name);
    group_category.push_back(kGroupSpecs[g].category);
  }
  std::vector<std::string> category_names(std::begin(kCategoryNames),
                                          std::end(kCategoryNames));
  for (size_t g = 0; g < num_groups; ++g) {
    for (int32_t j = 0; j < leaves_per_group[g]; ++j) {
      std::string name =
          std::string(kGroupSpecs[g].name) + "_" + std::to_string(j + 1);
      ExamTypeId id = dictionary.Intern(name);
      // invariant: generated names are unique, so Intern must assign
      // dense ids in insertion order (no user input involved).
      ADA_CHECK_EQ(static_cast<size_t>(id), leaf_group.size());
      leaf_group.push_back(static_cast<int32_t>(g));
      leaf_rank_in_group.push_back(j);
    }
  }
  auto taxonomy_or = Taxonomy::Build(leaf_group, group_names, group_category,
                                     category_names);
  if (!taxonomy_or.ok()) return taxonomy_or.status();

  // --- Zipf popularity ----------------------------------------------------
  // Global popularity rank: the j-th exam of every group is more popular
  // than every (j+1)-th exam, so the most frequent exams are the routine
  // ones that exist in each group (mirroring real checkup panels).
  const size_t num_exams = leaf_group.size();
  std::vector<size_t> order(num_exams);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (leaf_rank_in_group[a] != leaf_rank_in_group[b]) {
      return leaf_rank_in_group[a] < leaf_rank_in_group[b];
    }
    return leaf_group[a] < leaf_group[b];
  });
  std::vector<double> base_weight(num_exams, 0.0);
  for (size_t rank = 0; rank < num_exams; ++rank) {
    base_weight[order[rank]] =
        1.0 / std::pow(static_cast<double>(rank + 1), cfg.zipf_exponent);
  }

  // --- Per-profile sampling weights ----------------------------------------
  const auto& profiles = ProfileSpecs();
  const size_t num_profiles = static_cast<size_t>(cfg.num_profiles);
  std::vector<std::vector<double>> profile_weight(num_profiles);
  std::vector<double> mix_weights(num_profiles);
  for (size_t p = 0; p < num_profiles; ++p) {
    mix_weights[p] = profiles[p].mix_weight;
    std::vector<bool> boosted(num_groups, false);
    for (int32_t g : profiles[p].signature_groups) {
      if (static_cast<size_t>(g) < num_groups) {
        boosted[static_cast<size_t>(g)] = true;
      }
    }
    std::vector<double>& weights = profile_weight[p];
    weights.resize(num_exams);
    for (size_t e = 0; e < num_exams; ++e) {
      double w = base_weight[e];
      if (boosted[static_cast<size_t>(leaf_group[e])]) {
        // The boost grows with the within-group specialization rank:
        // the leading exam of each group is a routine panel everyone
        // gets (no profile signal), while "more specific diagnostic
        // tests" (paper §IV) carry the clinical-profile signal. This
        // places discriminative mass in mid-frequency exams, which is
        // what makes the paper's 85%-of-records subset necessary (the
        // 70% subset loses too much signal).
        double specialization =
            std::clamp((leaf_rank_in_group[e] - 1.0) / 3.0, 0.0, 1.0);
        w *= 1.0 + (cfg.profile_boost - 1.0) * specialization;
      }
      weights[e] = w;
    }
  }

  // Normalize activity so the overall expected records/patient matches
  // mean_records_per_patient regardless of the profile mix.
  double mix_total = 0.0;
  double weighted_activity = 0.0;
  for (size_t p = 0; p < num_profiles; ++p) {
    mix_total += mix_weights[p];
    weighted_activity += mix_weights[p] * profiles[p].activity_factor;
  }
  const double activity_scale = mix_total / weighted_activity;

  // --- Patients and records ------------------------------------------------
  Rng rng(cfg.seed);
  std::vector<Patient> patients(static_cast<size_t>(cfg.num_patients));
  std::vector<ExamRecord> records;
  records.reserve(static_cast<size_t>(cfg.num_patients *
                                      cfg.mean_records_per_patient * 1.1));
  std::vector<double> group_noise(num_groups, 1.0);
  std::vector<double> cdf(num_exams);
  for (int32_t i = 0; i < cfg.num_patients; ++i) {
    size_t profile = rng.Discrete(mix_weights);
    const ProfileSpec& spec = profiles[profile];
    Patient& patient = patients[static_cast<size_t>(i)];
    patient.id = i;
    patient.profile = static_cast<int32_t>(profile);
    double age = rng.Normal(spec.age_mean, spec.age_stddev);
    patient.age = static_cast<int32_t>(
        std::clamp(std::round(age), 4.0, 95.0));

    // Individual variability: mean-1 gamma multipliers per exam group
    // (variance = patient_heterogeneity) blur the latent profiles.
    if (cfg.patient_heterogeneity > 0.0) {
      double shape = 1.0 / cfg.patient_heterogeneity;
      for (double& noise : group_noise) {
        noise = rng.Gamma(shape, cfg.patient_heterogeneity);
      }
    }
    const std::vector<double>& weights = profile_weight[profile];
    double running = 0.0;
    for (size_t e = 0; e < num_exams; ++e) {
      running += weights[e] *
                 group_noise[static_cast<size_t>(leaf_group[e])];
      cdf[e] = running;
    }
    for (double& value : cdf) value /= running;

    double lambda = cfg.mean_records_per_patient * spec.activity_factor *
                    activity_scale;
    int64_t count = std::max<int64_t>(1, rng.Poisson(lambda));
    for (int64_t r = 0; r < count; ++r) {
      double u = rng.UniformDouble();
      size_t exam = static_cast<size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      if (exam >= num_exams) exam = num_exams - 1;
      ExamRecord record;
      record.patient = i;
      record.exam_type = static_cast<ExamTypeId>(exam);
      record.day = static_cast<int32_t>(rng.UniformInt(0, cfg.num_days - 1));
      records.push_back(record);
    }
  }

  Cohort cohort{ExamLog(std::move(patients), std::move(dictionary),
                        std::move(records)),
                std::move(taxonomy_or).value(),
                {}};
  for (size_t p = 0; p < num_profiles; ++p) {
    cohort.profile_names.emplace_back(profiles[p].name);
  }
  return cohort;
}

CohortConfig PaperScaleConfig() { return CohortConfig{}; }

CohortConfig TestScaleConfig() {
  CohortConfig config;
  config.num_patients = 400;
  config.num_exam_types = 48;
  config.mean_records_per_patient = 12.0;
  config.num_profiles = 4;
  config.seed = 42;
  return config;
}

}  // namespace dataset
}  // namespace adahealth
