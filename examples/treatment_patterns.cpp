// Domain example 2 — "identify medical examinations commonly
// prescribed by physicians" and "discover previously unknown
// interactions" (analyses (ii) and (iv) of the paper's introduction),
// following the MeTA idea (paper ref [2]): frequent patterns at three
// abstraction levels plus association rules over exam groups.
#include <algorithm>
#include <cstdio>

#include "dataset/synthetic_cohort.h"
#include "patterns/fpgrowth.h"
#include "patterns/generalized.h"
#include "patterns/rules.h"

int main() {
  using namespace adahealth;

  dataset::CohortConfig config = dataset::PaperScaleConfig();
  config.num_patients = 3000;
  auto cohort = dataset::SyntheticCohortGenerator(config).Generate();
  if (!cohort.ok()) {
    std::printf("cohort generation failed\n");
    return 1;
  }
  const dataset::ExamLog& log = cohort->log;
  const dataset::Taxonomy& taxonomy = cohort->taxonomy;

  // Frequent patterns at each abstraction level.
  patterns::GeneralizedMiningOptions mining;
  mining.min_support_level0 = 0.25;
  mining.min_support_level1 = 0.40;
  mining.min_support_level2 = 0.60;
  mining.max_itemset_size = 3;
  auto itemsets = patterns::MineGeneralized(log, taxonomy, mining);
  if (!itemsets.ok()) {
    std::printf("mining failed: %s\n",
                itemsets.status().ToString().c_str());
    return 1;
  }

  for (int level = 0; level < 3; ++level) {
    const char* level_names[] = {"exam level (L0)", "exam-group level (L1)",
                                 "category level (L2)"};
    std::printf("== %s ==\n", level_names[level]);
    // Show the 5 largest multi-item patterns at this level.
    std::vector<const patterns::GeneralizedItemset*> at_level;
    for (const auto& itemset : itemsets.value()) {
      if (itemset.level == level && itemset.items.size() >= 2) {
        at_level.push_back(&itemset);
      }
    }
    std::sort(at_level.begin(), at_level.end(),
              [](const auto* a, const auto* b) {
                return a->support > b->support;
              });
    for (size_t i = 0; i < std::min<size_t>(5, at_level.size()); ++i) {
      std::printf("  %s\n",
                  patterns::FormatGeneralizedItemset(*at_level[i], log,
                                                     taxonomy)
                      .c_str());
    }
    if (at_level.empty()) {
      std::printf("  (no multi-item patterns at this support level)\n");
    }
    std::printf("\n");
  }

  // Association rules over exam groups ("which specialist visits go
  // together?").
  patterns::TransactionDb group_db =
      patterns::BuildTransactionsAtLevel(log, taxonomy, 1);
  patterns::MiningOptions group_mining;
  group_mining.min_support_count =
      patterns::AbsoluteSupport(0.30, group_db.size());
  group_mining.max_itemset_size = 3;
  auto group_itemsets = patterns::MineFpGrowth(group_db, group_mining);
  if (!group_itemsets.ok()) return 1;
  patterns::RuleOptions rule_options;
  rule_options.min_confidence = 0.7;
  rule_options.min_lift = 1.02;
  auto rules = patterns::GenerateRules(group_itemsets.value(),
                                       group_db.size(), rule_options);
  if (!rules.ok()) return 1;

  std::printf("== association rules over exam groups (conf >= 0.7, "
              "lift > 1.02) ==\n");
  auto group_name = [&](patterns::ItemId item) {
    return taxonomy.GroupName(item -
                              static_cast<int32_t>(taxonomy.num_leaves()));
  };
  size_t shown = 0;
  for (const auto& rule : rules.value()) {
    std::printf("  {");
    for (size_t i = 0; i < rule.antecedent.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  group_name(rule.antecedent[i]).c_str());
    }
    std::printf("} => {");
    for (size_t i = 0; i < rule.consequent.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  group_name(rule.consequent[i]).c_str());
    }
    std::printf("}  support %.2f, confidence %.2f, lift %.2f\n",
                rule.support, rule.confidence, rule.lift);
    if (++shown == 10) break;
  }
  if (rules->empty()) {
    std::printf("  (no rules above the thresholds)\n");
  }
  return 0;
}
