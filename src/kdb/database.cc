#include "kdb/database.h"

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/retry.h"

namespace adahealth {
namespace kdb {

using common::Status;
using common::StatusOr;

std::vector<std::string> Schema::CollectionNames() {
  return {kRawDatasets,    kTransformedDatasets, kDescriptors,
          kKnowledgeItems, kSelectedKnowledge,   kFeedback};
}

Collection& Database::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return *it->second;
}

StatusOr<Collection*> Database::Get(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return common::NotFoundError("no collection named " + name);
  }
  return it->second.get();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, collection] : collections_) names.push_back(name);
  return names;
}

void Database::EnsureAdaHealthSchema() {
  for (const std::string& name : Schema::CollectionNames()) {
    Collection& collection = GetOrCreate(name);
    if (name != Schema::kRawDatasets) {
      collection.CreateIndex("dataset_id");
    }
  }
}

Status Database::SaveTo(const std::string& directory,
                        const PersistOptions& options) const {
  // Fail up front on a bad target rather than per-collection midway.
  ADA_RETURN_IF_ERROR(common::CheckDirectoryWritable(directory));
  for (const auto& [name, collection] : collections_) {
    const Collection* to_save = collection.get();
    Status status = common::RetryWithPolicy(
        options.retry, "kdb.database.save:" + name, [&] {
          ADA_RETURN_IF_ERROR(ADA_FAILPOINT("kdb.database.save"));
          return SaveCollection(*to_save, directory);
        });
    if (!status.ok()) return status;
  }
  return common::OkStatus();
}

Status Database::LoadFrom(const std::string& directory,
                          const std::vector<std::string>& names,
                          const PersistOptions& options) {
  // The readability precheck mirrors SaveTo's writability one: missing
  // directories surface as one UNAVAILABLE naming the path.
  ADA_RETURN_IF_ERROR(common::CheckDirectoryReadable(directory));
  for (const std::string& name : names) {
    common::StatusOr<Collection> loaded =
        common::NotFoundError("not loaded");
    Status status = common::RetryWithPolicy(
        options.retry, "kdb.database.load:" + name, [&] {
          ADA_RETURN_IF_ERROR(ADA_FAILPOINT("kdb.database.load"));
          if (options.salvage) {
            auto salvaged = LoadCollectionSalvage(name, directory);
            if (!salvaged.ok()) return salvaged.status();
            loaded = std::move(salvaged)->collection;
            return common::OkStatus();
          }
          auto strict = LoadCollection(name, directory);
          if (!strict.ok()) return strict.status();
          loaded = std::move(strict).value();
          return common::OkStatus();
        });
    if (!status.ok()) return status;
    collections_[name] =
        std::make_unique<Collection>(std::move(loaded).value());
  }
  return common::OkStatus();
}

}  // namespace kdb
}  // namespace adahealth
