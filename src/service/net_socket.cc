#include "service/net_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace adahealth {
namespace service {

using common::Status;
using common::StatusOr;

namespace {

Status ErrnoError(const char* operation) {
  return common::UnavailableError(
      common::StrFormat("%s failed: %s", operation, std::strerror(errno)));
}

sockaddr_in LoopbackAddress(uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  return address;
}

}  // namespace

FileDescriptor::~FileDescriptor() { Close(); }

FileDescriptor::FileDescriptor(FileDescriptor&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FileDescriptor::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<ServerSocket> ServerSocket::Listen(uint16_t port, int backlog) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoError("socket");
  int reuse = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse,
                   sizeof(reuse)) != 0) {
    return ErrnoError("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in address = LoopbackAddress(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    return ErrnoError("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoError("listen");
  // Recover the kernel-assigned port when the caller asked for 0.
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) != 0) {
    return ErrnoError("getsockname");
  }
  ServerSocket server;
  server.fd_ = std::move(fd);
  server.port_ = ntohs(bound.sin_port);
  return server;
}

StatusOr<FileDescriptor> ServerSocket::Accept() const {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.accept"));
  for (;;) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) return FileDescriptor(fd);
    if (errno == EINTR) continue;
    return ErrnoError("accept");
  }
}

void ServerSocket::Shutdown() const {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

StatusOr<FileDescriptor> ConnectLoopback(uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoError("socket");
  sockaddr_in address = LoopbackAddress(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    return ErrnoError("connect");
  }
}

void ShutdownConnection(const FileDescriptor& fd) {
  if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
}

Status SendAll(const FileDescriptor& fd, std::string_view data) {
  ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.write"));
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a
    // process-killing SIGPIPE.
    ssize_t n = ::send(fd.get(), data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return common::OkStatus();
}

StatusOr<std::string> LineReader::ReadLine() {
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (eof_) {
      if (!buffer_.empty()) {  // Final line without a terminator.
        std::string line = std::move(buffer_);
        buffer_.clear();
        return line;
      }
      return common::OutOfRangeError("end of stream");
    }
    ADA_RETURN_IF_ERROR(ADA_FAILPOINT("service.net.read"));
    char chunk[4096];
    ssize_t n = ::recv(fd_->get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("recv");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace service
}  // namespace adahealth
