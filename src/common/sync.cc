#include "common/sync.h"

namespace adahealth {
namespace common {

// std::condition_variable only waits on a std::unique_lock, so the
// non-template waits adopt the already-held native mutex for the
// duration of the wait and release the unique_lock's ownership claim
// (not the mutex itself) before returning. The mutex is locked again
// by cv_.wait before either function returns, which is exactly the
// state the ADA_REQUIRES contract promises the caller.

void CondVar::Wait(Mutex& mu) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitUntil(Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  return status == std::cv_status::no_timeout;
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace common
}  // namespace adahealth
