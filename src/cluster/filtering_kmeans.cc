#include "cluster/filtering_kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kdtree.h"
#include "common/check.h"

namespace adahealth {
namespace cluster {

namespace {

using transform::Matrix;
using transform::SquaredDistance;

/// Per-iteration accumulators of the filtering pass.
struct Accumulators {
  Matrix sums;                 // k x dims.
  std::vector<int64_t> counts;  // k.

  Accumulators(size_t k, size_t dims) : sums(k, dims, 0.0), counts(k, 0) {}
};

/// Returns true if candidate `z` is farther than `z_star` from every
/// point of the box [box_min, box_max] (Kanungo et al., Lemma: test the
/// box vertex extreme in the direction z - z_star).
bool IsFarther(std::span<const double> z, std::span<const double> z_star,
               const std::vector<double>& box_min,
               const std::vector<double>& box_max) {
  double dist_z = 0.0;
  double dist_star = 0.0;
  for (size_t d = 0; d < z.size(); ++d) {
    double v = (z[d] > z_star[d]) ? box_max[d] : box_min[d];
    double dz = z[d] - v;
    double ds = z_star[d] - v;
    dist_z += dz * dz;
    dist_star += ds * ds;
  }
  return dist_z >= dist_star;
}

/// Recursive filtering pass: distributes the subtree at `node_id` over
/// the candidate centroids in `candidates`.
void Filter(const KdTree& tree, const Matrix& centroids,
            size_t node_id, std::vector<int32_t> candidates,
            Accumulators& acc) {
  const KdTree::Node& node = tree.node(node_id);
  const Matrix& data = tree.data();
  const size_t dims = data.cols();

  if (candidates.size() > 1) {
    // z*: candidate closest to the cell midpoint.
    std::vector<double> midpoint(dims);
    for (size_t d = 0; d < dims; ++d) {
      midpoint[d] = 0.5 * (node.box_min[d] + node.box_max[d]);
    }
    double best = std::numeric_limits<double>::max();
    int32_t z_star = candidates[0];
    for (int32_t c : candidates) {
      double dist = SquaredDistance(midpoint, centroids.Row(
          static_cast<size_t>(c)));
      if (dist < best) {
        best = dist;
        z_star = c;
      }
    }
    // Prune candidates dominated by z* over the whole cell.
    std::vector<int32_t> pruned;
    pruned.reserve(candidates.size());
    std::span<const double> star_row =
        centroids.Row(static_cast<size_t>(z_star));
    for (int32_t c : candidates) {
      if (c == z_star ||
          !IsFarther(centroids.Row(static_cast<size_t>(c)), star_row,
                     node.box_min, node.box_max)) {
        pruned.push_back(c);
      }
    }
    candidates = std::move(pruned);
  }

  if (candidates.size() == 1) {
    // The whole subtree belongs to the sole surviving candidate.
    const size_t c = static_cast<size_t>(candidates[0]);
    std::span<double> sum = acc.sums.Row(c);
    for (size_t d = 0; d < dims; ++d) sum[d] += node.sum[d];
    acc.counts[c] += static_cast<int64_t>(node.count());
    return;
  }

  if (node.is_leaf()) {
    for (size_t i = node.begin; i < node.end; ++i) {
      size_t point_id = tree.point_indices()[i];
      std::span<const double> point = data.Row(point_id);
      double best = std::numeric_limits<double>::max();
      int32_t best_c = candidates[0];
      for (int32_t c : candidates) {
        double dist =
            SquaredDistance(point, centroids.Row(static_cast<size_t>(c)));
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      std::span<double> sum = acc.sums.Row(static_cast<size_t>(best_c));
      for (size_t d = 0; d < dims; ++d) sum[d] += point[d];
      ++acc.counts[static_cast<size_t>(best_c)];
    }
    return;
  }

  Filter(tree, centroids, static_cast<size_t>(node.left), candidates, acc);
  Filter(tree, centroids, static_cast<size_t>(node.right),
         std::move(candidates), acc);
}

}  // namespace

common::StatusOr<Clustering> RunFilteringKMeans(const Matrix& data,
                                                const KMeansOptions& options,
                                                size_t leaf_size) {
  if (data.rows() == 0 || data.cols() == 0) {
    return common::InvalidArgumentError(
        "filtering k-means requires non-empty data");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > data.rows()) {
    return common::InvalidArgumentError("k must be in [1, number of points]");
  }
  if (options.max_iterations < 1) {
    return common::InvalidArgumentError("max_iterations must be >= 1");
  }

  common::Rng rng(options.seed);
  Clustering result;
  result.k = options.k;
  result.centroids = InitializeCentroids(data, options.k, options.init, rng);

  const KdTree tree(data, leaf_size);
  const size_t k = static_cast<size_t>(options.k);
  const size_t dims = data.cols();
  std::vector<int32_t> all_candidates(k);
  for (size_t c = 0; c < k; ++c) all_candidates[c] = static_cast<int32_t>(c);

  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    Accumulators acc(k, dims);
    Filter(tree, result.centroids, tree.root(), all_candidates, acc);

    Matrix new_centroids(k, dims);
    bool any_empty = false;
    for (size_t c = 0; c < k; ++c) {
      if (acc.counts[c] == 0) {
        any_empty = true;
        // Keep the previous centroid; fixed below via a full pass.
        std::span<const double> old = result.centroids.Row(c);
        std::span<double> fresh = new_centroids.Row(c);
        std::copy(old.begin(), old.end(), fresh.begin());
        continue;
      }
      std::span<const double> sum = acc.sums.Row(c);
      std::span<double> centroid = new_centroids.Row(c);
      for (size_t d = 0; d < dims; ++d) {
        centroid[d] = sum[d] / static_cast<double>(acc.counts[c]);
      }
    }
    if (any_empty) {
      // Rare: fall back to the exact re-seeding used by plain Lloyd.
      std::vector<int32_t> assignments;
      AssignToCentroids(data, new_centroids, assignments);
      RecomputeCentroids(data, assignments, new_centroids);
    }

    result.iterations = iter + 1;
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      movement += SquaredDistance(result.centroids.Row(c),
                                  new_centroids.Row(c));
    }
    result.centroids = std::move(new_centroids);
    if (movement == 0.0) {
      result.converged = true;
      break;
    }
  }

  result.sse = AssignToCentroids(data, result.centroids, result.assignments);
  return result;
}

}  // namespace cluster
}  // namespace adahealth
