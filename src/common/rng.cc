#include "common/rng.h"

#include <cmath>

namespace adahealth {
namespace common {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
  // xoshiro must not start from the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  ADA_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ADA_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  ADA_CHECK_LT(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform on two uniforms, avoiding log(0).
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::Poisson(double lambda) {
  ADA_CHECK_GT(lambda, 0.0);
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // workload-generation use cases in this project.
    double value = std::round(Normal(lambda, std::sqrt(lambda)));
    return value < 0.0 ? 0 : static_cast<int64_t>(value);
  }
  const double limit = std::exp(-lambda);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= UniformDouble();
  } while (product > limit);
  return count;
}

double Rng::Gamma(double shape, double scale) {
  ADA_CHECK_GT(shape, 0.0);
  ADA_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia–Tsang section 4.4).
    double u = 0.0;
    do {
      u = UniformDouble();
    } while (u <= 0.0);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  ADA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ADA_CHECK_GE(w, 0.0);
    total += w;
  }
  ADA_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // Floating-point slack on the last bucket.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  ADA_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index array: O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformUint64(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace common
}  // namespace adahealth
