// Death/behaviour tests for the ADA_CHECK invariant macros: passing
// checks are silent no-ops, failing checks abort with a diagnostic that
// names the file, the condition, and (for ADA_CHECK_MSG) the formatted
// message.
#include "common/check.h"

#include <gtest/gtest.h>
#include "common/status.h"

namespace adahealth {
namespace {

using common::InvalidArgumentError;
using common::OkStatus;
using common::StatusOr;

TEST(CheckTest, PassingChecksAreSilent) {
  ADA_CHECK(true);
  ADA_CHECK(1 + 1 == 2);
  ADA_CHECK_MSG(true, "never printed %d", 1);
  ADA_CHECK_EQ(4, 4);
  ADA_CHECK_NE(4, 5);
  ADA_CHECK_LT(4, 5);
  ADA_CHECK_LE(4, 4);
  ADA_CHECK_GT(5, 4);
  ADA_CHECK_GE(5, 5);
  ADA_CHECK_OK(OkStatus());
  SUCCEED();
}

TEST(CheckDeathTest, FailedCheckPrintsCondition) {
  EXPECT_DEATH(ADA_CHECK(2 + 2 == 5), "ADA_CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailedCheckNamesTheFile) {
  EXPECT_DEATH(ADA_CHECK(false), "check_test");
}

TEST(CheckDeathTest, CheckMsgFormatsPrintfStyleArguments) {
  int patient = 42;
  EXPECT_DEATH(
      ADA_CHECK_MSG(patient < 0, "patient %d out of range (max %s)",
                    patient, "none"),
      "ADA_CHECK failed: patient < 0: patient 42 out of range \\(max none\\)");
}

TEST(CheckDeathTest, ComparisonMacrosPrintTheComparison) {
  EXPECT_DEATH(ADA_CHECK_EQ(1, 2), "ADA_CHECK failed: \\(1\\) == \\(2\\)");
  EXPECT_DEATH(ADA_CHECK_GE(1, 2), "ADA_CHECK failed: \\(1\\) >= \\(2\\)");
}

TEST(CheckDeathTest, CheckOkDiesOnFailedStatus) {
  EXPECT_DEATH(ADA_CHECK_OK(InvalidArgumentError("bad k")),
               "ADA_CHECK failed");
}

TEST(CheckDeathTest, CheckOkDiesOnFailedStatusOr) {
  StatusOr<int> bad(InvalidArgumentError("no value"));
  EXPECT_DEATH(ADA_CHECK_OK(bad), "ADA_CHECK failed");
}

TEST(CheckDeathTest, StatusOrValueOnErrorDiesWithStatusMessage) {
  StatusOr<int> bad(InvalidArgumentError("k must be >= 2"));
  EXPECT_DEATH(static_cast<void>(bad.value()),
               "StatusOr::value\\(\\) called on error status: "
               "INVALID_ARGUMENT: k must be >= 2");
}

TEST(CheckDeathTest, SideEffectsInConditionHappenExactlyOnce) {
  // The macro must evaluate its condition exactly once (it is used with
  // statements like ADA_CHECK(remap[id] < 0) where double evaluation
  // would hide bugs).
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  ADA_CHECK(count());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace adahealth
