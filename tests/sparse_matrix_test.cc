#include "transform/sparse_matrix.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>
#include "common/rng.h"

namespace adahealth {
namespace transform {
namespace {

CsrMatrix MakeMatrix() {
  CsrMatrix::Builder builder(4);
  EXPECT_TRUE(builder.AddRow({{0, 1.0}, {2, 2.0}}).ok());
  EXPECT_TRUE(builder.AddRow({}).ok());
  EXPECT_TRUE(builder.AddRow({{1, 3.0}, {2, 4.0}, {3, 5.0}}).ok());
  return std::move(builder).Build();
}

/// Random dense matrix with roughly `density` non-zeros; a negative
/// seed row index can be forced all-zero by the caller afterwards.
Matrix RandomSparseDense(common::Rng& rng, size_t rows, size_t cols,
                         double density) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.UniformDouble() < density) m.At(r, c) = rng.Normal(0.0, 2.0);
    }
  }
  return m;
}

TEST(CsrMatrixTest, Shape) {
  CsrMatrix m = MakeMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.num_nonzeros(), 5u);
}

TEST(CsrMatrixTest, DefaultConstructedIsEmpty) {
  CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.num_nonzeros(), 0u);
  EXPECT_DOUBLE_EQ(m.Density(), 0.0);
}

TEST(CsrMatrixTest, RowAccess) {
  CsrMatrix m = MakeMatrix();
  auto row0 = m.Row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].column, 0u);
  EXPECT_DOUBLE_EQ(row0[1].value, 2.0);
  EXPECT_EQ(m.Row(1).size(), 0u);
}

TEST(CsrMatrixTest, BuilderDropsExplicitZeros) {
  CsrMatrix::Builder builder(2);
  ASSERT_TRUE(builder.AddRow({{0, 0.0}, {1, 1.0}}).ok());
  CsrMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.num_nonzeros(), 1u);
}

TEST(CsrMatrixTest, AddRowRejectsOutOfRangeColumn) {
  CsrMatrix::Builder builder(3);
  common::Status status = builder.AddRow({{0, 1.0}, {3, 2.0}});
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(CsrMatrixTest, AddRowRejectsNonIncreasingColumns) {
  CsrMatrix::Builder builder(4);
  common::Status unsorted = builder.AddRow({{2, 1.0}, {1, 2.0}});
  EXPECT_EQ(unsorted.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(unsorted.message().find("strictly increasing"),
            std::string::npos);
  common::Status duplicate = builder.AddRow({{1, 1.0}, {1, 2.0}});
  EXPECT_EQ(duplicate.code(), common::StatusCode::kInvalidArgument);
}

TEST(CsrMatrixTest, AddRowRejectsNaN) {
  CsrMatrix::Builder builder(2);
  common::Status status =
      builder.AddRow({{0, std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("NaN"), std::string::npos);
}

TEST(CsrMatrixTest, RejectedRowLeavesBuilderUsable) {
  // A failed AddRow must append nothing — no entries, no row — so the
  // caller can fix the row and continue building.
  CsrMatrix::Builder builder(3);
  ASSERT_TRUE(builder.AddRow({{0, 1.0}}).ok());
  EXPECT_FALSE(builder.AddRow({{2, 5.0}, {1, 6.0}}).ok());
  ASSERT_TRUE(builder.AddRow({{1, 6.0}, {2, 5.0}}).ok());
  CsrMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.num_nonzeros(), 3u);
  EXPECT_EQ(m.Row(1)[0].column, 1u);
}

TEST(CsrMatrixTest, InfinityIsAcceptedOnlyNaNIsRejected) {
  // Infinities propagate through distance arithmetic deterministically;
  // only NaN (which poisons comparisons) is rejected.
  CsrMatrix::Builder builder(2);
  EXPECT_TRUE(
      builder.AddRow({{0, std::numeric_limits<double>::infinity()}}).ok());
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  CsrMatrix m = MakeMatrix();
  Matrix dense = m.ToDense();
  EXPECT_DOUBLE_EQ(dense.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(dense.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(dense.At(2, 3), 5.0);
  CsrMatrix back = CsrMatrix::FromDense(dense);
  EXPECT_EQ(back.num_nonzeros(), m.num_nonzeros());
  for (size_t r = 0; r < m.rows(); ++r) {
    auto a = m.Row(r);
    auto b = back.Row(r);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CsrMatrixTest, FromDenseDropsNegativeZero) {
  Matrix dense(1, 3);
  dense.At(0, 0) = -0.0;
  dense.At(0, 2) = 4.0;
  CsrMatrix m = CsrMatrix::FromDense(dense);
  EXPECT_EQ(m.num_nonzeros(), 1u);
  // The densified round trip normalizes -0.0 to +0.0 (they compare
  // equal; only the bit pattern differs).
  EXPECT_FALSE(std::signbit(m.ToDense().At(0, 0)));
}

TEST(CsrMatrixDeathTest, FromDenseChecksOnNaN) {
  Matrix dense(2, 2);
  dense.At(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(CsrMatrix::FromDense(dense), "ADA_CHECK failed");
}

TEST(CsrMatrixTest, Density) {
  CsrMatrix m = MakeMatrix();
  EXPECT_DOUBLE_EQ(m.Density(), 5.0 / 12.0);
}

TEST(SparseOpsTest, SparseDotMergesColumns) {
  CsrMatrix m = MakeMatrix();
  // Row 0 = [1,0,2,0], row 2 = [0,3,4,5] -> dot = 8.
  EXPECT_DOUBLE_EQ(SparseDot(m.Row(0), m.Row(2)), 8.0);
  EXPECT_DOUBLE_EQ(SparseDot(m.Row(0), m.Row(1)), 0.0);
}

TEST(SparseOpsTest, CosineMatchesDense) {
  CsrMatrix m = MakeMatrix();
  Matrix dense = m.ToDense();
  EXPECT_NEAR(SparseCosineSimilarity(m.Row(0), m.Row(2)),
              CosineSimilarity(dense.Row(0), dense.Row(2)), 1e-12);
  EXPECT_DOUBLE_EQ(SparseCosineSimilarity(m.Row(0), m.Row(1)), 0.0);
}

// --- Clustering batch kernels -------------------------------------------

TEST(SparseKernelTest, RowSquaredNormsMatchDenseArithmetic) {
  common::Rng rng(71);
  Matrix dense = RandomSparseDense(rng, 20, 15, 0.3);
  CsrMatrix m = CsrMatrix::FromDense(dense);
  std::vector<double> norms = RowSquaredNorms(m);
  ASSERT_EQ(norms.size(), m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    // Same v*v terms folded sequentially; the dense zeros contribute
    // exact +0.0 terms, so the sparse sum is bit-identical.
    double expected = 0.0;
    for (double v : dense.Row(r)) expected += v * v;
    EXPECT_EQ(norms[r], expected) << "row " << r;
  }
}

TEST(SparseKernelTest, SparseSquaredDistanceBitIdenticalToDense) {
  common::Rng rng(73);
  for (double density : {0.0, 0.05, 0.3, 0.7, 1.0}) {
    Matrix dense = RandomSparseDense(rng, 12, 33, density);
    CsrMatrix m = CsrMatrix::FromDense(dense);
    std::vector<double> target(33);
    for (double& v : target) v = rng.Normal(0.0, 3.0);
    for (size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(SparseSquaredDistance(m.Row(r), target),
                SquaredDistance(dense.Row(r), target))
          << "density " << density << " row " << r;
    }
  }
}

TEST(SparseKernelTest, SparseSquaredDistanceToAllWithinFusedEnvelope) {
  common::Rng rng(79);
  const size_t dims = 48;
  const size_t k = 7;
  Matrix dense = RandomSparseDense(rng, 10, dims, 0.2);
  CsrMatrix m = CsrMatrix::FromDense(dense);
  Matrix centroids(k, dims);
  for (size_t c = 0; c < k; ++c) {
    for (size_t d = 0; d < dims; ++d) {
      centroids.At(c, d) = rng.Normal(0.0, 2.0);
    }
  }
  Matrix centroids_t(dims, k);
  std::vector<double> centroid_norms(k);
  for (size_t c = 0; c < k; ++c) {
    centroid_norms[c] = Dot(centroids.Row(c), centroids.Row(c));
    for (size_t d = 0; d < dims; ++d) {
      centroids_t.At(d, c) = centroids.At(c, d);
    }
  }
  std::vector<double> norms = RowSquaredNorms(m);
  std::vector<double> fused(k);
  const double rel = FusedRelativeError(dims);
  for (size_t r = 0; r < m.rows(); ++r) {
    SparseSquaredDistanceToAll(m.Row(r), norms[r], centroids_t,
                               centroid_norms, fused);
    for (size_t c = 0; c < k; ++c) {
      const double exact = SquaredDistance(dense.Row(r), centroids.Row(c));
      const double margin = rel * (norms[r] + centroid_norms[c]);
      EXPECT_NEAR(fused[c], exact, margin)
          << "row " << r << " centroid " << c;
    }
  }
}

TEST(SparseKernelTest, AccumulateRowBitIdenticalToDenseSum) {
  common::Rng rng(83);
  Matrix dense = RandomSparseDense(rng, 8, 21, 0.4);
  CsrMatrix m = CsrMatrix::FromDense(dense);
  std::vector<double> sparse_sum(21, 0.0);
  std::vector<double> dense_sum(21, 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    AccumulateRow(m.Row(r), sparse_sum);
    std::span<const double> row = dense.Row(r);
    for (size_t d = 0; d < 21; ++d) dense_sum[d] += row[d];
  }
  for (size_t d = 0; d < 21; ++d) {
    EXPECT_EQ(sparse_sum[d], dense_sum[d]) << "dim " << d;
  }
}

TEST(SparseKernelTest, DensifyRowScattersAndZeroFills) {
  CsrMatrix m = MakeMatrix();
  std::vector<double> out(4, 99.0);
  DensifyRow(m.Row(0), out);
  EXPECT_EQ(out, (std::vector<double>{1.0, 0.0, 2.0, 0.0}));
  DensifyRow(m.Row(1), out);
  EXPECT_EQ(out, (std::vector<double>{0.0, 0.0, 0.0, 0.0}));
}

}  // namespace
}  // namespace transform
}  // namespace adahealth
