file(REMOVE_RECURSE
  "CMakeFiles/feedback_sim_test.dir/feedback_sim_test.cc.o"
  "CMakeFiles/feedback_sim_test.dir/feedback_sim_test.cc.o.d"
  "feedback_sim_test"
  "feedback_sim_test.pdb"
  "feedback_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
