// Frequency-ranked feature (exam-type) selection — the vertical
// dimension of the paper's partial-mining strategy (§IV-B: incremental
// runs consider the top 20%, 40% and 100% of exam types by frequency,
// "chosen in decreasing order of frequency within the original raw
// data").
#ifndef ADAHEALTH_TRANSFORM_FEATURE_SELECT_H_
#define ADAHEALTH_TRANSFORM_FEATURE_SELECT_H_

#include <vector>

#include "common/status.h"
#include "dataset/exam_log.h"

namespace adahealth {
namespace transform {

/// Exam types of `log` sorted by descending record frequency (ties
/// broken by ascending id, so the order is deterministic).
std::vector<dataset::ExamTypeId> RankExamsByFrequency(
    const dataset::ExamLog& log);

/// Keep-mask over exam types selecting the `count` most frequent ones.
/// Requires count <= num_exam_types.
std::vector<bool> TopExamsMask(const dataset::ExamLog& log, size_t count);

/// Keep-mask selecting the top `fraction` (in [0, 1]) of exam types by
/// frequency; the count is rounded to the nearest integer.
std::vector<bool> TopFractionExamsMask(const dataset::ExamLog& log,
                                       double fraction);

/// Fraction of records of `log` whose exam type is kept by `mask` —
/// the paper's "row data" coverage (20% of types -> ~70% of rows).
double RecordCoverage(const dataset::ExamLog& log,
                      const std::vector<bool>& mask);

/// One step of the incremental vertical schedule.
struct VerticalSubset {
  /// Fraction of exam types included, in (0, 1].
  double exam_fraction = 0.0;
  /// Fraction of the original records covered.
  double record_coverage = 0.0;
  /// Keep-mask over the original exam-type ids.
  std::vector<bool> mask;
};

/// Builds the incremental schedule of vertical subsets for the given
/// exam-type fractions (each in (0, 1]; e.g. {0.2, 0.4, 1.0} as in the
/// paper). Fails on out-of-range fractions.
[[nodiscard]] common::StatusOr<std::vector<VerticalSubset>> BuildVerticalSchedule(
    const dataset::ExamLog& log, const std::vector<double>& fractions);

}  // namespace transform
}  // namespace adahealth

#endif  // ADAHEALTH_TRANSFORM_FEATURE_SELECT_H_
