// ada_client — command-line client for the ADA-HEALTH analysis
// service (ada_server).
//
// Usage:
//   ada_client --port N <command> [options]
//
// Commands:
//   ping                              liveness check
//   health                            role/uptime/load snapshot (JSON)
//   stats                             scheduler + cache counters (JSON)
//   submit [dataset] [job options]    submit one analysis job
//   ingest --cohort NAME [--file F] [--expect-generation N]
//                                     append an NDJSON record batch
//   status --job N                    job state snapshot
//   result --job N [--wait-ms D]      await + fetch the job result
//   cancel --job N                    cancel a queued job
//   shutdown                          stop the server
//
// --router N is an alias for --port N (the router speaks the same
// protocol). --connect-retries N retries a refused connect with
// exponential backoff — for scripts racing a server that is still
// binding its port, or a router mid-failover.
//
// Dataset options (submit): --csv FILE for a records CSV, a
// synthetic cohort via --patients/--exam-types/--profiles/--seed
// (test-scale defaults), or --cohort NAME to analyze a streaming
// cohort previously grown with `ingest`. The ingest command reads
// NDJSON records — one {"patient":N,"exam_type":"name","day":N}
// object per line — from --file or stdin and appends them as one
// atomic batch; --expect-generation N makes the append conditional on
// the cohort still being at generation N (the replay guard for
// retrying a timed-out batch). Job options: --dataset-id, --priority,
// --deadline-ms, --cv-folds, --candidate-ks a,b,c, --fast (small
// session options for smoke tests), --wait (block for the result),
// --report (print the full Markdown report).
//
// Exit codes: 0 success/job done, 2 usage error, 3 connect failure,
// 4 server-side error response, 5 job failed, 6 job expired,
// 7 job cancelled.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/string_util.h"
#include "service/client.h"
#include "service/protocol.h"

namespace {

using adahealth::common::Json;
using adahealth::common::Status;
using adahealth::common::StatusOr;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitConnect = 3;
constexpr int kExitServerError = 4;
constexpr int kExitJobFailed = 5;
constexpr int kExitJobExpired = 6;
constexpr int kExitJobCancelled = 7;

void PrintUsage() {
  std::printf(
      "usage: ada_client --port N [--connect-retries N] <command>"
      " [options]\n"
      "commands: ping | health | stats | submit | ingest | status |"
      " result | cancel | shutdown\n"
      "--router N is an alias for --port N.\n"
      "ping:    [--count N]  (N > 1 pipelines N pings on one"
      " connection)\n"
      "submit:  [--csv FILE | --cohort NAME | --patients N"
      " [--exam-types N] [--profiles N] [--seed N]]\n"
      "         [--dataset-id S] [--priority N] [--deadline-ms D]\n"
      "         [--cv-folds N] [--candidate-ks a,b,c] [--fast]\n"
      "         [--wait [--wait-ms D]] [--report]\n"
      "ingest:  --cohort NAME [--file F] [--expect-generation N]\n"
      "         (NDJSON records, one"
      " {\"patient\":N,\"exam_type\":S,\"day\":N} per line; stdin"
      " when --file is omitted; --expect-generation commits only if\n"
      "         the cohort is still at generation N — safe retries)\n"
      "status/result/cancel: --job N  (result also takes --wait-ms D,"
      " --report)\n");
}

/// Maps a terminal job state name to the CLI exit code.
int ExitCodeForState(const std::string& state) {
  if (state == "done") return kExitOk;
  if (state == "expired") return kExitJobExpired;
  if (state == "cancelled") return kExitJobCancelled;
  if (state == "failed") return kExitJobFailed;
  return kExitOk;  // queued / running snapshots are not failures.
}

/// Prints the snapshot fields every job-addressed command shares.
void PrintSnapshot(const Json& response, bool with_report) {
  auto string_field = [&](const char* key) -> std::string {
    const Json* field = response.Find(key);
    return field != nullptr && field->is_string() ? field->AsString()
                                                  : std::string();
  };
  const Json* id = response.Find("job_id");
  std::printf("job_id: %lld\n",
              id != nullptr && id->is_int()
                  ? static_cast<long long>(id->AsInt())
                  : -1LL);
  std::printf("state: %s\n", string_field("state").c_str());
  const Json* cache_hit = response.Find("cache_hit");
  if (cache_hit != nullptr && cache_hit->is_bool()) {
    std::printf("cache_hit: %s\n", cache_hit->AsBool() ? "true" : "false");
  }
  std::string fingerprint = string_field("fingerprint");
  if (!fingerprint.empty()) {
    std::printf("fingerprint: %s\n", fingerprint.c_str());
  }
  std::string status_message = string_field("status_message");
  if (!status_message.empty()) {
    std::printf("status: %s: %s\n", string_field("status_code").c_str(),
                status_message.c_str());
  }
  std::string summary = string_field("summary");
  if (!summary.empty()) std::printf("%s", summary.c_str());
  if (with_report) {
    std::string report = string_field("report");
    if (!report.empty()) std::printf("\n%s", report.c_str());
  }
}

struct Flags {
  uint16_t port = 0;
  std::string command;
  std::string csv_path;
  std::string cohort;
  std::string file_path;  // ingest: NDJSON records; empty = stdin.
  int64_t expect_generation = -1;  // ingest: replay guard; -1 = off.
  int64_t patients = 0;  // 0 = server default.
  int64_t exam_types = 0;
  int64_t profiles = 0;
  int64_t seed = -1;
  std::string dataset_id;
  int64_t priority = 0;
  double deadline_ms = 0.0;
  int64_t cv_folds = 0;
  std::string candidate_ks;
  bool fast = false;
  bool wait = false;
  double wait_ms = 0.0;
  bool report = false;
  int64_t job_id = -1;
  int64_t count = 1;  // ping: >1 pipelines that many pings.
  int64_t connect_retries = 0;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_int = [&](int64_t* out) {
      const char* text = next();
      if (text == nullptr) return false;
      auto parsed = adahealth::common::ParseInt64(text);
      if (!parsed.ok()) return false;
      *out = parsed.value();
      return true;
    };
    auto next_double = [&](double* out) {
      const char* text = next();
      if (text == nullptr) return false;
      auto parsed = adahealth::common::ParseDouble(text);
      if (!parsed.ok()) return false;
      *out = parsed.value();
      return true;
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      std::exit(kExitOk);
    } else if (std::strcmp(arg, "--port") == 0 ||
               std::strcmp(arg, "--router") == 0) {
      int64_t value = 0;
      if (!next_int(&value) || value < 1 || value > 65535) return false;
      flags->port = static_cast<uint16_t>(value);
    } else if (std::strcmp(arg, "--connect-retries") == 0) {
      if (!next_int(&flags->connect_retries) || flags->connect_retries < 0) {
        return false;
      }
    } else if (std::strcmp(arg, "--csv") == 0) {
      const char* text = next();
      if (text == nullptr) return false;
      flags->csv_path = text;
    } else if (std::strcmp(arg, "--cohort") == 0) {
      const char* text = next();
      if (text == nullptr) return false;
      flags->cohort = text;
    } else if (std::strcmp(arg, "--file") == 0) {
      const char* text = next();
      if (text == nullptr) return false;
      flags->file_path = text;
    } else if (std::strcmp(arg, "--expect-generation") == 0) {
      if (!next_int(&flags->expect_generation) ||
          flags->expect_generation < 0) {
        return false;
      }
    } else if (std::strcmp(arg, "--patients") == 0) {
      if (!next_int(&flags->patients)) return false;
    } else if (std::strcmp(arg, "--exam-types") == 0) {
      if (!next_int(&flags->exam_types)) return false;
    } else if (std::strcmp(arg, "--profiles") == 0) {
      if (!next_int(&flags->profiles)) return false;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!next_int(&flags->seed)) return false;
    } else if (std::strcmp(arg, "--dataset-id") == 0) {
      const char* text = next();
      if (text == nullptr) return false;
      flags->dataset_id = text;
    } else if (std::strcmp(arg, "--priority") == 0) {
      if (!next_int(&flags->priority)) return false;
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      if (!next_double(&flags->deadline_ms)) return false;
    } else if (std::strcmp(arg, "--cv-folds") == 0) {
      if (!next_int(&flags->cv_folds)) return false;
    } else if (std::strcmp(arg, "--candidate-ks") == 0) {
      const char* text = next();
      if (text == nullptr) return false;
      flags->candidate_ks = text;
    } else if (std::strcmp(arg, "--fast") == 0) {
      flags->fast = true;
    } else if (std::strcmp(arg, "--wait") == 0) {
      flags->wait = true;
    } else if (std::strcmp(arg, "--wait-ms") == 0) {
      if (!next_double(&flags->wait_ms)) return false;
    } else if (std::strcmp(arg, "--report") == 0) {
      flags->report = true;
    } else if (std::strcmp(arg, "--job") == 0) {
      if (!next_int(&flags->job_id)) return false;
    } else if (std::strcmp(arg, "--count") == 0) {
      if (!next_int(&flags->count) || flags->count < 1) return false;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "ada_client: unknown flag '%s'\n", arg);
      return false;
    } else if (flags->command.empty()) {
      flags->command = arg;
    } else {
      std::fprintf(stderr, "ada_client: extra argument '%s'\n", arg);
      return false;
    }
  }
  return !flags->command.empty() && flags->port != 0;
}

/// Builds the submit request body from the parsed flags.
StatusOr<Json::Object> BuildSubmitBody(const Flags& flags) {
  Json::Object body;
  body["verb"] = "submit";
  if (!flags.cohort.empty() && !flags.csv_path.empty()) {
    return adahealth::common::InvalidArgumentError(
        "submit takes --cohort or --csv, not both");
  }
  if (!flags.cohort.empty()) {
    body["cohort"] = flags.cohort;
  } else if (!flags.csv_path.empty()) {
    std::ifstream file(flags.csv_path);
    if (!file) {
      return adahealth::common::NotFoundError("cannot open " +
                                              flags.csv_path);
    }
    std::ostringstream content;
    content << file.rdbuf();
    body["csv"] = content.str();
  } else {
    Json::Object synthetic;
    if (flags.patients > 0) synthetic["patients"] = flags.patients;
    if (flags.exam_types > 0) synthetic["exam_types"] = flags.exam_types;
    if (flags.profiles > 0) synthetic["profiles"] = flags.profiles;
    if (flags.seed >= 0) synthetic["seed"] = flags.seed;
    body["synthetic"] = Json(std::move(synthetic));
  }
  if (!flags.dataset_id.empty()) body["dataset_id"] = flags.dataset_id;
  if (flags.priority != 0) body["priority"] = flags.priority;
  if (flags.deadline_ms > 0) body["deadline_millis"] = flags.deadline_ms;
  Json::Object options;
  if (flags.fast) {
    // Small, deterministic session options for smoke tests: mirrors
    // the unit tests' fast-session configuration.
    options["sample_fraction"] = 0.4;
    options["candidate_ks"] = Json(Json::Array{Json(3), Json(4), Json(6)});
    options["cv_folds"] = 4;
    options["restarts"] = 1;
  }
  if (flags.cv_folds > 0) options["cv_folds"] = flags.cv_folds;
  if (!flags.candidate_ks.empty()) {
    Json::Array ks;
    for (const std::string& part :
         adahealth::common::Split(flags.candidate_ks, ',')) {
      auto k = adahealth::common::ParseInt64(
          adahealth::common::Trim(part));
      if (!k.ok()) {
        return adahealth::common::InvalidArgumentError(
            "--candidate-ks expects a comma-separated integer list");
      }
      ks.emplace_back(k.value());
    }
    options["candidate_ks"] = Json(std::move(ks));
  }
  if (!options.empty()) body["options"] = Json(std::move(options));
  return body;
}

/// Reads NDJSON records (one JSON object per line, blank lines
/// skipped) from `in` and builds the ingest request body.
StatusOr<Json::Object> BuildIngestBody(const Flags& flags,
                                       std::istream& in) {
  Json::Array records;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = adahealth::common::Trim(line);
    if (trimmed.empty()) continue;
    auto parsed = Json::Parse(trimmed);
    if (!parsed.ok() || !parsed.value().is_object()) {
      return adahealth::common::InvalidArgumentError(
          adahealth::common::StrFormat(
              "line %lld is not a JSON record object",
              static_cast<long long>(line_number)));
    }
    records.push_back(std::move(parsed).value());
  }
  if (records.empty()) {
    return adahealth::common::InvalidArgumentError(
        "no records to ingest");
  }
  Json::Object body;
  body["verb"] = "ingest";
  body["cohort"] = flags.cohort;
  body["records"] = Json(std::move(records));
  if (flags.expect_generation >= 0) {
    // Replay guard: commit only if the cohort is still at exactly this
    // generation, so a retried batch cannot double-apply (the server
    // rejects it with FAILED_PRECONDITION instead).
    body["expected_generation"] = flags.expect_generation;
  }
  return body;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adahealth;

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage();
    return kExitUsage;
  }

  service::ConnectOptions connect_options;
  connect_options.retries = static_cast<int>(flags.connect_retries);
  auto client = service::AnalysisClient::Connect(flags.port, connect_options);
  if (!client.ok()) {
    std::fprintf(stderr, "ada_client: connect failed: %s\n",
                 client.status().ToString().c_str());
    return kExitConnect;
  }

  auto call = [&](const Json::Object& request) -> StatusOr<Json> {
    return client.value().Call(request);
  };

  if (flags.command == "ping" && flags.count > 1) {
    // Pipelined liveness check: all requests go out in one batch write
    // and the responses come back in order on the same connection.
    std::vector<Json::Object> requests;
    Json::Object ping;
    ping["verb"] = "ping";
    requests.assign(static_cast<size_t>(flags.count), ping);
    auto responses = client.value().CallPipelined(requests);
    int64_t answered = 0;
    for (const auto& response : responses) {
      if (response.ok()) ++answered;
    }
    std::printf("pinged %lld/%lld\n", static_cast<long long>(answered),
                static_cast<long long>(flags.count));
    return answered == flags.count ? kExitOk : kExitServerError;
  }

  if (flags.command == "ping" || flags.command == "health" ||
      flags.command == "stats" || flags.command == "shutdown") {
    auto response = client.value().Call(flags.command);
    if (!response.ok()) {
      std::fprintf(stderr, "ada_client: %s\n",
                   response.status().ToString().c_str());
      return kExitServerError;
    }
    std::printf("%s\n", response.value().Pretty().c_str());
    return kExitOk;
  }

  if (flags.command == "status" || flags.command == "result" ||
      flags.command == "cancel") {
    if (flags.job_id < 0) {
      std::fprintf(stderr, "ada_client: %s requires --job N\n",
                   flags.command.c_str());
      return kExitUsage;
    }
    Json::Object request;
    request["verb"] = flags.command;
    request["job_id"] = flags.job_id;
    if (flags.command == "result" && flags.wait_ms > 0) {
      request["wait_millis"] = flags.wait_ms;
    }
    auto response = call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "ada_client: %s\n",
                   response.status().ToString().c_str());
      return kExitServerError;
    }
    if (flags.command == "cancel") {
      std::printf("cancelled job %lld\n",
                  static_cast<long long>(flags.job_id));
      return kExitOk;
    }
    PrintSnapshot(response.value(), flags.report);
    const Json* state = response.value().Find("state");
    // Only a terminal `result` maps states to exit codes; `status` is a
    // peek and always succeeds.
    if (flags.command == "result" && state != nullptr &&
        state->is_string()) {
      return ExitCodeForState(state->AsString());
    }
    return kExitOk;
  }

  if (flags.command == "ingest") {
    if (flags.cohort.empty()) {
      std::fprintf(stderr, "ada_client: ingest requires --cohort NAME\n");
      return kExitUsage;
    }
    StatusOr<Json::Object> body =
        adahealth::common::InvalidArgumentError("no input");
    if (!flags.file_path.empty()) {
      std::ifstream file(flags.file_path);
      if (!file) {
        std::fprintf(stderr, "ada_client: cannot open %s\n",
                     flags.file_path.c_str());
        return kExitUsage;
      }
      body = BuildIngestBody(flags, file);
    } else {
      body = BuildIngestBody(flags, std::cin);
    }
    if (!body.ok()) {
      std::fprintf(stderr, "ada_client: %s\n",
                   body.status().ToString().c_str());
      return kExitUsage;
    }
    auto response = call(body.value());
    if (!response.ok()) {
      std::fprintf(stderr, "ada_client: ingest failed: %s\n",
                   response.status().ToString().c_str());
      return kExitServerError;
    }
    auto int_field = [&](const char* key) -> long long {
      const Json* field = response.value().Find(key);
      return field != nullptr && field->is_int()
                 ? static_cast<long long>(field->AsInt())
                 : -1LL;
    };
    std::printf("cohort: %s\ngeneration: %lld\nbatch_records: %lld\n"
                "total_records: %lld\npatients: %lld\n",
                flags.cohort.c_str(), int_field("generation"),
                int_field("batch_records"), int_field("total_records"),
                int_field("patients"));
    return kExitOk;
  }

  if (flags.command != "submit") {
    std::fprintf(stderr, "ada_client: unknown command '%s'\n",
                 flags.command.c_str());
    PrintUsage();
    return kExitUsage;
  }

  auto body = BuildSubmitBody(flags);
  if (!body.ok()) {
    std::fprintf(stderr, "ada_client: %s\n",
                 body.status().ToString().c_str());
    return kExitUsage;
  }
  auto submitted = call(body.value());
  if (!submitted.ok()) {
    std::fprintf(stderr, "ada_client: submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return kExitServerError;
  }
  const Json* id = submitted.value().Find("job_id");
  if (id == nullptr || !id->is_int()) {
    std::fprintf(stderr, "ada_client: malformed submit response\n");
    return kExitServerError;
  }
  if (!flags.wait) {
    PrintSnapshot(submitted.value(), /*with_report=*/false);
    return kExitOk;
  }

  Json::Object result_request;
  result_request["verb"] = "result";
  result_request["job_id"] = id->AsInt();
  if (flags.wait_ms > 0) result_request["wait_millis"] = flags.wait_ms;
  auto result = call(result_request);
  if (!result.ok()) {
    std::fprintf(stderr, "ada_client: result failed: %s\n",
                 result.status().ToString().c_str());
    return kExitServerError;
  }
  PrintSnapshot(result.value(), flags.report);
  const Json* state = result.value().Find("state");
  return state != nullptr && state->is_string()
             ? ExitCodeForState(state->AsString())
             : kExitServerError;
}
