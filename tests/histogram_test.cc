#include "stats/histogram.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace adahealth {
namespace stats {
namespace {

TEST(HistogramTest, BucketsValuesCorrectly) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.Add(0.5);   // Bucket 0.
  histogram.Add(3.9);   // Bucket 1.
  histogram.Add(9.9);   // Bucket 4.
  EXPECT_EQ(histogram.bucket_count(0), 1);
  EXPECT_EQ(histogram.bucket_count(1), 1);
  EXPECT_EQ(histogram.bucket_count(4), 1);
  EXPECT_EQ(histogram.total(), 3);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram histogram(0.0, 10.0, 2);
  histogram.Add(-5.0);
  histogram.Add(100.0);
  EXPECT_EQ(histogram.bucket_count(0), 1);
  EXPECT_EQ(histogram.bucket_count(1), 1);
}

TEST(HistogramTest, UpperBoundLandsInLastBucket) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.Add(10.0);
  EXPECT_EQ(histogram.bucket_count(4), 1);
}

TEST(HistogramTest, BucketBounds) {
  Histogram histogram(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(histogram.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.BucketHigh(0), 2.5);
  EXPECT_DOUBLE_EQ(histogram.BucketLow(3), 7.5);
  EXPECT_DOUBLE_EQ(histogram.BucketHigh(3), 10.0);
}

TEST(HistogramTest, AddAll) {
  Histogram histogram(0.0, 1.0, 2);
  histogram.AddAll({0.1, 0.2, 0.9});
  EXPECT_EQ(histogram.total(), 3);
  EXPECT_EQ(histogram.bucket_count(0), 2);
  EXPECT_EQ(histogram.bucket_count(1), 1);
}

TEST(HistogramTest, AsciiRendersEveryBucket) {
  Histogram histogram(0.0, 2.0, 2);
  histogram.Add(0.5);
  histogram.Add(1.5);
  histogram.Add(1.6);
  std::string ascii = histogram.ToAscii(10);
  // Two lines, each with a bar.
  EXPECT_NE(ascii.find('#'), std::string::npos);
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 2);
}

TEST(HistogramTest, AsciiEmptyHistogram) {
  Histogram histogram(0.0, 1.0, 3);
  std::string ascii = histogram.ToAscii();
  EXPECT_EQ(ascii.find('#'), std::string::npos);
}

}  // namespace
}  // namespace stats
}  // namespace adahealth
