file(REMOVE_RECURSE
  "CMakeFiles/example_diabetes_clustering.dir/diabetes_clustering.cpp.o"
  "CMakeFiles/example_diabetes_clustering.dir/diabetes_clustering.cpp.o.d"
  "diabetes_clustering"
  "diabetes_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_diabetes_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
