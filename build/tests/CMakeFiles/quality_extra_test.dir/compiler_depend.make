# Empty compiler generated dependencies file for quality_extra_test.
# This may be replaced when dependencies are built.
