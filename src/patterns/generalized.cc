#include "patterns/generalized.h"

#include "patterns/fpgrowth.h"

namespace adahealth {
namespace patterns {

common::StatusOr<std::vector<GeneralizedItemset>> MineGeneralized(
    const dataset::ExamLog& log, const dataset::Taxonomy& taxonomy,
    const GeneralizedMiningOptions& options) {
  const double thresholds[3] = {options.min_support_level0,
                                options.min_support_level1,
                                options.min_support_level2};
  for (double t : thresholds) {
    if (t <= 0.0 || t > 1.0) {
      return common::InvalidArgumentError(
          "per-level min supports must be in (0, 1]");
    }
  }

  std::vector<GeneralizedItemset> result;
  for (int level = 0; level < 3; ++level) {
    TransactionDb db = BuildTransactionsAtLevel(log, taxonomy, level);
    MiningOptions mining;
    mining.min_support_count =
        AbsoluteSupport(thresholds[level], db.size());
    mining.max_itemset_size = options.max_itemset_size;
    auto itemsets = MineFpGrowth(db, mining);
    if (!itemsets.ok()) return itemsets.status();
    for (auto& itemset : itemsets.value()) {
      result.push_back({level, std::move(itemset.items), itemset.support});
    }
  }
  return result;
}

std::string FormatGeneralizedItemset(const GeneralizedItemset& itemset,
                                     const dataset::ExamLog& log,
                                     const dataset::Taxonomy& taxonomy) {
  std::string out = "{";
  for (size_t i = 0; i < itemset.items.size(); ++i) {
    if (i > 0) out += ", ";
    ItemId item = itemset.items[i];
    int level = taxonomy.LevelOf(item);
    if (level == 0) {
      out += log.dictionary().Name(item);
    } else if (level == 1) {
      out += taxonomy.GroupName(
          item - static_cast<ItemId>(taxonomy.num_leaves()));
    } else {
      out += taxonomy.CategoryName(
          item - static_cast<ItemId>(taxonomy.num_leaves() +
                                     taxonomy.num_groups()));
    }
  }
  out += "}@L" + std::to_string(itemset.level) +
         " (support=" + std::to_string(itemset.support) + ")";
  return out;
}

}  // namespace patterns
}  // namespace adahealth
